//! The §5.2 walkthrough: skeleton access generation for non-affine code —
//! a read-only linked-structure traversal plus a conditional-load kernel,
//! showing inspector-style slicing, the simplified-CFG optimisation and the
//! paper's safety refusals.
//!
//! Run: `cargo run --release --example pointer_chase`

use dae_core::{generate_access, CompilerOptions, RefuseReason, Strategy};
use dae_ir::{CmpOp, FuncId, FunctionBuilder, Module, Type, Value};

fn main() {
    let mut module = Module::new();
    // A node pool: node k occupies 2 words [next_ptr, payload].
    let nodes = module.add_global("nodes", Type::I64, 2 * 1024);
    let data = module.add_global("data", Type::F64, 1024);
    let extra = module.add_global("extra", Type::F64, 1024);
    let out = module.add_global("out", Type::F64, 1024);
    let flag = module.add_global("flag", Type::I64, 1);

    // ---- 1. pointer chase (read-only): skeleton keeps the chase ----------
    let mut b = FunctionBuilder::new("chase", vec![Type::Ptr, Type::I64], Type::F64);
    b.set_task();
    let sums = b.counted_loop_carried(
        Value::i64(0),
        Value::Arg(1),
        Value::i64(1),
        vec![Value::Arg(0), Value::f64(0.0)],
        |b, _, c| {
            let next = b.load(Type::Ptr, c[0]);
            let pa = b.ptr_add(c[0], 8i64);
            let v = b.load(Type::F64, pa);
            let acc = b.fadd(c[1], v);
            vec![next, acc]
        },
    );
    b.ret(Some(sums[1]));
    let chase = module.add_function(b.finish());
    let _ = nodes;
    show(&module, chase, "pointer chase (read-only)", &CompilerOptions::default());

    // ---- 2. conditional loads: the §5.2.2 simplified CFG -----------------
    let mut b = FunctionBuilder::new("cond_gather", vec![Type::I64], Type::Void);
    b.set_task();
    b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
        let da = b.elem_addr(Value::Global(data), i, Type::F64);
        let d = b.load(Type::F64, da);
        let c = b.cmp(CmpOp::Gt, d, 0.5f64);
        b.if_then(c, |b| {
            let ea = b.elem_addr(Value::Global(extra), i, Type::F64);
            let e = b.load(Type::F64, ea);
            let oa = b.elem_addr(Value::Global(out), i, Type::F64);
            b.store(oa, e);
        });
    });
    b.ret(None);
    let cond = module.add_function(b.finish());
    show(&module, cond, "conditional gather, CFG simplification ON", &CompilerOptions::default());
    show(
        &module,
        cond,
        "conditional gather, CFG simplification OFF",
        &CompilerOptions { cfg_simplify: false, ..Default::default() },
    );

    // ---- 3. safety refusal: control flow fed by task-written memory ------
    let mut b = FunctionBuilder::new("converge", vec![], Type::Void);
    b.set_task();
    b.while_loop(
        vec![Value::i64(0)],
        |b, _| {
            let fa = b.ptr_add(Value::Global(flag), 0i64);
            let fv = b.load(Type::I64, fa);
            b.cmp(CmpOp::Ne, fv, 0i64)
        },
        |b, c| {
            let da = b.elem_addr(Value::Global(data), c[0], Type::F64);
            let _ = b.load(Type::F64, da);
            let fa = b.ptr_add(Value::Global(flag), 0i64);
            b.store(fa, 0i64);
            vec![b.iadd(c[0], 1i64)]
        },
    );
    b.ret(None);
    let conv = module.add_function(b.finish());
    show(
        &module,
        conv,
        "convergence loop (writes its own control flag)",
        &CompilerOptions::default(),
    );
}

fn show(module: &Module, task: FuncId, label: &str, opts: &CompilerOptions) {
    println!("\n=== {label} ===");
    match generate_access(module, task, opts) {
        Ok(g) => {
            let strat = match g.strategy {
                Strategy::Polyhedral(_) => "polyhedral",
                Strategy::Skeleton => "skeleton",
            };
            println!("generated via the {strat} path:");
            println!("{}", dae_ir::print_function(&g.func, Some(module)));
        }
        Err(e @ RefuseReason::ControlDependsOnTaskWrites)
        | Err(e @ RefuseReason::NonInlinableCall(_))
        | Err(e @ RefuseReason::NothingToPrefetch) => {
            println!("REFUSED: {e} (this task runs coupled, as in the paper)");
        }
    }
}
