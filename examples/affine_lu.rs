//! The paper's §5.1 walkthrough: polyhedral access generation on the LU
//! kernel (Listings 1–3, Figures 1–2).
//!
//! Run: `cargo run --release --example affine_lu`

use dae_core::{generate_access, CompilerOptions, Strategy};
use dae_ir::{FunctionBuilder, Module, Type, Value};

fn main() {
    let n = 16i64; // row stride of the matrix
    let blk = 8i64;

    // ---- Listing 1(b): LU over a block, whole-block accesses --------------
    let mut module = Module::new();
    let a = module.add_global("A", Type::F64, (n * n) as u64);
    let ga = Value::Global(a);
    let mut b = FunctionBuilder::new("lu_block", vec![], Type::Void);
    b.set_task();
    b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, i| {
        let lo = b.iadd(i, 1i64);
        b.counted_loop(lo, Value::i64(blk), Value::i64(1), |b, j| {
            let addr = |b: &mut FunctionBuilder, r: Value, c: Value| {
                let row = b.imul(r, n);
                let idx = b.iadd(row, c);
                b.elem_addr(ga, idx, Type::F64)
            };
            let aji = addr(b, j, i);
            let aii = addr(b, i, i);
            let vji = b.load(Type::F64, aji);
            let vii = b.load(Type::F64, aii);
            let q = b.fdiv(vji, vii);
            b.store(aji, q);
            let lo2 = b.iadd(i, 1i64);
            b.counted_loop(lo2, Value::i64(blk), Value::i64(1), |b, k| {
                let ajk = addr(b, j, k);
                let aik = addr(b, i, k);
                let vjk = b.load(Type::F64, ajk);
                let vji2 = b.load(Type::F64, aji);
                let vik = b.load(Type::F64, aik);
                let t = b.fmul(vji2, vik);
                let s = b.fsub(vjk, t);
                b.store(ajk, s);
            });
        });
    });
    b.ret(None);
    let task = module.add_function(b.finish());

    println!("=== Listing 1(b): 3-deep LU block loop nest ===");
    let g = generate_access(&module, task, &CompilerOptions::default()).expect("generate");
    if let Strategy::Polyhedral(stats) = &g.strategy {
        println!(
            "NOrig = {} accessed cells, NconvUn = {} scanned cells -> check {}",
            stats.n_orig,
            stats.n_conv_un,
            if stats.n_conv_un <= stats.n_orig { "PASSES" } else { "fails" }
        );
        println!(
            "original depth {} -> generated depth {} ({} classes in {} merged nest(s))",
            stats.orig_depth, stats.gen_depth, stats.classes, stats.nests
        );
    }
    println!(
        "\nGenerated access version (cf. Listing 1(c)):\n{}",
        dae_ir::print_function(&g.func, Some(&module))
    );

    // ---- Listing 3: two blocks of one array, parameter classes ------------
    let mut b = FunctionBuilder::new(
        "blocks",
        vec![Type::I64, Type::I64, Type::I64, Type::I64], // Ax, Ay, Dx, Dy
        Type::Void,
    );
    b.set_task();
    b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, j| {
        b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, k| {
            let addr = |b: &mut FunctionBuilder, r: Value, c: Value| {
                let row = b.imul(r, n);
                let idx = b.iadd(row, c);
                b.elem_addr(ga, idx, Type::F64)
            };
            let r1 = b.iadd(Value::Arg(0), j);
            let c1 = b.iadd(Value::Arg(1), k);
            let a1 = addr(b, r1, c1);
            let r2 = b.iadd(Value::Arg(2), j);
            let c2 = b.iadd(Value::Arg(3), k);
            let a2 = addr(b, r2, c2);
            let v1 = b.load(Type::F64, a1);
            let v2 = b.load(Type::F64, a2);
            let s = b.fadd(v1, v2);
            b.store(a1, s);
        });
    });
    b.ret(None);
    let task3 = module.add_function(b.finish());

    println!("\n=== Listing 3: blocks A[Ax+j][Ay+k] and A[Dx+j][Dy+k] of one array ===");
    let opts = CompilerOptions { param_hints: vec![0, 0, 8, 8], ..Default::default() };
    let g3 = generate_access(&module, task3, &opts).expect("generate");
    if let Strategy::Polyhedral(stats) = &g3.strategy {
        println!(
            "{} parameter classes, merged into {} loop nest(s) — the convex hull of a single",
            stats.classes, stats.nests
        );
        println!("class never spans the gap between the blocks (Figure 2).");
        println!("NOrig = {}, NconvUn = {}", stats.n_orig, stats.n_conv_un);
    }
    println!(
        "\nGenerated access version (cf. Listing 3(b)):\n{}",
        dae_ir::print_function(&g3.func, Some(&module))
    );
}
