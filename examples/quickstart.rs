//! Quickstart: build a task, let the compiler generate its access phase,
//! and compare coupled vs decoupled execution.
//!
//! Run: `cargo run --release --example quickstart`

use dae_core::{generate_access, CompilerOptions, Strategy};
use dae_ir::{FunctionBuilder, Module, Type, Value};
use dae_runtime::{run_workload, FreqPolicy, RuntimeConfig, TaskInstance};
use dae_sim::Val;

fn main() {
    // 1. A module with one global array and one task: y[i] = 3·y[i] + 1
    //    over a chunk of a large array.
    let mut module = Module::new();
    let y = module.add_global("y", Type::F64, 1 << 20);
    let chunk: i64 = 4096;

    let mut b = FunctionBuilder::new("saxpyish", vec![Type::I64], Type::Void);
    b.set_task();
    let hi = b.iadd(Value::Arg(0), chunk);
    b.counted_loop(Value::Arg(0), hi, Value::i64(1), |b, i| {
        let p = b.elem_addr(Value::Global(y), i, Type::F64);
        let v = b.load(Type::F64, p);
        let w = b.fmul(v, 3.0f64);
        let w = b.fadd(w, 1.0f64);
        b.store(p, w);
    });
    b.ret(None);
    let task = module.add_function(b.finish());

    // 2. Generate the access phase (the paper's contribution).
    let opts = CompilerOptions { param_hints: vec![0], ..Default::default() };
    let generated = generate_access(&module, task, &opts).expect("access generation");
    match &generated.strategy {
        Strategy::Polyhedral(stats) => println!(
            "polyhedral access phase: NOrig={} NconvUn={} ({}-deep nest from {}-deep task)",
            stats.n_orig, stats.n_conv_un, stats.gen_depth, stats.orig_depth
        ),
        Strategy::Skeleton => println!("skeleton access phase"),
    }
    println!("\n{}", dae_ir::print_function(&generated.func, Some(&module)));
    let access = module.add_function(generated.func);

    // 3. Run 256 task instances coupled and decoupled.
    let tasks_cae: Vec<TaskInstance> =
        (0..256).map(|k| TaskInstance::coupled(task, vec![Val::I(k * chunk)])).collect();
    let tasks_dae: Vec<TaskInstance> =
        (0..256).map(|k| TaskInstance::decoupled(task, access, vec![Val::I(k * chunk)])).collect();

    let base = RuntimeConfig::paper_default();
    let cae = run_workload(&module, &tasks_cae, &base).expect("cae run");
    let dae = run_workload(&module, &tasks_dae, &base.clone().with_policy(FreqPolicy::DaeOptimal))
        .expect("dae run");

    println!(
        "CAE @fmax:        time {:>8.3} ms  energy {:>7.3} mJ  EDP {:.3e}",
        cae.time_s * 1e3,
        cae.energy_j * 1e3,
        cae.edp()
    );
    println!(
        "DAE optimal-EDP:  time {:>8.3} ms  energy {:>7.3} mJ  EDP {:.3e}",
        dae.time_s * 1e3,
        dae.energy_j * 1e3,
        dae.edp()
    );
    println!(
        "EDP improvement: {:.1}%  (execute-phase DRAM misses: {} -> {})",
        (1.0 - dae.edp() / cae.edp()) * 100.0,
        cae.execute_trace.dram_lines(),
        dae.execute_trace.demand_hits[3],
    );
}
