//! Sweeps a benchmark across every operating point and execution mode,
//! printing the time/energy/EDP landscape the runtime's Optimal-f policy
//! searches — a miniature of the paper's Figure 4 methodology.
//!
//! Run: `cargo run --release --example dvfs_explorer [lu|cholesky|fft|lbm|libq|cigar|cg]`

use dae_power::{DvfsConfig, DvfsTable, FreqId};
use dae_runtime::{run_workload, FreqPolicy, RuntimeConfig};
use dae_workloads::{Variant, Workload};

fn pick(name: &str) -> Workload {
    match name {
        "lu" => dae_workloads::lu::build_sized(64, 16),
        "cholesky" => dae_workloads::cholesky::build_sized(64, 16),
        "fft" => dae_workloads::fft::build_sized(4096, 4),
        "lbm" => dae_workloads::lbm::build_sized(256, 128, 4, 1),
        "libq" => dae_workloads::libq::build_sized(65536, 8192),
        "cigar" => dae_workloads::cigar::build_sized(1024, 128, 64, 128),
        "cg" => dae_workloads::cg::build_sized(4096, 16, 512, 1),
        other => panic!("unknown benchmark `{other}`"),
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "libq".to_string());
    let mut w = pick(&name);
    w.compile_auto();
    let table = DvfsTable::sandybridge();

    println!("{} — time (ms) / energy (mJ) / EDP (uJ·s), 500 ns DVFS latency\n", w.name);
    println!("{:<26} {:>10} {:>12} {:>12}", "configuration", "time", "energy", "EDP");

    let run = |label: String, variant: Variant, policy: FreqPolicy| {
        let cfg = RuntimeConfig::paper_default()
            .with_policy(policy)
            .with_dvfs(DvfsConfig::latency_500ns());
        let r = run_workload(&w.module, &w.tasks(variant), &cfg).expect("run");
        println!(
            "{:<26} {:>10.3} {:>12.3} {:>12.3}",
            label,
            r.time_s * 1e3,
            r.energy_j * 1e3,
            r.edp() * 1e6
        );
    };

    for i in 0..table.len() {
        let f = FreqId(i);
        run(
            format!("CAE @ {:.1} GHz", table.point(f).ghz),
            Variant::Cae,
            FreqPolicy::CoupledFixed(f),
        );
    }
    run("CAE optimal-EDP".into(), Variant::Cae, FreqPolicy::CoupledOptimal);
    for i in 0..table.len() {
        let f = FreqId(i);
        run(
            format!("Auto DAE exec @ {:.1} GHz", table.point(f).ghz),
            Variant::AutoDae,
            FreqPolicy::DaePhases { access: table.min(), execute: f },
        );
    }
    run("Auto DAE min/max".into(), Variant::AutoDae, FreqPolicy::DaeMinMax);
    run("Auto DAE optimal-EDP".into(), Variant::AutoDae, FreqPolicy::DaeOptimal);
    run("Manual DAE optimal-EDP".into(), Variant::ManualDae, FreqPolicy::DaeOptimal);
}
