//! Sweeps a benchmark across every operating point and execution mode,
//! printing the time/energy/EDP landscape the runtime's Optimal-f policy
//! searches — a miniature of the paper's Figure 4 methodology.
//!
//! The decoupled frequency-pair sweep runs with event tracing on and
//! drops one Chrome trace per explored pair under `target/repro/traces/`
//! (open them in <https://ui.perfetto.dev> to compare schedules).
//!
//! The final section pits the **online governors** against the oracle: each
//! governor warms up over repeated runs of the same workload and its
//! measured run lands next to the `Manual DAE optimal-EDP` row, along with
//! how many task classes it learned and how many converged.
//!
//! Run: `cargo run --release --example dvfs_explorer [lu|cholesky|fft|lbm|libq|cigar|cg]`

use dae_governor::GovernorKind;
use dae_power::{DvfsConfig, DvfsTable, FreqId};
use dae_repro::trace::{chrome, json::JsonValue, NullSink, Recorder};
use dae_runtime::{
    run_workload, run_workload_governed, run_workload_traced, FreqPolicy, RuntimeConfig,
};
use dae_workloads::{Variant, Workload};
use std::path::PathBuf;

fn pick(name: &str) -> Workload {
    match name {
        "lu" => dae_workloads::lu::build_sized(64, 16),
        "cholesky" => dae_workloads::cholesky::build_sized(64, 16),
        "fft" => dae_workloads::fft::build_sized(4096, 4),
        "lbm" => dae_workloads::lbm::build_sized(256, 128, 4, 1),
        "libq" => dae_workloads::libq::build_sized(65536, 8192),
        "cigar" => dae_workloads::cigar::build_sized(1024, 128, 64, 128),
        "cg" => dae_workloads::cg::build_sized(4096, 16, 512, 1),
        other => panic!("unknown benchmark `{other}`"),
    }
}

fn trace_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/repro/traces");
    std::fs::create_dir_all(&dir).expect("create target/repro/traces");
    dir
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "libq".to_string());
    let mut w = pick(&name);
    w.compile_auto();
    let table = DvfsTable::sandybridge();

    println!("{} — time (ms) / energy (mJ) / EDP (uJ·s), 500 ns DVFS latency\n", w.name);
    println!("{:<26} {:>10} {:>12} {:>12}", "configuration", "time", "energy", "EDP");

    let cfg_for = |policy: FreqPolicy| {
        RuntimeConfig::paper_default().with_policy(policy).with_dvfs(DvfsConfig::latency_500ns())
    };
    let print_row = |label: &str, r: &dae_runtime::RunReport| {
        println!(
            "{:<26} {:>10.3} {:>12.3} {:>12.3}",
            label,
            r.time_s * 1e3,
            r.energy_j * 1e3,
            r.edp() * 1e6
        );
    };
    let run = |label: String, variant: Variant, policy: FreqPolicy| {
        let r = run_workload(&w.module, &w.tasks(variant), &cfg_for(policy)).expect("run");
        print_row(&label, &r);
    };

    for i in 0..table.len() {
        let f = FreqId(i);
        run(
            format!("CAE @ {:.1} GHz", table.point(f).ghz),
            Variant::Cae,
            FreqPolicy::CoupledFixed(f),
        );
    }
    run("CAE optimal-EDP".into(), Variant::Cae, FreqPolicy::CoupledOptimal);

    // The decoupled pair sweep is traced: one Perfetto-loadable file per
    // (access, execute) frequency pair.
    let mut paths = Vec::new();
    for i in 0..table.len() {
        let (access, execute) = (table.min(), FreqId(i));
        let policy = FreqPolicy::DaePhases { access, execute };
        let cfg = cfg_for(policy);
        let mut rec = Recorder::new(cfg.cores);
        let r = run_workload_traced(&w.module, &w.tasks(Variant::AutoDae), &cfg, &mut rec)
            .expect("run");
        let (a_ghz, e_ghz) = (table.point(access).ghz, table.point(execute).ghz);
        print_row(&format!("Auto DAE exec @ {e_ghz:.1} GHz"), &r);
        let path = trace_dir().join(format!("{}_access{:.1}_exec{:.1}.json", w.name, a_ghz, e_ghz));
        let meta = vec![
            ("benchmark".to_string(), JsonValue::from(w.name)),
            ("access_ghz".to_string(), a_ghz.into()),
            ("execute_ghz".to_string(), e_ghz.into()),
            ("report".to_string(), r.to_json()),
        ];
        std::fs::write(&path, chrome::chrome_trace_json_with(&rec, meta)).expect("write trace");
        paths.push(path);
    }
    run("Auto DAE min/max".into(), Variant::AutoDae, FreqPolicy::DaeMinMax);
    run("Auto DAE optimal-EDP".into(), Variant::AutoDae, FreqPolicy::DaeOptimal);
    run("Manual DAE optimal-EDP".into(), Variant::ManualDae, FreqPolicy::DaeOptimal);

    // Governed vs oracle: the online governors start blind and learn the
    // landscape the oracle above computed from the traces. Each is warmed
    // over repeated runs of the same workload (one persistent governor
    // instance), then the measured run is printed next to the oracle row.
    println!();
    let tasks = w.tasks(Variant::ManualDae);
    for (label, kind, warmup) in [
        ("Governed heuristic", GovernorKind::Heuristic, 3usize),
        ("Governed bandit", GovernorKind::Bandit { seed: 0xace }, 40),
    ] {
        let cfg = cfg_for(FreqPolicy::Governed(kind));
        let mut gov = kind.build(&cfg.table);
        for _ in 0..warmup {
            run_workload_governed(&w.module, &tasks, &cfg, gov.as_mut(), &mut NullSink)
                .expect("run");
        }
        let r = run_workload_governed(&w.module, &tasks, &cfg, gov.as_mut(), &mut NullSink)
            .expect("run");
        print_row(label, &r);
        if let Some(g) = &r.governor {
            let converged = g.classes.iter().filter(|c| c.converged).count();
            println!(
                "{:<26} {} warm-ups; {} classes, {} converged, {} guarded",
                "",
                warmup,
                g.classes.len(),
                converged,
                g.classes.iter().filter(|c| c.guarded).count()
            );
        }
    }

    println!("\ntraces ({}, open in ui.perfetto.dev):", paths.len());
    for p in &paths {
        println!("   -> {}", p.display());
    }
}
