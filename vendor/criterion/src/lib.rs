//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the `criterion_group!` / `criterion_main!` / [`Criterion`]
//! shape used by this workspace's benches. It times a fixed number of
//! iterations and prints the mean wall-clock per iteration — no
//! statistical analysis, outlier detection or HTML reports.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, warm_up: Duration::from_millis(100) }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { total: Duration::ZERO, iters: 0, warm_up: self.warm_up };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        b.report(name, None);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string(), throughput: None }
    }
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { total: Duration::ZERO, iters: 0, warm_up: self.parent.warm_up };
        for _ in 0..self.parent.sample_size {
            f(&mut b);
        }
        b.report(&format!("{}/{}", self.name, name), self.throughput.as_ref());
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    total: Duration,
    iters: u64,
    warm_up: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up only on the first sample of a benchmark.
        if self.iters == 0 {
            let start = Instant::now();
            while start.elapsed() < self.warm_up {
                black_box(f());
            }
        }
        let start = Instant::now();
        black_box(f());
        self.total += start.elapsed();
        self.iters += 1;
    }

    fn report(&self, name: &str, throughput: Option<&Throughput>) {
        if self.iters == 0 {
            return;
        }
        let per_iter = self.total.as_secs_f64() / self.iters as f64;
        let mut line = format!("{name:<48} {:>12.3} us/iter", per_iter * 1e6);
        if let Some(Throughput::Elements(n)) = throughput {
            line.push_str(&format!("  ({:.1} Melem/s)", *n as f64 / per_iter / 1e6));
        }
        println!("{line}");
    }
}

/// Builds the function named by `name =` that runs every target with
/// the given config; also accepts the short `(group, targets...)` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
