//! Offline, deterministic stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API used by this
//! workspace's property tests: the [`strategy::Strategy`] trait with
//! range, tuple, map, union and collection strategies, plus the
//! [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//! [`prop_assert_eq!`] macros. Unlike the real crate it performs no
//! shrinking and draws every case from a deterministic per-test RNG,
//! so a failing case reproduces exactly on re-run.

pub mod test_runner {
    /// Run configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic xorshift64* generator, seeded from the test path
    /// and case index so every run of a property is reproducible.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(test_path: &str, case: u32) -> Self {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            TestRng { state: h | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform draw in `[0, n)`; returns 0 when `n == 0`.
        pub fn below(&mut self, n: u128) -> u128 {
            if n == 0 {
                return 0;
            }
            let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            wide % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u128;
                    self.start.wrapping_add(rng.below(span) as $ty)
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize);

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

    /// Chooses uniformly between boxed alternative strategies; the
    /// expansion target of [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<V> {
        arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.arms.len() as u128) as usize;
            (self.arms[idx])(rng)
        }
    }

    /// Boxes one `prop_oneof!` alternative.
    pub fn union_arm<S>(s: S) -> Box<dyn Fn(&mut TestRng) -> S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(move |rng| s.generate(rng))
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy, reachable as `any::<T>()` and
    /// from bare `name: type` parameters in [`proptest!`](crate::proptest).
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u128;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice between alternatives (no weights supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::union_arm($arm)),+])
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {:?} != {:?}", left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "{}: {:?} != {:?}", ::std::format!($($fmt)+), left, right
            ));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {:?} == {:?}",
                left,
                right
            ));
        }
    }};
}

/// Generates each listed `#[test]` function: every case draws its
/// parameters from the declared strategies with a deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        $crate::__proptest_case!(rng; $body; $($params)*);
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!("case {}/{} failed: {}", case, config.cases, msg);
                    }
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident; $body:block;) => {
        (|| -> ::std::result::Result<(), ::std::string::String> {
            $body
            ::std::result::Result::Ok(())
        })()
    };
    ($rng:ident; $body:block; $pat:pat in $strat:expr $(, $($rest:tt)*)?) => {{
        let $pat = $crate::strategy::Strategy::generate(&$strat, &mut $rng);
        $crate::__proptest_case!($rng; $body; $($($rest)*)?)
    }};
    ($rng:ident; $body:block; $var:ident : $ty:ty $(, $($rest:tt)*)?) => {{
        let $var: $ty = <$ty as $crate::arbitrary::Arbitrary>::arbitrary_value(&mut $rng);
        $crate::__proptest_case!($rng; $body; $($($rest)*)?)
    }};
}
