//! Offline placeholder for `rand`.
//!
//! Several manifests in this workspace declare `rand` as a
//! dev-dependency but no code path uses it; this empty crate satisfies
//! resolution without network access. See `vendor/README.md`.
