#!/usr/bin/env python3
"""CI smoke for daed's profile-guided online recompilation.

Against a daed started with a fast `--recompile-ms`, this script checks
the hot-swap contract end to end over real TCP:

1. a `run` request succeeds (and, as a side effect, feeds the daemon's
   profile store);
2. the background worker completes at least one recompile pass over
   that profile (observed via the `profiles` op's counters);
3. the identical request afterwards answers with *identical bytes* —
   the swap of refined artifacts is client-invisible.

Usage: recompile_smoke.py HOST:PORT
Exits non-zero (with a message on stderr) on any violated step.
"""

import json
import socket
import sys
import time


def connect(addr, deadline):
    host, port = addr.rsplit(":", 1)
    while True:
        try:
            sock = socket.create_connection((host, int(port)), timeout=5)
            sock.settimeout(60)
            return sock.makefile("rwb")
        except OSError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.2)


def roundtrip(conn, frame):
    conn.write((json.dumps(frame) + "\n").encode())
    conn.flush()
    line = conn.readline()
    if not line:
        sys.exit("daed closed the connection mid-conversation")
    return line


IR = """\
global g0 a : 1024 x f64

task fn t(arg0: i64) {
bb0:
  jump bb1(0)
bb1(bb1p0: i64):
  v0: bool = icmp lt bb1p0, 512
  br v0, bb2, bb3
bb2:
  v1: i64 = imul bb1p0, 8
  v2: ptr = ptradd @g0, v1
  v3: f64 = load v2
  v4: f64 = fmul v3, 2.0
  store v2, v4
  v5: i64 = iadd bb1p0, 1
  jump bb1(v5)
bb3:
  ret
}
"""


def main():
    addr = sys.argv[1]
    deadline = time.monotonic() + 60
    conn = connect(addr, deadline)

    health = json.loads(roundtrip(conn, {"id": 0, "op": "health"}))
    if health.get("result", {}).get("status") != "ok":
        sys.exit(f"daed not healthy: {health}")

    work = {"id": "hot", "op": "run", "ir": IR}
    before = roundtrip(conn, work)
    if json.loads(before).get("ok") is not True:
        sys.exit(f"run request failed: {before!r}")

    while True:
        resp = json.loads(roundtrip(conn, {"id": "p", "op": "profiles"}))
        result = resp.get("result", {})
        if result.get("schema") != "dae-serve-profiles/1":
            sys.exit(f"unexpected profiles response: {resp}")
        if result.get("recompiles", {}).get("completed", 0) >= 1:
            if len(result.get("records", [])) < 1:
                sys.exit(f"recompiled without profile records: {resp}")
            break
        if time.monotonic() > deadline:
            sys.exit(f"recompile worker never completed a pass: {resp}")
        time.sleep(0.1)

    after = roundtrip(conn, work)
    if after != before:
        sys.exit(f"hot swap changed served bytes:\n  {before!r}\n  {after!r}")
    print("recompile hot-swap smoke: ok")


if __name__ == "__main__":
    main()
