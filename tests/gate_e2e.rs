//! End-to-end tests of the `daeg` gateway over real TCP.
//!
//! The first test exercises the headline fault-tolerance promise: with
//! three `daed` backends behind one gateway, SIGKILL-ing a backend in
//! the middle of a client burst must be invisible — every request still
//! succeeds, and every response is byte-identical to a fresh single
//! engine handling the same frame directly. The remaining tests fuzz the
//! *backend-facing* side through the deterministic fault proxy: garbled,
//! truncated and connection-dropping backend frames must never panic the
//! gateway and must surface to clients only as structured dotted codes.

use dae_repro::gate::{FaultPlan, FaultProxy, GateConfig, Gateway};
use dae_repro::serve::load::shutdown;
use dae_repro::serve::proto::{ok_response_raw, parse_request};
use dae_repro::serve::{Engine, EngineConfig, Server, ServerConfig};
use dae_repro::trace::json::{parse, JsonValue};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// A spawned daemon (`daed` or `daeg`) on an ephemeral port, killed on
/// drop so a failing test cannot leak processes into the test host.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(exe: &str, announce: &str, args: &[&str]) -> Daemon {
        let mut child = Command::new(exe)
            .args(["--addr", "127.0.0.1:0"])
            .args(args)
            .stdout(Stdio::piped())
            .spawn()
            .expect("daemon spawns");
        let stdout = child.stdout.as_mut().expect("stdout is piped");
        let mut first = String::new();
        BufReader::new(stdout).read_line(&mut first).expect("daemon announces its address");
        let addr = first
            .trim()
            .strip_prefix(announce)
            .unwrap_or_else(|| panic!("unexpected first line: {first:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn spawn_daed(args: &[&str]) -> Daemon {
        Daemon::spawn(env!("CARGO_BIN_EXE_daed"), "daed: listening on ", args)
    }

    fn spawn_daeg(args: &[&str]) -> Daemon {
        Daemon::spawn(env!("CARGO_BIN_EXE_daeg"), "daeg: listening on ", args)
    }

    fn connect(&self) -> Client {
        Client::connect(&self.addr)
    }

    /// Asks for a drain and waits for the process to exit cleanly.
    fn shutdown_and_wait(mut self) {
        let mut c = self.connect();
        let line = c.roundtrip(r#"{"id":"bye","op":"shutdown"}"#);
        assert!(line.contains("\"draining\":true"), "{line}");
        let status = self.child.wait().expect("daemon exits");
        assert!(status.success(), "daemon exited with {status}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream.set_nodelay(true).unwrap();
        Client { writer: stream.try_clone().unwrap(), reader: BufReader::new(stream) }
    }

    fn send(&mut self, frame: &str) {
        self.writer.write_all(frame.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
    }

    fn recv(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end_matches('\n').to_string()),
            Err(_) => None,
        }
    }

    fn roundtrip(&mut self, frame: &str) -> String {
        self.send(frame);
        self.recv().expect("daemon answered")
    }
}

const STREAM: &str = "\
global g0 a : 4096 x f64

task fn stream(arg0: i64) {
bb0:
  jump bb1(0)
bb1(bb1p0: i64):
  v0: bool = icmp lt bb1p0, 1024
  br v0, bb2, bb3
bb2:
  v1: i64 = iadd arg0, bb1p0
  v2: i64 = imul v1, 8
  v3: ptr = ptradd @g0, v2
  v4: f64 = load v3
  v5: f64 = fmul v4, 2.0
  store v3, v5
  v6: i64 = iadd bb1p0, 1
  jump bb1(v6)
bb3:
  ret
}
";

/// Distinct loop bounds make distinct programs (and distinct route keys,
/// so the burst spreads across the whole ring).
fn program(bound: u64) -> String {
    STREAM.replace("1024", &bound.to_string())
}

fn work_frame(id: &str, op: &str, ir: &str) -> String {
    JsonValue::obj([
        ("id", id.into()),
        ("op", op.into()),
        ("ir", ir.into()),
        ("hints", JsonValue::Arr(vec![64u64.into()])),
    ])
    .to_json_string()
}

/// The reference answer: a fresh single-use engine handling the same
/// request inline, serialised exactly as a backend would serialise it.
/// The gateway forwards successful backend responses verbatim, so the
/// bytes through three backends and a retry must equal these bytes.
fn direct_reference(frame: &str) -> String {
    let req = parse_request(frame).expect("frame is valid");
    let engine = Engine::new(&EngineConfig::default());
    let result = engine.handle_raw(&req).expect("reference run succeeds");
    ok_response_raw(&req.id, &result)
}

/// Every error escaping the gateway uses the `<layer>.<class>` dotted
/// vocabulary (`gate.*` for gateway-originated failures, `serve.*` for
/// backend errors passed through); anything else leaked internals.
fn assert_dotted(code: &str, line: &str) {
    assert!(
        code.contains('.') && code.split('.').all(|p| !p.is_empty()),
        "error code `{code}` is not a dotted layer.class code: {line}"
    );
    assert!(
        code.starts_with("gate.") || code.starts_with("serve."),
        "error code `{code}` from an unknown layer: {line}"
    );
}

#[test]
fn killing_one_of_three_backends_loses_no_requests() {
    let mut backends: Vec<Daemon> =
        (0..3).map(|_| Daemon::spawn_daed(&["--workers", "2"])).collect();
    let fleet = backends.iter().map(|b| b.addr.clone()).collect::<Vec<_>>().join(",");
    let gateway = Daemon::spawn_daeg(&[
        "--backends",
        &fleet,
        "--probe-ms",
        "20",
        "--eject-after",
        "2",
        "--retries",
        "3",
        "--attempt-timeout-ms",
        "5000",
    ]);

    // The victim leaves the fleet vec so the killer thread can own it;
    // the two survivors stay alive for the whole burst.
    let victim = backends.pop().expect("three backends spawned");

    let n_clients = 4;
    let per_client = 12;
    let total = n_clients * per_client;
    let done = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        // SIGKILL the victim once a third of the burst has completed, so
        // most of the burst runs while the fleet is degrading: pooled
        // connections into the corpse, a probe-driven ejection, and
        // rerouted retries all happen under live traffic.
        let done_ref = &done;
        scope.spawn(move || {
            let mut victim = victim;
            while done_ref.load(Ordering::Relaxed) < total / 3 {
                std::thread::sleep(Duration::from_millis(1));
            }
            victim.child.kill().expect("SIGKILL the victim backend");
            let _ = victim.child.wait();
        });
        for k in 0..n_clients {
            let gateway = &gateway;
            scope.spawn(move || {
                let mut client = gateway.connect();
                for j in 0..per_client {
                    // Overlapping bounds across clients: some requests
                    // are warm cache hits, some are cold, and their ring
                    // homes spread over all three backends.
                    let ir = program(200 + (k * per_client / 2 + j) as u64);
                    let op = if j % 3 == 0 { "run" } else { "compile" };
                    let frame = work_frame(&format!("g{k}-{j}"), op, &ir);
                    let got = client.roundtrip(&frame);
                    assert_eq!(
                        got,
                        direct_reference(&frame),
                        "client {k} request {j}: bytes through the gateway diverge"
                    );
                    done_ref.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(done.load(Ordering::Relaxed), total);

    // The probes must have noticed the corpse: the gateway's own stats
    // record at least one ejection, and health sees at most two up.
    let mut c = gateway.connect();
    let stats = parse(&c.roundtrip(r#"{"id":"s","op":"stats"}"#)).expect("stats is JSON");
    let ejects = stats
        .get("result")
        .and_then(|r| r.get("ejects"))
        .and_then(JsonValue::as_f64)
        .expect("stats carries an ejects counter");
    assert!(ejects >= 1.0, "killing a backend must surface as an ejection: {stats:?}");
    let health = parse(&c.roundtrip(r#"{"id":"h","op":"health"}"#)).expect("health is JSON");
    let up = health
        .get("result")
        .and_then(|r| r.get("backends_up"))
        .and_then(JsonValue::as_f64)
        .expect("health carries backends_up");
    assert!(up <= 2.0, "the killed backend must not count as up: {health:?}");

    gateway.shutdown_and_wait();
    for b in backends {
        b.shutdown_and_wait();
    }
}

#[test]
fn gateway_keeps_draining_fleet_invisible_until_the_end() {
    // A backend that announces `draining` is taken out of rotation by the
    // probes without any client-visible failure: requests homed on it
    // reroute to the survivor.
    let keeper = Daemon::spawn_daed(&["--workers", "2"]);
    let leaver = Daemon::spawn_daed(&["--workers", "2"]);
    let fleet = format!("{},{}", keeper.addr, leaver.addr);
    let gateway = Daemon::spawn_daeg(&["--backends", &fleet, "--probe-ms", "20", "--retries", "2"]);

    let mut client = gateway.connect();
    for j in 0..6 {
        let frame = work_frame(&format!("w{j}"), "compile", &program(500 + j));
        assert_eq!(client.roundtrip(&frame), direct_reference(&frame), "warm-up request {j}");
    }

    // Start the leaver's drain directly (not through the gateway).
    leaver.shutdown_and_wait();

    // Wait for a probe cycle to mark it, then keep asking: every request
    // must still succeed, routed entirely to the keeper.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let health = parse(&client.roundtrip(r#"{"id":"h","op":"health"}"#)).unwrap();
        let up = health
            .get("result")
            .and_then(|r| r.get("backends_up"))
            .and_then(JsonValue::as_f64)
            .unwrap_or(2.0);
        if up <= 1.0 {
            break;
        }
        assert!(Instant::now() < deadline, "probes never noticed the drained backend");
        std::thread::sleep(Duration::from_millis(20));
    }
    for j in 0..8 {
        let frame = work_frame(&format!("a{j}"), "compile", &program(520 + j));
        assert_eq!(
            client.roundtrip(&frame),
            direct_reference(&frame),
            "request {j} after the drain must reroute cleanly"
        );
    }

    gateway.shutdown_and_wait();
    keeper.shutdown_and_wait();
}

/// Spins up a full in-process chain — engine server, fault proxy,
/// gateway — drives `requests` frames through it, and asserts the
/// contract: every frame is answered, answers parse, failures carry
/// dotted codes, and nothing panics (thread joins would propagate).
fn drive_faulty_chain(plan: FaultPlan, requests: usize) -> (usize, usize) {
    let server =
        Server::bind(&ServerConfig { workers: 2, queue_depth: 64, ..ServerConfig::default() })
            .expect("backend binds");
    let backend_addr = server.local_addr().expect("backend addr").to_string();
    let server_handle = std::thread::spawn(move || server.run());

    let proxy = FaultProxy::start(backend_addr.clone(), plan).expect("proxy starts");
    let gateway = Gateway::bind(&GateConfig {
        backends: vec![proxy.addr()],
        routers: 2,
        queue_depth: 64,
        // Fast, bounded recovery: a garbled answer must not stall a case.
        attempt_timeout_ms: 2_000,
        max_retries: 2,
        retry_base_ms: 1,
        retry_cap_ms: 5,
        eject_after: 4,
        readmit_ms: 10,
        probe_interval_ms: 25,
        ..GateConfig::default()
    })
    .expect("gateway binds");
    let gate_addr = gateway.local_addr().expect("gateway addr").to_string();
    let gate_handle = std::thread::spawn(move || gateway.run());

    let mut ok = 0usize;
    let mut failed = 0usize;
    let mut client = Client::connect(&gate_addr);
    for j in 0..requests {
        let frame = work_frame(&format!("f{j}"), "compile", &program(700 + j as u64));
        let line = client.roundtrip(&frame);
        let v = parse(&line).unwrap_or_else(|e| panic!("unparseable gateway answer {e:?}: {line}"));
        match v.get("ok").and_then(JsonValue::as_bool) {
            Some(true) => ok += 1,
            Some(false) => {
                let code = v
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(JsonValue::as_str)
                    .unwrap_or("");
                assert_dotted(code, &line);
                failed += 1;
            }
            None => panic!("gateway answer without an ok field: {line}"),
        }
    }

    shutdown(&gate_addr).expect("gateway drains");
    gate_handle.join().expect("gateway thread must not panic").expect("gateway run ok");
    proxy.stop();
    shutdown(&backend_addr).expect("backend drains");
    server_handle.join().expect("backend thread must not panic").expect("backend run ok");
    (ok, failed)
}

#[test]
fn clean_proxy_chain_is_fully_transparent() {
    let (ok, failed) = drive_faulty_chain(FaultPlan::clean(1), 8);
    assert_eq!((ok, failed), (8, 0), "a fault-free proxy must be invisible");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Garbled, truncated and connection-closing backend frames — in any
    /// seeded mixture — never panic the gateway, and clients only ever
    /// see verbatim successes or dotted structured errors. Garbling also
    /// covers the interleaving hazard: a corrupted frame whose id no
    /// longer matches the in-flight request must be rejected, not
    /// forwarded to the wrong client.
    #[test]
    fn faulty_backend_frames_never_panic_and_always_code(
        seed in any::<u64>(),
        garble_pm in 0u32..350,
        truncate_pm in 0u32..250,
        close_pm in 0u32..200,
    ) {
        let plan = FaultPlan {
            garble_pm: garble_pm as u16,
            truncate_pm: truncate_pm as u16,
            close_pm: close_pm as u16,
            ..FaultPlan::clean(seed)
        };
        let (ok, failed) = drive_faulty_chain(plan, 6);
        prop_assert_eq!(ok + failed, 6, "every frame is answered exactly once");
    }
}
