//! Adversarial-input tests for the serving path.
//!
//! Everything a client can put on the wire — malformed JSON, hostile
//! frames, truncated or mutated IR, resource-exhaustion attempts — must
//! come back as a structured error with a stable dotted code. A panic,
//! a hang, or an unbounded allocation anywhere in `parse_request` or
//! `Engine::handle` is a bug; these tests fuzz for one.

use dae_repro::ir::CodedError;
use dae_repro::pgo::{PhaseAgg, PhaseProfile, ProfileStore};
use dae_repro::serve::proto::parse_request;
use dae_repro::serve::{codes, Engine, EngineConfig, Request, MAX_FRAME_BYTES};
use dae_repro::trace::json::JsonValue;
use proptest::prelude::*;

const STREAM: &str = "\
global g0 a : 4096 x f64

task fn stream(arg0: i64) {
bb0:
  jump bb1(0)
bb1(bb1p0: i64):
  v0: bool = icmp lt bb1p0, 1024
  br v0, bb2, bb3
bb2:
  v1: i64 = iadd arg0, bb1p0
  v2: i64 = imul v1, 8
  v3: ptr = ptradd @g0, v2
  v4: f64 = load v3
  v5: f64 = fmul v4, 2.0
  store v3, v5
  v6: i64 = iadd bb1p0, 1
  jump bb1(v6)
bb3:
  ret
}
";

/// Every error escaping the serving path uses the `<layer>.<class>`
/// vocabulary; anything else leaked an internal formatting.
fn assert_structured(code: &str) {
    assert!(
        code.contains('.') && code.split('.').all(|part| !part.is_empty()),
        "error code `{code}` is not a dotted layer.class code"
    );
}

/// Runs one frame through the full untrusted pipeline exactly as a
/// worker would, asserting the structured-error contract throughout.
fn feed(engine: &Engine, frame: &str) {
    match parse_request(frame) {
        Err((_, e)) => assert_structured(&e.code),
        Ok(req) => {
            if let Err(e) = engine.handle(&req) {
                assert_structured(&e.code);
            }
        }
    }
}

fn work_request(op: &str, ir: &str) -> Request {
    let frame = JsonValue::obj([("id", 1u64.into()), ("op", op.into()), ("ir", ir.into())])
        .to_json_string();
    parse_request(&frame).expect("well-formed envelope")
}

/// The token pool for [`ir_token_soup_never_panics`]: real-looking IR
/// fragments reassembled at random dig deeper into the parser and
/// verifier than uniform byte noise can.
const TOKENS: &[&str] = &[
    "task fn f(arg0: i64) {",
    "fn f() {",
    "}",
    "bb0:",
    "bb1(bb1p0: i64):",
    "global g0 a : 4096 x f64",
    "global g0 a : 99999999999999999999 x f64",
    "  v0: bool = icmp lt bb1p0, 1024",
    "  v1: i64 = iadd arg0, bb1p0",
    "  v3: ptr = ptradd @g0, v2",
    "  v4: f64 = load v3",
    "  store v3, v5",
    "  br v0, bb2, bb3",
    "  jump bb1(v6)",
    "  ret",
    "  v9: i64 = idiv v1, 0",
    "\u{0}",
    "",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Raw garbage on the wire: any byte soup is answered, never panics.
    #[test]
    fn arbitrary_frames_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let frame = String::from_utf8_lossy(&bytes).into_owned();
        let engine = Engine::new(&EngineConfig::default());
        feed(&engine, &frame);
    }

    /// Truncating a valid frame mid-way models a client dying mid-write.
    #[test]
    fn truncated_valid_frames_fail_structurally(cut in 0usize..1200) {
        let frame = JsonValue::obj([
            ("id", 1u64.into()),
            ("op", "compile".into()),
            ("ir", STREAM.into()),
        ])
        .to_json_string();
        let cut = cut.min(frame.len());
        // Cut on a char boundary; the wire is bytes but the test API
        // takes &str, and a real reader would frame at the newline.
        let mut end = cut;
        while !frame.is_char_boundary(end) {
            end -= 1;
        }
        let engine = Engine::new(&EngineConfig::default());
        feed(&engine, &frame[..end]);
    }

    /// Mutating one byte of the IR text: the parser/verifier rejects or
    /// the program still runs, but nothing panics either way.
    #[test]
    fn single_byte_ir_mutations_never_panic(pos in 0usize..400, byte in 0u8..127) {
        let mut ir = STREAM.as_bytes().to_vec();
        let pos = pos % ir.len();
        ir[pos] = byte;
        // STREAM is pure ASCII and so is the new byte: still valid UTF-8.
        let ir = String::from_utf8(ir).expect("ascii stays ascii");
        let engine = Engine::new(&EngineConfig::default());
        for op in ["compile", "report", "run"] {
            if let Err(e) = engine.handle(&work_request(op, &ir)) {
                assert_structured(&e.code);
            }
        }
    }

    /// Random line soup assembled from real-looking IR tokens.
    #[test]
    fn ir_token_soup_never_panics(
        picks in proptest::collection::vec(0usize..TOKENS.len(), 0..24),
    ) {
        let ir = picks.iter().map(|&i| TOKENS[i]).collect::<Vec<_>>().join("\n");
        let engine = Engine::new(&EngineConfig::default());
        for op in ["compile", "run"] {
            if let Err(e) = engine.handle(&work_request(op, &ir)) {
                assert_structured(&e.code);
            }
        }
    }
}

/// A well-formed two-record profile document, as `daec --profile-out`
/// would write it — the seed for the mutation fuzzers below.
fn valid_profile_document() -> String {
    let agg = PhaseAgg {
        instrs: 4096,
        loads: 1024,
        dram_misses: 128,
        prefetches: 512,
        prefetch_dram_lines: 64,
        branches: 256,
        mlp_x100_sum: 300,
        mem_bound_ppm_sum: 500_000,
    };
    let profile = PhaseProfile { runs: 3, access: agg, execute: agg };
    let mut store = ProfileStore::new();
    store.merge_record(0x00ab_cdef_0123_4567, &profile);
    store.merge_record(0xfeed_f00d_dead_beef, &profile);
    store.document_json().to_json_string()
}

/// Feeds one profile document through the same path as
/// `daec --profile-in`: either it merges (malformed records silently
/// skipped) or it fails with a dotted `pgo.*` code — never a panic.
fn feed_profile(text: &str) {
    let mut store = ProfileStore::new();
    match store.merge_document(text) {
        Ok(()) => {
            // Whatever merged must re-serialise and re-merge cleanly.
            let doc = store.document_json().to_json_string();
            ProfileStore::new().merge_document(&doc).expect("own output re-merges");
        }
        Err(e) => assert_structured(e.code()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Raw garbage as a profile file: answered, never panics.
    #[test]
    fn profile_byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        feed_profile(&String::from_utf8_lossy(&bytes));
    }

    /// Truncating a valid profile document models a writer dying
    /// mid-save (the atomic writer prevents this on our side, but a
    /// hand-edited or foreign file can still arrive torn).
    #[test]
    fn truncated_profile_documents_fail_structurally(cut in 0usize..700) {
        let doc = valid_profile_document();
        let mut end = cut.min(doc.len());
        while !doc.is_char_boundary(end) {
            end -= 1;
        }
        feed_profile(&doc[..end]);
    }

    /// Mutating one byte of a valid document: record-level corruption is
    /// skipped silently, document-level corruption is a dotted error,
    /// and nothing in between panics.
    #[test]
    fn single_byte_profile_mutations_never_panic(pos in 0usize..700, byte in 0u8..127) {
        let mut doc = valid_profile_document().into_bytes();
        let pos = pos % doc.len();
        doc[pos] = byte;
        // The document is pure ASCII and so is the new byte.
        feed_profile(&String::from_utf8(doc).expect("ascii stays ascii"));
    }
}

#[test]
fn hostile_profile_documents_get_dotted_codes() {
    let mut store = ProfileStore::new();
    let e = store.merge_document("not json at all").expect_err("refused");
    assert_eq!(e.code(), dae_repro::pgo::codes::PARSE);

    let e = store
        .merge_document(r#"{"schema":"dae-pgo-profile/99","records":[]}"#)
        .expect_err("wrong schema refused");
    assert_eq!(e.code(), dae_repro::pgo::codes::SCHEMA);

    let e = store.merge_document(r#"{"records":[]}"#).expect_err("missing schema refused");
    assert_eq!(e.code(), dae_repro::pgo::codes::SCHEMA);
}

#[test]
fn malformed_records_are_skipped_not_fatal() {
    // One garbage record sandwiched between nothing: the document is
    // valid, so the merge succeeds and counts the skip.
    let doc = r#"{"schema":"dae-pgo-profile/1","records":[{"key":"xyzzy"},42,null]}"#;
    let mut store = ProfileStore::new();
    store.merge_document(doc).expect("document-level shape is fine");
    assert!(store.is_empty(), "garbage records must not materialise");
    assert!(store.stats().skipped_records >= 3, "every bad record is counted");
}

#[test]
fn oversized_frames_are_rejected_before_parsing() {
    let frame = format!(r#"{{"id":1,"op":"compile","ir":"{}"}}"#, "x".repeat(MAX_FRAME_BYTES));
    let (_, e) = parse_request(&frame).expect_err("over-cap frame refused");
    assert_eq!(e.code, codes::TOO_LARGE);
}

#[test]
fn deeply_nested_json_does_not_blow_the_stack() {
    let frame = format!("{}\"x\"{}", "[".repeat(4000), "]".repeat(4000));
    let (_, e) = parse_request(&frame).expect_err("depth-limited parser refuses");
    assert_eq!(e.code, "json.parse");
}

#[test]
fn unknown_ops_and_wrong_types_are_bad_requests() {
    for frame in [
        r#"{"id":1,"op":"explode","ir":"x"}"#,
        r#"{"id":1,"op":7,"ir":"x"}"#,
        r#"{"id":1,"op":"compile","ir":42}"#,
        r#"{"id":1,"op":"compile","ir":"x","hints":[1.5]}"#,
        r#"{"id":1,"op":"compile","ir":"x","hints":"nope"}"#,
        r#"{"id":1,"op":"compile","ir":"x","deadline_ms":-3}"#,
        r#"[1,2,3]"#,
        r#""just a string""#,
    ] {
        let (_, e) = parse_request(frame).expect_err(frame);
        assert_eq!(e.code, codes::BAD_REQUEST, "{frame}");
    }
}

#[test]
fn huge_global_declarations_are_refused_not_allocated() {
    let ir = "global g0 bomb : 140737488355328 x f64\n\ntask fn f() {\nbb0:\n  ret\n}\n";
    let engine = Engine::new(&EngineConfig::default());
    let e = engine.handle(&work_request("run", ir)).expect_err("refused");
    assert_eq!(e.code, codes::MODULE_TOO_LARGE);
}

#[test]
fn runaway_programs_hit_the_step_limit() {
    // An infinite loop in virtual time: the interpreter's step limit
    // must end it with a structured trap, not a wall-clock hang.
    let ir = "task fn spin() {\nbb0:\n  jump bb1\nbb1:\n  jump bb1\n}\n";
    let engine = Engine::new(&EngineConfig::default());
    match engine.handle(&work_request("run", ir)) {
        Err(e) => assert_structured(&e.code),
        Ok(_) => panic!("an infinite loop cannot succeed"),
    }
}
