//! Determinism properties of profile-guided refinement.
//!
//! Two contracts keep the PGO loop safe to deploy:
//!
//! 1. **No profile, no change** — a driver holding an *empty* profile
//!    set compiles every benchmark byte-identically to a driver with no
//!    profiles at all, at any `--jobs` count. Turning the machinery on
//!    without data is a no-op.
//! 2. **Same profile, same module** — given one fixed profile set, the
//!    refined module is byte-identical at `--jobs 1`, `2` and `8`, and
//!    across repeated compiles. Refinement is a pure function of
//!    (IR, hints, profile); parallelism cannot leak into the output.

use dae_repro::driver::{Driver, DriverConfig};
use dae_repro::ir::{print_module, verify_module};
use dae_repro::pgo::{ProfileCollector, ProfileSet};
use dae_repro::runtime::{run_workload, run_workload_profiled, RuntimeConfig};
use dae_repro::workloads::{all_benchmarks_small, Variant, Workload};

/// Builds a fresh copy of benchmark `i` (compilation mutates the module,
/// so every configuration starts from pristine IR).
fn fresh(i: usize) -> Workload {
    let mut v = all_benchmarks_small();
    v.remove(i)
}

/// Compiles `w` through a fresh in-memory driver carrying `profiles`
/// (when given) and returns (printed module, report JSON, refined-task
/// count).
fn compile_and_run(
    mut w: Workload,
    jobs: usize,
    profiles: Option<&ProfileSet>,
) -> (String, String, usize) {
    let mut driver = Driver::new(&DriverConfig { jobs, ..Default::default() });
    if let Some(set) = profiles {
        driver.set_profiles(set.clone());
    }
    let opts = w.auto_options_fn();
    let outcome = driver.compile(&mut w.module, opts);
    let refined = outcome.refined;
    w.install_auto(outcome.map);
    verify_module(&w.module).unwrap_or_else(|e| panic!("{}: invalid after pgo: {e}", w.name));
    let report =
        run_workload(&w.module, &w.tasks(Variant::AutoDae), &RuntimeConfig::paper_default())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    (print_module(&w.module), report.to_json_string(), refined)
}

/// Collects a real profile for benchmark `i` by compiling it once and
/// replaying its DAE workload through the instrumented scheduler, keyed
/// by the driver's stable task keys.
fn collect_profile(i: usize) -> ProfileSet {
    let mut w = fresh(i);
    let mut driver = Driver::new(&DriverConfig::default());
    let opts = w.auto_options_fn();
    let outcome = driver.compile(&mut w.module, opts);
    w.install_auto(outcome.map);
    let mut col = ProfileCollector::new();
    run_workload_profiled(
        &w.module,
        &w.tasks(Variant::AutoDae),
        &RuntimeConfig::paper_default(),
        &mut col,
    )
    .unwrap_or_else(|e| panic!("{}: profiled run failed: {e}", w.name));
    let mut set = ProfileSet::default();
    for (func, profile) in col.take() {
        let key = *outcome
            .keys
            .get(&func)
            .unwrap_or_else(|| panic!("{}: no task key for profiled function {func:?}", w.name));
        set.insert(key, profile);
    }
    assert!(!set.is_empty(), "{}: a DAE run must yield at least one profile", w.name);
    set
}

#[test]
fn empty_profile_set_is_byte_identical_to_no_profiles() {
    let names: Vec<&str> = all_benchmarks_small().iter().map(|w| w.name).collect();
    for (i, name) in names.iter().enumerate() {
        let (ref_ir, ref_report, _) = compile_and_run(fresh(i), 1, None);
        for jobs in [1usize, 2, 8] {
            let (ir, report, refined) =
                compile_and_run(fresh(i), jobs, Some(&ProfileSet::default()));
            assert_eq!(refined, 0, "{name}: empty profiles refined a task");
            assert_eq!(ir, ref_ir, "{name}: empty-profile --jobs {jobs} module differs");
            assert_eq!(report, ref_report, "{name}: empty-profile --jobs {jobs} report differs");
        }
    }
}

#[test]
fn same_profile_refines_byte_identically_at_any_job_count() {
    let names: Vec<&str> = all_benchmarks_small().iter().map(|w| w.name).collect();
    for (i, name) in names.iter().enumerate() {
        let set = collect_profile(i);
        let (ref_ir, ref_report, ref_refined) = compile_and_run(fresh(i), 1, Some(&set));
        assert!(ref_refined > 0, "{name}: profile present but nothing marked refined");
        for jobs in [2usize, 8] {
            let (ir, report, refined) = compile_and_run(fresh(i), jobs, Some(&set));
            assert_eq!(refined, ref_refined, "{name}: --jobs {jobs} refined count differs");
            assert_eq!(ir, ref_ir, "{name}: refined --jobs {jobs} module differs");
            assert_eq!(report, ref_report, "{name}: refined --jobs {jobs} report differs");
        }
        // And compiling twice with the same profile is stable.
        let (again_ir, again_report, _) = compile_and_run(fresh(i), 1, Some(&set));
        assert_eq!(again_ir, ref_ir, "{name}: repeat refined compile differs");
        assert_eq!(again_report, ref_report, "{name}: repeat refined report differs");
    }
}
