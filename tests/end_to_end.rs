//! Cross-crate integration tests: the whole pipeline — build task IR,
//! compile access phases, run under the DVFS runtime — plus semantic
//! equivalence checks between coupled and decoupled execution.

use dae_repro::compiler::{generate_access, CompilerOptions, Strategy};
use dae_repro::ir::{FunctionBuilder, Module, Type, Value};
use dae_repro::mem::{CoreCaches, HierarchyConfig, SharedLlc};
use dae_repro::runtime::{run_workload, FreqPolicy, RuntimeConfig, TaskInstance};
use dae_repro::sim::{CachePort, Machine, PhaseTrace, Val};
use dae_repro::workloads::{self, Variant};

/// Snapshot of every global after running the given task list sequentially.
fn memory_after(module: &Module, tasks: &[TaskInstance], run_access: bool) -> Vec<u64> {
    let hc = HierarchyConfig::default();
    let mut llc = SharedLlc::new(hc.llc);
    let mut core = CoreCaches::new(&hc);
    let mut machine = Machine::new(module);
    for t in tasks {
        if run_access {
            if let Some(a) = t.access {
                let mut tr = PhaseTrace::default();
                machine
                    .run(a, &t.args, &mut CachePort { core: &mut core, llc: &mut llc }, &mut tr)
                    .expect("access runs");
            }
        }
        let mut tr = PhaseTrace::default();
        machine
            .run(t.func, &t.args, &mut CachePort { core: &mut core, llc: &mut llc }, &mut tr)
            .expect("execute runs");
    }
    let mut words = Vec::new();
    for (g, data) in module.globals() {
        let base = machine.memory.global_addr(g);
        for k in 0..data.len {
            words.push(machine.memory.read_u64(base + k * 8));
        }
    }
    words
}

/// The core safety property of DAE: running the access phase before the
/// execute phase never changes the program's result — the access phase is a
/// pure prefetch (§5.1: "correctness is not affected").
#[test]
fn access_phases_never_change_results() {
    for mut w in workloads::all_benchmarks_small() {
        w.compile_auto();
        let cae = memory_after(&w.module, &w.tasks(Variant::Cae), false);
        let auto = memory_after(&w.module, &w.tasks(Variant::AutoDae), true);
        let manual = memory_after(&w.module, &w.tasks(Variant::ManualDae), true);
        assert_eq!(cae, auto, "{}: Auto DAE changed results", w.name);
        assert_eq!(cae, manual, "{}: Manual DAE changed results", w.name);
    }
}

/// The headline behaviour: on a memory-bound workload, decoupled execution
/// with per-phase optimal-EDP frequencies beats coupled execution at fmax
/// on EDP without losing much time.
#[test]
fn dae_improves_edp_on_memory_bound_workload() {
    let mut w = workloads::libq::build_sized(131072, 8192);
    w.compile_auto();
    let base = RuntimeConfig::paper_default();
    let cae = run_workload(&w.module, &w.tasks(Variant::Cae), &base).unwrap();
    let dae = run_workload(
        &w.module,
        &w.tasks(Variant::AutoDae),
        &base.clone().with_policy(FreqPolicy::DaeOptimal),
    )
    .unwrap();
    assert!(dae.edp() < cae.edp(), "LibQ auto-DAE EDP {} must beat CAE {}", dae.edp(), cae.edp());
    assert!(dae.time_s < cae.time_s * 1.15, "time penalty too large");
}

/// Compute-bound code must not be hurt: LU auto-DAE stays within a few
/// percent of coupled time.
#[test]
fn dae_does_not_hurt_compute_bound_workload() {
    let mut w = workloads::lu::build_sized(64, 16);
    w.compile_auto();
    let base = RuntimeConfig::paper_default();
    let cae = run_workload(&w.module, &w.tasks(Variant::Cae), &base).unwrap();
    let dae = run_workload(
        &w.module,
        &w.tasks(Variant::AutoDae),
        &base.clone().with_policy(FreqPolicy::DaeOptimal),
    )
    .unwrap();
    assert!(dae.time_s < cae.time_s * 1.10, "dae {} vs cae {}", dae.time_s, cae.time_s);
    assert!(dae.edp() < cae.edp() * 1.05);
}

/// Strength reduction and the optimizer preserve semantics: run a
/// non-trivial task before and after `strength_reduce_and_clean` and
/// compare results bit-for-bit.
#[test]
fn optimizer_preserves_semantics() {
    let mut module = Module::new();
    let a = module.add_global("a", Type::F64, 64 * 64);
    let n = 64i64;
    let mut b = FunctionBuilder::new("kernel", vec![Type::I64], Type::Void);
    b.counted_loop(Value::i64(0), Value::i64(16), Value::i64(1), |b, i| {
        let gi = b.iadd(Value::Arg(0), i);
        b.counted_loop(Value::i64(0), Value::i64(16), Value::i64(1), |b, j| {
            let row = b.imul(gi, n);
            let idx = b.iadd(row, j);
            let p = b.elem_addr(Value::Global(a), idx, Type::F64);
            let v = b.load(Type::F64, p);
            let ij = b.imul(gi, j);
            let f = b.itof(ij);
            let w = b.fadd(v, f);
            b.store(p, w);
        });
    });
    b.ret(None);
    let original = b.finish();
    let optimized = dae_repro::analysis::transform::strength_reduce_and_clean(&original);

    let mut m1 = Module::new();
    m1.add_global("a", Type::F64, 64 * 64);
    let f1 = m1.add_function(original);
    let mut m2 = Module::new();
    m2.add_global("a", Type::F64, 64 * 64);
    let f2 = m2.add_function(optimized);

    let t1 = vec![TaskInstance::coupled(f1, vec![Val::I(3)])];
    let t2 = vec![TaskInstance::coupled(f2, vec![Val::I(3)])];
    assert_eq!(memory_after(&m1, &t1, false), memory_after(&m2, &t2, false));
}

/// The polyhedral path produces an access phase that actually covers the
/// task's reads: after the access phase alone, re-running the task's loads
/// hits the cache.
#[test]
fn polyhedral_access_covers_the_reads() {
    let mut module = Module::new();
    let a = module.add_global("a", Type::F64, 1 << 16);
    let mut b = FunctionBuilder::new("chunked", vec![Type::I64], Type::Void);
    b.set_task();
    b.counted_loop(Value::i64(0), Value::i64(2048), Value::i64(1), |b, i| {
        let idx = b.iadd(Value::Arg(0), i);
        let p = b.elem_addr(Value::Global(a), idx, Type::F64);
        let v = b.load(Type::F64, p);
        let w = b.fmul(v, 2.0f64);
        b.store(p, w);
    });
    b.ret(None);
    let task = module.add_function(b.finish());
    let opts = CompilerOptions { param_hints: vec![0], ..Default::default() };
    let g = generate_access(&module, task, &opts).expect("generated");
    assert!(matches!(g.strategy, Strategy::Polyhedral(_)));
    let access = module.add_function(g.func);

    let hc = HierarchyConfig::default();
    let mut llc = SharedLlc::new(hc.llc);
    let mut core = CoreCaches::new(&hc);
    let mut machine = Machine::new(&module);
    // Run access at a non-zero offset, then the task: all reads must hit.
    let args = [Val::I(8192)];
    let mut tr = PhaseTrace::default();
    machine.run(access, &args, &mut CachePort { core: &mut core, llc: &mut llc }, &mut tr).unwrap();
    let mut te = PhaseTrace::default();
    machine.run(task, &args, &mut CachePort { core: &mut core, llc: &mut llc }, &mut te).unwrap();
    assert_eq!(te.demand_hits[3], 0, "no DRAM misses after prefetch");
    assert_eq!(te.hw_prefetch_lines, 0, "not even covered misses");
}

/// Work stealing keeps four cores busy on an imbalanced task mix.
#[test]
fn runtime_balances_heterogeneous_tasks() {
    let mut module = Module::new();
    let g = module.add_global("out", Type::F64, 8);
    // spin(n): n iterations of float work.
    let mut b = FunctionBuilder::new("spin", vec![Type::I64], Type::Void);
    b.set_task();
    let out = b.counted_loop_carried(
        Value::i64(0),
        Value::Arg(0),
        Value::i64(1),
        vec![Value::f64(1.0)],
        |b, _, c| vec![b.fmul(c[0], 1.0000001f64)],
    );
    let p = b.ptr_add(Value::Global(g), 0i64);
    b.store(p, out[0]);
    b.ret(None);
    let f = module.add_function(b.finish());
    // 3 huge tasks then 24 small ones: round-robin would be lopsided.
    let mut tasks: Vec<TaskInstance> =
        (0..3).map(|_| TaskInstance::coupled(f, vec![Val::I(60_000)])).collect();
    tasks.extend((0..24).map(|_| TaskInstance::coupled(f, vec![Val::I(2_000)])));
    let cfg = RuntimeConfig::paper_default();
    let r = run_workload(&module, &tasks, &cfg).unwrap();
    let busy = r.breakdown.access_s + r.breakdown.execute_s + r.breakdown.overhead_s;
    let utilization = busy / (r.time_s * cfg.cores as f64);
    assert!(utilization > 0.7, "work stealing should keep cores busy: {utilization:.2}");
}

/// Profile-guided hot-path specialisation (§5.2.2 / §7 future work): when a
/// conditional is almost always taken, the profiled access version keeps
/// the hot arm's prefetches and warms strictly more of the execute phase's
/// data than the default (drop-all-conditionals) version.
#[test]
fn profile_guided_access_warms_hot_path() {
    use dae_repro::compiler::{generate_skeleton_access_profiled, profile_task, HotPathConfig};
    let n = 4096i64;
    let mut module = Module::new();
    let data = module.add_global_init(dae_repro::ir::GlobalData {
        name: "data".into(),
        elem_ty: Type::F64,
        len: n as u64,
        // 97% positive: the conditional is hot.
        init: dae_repro::ir::GlobalInit::Words(
            (0..n).map(|k| (if k % 32 == 0 { -1.0f64 } else { 1.0 }).to_bits()).collect(),
        ),
    });
    let extra = module.add_global("extra", Type::F64, n as u64);
    let out = module.add_global("out", Type::F64, n as u64);
    let mut b = FunctionBuilder::new("hot_cond", vec![], Type::Void);
    b.set_task();
    b.counted_loop(Value::i64(0), Value::i64(n), Value::i64(1), |b, i| {
        let da = b.elem_addr(Value::Global(data), i, Type::F64);
        let d = b.load(Type::F64, da);
        let c = b.cmp(dae_repro::ir::CmpOp::Gt, d, 0.0f64);
        b.if_then(c, |b| {
            let ea = b.elem_addr(Value::Global(extra), i, Type::F64);
            let e = b.load(Type::F64, ea);
            let oa = b.elem_addr(Value::Global(out), i, Type::F64);
            b.store(oa, e);
        });
    });
    b.ret(None);
    let task = module.add_function(b.finish());

    let opts = CompilerOptions::default();
    let plain = dae_repro::compiler::generate_skeleton_access(&module, task, &opts).unwrap();
    let profile = profile_task(&module, task, &[vec![]]).unwrap();
    let profiled = generate_skeleton_access_profiled(
        &module,
        task,
        &opts,
        Some((&profile, HotPathConfig::default())),
    )
    .unwrap();

    let count_prefetch = |f: &dae_repro::ir::Function| {
        let mut k = 0;
        f.for_each_placed_inst(|_, i| {
            k += matches!(f.inst(i).kind, dae_repro::ir::InstKind::Prefetch { .. }) as usize;
        });
        k
    };
    assert_eq!(count_prefetch(&plain), 1, "default drops the conditional arm");
    assert_eq!(count_prefetch(&profiled), 2, "profiled keeps the hot arm");

    // The profiled version warms strictly more of the execute phase.
    let mut m1 = module.clone();
    let a1 = m1.add_function(plain);
    let mut m2 = module.clone();
    let a2 = m2.add_function(profiled);
    let misses_after = |m: &Module, access| {
        let hc = HierarchyConfig::default();
        let mut llc = SharedLlc::new(hc.llc);
        let mut core = CoreCaches::new(&hc);
        let mut machine = Machine::new(m);
        let mut t = PhaseTrace::default();
        machine
            .run(access, &[], &mut CachePort { core: &mut core, llc: &mut llc }, &mut t)
            .unwrap();
        let mut te = PhaseTrace::default();
        machine
            .run(
                m.func_by_name("hot_cond").unwrap(),
                &[],
                &mut CachePort { core: &mut core, llc: &mut llc },
                &mut te,
            )
            .unwrap();
        te.demand_hits[3] + te.hw_prefetch_lines
    };
    let plain_misses = misses_after(&m1, a1);
    let profiled_misses = misses_after(&m2, a2);
    assert!(
        profiled_misses < plain_misses / 4,
        "profiled access should warm the hot arm: {profiled_misses} vs {plain_misses}"
    );
}

/// Results computed *through the runtime scheduler* (work stealing, four
/// cores, barrier epochs) match the straight sequential execution — the
/// epochs correctly encode the benchmarks' task-graph dependencies.
#[test]
fn runtime_execution_respects_dependencies() {
    for mut w in workloads::all_benchmarks_small() {
        w.compile_auto();
        // Sequential reference (instance order).
        let reference = memory_after(&w.module, &w.tasks(Variant::Cae), false);
        // Runtime execution with stealing + epochs. We cannot read runtime
        // memory back (run_workload owns its machine), so verify via a
        // deterministic re-run: build a fresh runtime machine by replaying
        // epoch groups in scheduler-visible order — the guarantee we need
        // is that any within-epoch permutation yields the same memory. Test
        // that by running each epoch's tasks in *reverse* order.
        let mut tasks = w.tasks(Variant::AutoDae);
        tasks.sort_by_key(|t| t.epoch);
        let mut permuted: Vec<dae_repro::runtime::TaskInstance> = Vec::new();
        let mut i = 0;
        while i < tasks.len() {
            let e = tasks[i].epoch;
            let mut group: Vec<_> =
                tasks[i..].iter().take_while(|t| t.epoch == e).cloned().collect();
            i += group.len();
            group.reverse();
            permuted.extend(group);
        }
        let permuted_result = memory_after(&w.module, &permuted, true);
        assert_eq!(
            reference, permuted_result,
            "{}: within-epoch permutation changed results — missing dependency",
            w.name
        );
    }
}
