//! Property-based semantic-equivalence testing of the whole transform
//! stack: randomly generated programs must compute identical results before
//! and after `optimize` / `strength_reduce_and_clean`, and running the
//! generated access phase first must never change them.

use dae_repro::analysis::transform::{optimize, strength_reduce_and_clean};
use dae_repro::compiler::{generate_access, CompilerOptions};
use dae_repro::ir::{BinOp, CmpOp, FunctionBuilder, Module, Type, Value};
use dae_repro::mem::{CoreCaches, HierarchyConfig, SharedLlc};
use dae_repro::sim::{CachePort, Machine, PhaseTrace, Val};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Arith(u8, usize, usize),
    MulByRow(usize),
    Gather(usize),
    Accumulate(usize),
    StoreAt(usize),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0usize..32, 0usize..32).prop_map(|(o, a, b)| Op::Arith(o, a, b)),
        (0usize..32).prop_map(Op::MulByRow),
        (0usize..32).prop_map(Op::Gather),
        (0usize..32).prop_map(Op::Accumulate),
        (0usize..32).prop_map(Op::StoreAt),
    ]
}

/// Builds `task(base)`: a doubly-nested loop mixing affine address math,
/// gathers and stores — the kind of code every transform must preserve.
fn build(ops: &[Op]) -> Module {
    let n = 32i64;
    let mut m = Module::new();
    let data_init: Vec<f64> = (0..n * n).map(|k| (k as f64) * 0.25 - 31.0).collect();
    let idx_init: Vec<i64> = (0..n).map(|k| (k * 17 + 3) % n).collect();
    let data = m.add_global_init(dae_repro::ir::GlobalData {
        name: "data".into(),
        elem_ty: Type::F64,
        len: (n * n) as u64,
        init: dae_repro::ir::GlobalInit::Words(data_init.iter().map(|v| v.to_bits()).collect()),
    });
    let idx = m.add_global_init(dae_repro::ir::GlobalData {
        name: "idx".into(),
        elem_ty: Type::I64,
        len: n as u64,
        init: dae_repro::ir::GlobalInit::Words(idx_init.iter().map(|v| *v as u64).collect()),
    });
    let out = m.add_global("out", Type::F64, (n * n) as u64);

    let mut b = FunctionBuilder::new("task", vec![Type::I64], Type::Void);
    b.set_task();
    b.counted_loop(Value::i64(0), Value::i64(8), Value::i64(1), |b, i| {
        let gi = b.iadd(Value::Arg(0), i);
        b.counted_loop(Value::i64(0), Value::i64(8), Value::i64(1), |b, j| {
            let mut ints: Vec<Value> = vec![gi, j, Value::i64(5)];
            let mut floats: Vec<Value> = vec![Value::f64(0.5)];
            let arith = [BinOp::IAdd, BinOp::ISub, BinOp::IMul, BinOp::Xor];
            for o in ops {
                match o {
                    Op::Arith(k, a, c) => {
                        let x = ints[a % ints.len()];
                        let y = ints[c % ints.len()];
                        let v = b.binary(arith[*k as usize % arith.len()], x, y);
                        ints.push(v);
                    }
                    Op::MulByRow(a) => {
                        let x = ints[a % ints.len()];
                        let v = b.imul(x, n);
                        ints.push(v);
                    }
                    Op::Gather(a) => {
                        let x = ints[a % ints.len()];
                        let wrapped = b.and(x, 31i64);
                        let ia = b.elem_addr(Value::Global(idx), wrapped, Type::I64);
                        let iv = b.load(Type::I64, ia);
                        let da = b.elem_addr(Value::Global(data), iv, Type::F64);
                        let v = b.load(Type::F64, da);
                        floats.push(v);
                    }
                    Op::Accumulate(a) => {
                        let row = b.imul(gi, n);
                        let x = ints[a % ints.len()];
                        let wrapped = b.and(x, 31i64);
                        let cell = b.iadd(row, wrapped);
                        let da = b.elem_addr(Value::Global(data), cell, Type::F64);
                        let v = b.load(Type::F64, da);
                        let last = *floats.last().expect("nonempty");
                        floats.push(b.fadd(last, v));
                    }
                    Op::StoreAt(a) => {
                        let row = b.imul(gi, n);
                        let x = ints[a % ints.len()];
                        let wrapped = b.and(x, 31i64);
                        let cell = b.iadd(row, wrapped);
                        let oa = b.elem_addr(Value::Global(out), cell, Type::F64);
                        let val = *floats.last().expect("nonempty");
                        b.store(oa, val);
                    }
                }
            }
            // Unconditional observable effect so the body is never dead.
            let row = b.imul(gi, n);
            let cell = b.iadd(row, j);
            let oa = b.elem_addr(Value::Global(out), cell, Type::F64);
            let acc = *floats.last().expect("nonempty");
            let marker = b.cmp(CmpOp::Ge, *ints.last().expect("nonempty"), 0i64);
            let chosen = b.select(marker, acc, Value::f64(-1.0));
            b.store(oa, chosen);
        });
    });
    b.ret(None);
    m.add_function(b.finish());
    m
}

/// Runs the module's first task function (optionally preceded by an access
/// function) and returns the full memory image.
fn run_and_snapshot(m: &Module, access_first: bool) -> Vec<u64> {
    let hc = HierarchyConfig::default();
    let mut llc = SharedLlc::new(hc.llc);
    let mut core = CoreCaches::new(&hc);
    let mut machine = Machine::new(m);
    let task = m.func_by_name("task").expect("task");
    if access_first {
        if let Some(acc) = m.func_by_name("task__access") {
            let mut t = PhaseTrace::default();
            machine
                .run(acc, &[Val::I(4)], &mut CachePort { core: &mut core, llc: &mut llc }, &mut t)
                .expect("access ok");
        }
    }
    let mut t = PhaseTrace::default();
    machine
        .run(task, &[Val::I(4)], &mut CachePort { core: &mut core, llc: &mut llc }, &mut t)
        .expect("task ok");
    let mut words = Vec::new();
    for (g, data) in m.globals() {
        let base = machine.memory.global_addr(g);
        for k in 0..data.len {
            words.push(machine.memory.read_u64(base + k * 8));
        }
    }
    words
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `optimize` and `strength_reduce_and_clean` preserve program results.
    #[test]
    fn transforms_preserve_semantics(ops in proptest::collection::vec(op(), 1..12)) {
        let m = build(&ops);
        let baseline = run_and_snapshot(&m, false);

        let task_id = m.func_by_name("task").expect("task");
        for (label, transformed) in [
            ("optimize", optimize(m.func(task_id))),
            ("strength_reduce", strength_reduce_and_clean(m.func(task_id))),
        ] {
            let mut m2 = build(&ops);
            let t2 = m2.func_by_name("task").expect("task");
            *m2.func_mut(t2) = transformed.clone();
            dae_repro::ir::verify_module(&m2).unwrap();
            dae_repro::analysis::verify_ssa(m2.func(t2)).unwrap();
            let got = run_and_snapshot(&m2, false);
            prop_assert_eq!(&got, &baseline, "{} changed results", label);
        }
    }

    /// Whatever the compiler generates as an access phase, running it first
    /// never changes the task's results (prefetch purity).
    #[test]
    fn generated_access_is_pure(ops in proptest::collection::vec(op(), 1..12)) {
        let mut m = build(&ops);
        let task_id = m.func_by_name("task").expect("task");
        let opts = CompilerOptions { param_hints: vec![4], ..Default::default() };
        let baseline = run_and_snapshot(&m, false);
        if let Ok(g) = generate_access(&m, task_id, &opts) {
            dae_repro::analysis::verify_ssa(&g.func).unwrap();
            m.add_function(g.func);
            let with_access = run_and_snapshot(&m, true);
            prop_assert_eq!(with_access, baseline);
        }
        // A refusal is acceptable (the paper's safety conditions); silence
        // is only a failure if generation succeeded and changed results.
    }
}
