//! Invariants of the frequency policies across the whole policy matrix.

use dae_repro::ir::{FunctionBuilder, Module, Type, Value};
use dae_repro::power::{DvfsConfig, DvfsTable, FreqId};
use dae_repro::runtime::{run_workload, FreqPolicy, GovernorKind, RuntimeConfig, TaskInstance};
use dae_repro::sim::Val;

/// A mixed workload: one streaming (memory-leaning) and one spinning
/// (compute-bound) task type, with hand-built access phases.
fn mixed_module() -> (Module, Vec<TaskInstance>) {
    let mut m = Module::new();
    let a = m.add_global("a", Type::F64, 1 << 17);
    let out = m.add_global("out", Type::F64, 8);

    let mut b = FunctionBuilder::new("stream", vec![Type::I64], Type::Void);
    b.set_task();
    b.counted_loop(Value::i64(0), Value::i64(4096), Value::i64(1), |b, i| {
        let idx = b.iadd(Value::Arg(0), i);
        let p = b.elem_addr(Value::Global(a), idx, Type::F64);
        let v = b.load(Type::F64, p);
        let w = b.fadd(v, 1.0f64);
        b.store(p, w);
    });
    b.ret(None);
    let stream = m.add_function(b.finish());

    let mut b = FunctionBuilder::new("stream__access", vec![Type::I64], Type::Void);
    b.counted_loop(Value::i64(0), Value::i64(4096), Value::i64(8), |b, i| {
        let idx = b.iadd(Value::Arg(0), i);
        let p = b.elem_addr(Value::Global(a), idx, Type::F64);
        b.prefetch(p);
    });
    b.ret(None);
    let access = m.add_function(b.finish());

    let mut b = FunctionBuilder::new("spin", vec![Type::I64], Type::Void);
    b.set_task();
    let o = b.counted_loop_carried(
        Value::i64(0),
        Value::Arg(0),
        Value::i64(1),
        vec![Value::f64(1.0)],
        |b, _, c| vec![b.fmul(c[0], 1.0000001f64)],
    );
    let p = b.ptr_add(Value::Global(out), 0i64);
    b.store(p, o[0]);
    b.ret(None);
    let spin = m.add_function(b.finish());

    let mut tasks = Vec::new();
    for k in 0..16 {
        tasks.push(TaskInstance::decoupled(stream, access, vec![Val::I(k * 4096)]));
        tasks.push(TaskInstance::coupled(spin, vec![Val::I(8_000)]));
    }
    (m, tasks)
}

fn all_policies(table: &DvfsTable) -> Vec<(&'static str, FreqPolicy)> {
    vec![
        ("coupled-max", FreqPolicy::CoupledMax),
        ("coupled-min", FreqPolicy::CoupledFixed(table.min())),
        ("coupled-opt", FreqPolicy::CoupledOptimal),
        ("dae-minmax", FreqPolicy::DaeMinMax),
        ("dae-opt", FreqPolicy::DaeOptimal),
        ("dae-phases", FreqPolicy::DaePhases { access: table.min(), execute: FreqId(2) }),
        ("governed-heuristic", FreqPolicy::Governed(GovernorKind::Heuristic)),
        ("governed-bandit", FreqPolicy::Governed(GovernorKind::Bandit { seed: 42 })),
    ]
}

#[test]
fn every_policy_completes_and_accounts_time() {
    let (m, tasks) = mixed_module();
    let base = RuntimeConfig::paper_default();
    for (name, policy) in all_policies(&base.table) {
        let r = run_workload(&m, &tasks, &base.clone().with_policy(policy)).unwrap();
        assert_eq!(r.tasks, tasks.len(), "{name}");
        assert!(r.time_s > 0.0 && r.energy_j > 0.0, "{name}");
        // Core-time conservation: makespan*cores >= busy time components.
        let busy = r.breakdown.access_s + r.breakdown.execute_s + r.breakdown.overhead_s;
        assert!(
            busy <= r.time_s * base.cores as f64 + 1e-12,
            "{name}: busy {} > cores*makespan {}",
            busy,
            r.time_s * base.cores as f64
        );
        assert!((busy + r.breakdown.idle_s - r.time_s * base.cores as f64).abs() < 1e-9, "{name}");
        assert_eq!(r.governor.is_some(), matches!(policy, FreqPolicy::Governed(_)), "{name}");
    }
}

#[test]
fn optimal_edp_is_never_worse_than_fixed_choices() {
    // The Optimal-f policy optimises each task's EDP *locally* (§6.1). For
    // homogeneous tasks on one core, the local optimum is the global one:
    // total EDP = N²·(t·e per task), so optimal must beat every fixed level.
    let (m, tasks) = mixed_module();
    let streams: Vec<TaskInstance> = tasks
        .iter()
        .filter(|t| t.access.is_some())
        .map(|t| TaskInstance::coupled(t.func, t.args.clone()))
        .collect();
    let mut base = RuntimeConfig::paper_default().with_dvfs(DvfsConfig::instant());
    base.cores = 1;
    let opt = run_workload(&m, &streams, &base.clone().with_policy(FreqPolicy::CoupledOptimal))
        .unwrap()
        .edp();
    for i in 0..base.table.len() {
        let fixed = run_workload(
            &m,
            &streams,
            &base.clone().with_policy(FreqPolicy::CoupledFixed(FreqId(i))),
        )
        .unwrap()
        .edp();
        assert!(opt <= fixed * 1.001, "optimal {opt} must not lose to fixed level {i} ({fixed})");
    }
}

#[test]
fn dae_policies_ignore_missing_access_phases() {
    // Tasks without access phases run coupled even under DAE policies.
    let (m, tasks) = mixed_module();
    let coupled_only: Vec<TaskInstance> =
        tasks.iter().filter(|t| t.access.is_none()).cloned().collect();
    let base = RuntimeConfig::paper_default();
    let r =
        run_workload(&m, &coupled_only, &base.clone().with_policy(FreqPolicy::DaeMinMax)).unwrap();
    assert_eq!(r.access_trace.instrs, 0);
    assert_eq!(r.breakdown.access_s, 0.0);
}

#[test]
fn coupled_time_is_monotone_in_frequency_for_compute_bound() {
    let mut m = Module::new();
    let out = m.add_global("out", Type::F64, 8);
    let mut b = FunctionBuilder::new("spin", vec![Type::I64], Type::Void);
    b.set_task();
    let o = b.counted_loop_carried(
        Value::i64(0),
        Value::Arg(0),
        Value::i64(1),
        vec![Value::f64(1.0)],
        |b, _, c| vec![b.fmul(c[0], 1.0000001f64)],
    );
    let p = b.ptr_add(Value::Global(out), 0i64);
    b.store(p, o[0]);
    b.ret(None);
    let f = m.add_function(b.finish());
    let tasks = vec![TaskInstance::coupled(f, vec![Val::I(20_000)])];
    let base = RuntimeConfig::paper_default();
    let mut last = f64::INFINITY;
    for i in 0..base.table.len() {
        let r = run_workload(
            &m,
            &tasks,
            &base.clone().with_policy(FreqPolicy::CoupledFixed(FreqId(i))),
        )
        .unwrap();
        assert!(r.time_s < last, "time must fall as frequency rises");
        last = r.time_s;
    }
}

#[test]
fn energy_rises_with_frequency_for_memory_bound() {
    // For a bandwidth-bound stream, time barely changes with f, so energy
    // (and EDP) should be worse at fmax than at fmin.
    let (m, tasks) = mixed_module();
    let streams: Vec<TaskInstance> = tasks.iter().filter(|t| t.access.is_some()).cloned().collect();
    // Strip the access phases: plain coupled streaming.
    let coupled: Vec<TaskInstance> =
        streams.iter().map(|t| TaskInstance::coupled(t.func, t.args.clone())).collect();
    let base = RuntimeConfig::paper_default();
    let lo = run_workload(
        &m,
        &coupled,
        &base.clone().with_policy(FreqPolicy::CoupledFixed(base.table.min())),
    )
    .unwrap();
    let hi = run_workload(&m, &coupled, &base).unwrap();
    assert!(hi.energy_j > lo.energy_j, "hi {} vs lo {}", hi.energy_j, lo.energy_j);
    assert!(lo.time_s < hi.time_s * 1.6, "stream should be fairly flat in f");
}
