//! Differential testing of the two execution engines: the tree-walking
//! interpreter and the pre-lowered bytecode VM must be **observationally
//! identical** — same results, same `PhaseTrace` (per-level hits/misses,
//! `DemandMiss` dependence chains, instruction counts), same `InterpError`s
//! at the same step counts, byte-identical `RunReport` JSON — on the
//! benchmark corpus, on randomly generated programs, and on every graceful
//! failure path (traps, type mismatches, step-limit boundaries, call-depth
//! exhaustion).
//!
//! Driver-level determinism across `--jobs` counts and artifact-cache
//! states is covered by `driver_equivalence.rs`; this suite adds the
//! machine-level cache states (cold vs warm simulated caches, cold vs
//! reused bytecode) on top.

use dae_repro::ir::{BinOp, CmpOp, FuncId, FunctionBuilder, Module, Type, UnOp, Value};
use dae_repro::mem::{CoreCaches, HierarchyConfig, SharedLlc};
use dae_repro::runtime::{run_workload, FreqPolicy, RuntimeConfig};
use dae_repro::sim::{BranchProfile, CachePort, EngineKind, InterpError, Machine, PhaseTrace, Val};
use dae_repro::workloads::{self, Variant};
use proptest::prelude::*;

/// Everything observable from one interpreter run.
#[derive(Debug, PartialEq)]
struct Observation {
    result: Result<Option<Val>, InterpError>,
    trace: PhaseTrace,
    profile: Vec<(u64, u64)>,
    memory: Vec<u64>,
}

/// Runs `func` on a fresh machine + cache hierarchy under `engine`,
/// `runs` times back to back (later runs see warm simulated caches and,
/// on the bytecode engine, the cached lowered program).
fn observe(
    m: &Module,
    func: FuncId,
    args: &[Val],
    engine: EngineKind,
    max_steps: u64,
    max_call_depth: usize,
    runs: usize,
) -> Vec<Observation> {
    let hc = HierarchyConfig::default();
    let mut llc = SharedLlc::new(hc.llc);
    let mut core = CoreCaches::new(&hc);
    let mut machine = Machine::new(m);
    machine.config.engine = engine;
    machine.config.max_steps = max_steps;
    machine.config.max_call_depth = max_call_depth;
    (0..runs)
        .map(|_| {
            let mut trace = PhaseTrace::default();
            let mut profile = BranchProfile::default();
            let result = machine.run_with_profile(
                func,
                args,
                &mut CachePort { core: &mut core, llc: &mut llc },
                &mut trace,
                &mut profile,
            );
            let mut memory = Vec::new();
            for (g, data) in m.globals() {
                let base = machine.memory.global_addr(g);
                for k in 0..data.len {
                    memory.push(machine.memory.read_u64(base + k * 8));
                }
            }
            Observation { result, trace, profile: profile.counts, memory }
        })
        .collect()
}

/// Asserts tree ≡ bytecode for `func` at the given limits, over `runs`
/// back-to-back executions (cold first run, warm later ones), and returns
/// the agreed observations.
fn assert_equivalent(
    m: &Module,
    func: FuncId,
    args: &[Val],
    max_steps: u64,
    max_call_depth: usize,
    runs: usize,
) -> Vec<Observation> {
    let tree = observe(m, func, args, EngineKind::Tree, max_steps, max_call_depth, runs);
    let vm = observe(m, func, args, EngineKind::Bytecode, max_steps, max_call_depth, runs);
    assert_eq!(tree, vm, "engines diverged (max_steps={max_steps})");
    vm
}

/// Dynamic steps consumed by a completed run: every instruction bumps
/// exactly one of `instrs`/`addr_ops`, terminators bump `instrs`.
fn steps_of(o: &Observation) -> u64 {
    o.trace.instrs + o.trace.addr_ops
}

fn first_func(m: &Module, name: &str) -> FuncId {
    m.func_by_name(name).expect("function exists")
}

// ---------------------------------------------------------------------------
// Corpus: the seven paper benchmarks, whole-workload report equality.
// ---------------------------------------------------------------------------

#[test]
fn corpus_run_reports_are_byte_identical() {
    for mut w in workloads::all_benchmarks_small() {
        w.compile_auto();
        for (variant, policy) in [
            (Variant::Cae, FreqPolicy::CoupledMax),
            (Variant::AutoDae, FreqPolicy::DaeOptimal),
            (Variant::ManualDae, FreqPolicy::DaeMinMax),
        ] {
            let tasks = w.tasks(variant);
            let base = RuntimeConfig::paper_default().with_policy(policy);
            let tree = run_workload(&w.module, &tasks, &base.clone().with_engine(EngineKind::Tree))
                .expect("tree run");
            let vm = run_workload(&w.module, &tasks, &base.with_engine(EngineKind::Bytecode))
                .expect("bytecode run");
            assert_eq!(
                tree.to_json().to_json_string(),
                vm.to_json().to_json_string(),
                "{} {variant:?}: RunReport JSON diverged",
                w.name
            );
        }
    }
}

#[test]
fn corpus_traces_and_profiles_match_cold_and_warm() {
    for mut w in workloads::all_benchmarks_small() {
        w.compile_auto();
        let tasks = w.tasks(Variant::Cae);
        let t = &tasks[0];
        // Two back-to-back runs: run 1 is cold (lowering happens, caches
        // empty), run 2 reuses the warmed caches and the cached bytecode.
        let obs = assert_equivalent(&w.module, t.func, &t.args, u64::MAX, 64, 2);
        assert!(steps_of(&obs[0]) > 0, "{} ran no instructions", w.name);
    }
}

// ---------------------------------------------------------------------------
// Step-limit boundaries and call-depth traps.
// ---------------------------------------------------------------------------

fn loop_sum_module() -> Module {
    let mut m = Module::new();
    let mut b = FunctionBuilder::new("sum", vec![Type::I64], Type::I64);
    let out = b.counted_loop_carried(
        Value::i64(0),
        Value::Arg(0),
        Value::i64(1),
        vec![Value::i64(0)],
        |b, i, c| vec![b.iadd(c[0], i)],
    );
    b.ret(Some(out[0]));
    m.add_function(b.finish());
    m
}

#[test]
fn step_limit_boundaries_are_exact() {
    let m = loop_sum_module();
    let f = first_func(&m, "sum");
    let args = [Val::I(25)];
    let full = assert_equivalent(&m, f, &args, u64::MAX, 64, 1);
    assert_eq!(full[0].result, Ok(Some(Val::I(300))));
    let total = steps_of(&full[0]);
    // Sweep the budget through every interesting region, including both
    // sides of the exact boundary: identical Result AND identical partial
    // trace at every point.
    for max_steps in [0, 1, 2, total / 2, total - 1, total, total + 1] {
        let obs = assert_equivalent(&m, f, &args, max_steps, 64, 1);
        if max_steps < total {
            assert_eq!(obs[0].result, Err(InterpError::StepLimit), "budget {max_steps}");
            assert_eq!(steps_of(&obs[0]), max_steps, "a failing step is not counted");
        } else {
            assert_eq!(obs[0].result, Ok(Some(Val::I(300))), "budget {max_steps}");
        }
    }
}

#[test]
fn call_depth_traps_identically() {
    // rec(n) { rec(n - 1) } — self-call by index (ids are dense, so the
    // first function added is fn0); unconditional, so only the depth
    // budget can stop it.
    let mut m = Module::new();
    let mut b = FunctionBuilder::new("rec", vec![Type::I64], Type::I64);
    let nm1 = b.isub(Value::Arg(0), 1i64);
    let sub = b.call(FuncId(0), vec![nm1], Type::I64).expect("i64 callee");
    let inc = b.iadd(sub, 1i64);
    b.ret(Some(inc));
    let installed = m.add_function(b.finish());
    assert_eq!(installed, FuncId(0));
    let f = first_func(&m, "rec");
    for depth in [0usize, 1, 3, 7] {
        let obs = assert_equivalent(&m, f, &[Val::I(100)], u64::MAX, depth, 1);
        match &obs[0].result {
            Err(InterpError::Trap(msg)) => assert_eq!(msg, "call depth exceeded"),
            other => panic!("expected depth trap at {depth}, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Graceful-failure parity: every InterpError variant, same error, same
// partial trace.
// ---------------------------------------------------------------------------

#[test]
fn error_paths_are_identical() {
    // Integer division by zero.
    let mut m = Module::new();
    let mut b = FunctionBuilder::new("div", vec![Type::I64], Type::I64);
    let q = b.idiv(7i64, Value::Arg(0));
    b.ret(Some(q));
    m.add_function(b.finish());
    let obs = assert_equivalent(&m, first_func(&m, "div"), &[Val::I(0)], u64::MAX, 64, 1);
    assert!(matches!(&obs[0].result, Err(InterpError::Trap(msg)) if msg.contains("division")));

    // Remainder by zero.
    let mut m = Module::new();
    let mut b = FunctionBuilder::new("rem", vec![Type::I64], Type::I64);
    let q = b.binary(BinOp::IRem, 7i64, Value::Arg(0));
    b.ret(Some(q));
    m.add_function(b.finish());
    let obs = assert_equivalent(&m, first_func(&m, "rem"), &[Val::I(0)], u64::MAX, 64, 1);
    assert!(matches!(&obs[0].result, Err(InterpError::Trap(msg)) if msg.contains("remainder")));

    // Type mismatch (iadd over a float), and its operand-order dependence.
    let mut m = Module::new();
    let mut b = FunctionBuilder::new("bad", vec![], Type::I64);
    let v = b.iadd(Value::f64(1.5), Value::i64(2));
    b.ret(Some(v));
    m.add_function(b.finish());
    let obs = assert_equivalent(&m, first_func(&m, "bad"), &[], u64::MAX, 64, 1);
    assert_eq!(obs[0].result, Err(InterpError::TypeMismatch { expected: "i64", got: "f64" }));

    // Void load.
    let mut m = Module::new();
    let g = m.add_global("a", Type::F64, 1);
    let mut b = FunctionBuilder::new("voidload", vec![], Type::Void);
    let addr = b.elem_addr(Value::Global(g), Value::i64(0), Type::F64);
    let _ = b.load(Type::Void, addr);
    b.ret(None);
    m.add_function(b.finish());
    let obs = assert_equivalent(&m, first_func(&m, "voidload"), &[], u64::MAX, 64, 1);
    assert_eq!(obs[0].result, Err(InterpError::LoadVoid));

    // Arity trap, same message.
    let m = loop_sum_module();
    let obs = observe(&m, first_func(&m, "sum"), &[], EngineKind::Tree, u64::MAX, 64, 1);
    let vm = observe(&m, first_func(&m, "sum"), &[], EngineKind::Bytecode, u64::MAX, 64, 1);
    assert_eq!(obs, vm);
    match &vm[0].result {
        Err(InterpError::Trap(msg)) => {
            assert_eq!(msg, "function `sum` expects 1 args, got 0");
        }
        other => panic!("expected arity trap, got {other:?}"),
    }

    // Out-of-range prefetches are counted then dropped by both engines.
    let mut m = Module::new();
    let _g = m.add_global("a", Type::F64, 8);
    let mut b = FunctionBuilder::new("p", vec![], Type::Void);
    let wild = b.unary(UnOp::IntToPtr, Value::i64(0x7fff_ffff));
    b.prefetch(wild);
    b.ret(None);
    m.add_function(b.finish());
    let obs = assert_equivalent(&m, first_func(&m, "p"), &[], u64::MAX, 64, 1);
    assert_eq!(obs[0].trace.prefetches, 1);
    assert_eq!(obs[0].trace.prefetch_hits.iter().sum::<u64>(), 0);
}

// ---------------------------------------------------------------------------
// Randomly generated programs (proptest): results, traces, branch
// profiles, memory images and exact step-limit boundaries.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum GenOp {
    /// Integer arithmetic (add/sub/mul/xor/and — never traps).
    IArith(u8, usize, usize),
    /// Float arithmetic (add/mul/div/min — div exercises extra-latency).
    FArith(u8, usize, usize),
    /// sqrt of an accumulated float.
    Sqrt(usize),
    /// Data-dependent select between two floats.
    Select(usize, usize, usize),
    /// Indirect gather: idx[x & 31] then data[that] (dependent misses).
    Gather(usize),
    /// Store the running float at out[x & 31 in the row].
    StoreAt(usize),
    /// Software prefetch of data[x & 31] (in range) or a wild address.
    Prefetch(usize, bool),
    /// Call the helper `twice(x)` (exercises frames + arg passing).
    Call(usize),
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (0u8..5, 0usize..32, 0usize..32).prop_map(|(o, a, b)| GenOp::IArith(o, a, b)),
        (0u8..4, 0usize..32, 0usize..32).prop_map(|(o, a, b)| GenOp::FArith(o, a, b)),
        (0usize..32).prop_map(GenOp::Sqrt),
        (0usize..32, 0usize..32, 0usize..32).prop_map(|(c, a, b)| GenOp::Select(c, a, b)),
        (0usize..32).prop_map(GenOp::Gather),
        (0usize..32).prop_map(GenOp::StoreAt),
        (0usize..32, any::<bool>()).prop_map(|(a, w)| GenOp::Prefetch(a, w)),
        (0usize..32).prop_map(GenOp::Call),
    ]
}

/// Builds `task(base)` plus a `twice` helper: a nested loop over a 32×32
/// grid mixing every instruction family both engines implement.
fn build_random(ops: &[GenOp]) -> Module {
    let n = 32i64;
    let mut m = Module::new();
    let data_init: Vec<f64> = (0..n * n).map(|k| (k as f64) * 0.125 + 1.0).collect();
    let idx_init: Vec<i64> = (0..n).map(|k| (k * 13 + 5) % n).collect();
    let data = workloads::common::init_f64_global(&mut m, "data", &data_init);
    let idx = workloads::common::init_i64_global(&mut m, "idx", &idx_init);
    let out = m.add_global("out", Type::F64, (n * n) as u64);

    let mut hb = FunctionBuilder::new("twice", vec![Type::I64], Type::I64);
    let d = hb.iadd(Value::Arg(0), Value::Arg(0));
    hb.ret(Some(d));
    let helper = m.add_function(hb.finish());

    let mut b = FunctionBuilder::new("task", vec![Type::I64], Type::Void);
    b.counted_loop(Value::i64(0), Value::i64(6), Value::i64(1), |b, i| {
        let gi = b.iadd(Value::Arg(0), i);
        b.counted_loop(Value::i64(0), Value::i64(6), Value::i64(1), |b, j| {
            let mut ints: Vec<Value> = vec![gi, j, Value::i64(9)];
            let mut floats: Vec<Value> = vec![Value::f64(1.5)];
            let iops = [BinOp::IAdd, BinOp::ISub, BinOp::IMul, BinOp::Xor, BinOp::And];
            let fops = [BinOp::FAdd, BinOp::FMul, BinOp::FDiv, BinOp::FMin];
            for o in ops {
                match o {
                    GenOp::IArith(k, a, c) => {
                        let v = b.binary(
                            iops[*k as usize % iops.len()],
                            ints[a % ints.len()],
                            ints[c % ints.len()],
                        );
                        ints.push(v);
                    }
                    GenOp::FArith(k, a, c) => {
                        let v = b.binary(
                            fops[*k as usize % fops.len()],
                            floats[a % floats.len()],
                            floats[c % floats.len()],
                        );
                        floats.push(v);
                    }
                    GenOp::Sqrt(a) => {
                        // Squared first so the operand is never negative
                        // (NaN-free keeps FMin total-ordered).
                        let x = floats[a % floats.len()];
                        let sq = b.fmul(x, x);
                        floats.push(b.unary(UnOp::FSqrt, sq));
                    }
                    GenOp::Select(c, x, y) => {
                        let cond = b.cmp(CmpOp::Gt, ints[c % ints.len()], 3i64);
                        let v = b.select(cond, floats[x % floats.len()], floats[y % floats.len()]);
                        floats.push(v);
                    }
                    GenOp::Gather(a) => {
                        let wrapped = b.and(ints[a % ints.len()], 31i64);
                        let ia = b.elem_addr(Value::Global(idx), wrapped, Type::I64);
                        let iv = b.load(Type::I64, ia);
                        let da = b.elem_addr(Value::Global(data), iv, Type::F64);
                        floats.push(b.load(Type::F64, da));
                    }
                    GenOp::StoreAt(a) => {
                        let row = b.imul(gi, n);
                        let wrapped = b.and(ints[a % ints.len()], 31i64);
                        let cell = b.iadd(row, wrapped);
                        let oa = b.elem_addr(Value::Global(out), cell, Type::F64);
                        b.store(oa, *floats.last().expect("nonempty"));
                    }
                    GenOp::Prefetch(a, wild) => {
                        if *wild {
                            let p = b.unary(UnOp::IntToPtr, Value::i64(0x7fff_0000));
                            b.prefetch(p);
                        } else {
                            let wrapped = b.and(ints[a % ints.len()], 31i64);
                            let da = b.elem_addr(Value::Global(data), wrapped, Type::F64);
                            b.prefetch(da);
                        }
                    }
                    GenOp::Call(a) => {
                        let v = b
                            .call(helper, vec![ints[a % ints.len()]], Type::I64)
                            .expect("twice returns i64");
                        ints.push(v);
                    }
                }
            }
            // Unconditional observable effect + a data-dependent branch so
            // the profile is never empty.
            let row = b.imul(gi, n);
            let cell = b.iadd(row, j);
            let oa = b.elem_addr(Value::Global(out), cell, Type::F64);
            let acc = *floats.last().expect("nonempty");
            b.store(oa, acc);
            let hot = b.cmp(CmpOp::Ge, *ints.last().expect("nonempty"), 0i64);
            b.if_then(hot, |b| {
                let da = b.elem_addr(Value::Global(data), j, Type::F64);
                let _ = b.load(Type::F64, da);
            });
        });
    });
    b.ret(None);
    m.add_function(b.finish());
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random programs: identical result, trace, branch profile and final
    /// memory image — cold and warm — plus the exact step-limit boundary.
    #[test]
    fn random_programs_are_engine_invariant(ops in proptest::collection::vec(gen_op(), 1..14)) {
        let m = build_random(&ops);
        dae_repro::ir::verify_module(&m).expect("generated module verifies");
        let f = first_func(&m, "task");
        let args = [Val::I(3)];
        let full = {
            let tree = observe(&m, f, &args, EngineKind::Tree, u64::MAX, 64, 2);
            let vm = observe(&m, f, &args, EngineKind::Bytecode, u64::MAX, 64, 2);
            prop_assert_eq!(&tree, &vm, "full run diverged");
            vm
        };
        prop_assert!(full[0].result.is_ok());
        let total = steps_of(&full[0]);
        // One step short of completion: both engines report StepLimit with
        // identical partial traces; at the boundary both complete.
        for (budget, completes) in [(total - 1, false), (total, true)] {
            let tree = observe(&m, f, &args, EngineKind::Tree, budget, 64, 1);
            let vm = observe(&m, f, &args, EngineKind::Bytecode, budget, 64, 1);
            prop_assert_eq!(&tree, &vm, "budget {} diverged", budget);
            if completes {
                prop_assert!(vm[0].result.is_ok());
            } else {
                prop_assert_eq!(&vm[0].result, &Err(InterpError::StepLimit));
                prop_assert_eq!(steps_of(&vm[0]), budget);
            }
        }
    }
}
