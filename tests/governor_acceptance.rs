//! Acceptance criteria of the online DVFS governor (ISSUE 3).
//!
//! Two end-to-end claims, asserted here and recorded by the
//! `governor` bench into `BENCH_governor_*.json`:
//!
//! 1. after a bounded warm-up, the EDP bandit is **within 10% of the
//!    exhaustive `DaeOptimal` oracle** on the paper benchmarks, and
//! 2. the miss-ratio heuristic **beats `DaeMinMax`** on workloads of mixed
//!    boundedness, where min/max's fixed execute-at-fmax choice wastes
//!    energy on memory-bound task classes.

use dae_repro::governor::GovernorKind;
use dae_repro::ir::{FunctionBuilder, Module, Type, Value};
use dae_repro::runtime::{
    run_workload, run_workload_governed, FreqPolicy, RuntimeConfig, TaskInstance,
};
use dae_repro::sim::Val;
use dae_repro::trace::NullSink;
use dae_repro::workloads::{all_benchmarks_small, Variant};

/// Warm-up passes before the measured run. The bandit must sweep 6 arms
/// per phase per class, so convergence needs a bounded but non-trivial
/// number of observations per class.
const WARMUP_RUNS: usize = 40;

#[test]
fn bandit_reaches_within_10_percent_of_the_oracle_edp() {
    for w in all_benchmarks_small() {
        let tasks = w.tasks(Variant::ManualDae);
        let cfg = RuntimeConfig::paper_default();

        let oracle =
            run_workload(&w.module, &tasks, &cfg.clone().with_policy(FreqPolicy::DaeOptimal))
                .unwrap()
                .edp();

        // One governor instance across runs: the warm-up is explicit and
        // bounded, exactly how a long-running runtime would amortise it.
        let mut gov = GovernorKind::Bandit { seed: 0xace }.build(&cfg.table);
        for _ in 0..WARMUP_RUNS {
            run_workload_governed(&w.module, &tasks, &cfg, gov.as_mut(), &mut NullSink).unwrap();
        }
        let governed = run_workload_governed(&w.module, &tasks, &cfg, gov.as_mut(), &mut NullSink)
            .unwrap()
            .edp();

        println!(
            "{}: bandit {governed:.3e} vs oracle {oracle:.3e} ({:+.1}%)",
            w.name,
            (governed / oracle - 1.0) * 100.0
        );
        assert!(
            governed <= oracle * 1.10,
            "{}: warmed-up bandit EDP {governed:.3e} not within 10% of oracle {oracle:.3e} \
             ({:+.1}%)",
            w.name,
            (governed / oracle - 1.0) * 100.0
        );
    }
}

/// Mixed-boundedness workload: decoupled compute-leaning stream tasks plus
/// *coupled* memory-bound scan tasks. `DaeMinMax` runs every execute phase
/// (and every coupled task) at fmax; the heuristic notices the scans are
/// memory-bound and clocks them down.
fn mixed_boundedness() -> (Module, Vec<TaskInstance>) {
    let mut m = Module::new();
    let a = m.add_global("a", Type::F64, 1 << 17);
    let big = m.add_global("big", Type::F64, 1 << 21);

    let mut b = FunctionBuilder::new("stream", vec![Type::I64], Type::Void);
    b.set_task();
    b.counted_loop(Value::i64(0), Value::i64(2048), Value::i64(1), |b, i| {
        let idx = b.iadd(Value::Arg(0), i);
        let p = b.elem_addr(Value::Global(a), idx, Type::F64);
        let v = b.load(Type::F64, p);
        let w = b.fmul(v, 1.0000001f64);
        let w = b.fadd(w, 0.5f64);
        b.store(p, w);
    });
    b.ret(None);
    let stream = m.add_function(b.finish());

    let mut b = FunctionBuilder::new("stream__access", vec![Type::I64], Type::Void);
    b.counted_loop(Value::i64(0), Value::i64(2048), Value::i64(8), |b, i| {
        let idx = b.iadd(Value::Arg(0), i);
        let p = b.elem_addr(Value::Global(a), idx, Type::F64);
        b.prefetch(p);
    });
    b.ret(None);
    let access = m.add_function(b.finish());

    // A strided scan over a large array: almost every load misses, and no
    // access phase hides that — the memory-bound class.
    let mut b = FunctionBuilder::new("scan", vec![Type::I64], Type::Void);
    b.set_task();
    b.counted_loop(Value::i64(0), Value::i64(2048), Value::i64(1), |b, i| {
        let stride = b.imul(i, Value::i64(128));
        let idx = b.iadd(Value::Arg(0), stride);
        let p = b.elem_addr(Value::Global(big), idx, Type::F64);
        let v = b.load(Type::F64, p);
        let w = b.fadd(v, 1.0f64);
        b.store(p, w);
    });
    b.ret(None);
    let scan = m.add_function(b.finish());

    let mut tasks = Vec::new();
    for k in 0..12i64 {
        tasks.push(TaskInstance::decoupled(stream, access, vec![Val::I(k * 2048)]));
        tasks.push(TaskInstance::coupled(scan, vec![Val::I((k % 8) * 262144)]));
    }
    (m, tasks)
}

#[test]
fn heuristic_beats_dae_minmax_on_mixed_boundedness() {
    let (m, tasks) = mixed_boundedness();
    let cfg = RuntimeConfig::paper_default();

    let minmax =
        run_workload(&m, &tasks, &cfg.clone().with_policy(FreqPolicy::DaeMinMax)).unwrap().edp();

    let mut gov = GovernorKind::Heuristic.build(&cfg.table);
    for _ in 0..3 {
        run_workload_governed(&m, &tasks, &cfg, gov.as_mut(), &mut NullSink).unwrap();
    }
    let governed =
        run_workload_governed(&m, &tasks, &cfg, gov.as_mut(), &mut NullSink).unwrap().edp();

    assert!(
        governed < minmax,
        "heuristic EDP {governed:.3e} should beat DaeMinMax {minmax:.3e} \
         ({:+.1}%)",
        (governed / minmax - 1.0) * 100.0
    );
}
