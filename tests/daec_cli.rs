//! Integration tests of the `daec` command-line driver.

use std::process::Command;

fn daec(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_daec"))
        .args(args)
        .output()
        .expect("daec runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn example(name: &str) -> String {
    format!("{}/examples/ir/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn transforms_and_prints_module() {
    let (ok, stdout, stderr) = daec(&[&example("stream.dae")]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("task fn scale_chunk"), "{stdout}");
    assert!(stdout.contains("fn scale_chunk__access"), "{stdout}");
    assert!(stdout.contains("prefetch"), "{stdout}");
}

#[test]
fn report_mode_classifies_strategies() {
    let (ok, stdout, _) = daec(&[&example("stream.dae"), "--report"]);
    assert!(ok);
    assert!(stdout.contains("polyhedral"), "{stdout}");
    let (ok, stdout, _) = daec(&[&example("gather.dae"), "--report"]);
    assert!(ok);
    assert!(stdout.contains("skeleton"), "{stdout}");
}

#[test]
fn run_mode_reports_dae_benefit() {
    let (ok, stdout, _) = daec(&[&example("stream.dae"), "--report", "--run"]);
    assert!(ok);
    assert!(stdout.contains("CAE@fmax"), "{stdout}");
    assert!(stdout.contains("DAE opt-f"), "{stdout}");
    assert!(stdout.contains("EDP"), "{stdout}");
}

#[test]
fn no_polyhedral_flag_forces_skeleton() {
    let (ok, stdout, _) = daec(&[&example("stream.dae"), "--report", "--no-polyhedral"]);
    assert!(ok);
    assert!(stdout.contains("skeleton"), "{stdout}");
    assert!(!stdout.contains("polyhedral"), "{stdout}");
}

#[test]
fn missing_file_fails_cleanly() {
    let (ok, _, stderr) = daec(&["/nonexistent/nope.dae"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn bad_arguments_fail_cleanly() {
    let (ok, _, stderr) = daec(&["--frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown argument"), "{stderr}");
    let (ok, _, stderr) = daec(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn parse_errors_carry_line_numbers() {
    let dir = std::env::temp_dir().join("daec_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.dae");
    std::fs::write(&bad, "fn broken() {\nbb0:\n  v0: i64 = frobnicate 1, 2\n  ret\n}\n").unwrap();
    let (ok, _, stderr) = daec(&[bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("line 3"), "{stderr}");
}
