//! Integration tests of the `daec` command-line driver.

use dae_repro::trace::json::{parse, JsonValue};
use std::process::Command;

fn daec(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_daec")).args(args).output().expect("daec runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn example(name: &str) -> String {
    format!("{}/examples/ir/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn transforms_and_prints_module() {
    let (ok, stdout, stderr) = daec(&[&example("stream.dae")]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("task fn scale_chunk"), "{stdout}");
    assert!(stdout.contains("fn scale_chunk__access"), "{stdout}");
    assert!(stdout.contains("prefetch"), "{stdout}");
}

#[test]
fn report_mode_classifies_strategies() {
    let (ok, stdout, _) = daec(&[&example("stream.dae"), "--report"]);
    assert!(ok);
    assert!(stdout.contains("polyhedral"), "{stdout}");
    let (ok, stdout, _) = daec(&[&example("gather.dae"), "--report"]);
    assert!(ok);
    assert!(stdout.contains("skeleton"), "{stdout}");
}

#[test]
fn run_mode_reports_dae_benefit() {
    let (ok, stdout, _) = daec(&[&example("stream.dae"), "--report", "--run"]);
    assert!(ok);
    assert!(stdout.contains("CAE@fmax"), "{stdout}");
    assert!(stdout.contains("DAE dae-optimal"), "{stdout}");
    assert!(stdout.contains("EDP"), "{stdout}");
}

#[test]
fn policy_help_lists_every_spec() {
    let (ok, stdout, _) = daec(&["--policy", "help"]);
    assert!(ok, "--policy help succeeds without a module file");
    for spec in
        ["coupled-max", "coupled-fixed", "coupled-optimal", "dae-minmax", "dae-optimal", "governed"]
    {
        assert!(stdout.contains(spec), "help misses `{spec}`: {stdout}");
    }
}

#[test]
fn run_mode_accepts_governed_policy() {
    let (ok, stdout, stderr) =
        daec(&[&example("stream.dae"), "--report", "--run", "--policy", "governed:bandit:7"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("DAE governed:bandit:7"), "{stdout}");
    assert!(stdout.contains("EDP"), "{stdout}");
}

#[test]
fn run_mode_snaps_coupled_fixed_to_the_table() {
    let (ok, stdout, stderr) =
        daec(&[&example("stream.dae"), "--run", "--policy", "coupled-fixed:2.3"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("DAE coupled-fixed:2.4"), "2.3 GHz snaps to 2.4: {stdout}");
}

#[test]
fn bad_policy_fails_cleanly() {
    let (ok, _, stderr) = daec(&[&example("stream.dae"), "--run", "--policy", "warp-speed"]);
    assert!(!ok);
    assert!(stderr.contains("unknown policy"), "{stderr}");
}

#[test]
fn trace_out_records_the_selected_policy_and_governor() {
    let dir = std::env::temp_dir().join("daec_cli_trace_governed");
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("g.json");
    let (ok, _, stderr) = daec(&[
        &example("stream.dae"),
        "--trace-out",
        out.to_str().unwrap(),
        "--trace-format",
        "summary",
        "--policy",
        "governed",
    ]);
    assert!(ok, "{stderr}");
    let v = parse(&std::fs::read_to_string(&out).unwrap()).expect("valid JSON");
    assert_eq!(v.get("policy").unwrap().as_str(), Some("governed:heuristic"));
    assert!(v.get("governor_decisions").unwrap().as_f64().unwrap() > 0.0);
    let gov = v.get("report").unwrap().get("governor").expect("governed report section");
    assert_eq!(gov.get("governor").unwrap().as_str(), Some("heuristic"));
    assert!(!gov.get("classes").unwrap().as_arr().unwrap().is_empty());
}

#[test]
fn no_polyhedral_flag_forces_skeleton() {
    let (ok, stdout, _) = daec(&[&example("stream.dae"), "--report", "--no-polyhedral"]);
    assert!(ok);
    assert!(stdout.contains("skeleton"), "{stdout}");
    assert!(!stdout.contains("polyhedral"), "{stdout}");
}

#[test]
fn missing_file_fails_cleanly() {
    let (ok, _, stderr) = daec(&["/nonexistent/nope.dae"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn bad_arguments_fail_cleanly() {
    let (ok, _, stderr) = daec(&["--frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown argument"), "{stderr}");
    let (ok, _, stderr) = daec(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn trace_out_chrome_is_valid_and_reconciles_with_breakdown() {
    let dir = std::env::temp_dir().join("daec_cli_trace_chrome");
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("t.json");
    let (ok, stdout, stderr) = daec(&[
        &example("stream.dae"),
        "--trace-out",
        out.to_str().unwrap(),
        "--trace-format",
        "chrome",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("trace:"), "{stdout}");

    let v = parse(&std::fs::read_to_string(&out).unwrap()).expect("valid JSON");
    let events = v.get("traceEvents").unwrap().as_arr().unwrap();
    let cores = v.get("metadata").unwrap().get("cores").unwrap().as_f64().unwrap() as usize;
    assert_eq!(cores, 4);

    // One named lane per simulated core.
    let lanes: Vec<u64> = events
        .iter()
        .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("thread_name"))
        .map(|e| e.get("tid").unwrap().as_f64().unwrap() as u64)
        .collect();
    assert_eq!(lanes, (0..cores as u64).collect::<Vec<_>>());

    // Complete spans, grouped per lane: no overlap within a lane.
    let spans: Vec<(&JsonValue, u64, f64, f64)> = events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
        .map(|e| {
            (
                e,
                e.get("tid").unwrap().as_f64().unwrap() as u64,
                e.get("ts").unwrap().as_f64().unwrap(),
                e.get("dur").unwrap().as_f64().unwrap(),
            )
        })
        .collect();
    assert!(!spans.is_empty());
    for lane in 0..cores as u64 {
        let mut mine: Vec<(f64, f64)> =
            spans.iter().filter(|s| s.1 == lane).map(|s| (s.2, s.2 + s.3)).collect();
        mine.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in mine.windows(2) {
            assert!(w[1].0 >= w[0].1 - 1e-6, "lane {lane} overlap: {w:?}");
        }
    }

    // Per-category span totals reconcile with the embedded RunReport
    // breakdown to within 1e-9 s (ts/dur are microseconds).
    let breakdown = v.get("metadata").unwrap().get("report").unwrap().get("breakdown").unwrap();
    let total_us = |cats: &[&str]| -> f64 {
        spans
            .iter()
            .filter(|s| cats.contains(&s.0.get("cat").unwrap().as_str().unwrap()))
            .map(|s| s.3)
            .sum()
    };
    let field = |k: &str| breakdown.get(k).unwrap().as_f64().unwrap() * 1e6;
    assert!((total_us(&["access"]) - field("access_s")).abs() < 1e-3);
    assert!((total_us(&["execute"]) - field("execute_s")).abs() < 1e-3);
    assert!((total_us(&["overhead", "dvfs"]) - field("overhead_s")).abs() < 1e-3);
    assert!((total_us(&["idle"]) - field("idle_s")).abs() < 1e-3);

    // Phase spans carry counter snapshots.
    let access_span = spans
        .iter()
        .find(|s| s.0.get("cat").unwrap().as_str() == Some("access"))
        .expect("stream.dae generates an access phase");
    let counters = access_span.0.get("args").unwrap().get("counters").unwrap();
    assert!(counters.get("prefetches").unwrap().as_f64().unwrap() > 0.0);
}

#[test]
fn trace_out_summary_matches_embedded_report() {
    let dir = std::env::temp_dir().join("daec_cli_trace_summary");
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("s.json");
    let (ok, _, stderr) = daec(&[
        &example("stream.dae"),
        "--trace-out",
        out.to_str().unwrap(),
        "--trace-format",
        "summary",
    ]);
    assert!(ok, "{stderr}");
    let v = parse(&std::fs::read_to_string(&out).unwrap()).expect("valid JSON");
    assert_eq!(v.get("schema").unwrap().as_str(), Some("dae-trace-summary/1"));
    assert_eq!(v.get("source").unwrap().as_str().map(|s| s.ends_with("stream.dae")), Some(true));
    let phase_s = v.get("phase_s").unwrap();
    let breakdown = v.get("report").unwrap().get("breakdown").unwrap();
    for (trace_key, report_key) in [
        ("access", "access_s"),
        ("execute", "execute_s"),
        ("overhead", "overhead_s"),
        ("idle", "idle_s"),
    ] {
        let a = phase_s.get(trace_key).unwrap().as_f64().unwrap();
        let b = breakdown.get(report_key).unwrap().as_f64().unwrap();
        assert!((a - b).abs() < 1e-9, "{trace_key}: {a} vs {b}");
    }
}

#[test]
fn bad_trace_format_fails_cleanly() {
    let (ok, _, stderr) =
        daec(&[&example("stream.dae"), "--trace-out", "/tmp/x.json", "--trace-format", "xml"]);
    assert!(!ok);
    assert!(stderr.contains("bad trace format"), "{stderr}");
}

#[test]
fn parse_errors_carry_line_numbers() {
    let dir = std::env::temp_dir().join("daec_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.dae");
    std::fs::write(&bad, "fn broken() {\nbb0:\n  v0: i64 = frobnicate 1, 2\n  ret\n}\n").unwrap();
    let (ok, _, stderr) = daec(&[bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("line 3"), "{stderr}");
}
