//! End-to-end tests of the `daed` daemon over real TCP.
//!
//! Each test spawns the actual binary on an ephemeral port (the daemon
//! prints `daed: listening on <addr>` as its first stdout line precisely
//! so harnesses like this can scrape it), drives it with real clients,
//! and checks the protocol's three load-bearing promises: responses are
//! byte-identical to a direct serial engine run at any worker count,
//! a drain finishes admitted work before refusing new work, and overload
//! sheds with `serve.overloaded` instead of buffering without bound.

use dae_repro::serve::proto::{ok_response_raw, parse_request};
use dae_repro::serve::{codes, Engine, EngineConfig};
use dae_repro::trace::json::{parse, JsonValue};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

/// A `daed` process on an ephemeral port, killed on drop so a failing
/// test cannot leak a daemon into the test host.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(extra_args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_daed"))
            .args(["--addr", "127.0.0.1:0"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .spawn()
            .expect("daed spawns");
        let stdout = child.stdout.as_mut().expect("stdout is piped");
        let mut first = String::new();
        BufReader::new(stdout).read_line(&mut first).expect("daed announces its address");
        let addr = first
            .trim()
            .strip_prefix("daed: listening on ")
            .unwrap_or_else(|| panic!("unexpected first line: {first:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn connect(&self) -> Client {
        let stream = TcpStream::connect(&self.addr).expect("connect to daed");
        stream.set_nodelay(true).unwrap();
        Client { writer: stream.try_clone().unwrap(), reader: BufReader::new(stream) }
    }

    /// Asks for a drain and waits for the process to exit cleanly.
    fn shutdown_and_wait(mut self) {
        let mut c = self.connect();
        let line = c.roundtrip(r#"{"id":"bye","op":"shutdown"}"#);
        assert!(line.contains("\"draining\":true"), "{line}");
        let status = self.child.wait().expect("daed exits");
        assert!(status.success(), "daed exited with {status}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn send(&mut self, frame: &str) {
        self.writer.write_all(frame.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
    }

    /// Reads one response line (without the newline); None on EOF.
    fn recv(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end_matches('\n').to_string()),
            Err(_) => None,
        }
    }

    fn roundtrip(&mut self, frame: &str) -> String {
        self.send(frame);
        self.recv().expect("server answered")
    }
}

const STREAM: &str = "\
global g0 a : 4096 x f64

task fn stream(arg0: i64) {
bb0:
  jump bb1(0)
bb1(bb1p0: i64):
  v0: bool = icmp lt bb1p0, 1024
  br v0, bb2, bb3
bb2:
  v1: i64 = iadd arg0, bb1p0
  v2: i64 = imul v1, 8
  v3: ptr = ptradd @g0, v2
  v4: f64 = load v3
  v5: f64 = fmul v4, 2.0
  store v3, v5
  v6: i64 = iadd bb1p0, 1
  jump bb1(v6)
bb3:
  ret
}
";

/// A family of distinct programs (distinct loop bounds) so a burst of
/// them defeats the response cache and actually exercises the queue.
fn program(bound: u64) -> String {
    STREAM.replace("1024", &bound.to_string())
}

fn work_frame(id: &str, op: &str, ir: &str) -> String {
    JsonValue::obj([
        ("id", id.into()),
        ("op", op.into()),
        ("ir", ir.into()),
        ("hints", JsonValue::Arr(vec![64u64.into()])),
    ])
    .to_json_string()
}

/// The reference answer: a fresh single-use engine handling the same
/// request inline, serialised exactly as the server would serialise it.
fn direct_reference(frame: &str) -> String {
    let req = parse_request(frame).expect("frame is valid");
    let engine = Engine::new(&EngineConfig::default());
    let result = engine.handle_raw(&req).expect("reference run succeeds");
    ok_response_raw(&req.id, &result)
}

#[test]
fn responses_are_byte_identical_across_worker_counts_and_cache_states() {
    let frames: Vec<String> = [("c1", "compile"), ("r1", "report"), ("x1", "run")]
        .iter()
        .map(|(id, op)| work_frame(id, op, STREAM))
        .collect();
    let references: Vec<String> = frames.iter().map(|f| direct_reference(f)).collect();

    for workers in ["1", "4"] {
        let daemon = Daemon::spawn(&["--workers", workers]);
        let mut client = daemon.connect();
        // Twice: the first pass is cold, the second is served warm from
        // the response cache — the bytes must not care.
        for pass in 0..2 {
            for (frame, want) in frames.iter().zip(&references) {
                let got = client.roundtrip(frame);
                assert_eq!(
                    &got, want,
                    "workers={workers} pass={pass}: served bytes diverge from direct run"
                );
            }
        }
        daemon.shutdown_and_wait();
    }
}

#[test]
fn parallel_clients_each_get_the_right_answer() {
    let daemon = Daemon::spawn(&["--workers", "4"]);
    let n_clients = 4;
    let per_client = 6;
    // Overlapping but not identical workloads: client k compiles bounds
    // 256+k, 256+k+1, ... so neighbours share most programs.
    std::thread::scope(|scope| {
        for k in 0..n_clients {
            let daemon = &daemon;
            scope.spawn(move || {
                let mut client = daemon.connect();
                for j in 0..per_client {
                    let ir = program(256 + (k + j) as u64);
                    let frame = work_frame(&format!("c{k}-{j}"), "compile", &ir);
                    let got = client.roundtrip(&frame);
                    assert_eq!(got, direct_reference(&frame), "client {k} request {j}");
                }
            });
        }
    });
    daemon.shutdown_and_wait();
}

#[test]
fn graceful_drain_finishes_admitted_work_then_refuses_new() {
    let mut daemon = Daemon::spawn(&["--workers", "1"]);
    let mut client = daemon.connect();
    // Pipeline a work request immediately followed by shutdown on the
    // same connection: the work frame is admitted first (frames on one
    // connection are handled in order), so its answer must still come.
    client.send(&work_frame("w", "compile", STREAM));
    client.send(r#"{"id":"bye","op":"shutdown"}"#);
    let first = client.recv().expect("admitted work is answered");
    let second = client.recv().expect("shutdown is acknowledged");
    // The worker and the reader race for the socket, so the two lines
    // may arrive in either order; sort them out by id.
    let (work, ack) =
        if first.contains("\"id\":\"w\"") { (first, second) } else { (second, first) };
    assert!(work.contains("\"ok\":true"), "admitted work completed: {work}");
    assert!(ack.contains("\"draining\":true"), "{ack}");
    // New work after the drain started is refused, not executed. The
    // daemon may already have exited, in which case the connection (or
    // the connect) fails — both are refusals; a success is the bug.
    // A connect failure means the daemon already drained and exited —
    // also a refusal, so only the Ok arm has anything to check.
    if let Ok(stream) = TcpStream::connect(&daemon.addr) {
        stream.set_nodelay(true).unwrap();
        let mut late =
            Client { writer: stream.try_clone().unwrap(), reader: BufReader::new(stream) };
        late.send(&work_frame("late", "compile", STREAM));
        if let Some(resp) = late.recv() {
            assert!(
                resp.contains(codes::DRAINING),
                "late work must be refused with serve.draining: {resp}"
            );
        }
    }
    let status = daemon.child.wait().expect("daed exits");
    assert!(status.success());
}

#[test]
fn background_recompile_hot_swap_is_client_invisible() {
    let daemon = Daemon::spawn(&["--workers", "2", "--recompile-ms", "40"]);
    let mut client = daemon.connect();
    // A run request both exercises the pipeline and feeds the profile
    // store the background worker recompiles from.
    let frame = work_frame("hot", "run", STREAM);
    let before = client.roundtrip(&frame);
    assert_eq!(before, direct_reference(&frame), "pre-swap bytes match a direct run");

    // Wait until the worker has completed at least one recompile pass
    // over that profile (the `profiles` op exposes its counters).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let line = client.roundtrip(r#"{"id":"p","op":"profiles"}"#);
        let v = parse(&line).expect("well-formed profiles response");
        let result = v.get("result").expect("profiles response has a result");
        assert_eq!(
            result.get("schema").and_then(JsonValue::as_str),
            Some("dae-serve-profiles/1"),
            "{line}"
        );
        let completed = result
            .get("recompiles")
            .and_then(|r| r.get("completed"))
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
        if completed >= 1.0 {
            let records =
                result.get("records").and_then(JsonValue::as_arr).map(|a| a.len()).unwrap_or(0);
            assert!(records >= 1, "the run must have left a profile record: {line}");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "recompile worker never completed a pass: {line}"
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    }

    // The swap must be invisible: the same request still answers with
    // exactly the bytes a profile-less direct engine produces.
    let after = client.roundtrip(&frame);
    assert_eq!(after, before, "hot swap changed served bytes");
    daemon.shutdown_and_wait();
}

#[test]
fn overload_sheds_with_a_structured_error_instead_of_buffering() {
    let daemon = Daemon::spawn(&["--workers", "1", "--queue-depth", "1"]);
    let mut client = daemon.connect();
    // Pipeline a burst of *distinct* run requests (distinct bounds defeat
    // the response cache) without reading anything back: the reader
    // admits them far faster than one worker simulates them.
    let burst = 24;
    for i in 0..burst {
        client.send(&work_frame(&format!("b{i}"), "run", &program(400 + i)));
    }
    let mut ok = 0;
    let mut shed = 0;
    for _ in 0..burst {
        let line = client.recv().expect("every admitted or shed frame is answered");
        let v = parse(&line).expect("well-formed response");
        if v.get("ok").and_then(JsonValue::as_bool) == Some(true) {
            ok += 1;
        } else {
            let code = v
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string();
            assert_eq!(code, codes::OVERLOADED, "only overload errors expected: {line}");
            shed += 1;
        }
    }
    assert!(ok > 0, "some of the burst is served");
    assert!(shed > 0, "a depth-1 queue under a 24-deep burst must shed");
    daemon.shutdown_and_wait();
}
