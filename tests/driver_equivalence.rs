//! Differential property test for the compilation driver: for every
//! benchmark, a module compiled through `dae_driver::Driver` — at any
//! `--jobs` count, cold or warm through the on-disk cache — verifies and
//! is **byte-identical** to the module produced by the pre-driver
//! sequential path (`transform_module` via `Workload::compile_auto`), and
//! the resulting runs produce byte-identical [`RunReport`] JSON.
//!
//! [`RunReport`]: dae_repro::runtime::RunReport

use dae_repro::driver::{Driver, DriverConfig};
use dae_repro::ir::{print_module, verify_module};
use dae_repro::runtime::{run_workload, RuntimeConfig};
use dae_repro::workloads::{all_benchmarks_small, Variant, Workload};
use std::path::{Path, PathBuf};

/// A per-test scratch cache directory (`std::env::temp_dir()` based; the
/// test wipes it before and after use).
fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dae-driver-equiv-{}-{tag}", std::process::id()))
}

/// Builds a fresh copy of benchmark `i` (driver compilation mutates the
/// module, so every configuration starts from pristine IR).
fn fresh(i: usize) -> Workload {
    let mut v = all_benchmarks_small();
    v.remove(i)
}

/// Compiles `w` through the driver and returns (printed module, report
/// JSON, tasks answered from cache, disk hits).
fn compile_and_run(mut w: Workload, jobs: usize, dir: &Path) -> (String, String, usize, u64) {
    let mut driver = Driver::new(&DriverConfig {
        jobs,
        cache_dir: Some(dir.to_path_buf()),
        ..Default::default()
    });
    let opts = w.auto_options_fn();
    let outcome = driver.compile(&mut w.module, opts);
    let (from_cache, disk_hits) = (outcome.from_cache, outcome.cache.disk_hits);
    w.install_auto(outcome.map);
    verify_module(&w.module).unwrap_or_else(|e| panic!("{}: driver module invalid: {e}", w.name));
    let report =
        run_workload(&w.module, &w.tasks(Variant::AutoDae), &RuntimeConfig::paper_default())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    (print_module(&w.module), report.to_json_string(), from_cache, disk_hits)
}

#[test]
fn driver_matches_sequential_compiler_at_any_job_count_cold_and_warm() {
    let mut references = all_benchmarks_small();
    for (i, rw) in references.iter_mut().enumerate() {
        rw.compile_auto();
        verify_module(&rw.module).unwrap_or_else(|e| panic!("{}: invalid: {e}", rw.name));
        let ref_ir = print_module(&rw.module);
        let ref_report =
            run_workload(&rw.module, &rw.tasks(Variant::AutoDae), &RuntimeConfig::paper_default())
                .unwrap_or_else(|e| panic!("{}: {e}", rw.name))
                .to_json_string();

        let dir = scratch_dir(rw.name);
        let _ = std::fs::remove_dir_all(&dir);

        // Cold at every job count: wipe the cache before each compile.
        for jobs in [1usize, 2, 8] {
            let _ = std::fs::remove_dir_all(&dir);
            let (ir, report, from_cache, _) = compile_and_run(fresh(i), jobs, &dir);
            assert_eq!(from_cache, 0, "{}: cold compile hit the cache", rw.name);
            assert_eq!(ir, ref_ir, "{}: cold --jobs {jobs} module differs", rw.name);
            assert_eq!(report, ref_report, "{}: cold --jobs {jobs} report differs", rw.name);
        }

        // Warm: the last cold compile populated `dir`; a fresh driver must
        // answer every task from disk and still match byte-for-byte.
        for jobs in [1usize, 4] {
            let (ir, report, from_cache, disk_hits) = compile_and_run(fresh(i), jobs, &dir);
            let tasks = fresh(i).task_funcs().len();
            assert_eq!(from_cache, tasks, "{}: warm compile missed the cache", rw.name);
            assert!(disk_hits >= 1, "{}: warm compile had no disk hit", rw.name);
            assert_eq!(ir, ref_ir, "{}: warm --jobs {jobs} module differs", rw.name);
            assert_eq!(report, ref_report, "{}: warm --jobs {jobs} report differs", rw.name);
        }

        let _ = std::fs::remove_dir_all(&dir);
    }
}
