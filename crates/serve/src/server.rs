//! The TCP daemon: accept → admit → execute → respond.
//!
//! ```text
//!            readers (1/conn)        bounded queue        workers (N)
//!  client ──► parse frame ──► admit ─────────────────► pop → Engine::handle
//!     ▲         │    │          │ full → overloaded        │
//!     │         │    │          │ draining → refused       ▼
//!     └─────────┴────┴──────────┴──────────────── response line (per conn)
//! ```
//!
//! * Each connection gets a **reader thread** that frames newline-delimited
//!   requests, answers control ops (`stats`, `health`, `shutdown`) inline,
//!   and pushes work ops onto the shared [`Queue`]. A full queue sheds with
//!   `serve.overloaded`; a draining queue refuses with `serve.draining`.
//! * A fixed pool of **worker threads** pops jobs and runs them through the
//!   one shared [`Engine`] (and thus the one shared incremental cache).
//!   Responses are written back through a per-connection writer mutex, so
//!   lines never interleave; `id` is the client's correlation key.
//! * **Graceful drain** — a `shutdown` request or a SIGTERM/SIGINT (see
//!   [`install_signal_drain`]) stops the accept loop and closes the queue:
//!   everything already admitted completes and is answered, everything new
//!   is refused, and [`Server::run`] returns once the workers have gone
//!   idle.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dae_trace::json::JsonValue;

use crate::engine::{Engine, EngineConfig};
use crate::metrics::{Metrics, WorkOp};
use crate::proto::{
    codes, err_response, ok_response, ok_response_raw, parse_request, ErrorBody, Op, Request,
    MAX_FRAME_BYTES,
};
use crate::queue::{Push, Queue};

/// Schema tag of the `health` result object. `/2` added the routing
/// inputs a gateway needs from one cheap probe: engine kind, queue
/// depth/capacity, worker count and response-cache counters. `/3` added
/// the `pgo` section (profile records held, recompile-worker counters).
pub const HEALTH_SCHEMA: &str = "dae-serve-health/3";

/// Daemon construction knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads executing work requests.
    pub workers: usize,
    /// Admission-queue capacity; beyond it requests are shed.
    pub queue_depth: usize,
    /// Engine (driver cache, global-data cap) configuration.
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            engine: EngineConfig::default(),
        }
    }
}

/// One admitted work request, en route to a worker.
struct Job {
    req: Request,
    conn: Arc<Conn>,
    admitted: Instant,
    deadline: Option<Instant>,
}

/// The write half of a connection: one mutex so response lines never
/// interleave, shared by the reader and every worker holding a job for it.
struct Conn {
    stream: Mutex<TcpStream>,
}

impl Conn {
    /// Writes one response line. Errors are swallowed: a vanished client
    /// must not take a worker down with it.
    fn send(&self, line: &str) {
        let mut s = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        let _ = s.write_all(line.as_bytes());
        let _ = s.write_all(b"\n");
        let _ = s.flush();
    }
}

/// The daemon: a bound listener plus the shared state every thread sees.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    metrics: Arc<Metrics>,
    queue: Arc<Queue<Job>>,
    drain: Arc<AtomicBool>,
    workers: usize,
}

impl Server {
    /// Binds the listener; the accept loop starts with [`Server::run`].
    pub fn bind(config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            engine: Arc::new(Engine::new(&config.engine)),
            metrics: Arc::new(Metrics::new()),
            queue: Arc::new(Queue::new(config.queue_depth)),
            drain: Arc::new(AtomicBool::new(false)),
            workers: config.workers.max(1),
        })
    }

    /// The bound address (the actual port when `addr` asked for port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The drain flag: set it (from any thread) to begin a graceful
    /// shutdown, exactly as a `shutdown` request would.
    pub fn drain_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.drain)
    }

    /// The shared engine, for background workers (`daed`'s recompile
    /// loop calls [`Engine::recompile_pass`] through this).
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&self.engine)
    }

    /// Serves until a drain is requested, then completes all admitted work
    /// and returns. Reader threads are detached — they die with their
    /// connections — but every worker is joined, so when `run` returns
    /// every admitted request has been answered.
    pub fn run(&self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| self.worker_loop());
            }
            while !self.draining() {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        // Frames are small and latency-sensitive: without
                        // this, Nagle + delayed ACK adds ~40 ms per
                        // request/response round trip.
                        let _ = stream.set_nodelay(true);
                        let engine = Arc::clone(&self.engine);
                        let metrics = Arc::clone(&self.metrics);
                        let queue = Arc::clone(&self.queue);
                        let drain = Arc::clone(&self.drain);
                        let workers = self.workers;
                        std::thread::spawn(move || {
                            reader_loop(stream, engine, metrics, queue, drain, workers);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            self.drain.store(true, Ordering::SeqCst);
            self.queue.close();
            // Scope exit joins the workers: the queue drains completely.
        });
        Ok(())
    }

    fn draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst) || signal_drain_requested()
    }

    fn worker_loop(&self) {
        while let Some(job) = self.queue.pop() {
            let waited = job.admitted.elapsed();
            if let Some(deadline) = job.deadline {
                if Instant::now() > deadline {
                    self.metrics.deadline_expired.fetch_add(1, Ordering::Relaxed);
                    let e = ErrorBody::new(
                        codes::DEADLINE,
                        format!("deadline of {} ms expired in the queue", job.req.deadline_ms),
                    );
                    job.conn.send(&err_response(&job.req.id, &e));
                    continue;
                }
            }
            let line = match self.engine.handle_raw(&job.req) {
                Ok(result) => {
                    self.metrics.completed.fetch_add(1, Ordering::Relaxed);
                    ok_response_raw(&job.req.id, &result)
                }
                Err(e) => {
                    let counter = if e.code == codes::INTERNAL {
                        &self.metrics.internal_errors
                    } else {
                        &self.metrics.failed
                    };
                    counter.fetch_add(1, Ordering::Relaxed);
                    err_response(&job.req.id, &e)
                }
            };
            job.conn.send(&line);
            let op = match job.req.op {
                Op::Compile => WorkOp::Compile,
                Op::Report => WorkOp::Report,
                _ => WorkOp::Run,
            };
            self.metrics.record(op, waited, job.admitted.elapsed());
        }
    }
}

/// Frames newline-delimited requests off one connection until EOF.
fn reader_loop(
    stream: TcpStream,
    engine: Arc<Engine>,
    metrics: Arc<Metrics>,
    queue: Arc<Queue<Job>>,
    drain: Arc<AtomicBool>,
    workers: usize,
) {
    // The timeout keeps the reader responsive to client death even when
    // the client never sends another byte.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let conn = match stream.try_clone() {
        Ok(w) => Arc::new(Conn { stream: Mutex::new(w) }),
        Err(_) => return,
    };
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // Drain complete frames out of the buffer first.
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let frame: Vec<u8> = buf.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&frame[..nl]);
            let line = line.trim();
            if !line.is_empty() {
                handle_frame(line, &conn, &engine, &metrics, &queue, &drain, workers);
            }
        }
        // A line longer than the frame cap can never complete: answer once
        // and drop the connection, because framing is lost.
        if buf.len() > MAX_FRAME_BYTES {
            metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            let e = ErrorBody::new(
                codes::TOO_LARGE,
                format!("frame exceeds {MAX_FRAME_BYTES} bytes before its newline"),
            );
            conn.send(&err_response(&JsonValue::Null, &e));
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // EOF: client closed its write half.
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

/// Routes one parsed frame: control ops inline, work ops into the queue.
fn handle_frame(
    line: &str,
    conn: &Arc<Conn>,
    engine: &Engine,
    metrics: &Metrics,
    queue: &Queue<Job>,
    drain: &AtomicBool,
    workers: usize,
) {
    let req = match parse_request(line) {
        Ok(req) => req,
        Err((id, e)) => {
            metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            conn.send(&err_response(&id, &e));
            return;
        }
    };
    match req.op {
        Op::Stats => {
            let body = metrics.to_json(
                queue.len(),
                workers,
                engine.kind().label(),
                engine.cache_json(),
                engine.pgo_json(),
            );
            conn.send(&ok_response(&req.id, body));
        }
        Op::Profiles => {
            conn.send(&ok_response(&req.id, engine.profiles_json()));
        }
        Op::Health => {
            // A SIGTERM counts as draining *immediately* — before the
            // accept loop notices and closes the queue — so a gateway
            // probing health stops routing to this backend before its
            // socket disappears.
            let draining =
                drain.load(Ordering::SeqCst) || queue.is_closed() || signal_drain_requested();
            let body = JsonValue::obj([
                ("schema", HEALTH_SCHEMA.into()),
                ("status", if draining { "draining" } else { "ok" }.into()),
                ("engine", engine.kind().label().into()),
                ("workers", workers.into()),
                ("queue_depth", queue.len().into()),
                ("queue_capacity", queue.capacity().into()),
                ("cache", engine.resp_cache_json()),
                ("pgo", engine.pgo_json()),
            ]);
            conn.send(&ok_response(&req.id, body));
        }
        Op::Shutdown => {
            // Answer first: the drain may outlive the client's patience.
            conn.send(&ok_response(&req.id, JsonValue::obj([("draining", true.into())])));
            drain.store(true, Ordering::SeqCst);
            queue.close();
        }
        Op::Compile | Op::Report | Op::Run => {
            // Fast path: a response-cache hit is answered here on the
            // reader thread — the queue hop (two context switches on a
            // small machine) is only paid by requests that need work.
            // Drain still wins: once the queue is closed, new work is
            // refused uniformly, warm or not.
            if !queue.is_closed() && !drain.load(Ordering::SeqCst) {
                if let Some(result) = engine.cached_response(&req) {
                    let t0 = Instant::now();
                    metrics.accepted.fetch_add(1, Ordering::Relaxed);
                    metrics.completed.fetch_add(1, Ordering::Relaxed);
                    conn.send(&ok_response_raw(&req.id, &result));
                    let op = match req.op {
                        Op::Compile => WorkOp::Compile,
                        Op::Report => WorkOp::Report,
                        _ => WorkOp::Run,
                    };
                    metrics.record(op, Duration::ZERO, t0.elapsed());
                    return;
                }
            }
            let deadline = (req.deadline_ms > 0)
                .then(|| Instant::now() + Duration::from_millis(req.deadline_ms));
            let job = Job { req, conn: Arc::clone(conn), admitted: Instant::now(), deadline };
            match queue.push(job) {
                Push::Queued => {
                    metrics.accepted.fetch_add(1, Ordering::Relaxed);
                }
                Push::Full(job) => {
                    metrics.shed.fetch_add(1, Ordering::Relaxed);
                    let e = ErrorBody::new(
                        codes::OVERLOADED,
                        format!("admission queue full ({} deep); retry later", queue.capacity()),
                    );
                    job.conn.send(&err_response(&job.req.id, &e));
                }
                Push::Closed(job) => {
                    metrics.refused_draining.fetch_add(1, Ordering::Relaxed);
                    let e = ErrorBody::new(codes::DRAINING, "server is draining");
                    job.conn.send(&err_response(&job.req.id, &e));
                }
            }
        }
    }
}

static SIGNAL_DRAIN: AtomicBool = AtomicBool::new(false);

/// True once a SIGTERM/SIGINT arrived after [`install_signal_drain`].
pub fn signal_drain_requested() -> bool {
    SIGNAL_DRAIN.load(Ordering::SeqCst)
}

/// Routes SIGTERM and SIGINT into the drain path: the accept loop notices
/// within one poll interval and begins the same graceful drain a
/// `shutdown` request would. `std` already links the platform C runtime,
/// so plain `signal(2)` is declared directly rather than through a crate.
#[cfg(unix)]
pub fn install_signal_drain() {
    extern "C" fn on_signal(_sig: i32) {
        SIGNAL_DRAIN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

/// No-op off Unix; a `shutdown` request still drains gracefully.
#[cfg(not(unix))]
pub fn install_signal_drain() {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    const STREAM: &str = "global g0 a : 1024 x f64\n\ntask fn s(arg0: i64) {\nbb0:\n  jump bb1(0)\nbb1(bb1p0: i64):\n  v0: bool = icmp lt bb1p0, arg0\n  br v0, bb2, bb3\nbb2:\n  v1: i64 = imul bb1p0, 8\n  v2: ptr = ptradd @g0, v1\n  v3: f64 = load v2\n  v4: f64 = fmul v3, 2.0\n  store v2, v4\n  v5: i64 = iadd bb1p0, 1\n  jump bb1(v5)\nbb3:\n  ret\n}\n";

    fn start(
        workers: usize,
        queue_depth: usize,
    ) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let server = Server::bind(&ServerConfig { workers, queue_depth, ..Default::default() })
            .expect("bind");
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().expect("serve"));
        (addr, handle)
    }

    fn roundtrip(stream: &mut TcpStream, frame: &JsonValue) -> JsonValue {
        let mut line = frame.to_json_string();
        line.push('\n');
        stream.write_all(line.as_bytes()).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        dae_trace::json::parse(&resp).expect("valid response JSON")
    }

    fn work_frame(id: u64, op: &str) -> JsonValue {
        JsonValue::obj([
            ("id", id.into()),
            ("op", op.into()),
            ("ir", STREAM.into()),
            ("hints", JsonValue::Arr(vec![32u64.into()])),
        ])
    }

    #[test]
    fn serves_work_control_and_drain_over_tcp() {
        let (addr, handle) = start(2, 16);
        let mut c = TcpStream::connect(addr).unwrap();
        // Health, then a compile, then stats reflecting it.
        let h = roundtrip(&mut c, &JsonValue::obj([("id", 1u64.into()), ("op", "health".into())]));
        assert_eq!(h.get("result").unwrap().get("status").unwrap().as_str(), Some("ok"));
        let r = roundtrip(&mut c, &work_frame(2, "compile"));
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
        assert!(r
            .get("result")
            .unwrap()
            .get("module")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("s__access"));
        // A second client compiles the same program: the shared cache hits.
        let mut c2 = TcpStream::connect(addr).unwrap();
        let r2 = roundtrip(&mut c2, &work_frame(3, "compile"));
        assert_eq!(
            r2.get("result").unwrap().to_json_string(),
            r.get("result").unwrap().to_json_string(),
            "identical program, identical bytes"
        );
        let s = roundtrip(&mut c, &JsonValue::obj([("id", 4u64.into()), ("op", "stats".into())]));
        let cache = s.get("result").unwrap().get("cache").unwrap();
        assert_eq!(cache.get("resp_hits").unwrap().as_f64(), Some(1.0));
        // Malformed frames answer without killing the connection.
        c.write_all(b"{broken\n").unwrap();
        let mut reader = std::io::BufReader::new(c.try_clone().unwrap());
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        let v = dae_trace::json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("error").unwrap().get("code").unwrap().as_str(), Some("json.parse"));
        // Shutdown drains; the server thread exits; new connects fail.
        let d =
            roundtrip(&mut c, &JsonValue::obj([("id", 9u64.into()), ("op", "shutdown".into())]));
        assert_eq!(d.get("result").unwrap().get("draining").unwrap().as_bool(), Some(true));
        handle.join().unwrap();
    }

    #[test]
    fn expired_deadline_is_refused_not_executed() {
        let (addr, handle) = start(1, 8);
        let mut c = TcpStream::connect(addr).unwrap();
        let mut frame = work_frame(1, "run");
        if let JsonValue::Obj(pairs) = &mut frame {
            pairs.push(("deadline_ms".to_string(), JsonValue::Num(0.0)));
        }
        // deadline_ms 0 means none; use an already-tiny deadline by
        // saturating the single worker first with a slow request.
        let slow = work_frame(2, "run");
        let mut line = slow.to_json_string();
        line.push('\n');
        c.write_all(line.as_bytes()).unwrap();
        let mut tight = work_frame(3, "run");
        if let JsonValue::Obj(pairs) = &mut tight {
            pairs.push(("deadline_ms".to_string(), JsonValue::Num(1.0)));
        }
        let mut line = tight.to_json_string();
        line.push('\n');
        c.write_all(line.as_bytes()).unwrap();
        // Read both responses; find id 3.
        let mut reader = std::io::BufReader::new(c.try_clone().unwrap());
        let mut saw_deadline_or_ok = 0;
        for _ in 0..2 {
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            let v = dae_trace::json::parse(&resp).unwrap();
            if v.get("id").unwrap().as_f64() == Some(3.0) {
                // Either the worker got to it in time (ok) or the deadline
                // fired; both are valid — what is *not* valid is silence
                // or a crash.
                let ok = v.get("ok").unwrap().as_bool().unwrap();
                if !ok {
                    assert_eq!(
                        v.get("error").unwrap().get("code").unwrap().as_str(),
                        Some(codes::DEADLINE)
                    );
                }
                saw_deadline_or_ok += 1;
            }
        }
        assert_eq!(saw_deadline_or_ok, 1);
        let _ =
            roundtrip(&mut c, &JsonValue::obj([("id", 9u64.into()), ("op", "shutdown".into())]));
        handle.join().unwrap();
    }
}
