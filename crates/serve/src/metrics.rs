//! Live server metrics: atomic counters plus per-operation latency
//! histograms, snapshotted as the `stats` endpoint's JSON.
//!
//! Counters are lock-free; histograms sit behind a mutex each (a handful
//! of nanoseconds per request next to a compile or a simulated run).
//! Everything here is **volatile by definition** — the `stats` response is
//! the one place the protocol's determinism contract does not apply.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dae_trace::json::JsonValue;
use dae_trace::LogHistogram;

/// Schema tag of the `stats` result object. `/2` added the engine kind;
/// `/3` added the `pgo` section (profile records, recompile counters).
pub const STATS_SCHEMA: &str = "dae-serve-stats/3";

/// Work-operation index into the per-op histogram array.
#[derive(Clone, Copy)]
pub enum WorkOp {
    /// A `compile` request.
    Compile = 0,
    /// A `report` request.
    Report = 1,
    /// A `run` request.
    Run = 2,
}

const WORK_OPS: [&str; 3] = ["compile", "report", "run"];

/// The server's live counters and latency distributions.
pub struct Metrics {
    started: Instant,
    /// Work requests admitted to the queue.
    pub accepted: AtomicU64,
    /// Work requests answered successfully.
    pub completed: AtomicU64,
    /// Work requests answered with a layer error (`ir.parse`, `sim.trap`, …).
    pub failed: AtomicU64,
    /// Requests shed because the queue was full (`serve.overloaded`).
    pub shed: AtomicU64,
    /// Requests refused because the server was draining (`serve.draining`).
    pub refused_draining: AtomicU64,
    /// Requests whose deadline expired while queued (`serve.deadline`).
    pub deadline_expired: AtomicU64,
    /// Frames that never became a valid request (`serve.bad-request`, …).
    pub bad_requests: AtomicU64,
    /// Handler panics converted to `serve.internal` responses.
    pub internal_errors: AtomicU64,
    /// End-to-end service latency per work op (queue wait + handling).
    service: [Mutex<LogHistogram>; 3],
    /// Time spent queued before a worker picked the request up.
    queue_wait: Mutex<LogHistogram>,
}

impl Metrics {
    /// Fresh, all-zero metrics; `uptime_s` counts from here.
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            refused_draining: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            internal_errors: AtomicU64::new(0),
            service: [
                Mutex::new(LogHistogram::new()),
                Mutex::new(LogHistogram::new()),
                Mutex::new(LogHistogram::new()),
            ],
            queue_wait: Mutex::new(LogHistogram::new()),
        }
    }

    /// Records one completed work request: its op, how long it waited in
    /// the queue and its end-to-end service time.
    pub fn record(&self, op: WorkOp, queue_wait: Duration, service: Duration) {
        lock(&self.queue_wait).record(queue_wait.as_secs_f64());
        lock(&self.service[op as usize]).record(service.as_secs_f64());
    }

    /// The `stats` result object. `queue_depth`, the engine label and the
    /// cache and pgo sections are sampled by the caller (they live outside
    /// this struct).
    pub fn to_json(
        &self,
        queue_depth: usize,
        workers: usize,
        engine: &str,
        cache: JsonValue,
        pgo: JsonValue,
    ) -> JsonValue {
        let c = |a: &AtomicU64| JsonValue::from(a.load(Ordering::Relaxed));
        let latency: Vec<(String, JsonValue)> = WORK_OPS
            .iter()
            .enumerate()
            .map(|(i, name)| (name.to_string(), lock(&self.service[i]).to_json()))
            .chain([("queue_wait".to_string(), lock(&self.queue_wait).to_json())])
            .collect();
        JsonValue::obj([
            ("schema", STATS_SCHEMA.into()),
            ("uptime_s", self.started.elapsed().as_secs_f64().into()),
            ("workers", workers.into()),
            ("engine", engine.into()),
            ("queue_depth", queue_depth.into()),
            (
                "requests",
                JsonValue::obj([
                    ("accepted", c(&self.accepted)),
                    ("completed", c(&self.completed)),
                    ("failed", c(&self.failed)),
                    ("shed", c(&self.shed)),
                    ("refused_draining", c(&self.refused_draining)),
                    ("deadline_expired", c(&self.deadline_expired)),
                    ("bad_requests", c(&self.bad_requests)),
                    ("internal_errors", c(&self.internal_errors)),
                ]),
            ),
            ("latency", JsonValue::Obj(latency)),
            ("cache", cache),
            ("pgo", pgo),
        ])
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

fn lock(h: &Mutex<LogHistogram>) -> std::sync::MutexGuard<'_, LogHistogram> {
    h.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_json_has_the_full_shape() {
        let m = Metrics::new();
        m.accepted.store(5, Ordering::Relaxed);
        m.completed.store(4, Ordering::Relaxed);
        m.shed.store(1, Ordering::Relaxed);
        m.record(WorkOp::Run, Duration::from_micros(20), Duration::from_millis(3));
        let v = m.to_json(
            2,
            8,
            "bytecode",
            JsonValue::obj([("mem_hits", 7u64.into())]),
            JsonValue::obj([("profile_records", 2u64.into())]),
        );
        assert_eq!(v.get("schema").unwrap().as_str(), Some(STATS_SCHEMA));
        assert_eq!(v.get("queue_depth").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("workers").unwrap().as_f64(), Some(8.0));
        assert_eq!(v.get("engine").unwrap().as_str(), Some("bytecode"));
        let r = v.get("requests").unwrap();
        assert_eq!(r.get("accepted").unwrap().as_f64(), Some(5.0));
        assert_eq!(r.get("shed").unwrap().as_f64(), Some(1.0));
        let lat = v.get("latency").unwrap();
        assert_eq!(lat.get("run").unwrap().get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(lat.get("compile").unwrap().get("count").unwrap().as_f64(), Some(0.0));
        assert_eq!(lat.get("queue_wait").unwrap().get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("cache").unwrap().get("mem_hits").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("pgo").unwrap().get("profile_records").unwrap().as_f64(), Some(2.0));
        // The whole snapshot round-trips through the JSON writer/parser.
        assert!(dae_trace::json::parse(&v.to_json_string()).is_ok());
    }

    #[test]
    fn record_feeds_the_right_histogram() {
        let m = Metrics::new();
        m.record(WorkOp::Compile, Duration::ZERO, Duration::from_millis(1));
        m.record(WorkOp::Compile, Duration::ZERO, Duration::from_millis(2));
        m.record(WorkOp::Report, Duration::ZERO, Duration::from_millis(1));
        let v = m.to_json(0, 1, "tree", JsonValue::Null, JsonValue::Null);
        let lat = v.get("latency").unwrap();
        assert_eq!(lat.get("compile").unwrap().get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(lat.get("report").unwrap().get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(lat.get("run").unwrap().get("count").unwrap().as_f64(), Some(0.0));
    }
}
