//! The bounded admission queue: explicit backpressure, never silent.
//!
//! A classic `Mutex` + `Condvar` MPMC queue with two deliberate deviations
//! from a general-purpose channel:
//!
//! * [`Queue::push`] **never blocks**. A full queue *sheds*: the item comes
//!   straight back ([`Push::Full`]) and the caller answers the client with
//!   `serve.overloaded`. Overload becomes a fast structured refusal instead
//!   of an unbounded buffer or a stalled reader.
//! * [`Queue::close`] starts a **graceful drain**: new pushes are refused
//!   ([`Push::Closed`] → `serve.draining`) while everything already
//!   admitted is still handed to workers; [`Queue::pop`] returns `None`
//!   only once the queue is both closed and empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Outcome of a non-blocking [`Queue::push`].
#[derive(Debug)]
pub enum Push<T> {
    /// Admitted; a worker will pick it up.
    Queued,
    /// The queue was at capacity — the item was shed, not stored.
    Full(T),
    /// The queue is draining — the item was refused, not stored.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC work queue with load-shedding and drain semantics.
pub struct Queue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
}

impl<T> Queue<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Queue<T> {
        Queue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (racy, for metrics only).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when nothing is queued (racy, for metrics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`Queue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Tries to admit `item` without blocking.
    pub fn push(&self, item: T) -> Push<T> {
        let mut inner = self.lock();
        if inner.closed {
            return Push::Closed(item);
        }
        if inner.items.len() >= self.capacity {
            return Push::Full(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Push::Queued
    }

    /// Blocks until an item is available or the drain completes.
    ///
    /// Returns `None` only when the queue is closed **and** empty — every
    /// admitted item is delivered exactly once before workers see the end.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Begins the drain: refuses new items, wakes every blocked worker.
    /// Items already admitted still drain through [`Queue::pop`].
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // A panicking producer/consumer must not wedge the whole server.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let q = Queue::new(2);
        assert!(matches!(q.push(1), Push::Queued));
        assert!(matches!(q.push(2), Push::Queued));
        assert!(matches!(q.push(3), Push::Full(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_refuses_but_still_drains() {
        let q = Queue::new(4);
        q.push(1);
        q.push(2);
        q.close();
        assert!(matches!(q.push(3), Push::Closed(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays terminated");
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(Queue::<i32>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn items_cross_threads_exactly_once() {
        let q = Arc::new(Queue::<usize>::new(64));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for v in 0..64 {
            assert!(matches!(q.push(v), Push::Queued));
        }
        q.close();
        let mut all: Vec<usize> = consumers.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = Queue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(matches!(q.push(1), Push::Queued));
        assert!(matches!(q.push(2), Push::Full(2)));
    }
}
