//! `dae-load`'s heart: a deterministic, seeded load generator.
//!
//! The generator replays a reproducible request mix against a running
//! daemon: a [`SplitMix64`] stream seeded per client picks programs from a
//! small parameterised corpus, so distinct clients submit overlapping
//! programs — exactly the workload the shared incremental cache exists
//! for. Two seeds, two runs, one machine → the same request sequence; only
//! the measured latencies differ.
//!
//! [`bench_workers`] goes one step further for `BENCH_serve_*.json`: it
//! spins up **in-process** servers at several worker counts, drives the
//! same mix at each, and compares against a serial cold-engine baseline
//! (a fresh [`Engine`] per request — the service equivalent of invoking
//! `daec` once per program, cold cache every time).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use dae_governor::SplitMix64;
use dae_trace::json::JsonValue;
use dae_trace::LogHistogram;

use crate::engine::{Engine, EngineConfig};
use crate::proto::parse_request;
use crate::server::{Server, ServerConfig};
use dae_sim::EngineKind;

/// Schema tag of a load run's JSON report.
pub const LOAD_SCHEMA: &str = "dae-serve-load/1";
/// Schema tag of the multi-worker bench JSON.
pub const BENCH_SCHEMA: &str = "dae-serve-bench/1";

/// Distinct programs in the corpus; variants cycle through it.
pub const CORPUS: usize = 8;

/// The `variant`-th corpus program: affine streams with distinct strides
/// and array lengths (so each variant has its own `task_key`), plus one
/// gather (skeleton strategy) and one refused store-only task, mirroring
/// the spread a real compile service would see.
pub fn corpus_program(variant: usize) -> String {
    let v = variant % CORPUS;
    match v {
        // Variant 6: indirect gather — compiles via the skeleton path.
        6 => "global g0 x : 8192 x f64\nglobal g1 idx : 2048 x i64\n\n\
              task fn gather(arg0: i64) {\nbb0:\n  jump bb1(0)\n\
              bb1(bb1p0: i64):\n  v0: bool = icmp lt bb1p0, arg0\n  br v0, bb2, bb3\n\
              bb2:\n  v1: i64 = imul bb1p0, 8\n  v2: ptr = ptradd @g1, v1\n\
              \x20 v3: i64 = load v2\n  v4: i64 = imul v3, 8\n  v5: ptr = ptradd @g0, v4\n\
              \x20 v6: f64 = load v5\n  v7: ptr = ptradd @g0, v1\n  store v7, v6\n\
              \x20 v8: i64 = iadd bb1p0, 1\n  jump bb1(v8)\nbb3:\n  ret\n}\n"
            .to_string(),
        // Variant 7: store-only task — the compiler refuses it.
        7 => "global g0 a : 64 x f64\n\n\
              task fn writeonly() {\nbb0:\n  v0: ptr = ptradd @g0, 0\n  store v0, 1.0\n  ret\n}\n"
            .to_string(),
        // Variants 0–5: affine streams (polyhedral strategy) over a
        // constant trip count, `arg0` as chunk offset, stride and length
        // per variant so every variant has its own `task_key`.
        _ => {
            let stride = 1 + v as i64;
            let len = 4096 * (1 + v);
            format!(
                "global g0 a : {len} x f64\n\n\
                 task fn stream{v}(arg0: i64) {{\nbb0:\n  jump bb1(0)\n\
                 bb1(bb1p0: i64):\n  v0: bool = icmp lt bb1p0, 512\n  br v0, bb2, bb3\n\
                 bb2:\n  v1: i64 = imul bb1p0, {stride}\n  v2: i64 = iadd arg0, v1\n\
                 \x20 v3: i64 = imul v2, 8\n  v4: ptr = ptradd @g0, v3\n\
                 \x20 v5: f64 = load v4\n  v6: f64 = fmul v5, 2.0\n  store v4, v6\n\
                 \x20 v7: i64 = iadd bb1p0, 1\n  jump bb1(v7)\nbb3:\n  ret\n}}\n"
            )
        }
    }
}

/// The request mix. `Compile` and `Report` exercise the shared cache;
/// `Run` adds simulation time on top.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mix {
    /// `compile` and `report` requests only (cache-bound).
    Compile,
    /// `run` requests only (simulation-bound).
    Run,
    /// 3:1 compile-family to run.
    Mixed,
    /// `run` requests with a wide hint spread: the corpus (and thus the
    /// parse/compile path) stays familiar, but requests are mostly
    /// distinct, so throughput is bounded by how much of the working set
    /// the response-cache tier can actually hold — the mix the gateway's
    /// cache-affinity routing exists for.
    Warm,
}

impl Mix {
    /// Parses `compile`, `run`, `mixed` or `warm`.
    pub fn parse(s: &str) -> Result<Mix, String> {
        match s {
            "compile" => Ok(Mix::Compile),
            "run" => Ok(Mix::Run),
            "mixed" => Ok(Mix::Mixed),
            "warm" => Ok(Mix::Warm),
            other => Err(format!("unknown mix `{other}` (compile, run, mixed or warm)")),
        }
    }

    /// Stable lowercase name (the `--mix` spelling).
    pub fn label(self) -> &'static str {
        match self {
            Mix::Compile => "compile",
            Mix::Run => "run",
            Mix::Mixed => "mixed",
            Mix::Warm => "warm",
        }
    }

    fn op_for(self, roll: u64) -> &'static str {
        match self {
            Mix::Compile => {
                if roll.is_multiple_of(4) {
                    "report"
                } else {
                    "compile"
                }
            }
            Mix::Run | Mix::Warm => "run",
            Mix::Mixed => match roll % 4 {
                0 => "run",
                1 => "report",
                _ => "compile",
            },
        }
    }
}

/// Load-generation knobs.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Daemon address, e.g. `127.0.0.1:7777`.
    pub addr: String,
    /// Total requests across all clients.
    pub requests: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Seed of the request streams (per-client streams derive from it).
    pub seed: u64,
    /// The operation mix.
    pub mix: Mix,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig { addr: String::new(), requests: 200, clients: 4, seed: 42, mix: Mix::Compile }
    }
}

/// What one load run measured.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// `"ok": true` responses.
    pub ok: u64,
    /// `"ok": false` responses other than sheds.
    pub failed: u64,
    /// `serve.overloaded` refusals.
    pub shed: u64,
    /// Wall-clock of the whole run in seconds.
    pub wall_s: f64,
    /// Per-request latency distribution.
    pub hist: LogHistogram,
}

impl LoadReport {
    /// Completed (ok) requests per second.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.ok as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Machine-readable form (schema [`LOAD_SCHEMA`]).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("schema", LOAD_SCHEMA.into()),
            ("sent", self.sent.into()),
            ("ok", self.ok.into()),
            ("failed", self.failed.into()),
            ("shed", self.shed.into()),
            ("wall_s", self.wall_s.into()),
            ("throughput_rps", self.throughput_rps().into()),
            ("latency", self.hist.to_json()),
        ])
    }
}

/// Runs the configured mix against `cfg.addr`, splitting `cfg.requests`
/// across `cfg.clients` connections.
pub fn run_load(cfg: &LoadConfig) -> std::io::Result<LoadReport> {
    let clients = cfg.clients.max(1);
    let started = Instant::now();
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let share = cfg.requests / clients + if c < cfg.requests % clients { 1 } else { 0 };
                scope.spawn(move || client_loop(cfg, c as u64, share))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect::<Vec<_>>()
    });
    let mut report = LoadReport {
        sent: 0,
        ok: 0,
        failed: 0,
        shed: 0,
        wall_s: started.elapsed().as_secs_f64(),
        hist: LogHistogram::new(),
    };
    for r in results {
        let r = r?;
        report.sent += r.sent;
        report.ok += r.ok;
        report.failed += r.failed;
        report.shed += r.shed;
        report.hist.merge(&r.hist);
    }
    Ok(report)
}

/// One client: a private rng stream, serial request/response over one
/// connection.
fn client_loop(cfg: &LoadConfig, client: u64, share: usize) -> std::io::Result<LoadReport> {
    let mut rng = client_rng(cfg.seed, client);
    let stream = TcpStream::connect(&cfg.addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut report =
        LoadReport { sent: 0, ok: 0, failed: 0, shed: 0, wall_s: 0.0, hist: LogHistogram::new() };
    // The corpus IR, JSON-escaped once: frame assembly must stay cheap
    // next to the server work being measured.
    let ir_json: Vec<String> =
        (0..CORPUS).map(|v| JsonValue::from(corpus_program(v)).to_json_string()).collect();
    for k in 0..share {
        let (variant, op, hint) = request_parts(cfg.mix, &mut rng);
        let id = client * 1_000_000 + k as u64;
        let line = format!(
            "{{\"id\":{id},\"op\":\"{op}\",\"ir\":{},\"hints\":[{hint}]}}\n",
            ir_json[variant]
        );
        let sent_at = Instant::now();
        writer.write_all(line.as_bytes())?;
        let mut resp = String::new();
        if reader.read_line(&mut resp)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed mid-run",
            ));
        }
        report.hist.record(sent_at.elapsed().as_secs_f64());
        report.sent += 1;
        // Cheap success test: inside any JSON string the quotes are
        // escaped, so the raw bytes `"ok":true` can only be the envelope.
        if resp.contains("\"ok\":true") {
            report.ok += 1;
            continue;
        }
        match dae_trace::json::parse(&resp) {
            Ok(v) => {
                let code = v
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(JsonValue::as_str)
                    .unwrap_or("");
                // Both the daemon (`serve.overloaded`) and the gateway
                // (`gate.overloaded`) shed with a `.overloaded` code.
                if code.ends_with(".overloaded") {
                    report.shed += 1;
                } else {
                    report.failed += 1;
                }
            }
            Err(_) => report.failed += 1,
        }
    }
    Ok(report)
}

/// One seeded draw: which program, which op, which hint. Both the live
/// clients and the serial baseline consume the rng in this exact order,
/// so a seed names one reproducible workload everywhere.
fn request_parts(mix: Mix, rng: &mut SplitMix64) -> (usize, &'static str, u64) {
    let variant = (rng.next_u64() % CORPUS as u64) as usize;
    let op = mix.op_for(rng.next_u64());
    let hint = match mix {
        // Wide spread: up to 256 hints per program, so requests are
        // mostly distinct and land on the response-cache *capacity*, not
        // on one hot entry.
        Mix::Warm => 8 * (rng.next_u64() % 256),
        _ => 64 + (rng.next_u64() % 4) * 64, // 64, 128, 192 or 256
    };
    (variant, op, hint)
}

/// The per-client request rng: **the** stream split every harness must
/// share. SplitMix64 advances its state by a fixed odd constant per draw,
/// so seeding client `c` at `seed + c * 0x9e37` starts each client on its
/// own arithmetic progression of states — distinct clients never collide,
/// and any harness (the concurrent generator, the serial baseline, the
/// gateway bench driving `--target gate`) that splits with this exact
/// function replays byte-identical per-client request sequences for a
/// given seed. Inlining the formula instead of calling this is how the
/// streams drift apart.
pub fn client_rng(seed: u64, client: u64) -> SplitMix64 {
    SplitMix64::new(seed.wrapping_add(client.wrapping_mul(0x9e37)))
}

/// The `id`s encode client and sequence so responses are traceable in a
/// packet capture; the rng picks the program and the op. Public so other
/// harnesses (the gateway bench) can replay the identical stream: client
/// `c`'s rng is [`client_rng`]`(seed, c)` and its ids are
/// `c * 1_000_000 + k`.
pub fn request_frame(mix: Mix, rng: &mut SplitMix64, id: u64) -> JsonValue {
    let (variant, op, hint) = request_parts(mix, rng);
    JsonValue::obj([
        ("id", id.into()),
        ("op", op.into()),
        ("ir", corpus_program(variant).into()),
        ("hints", JsonValue::Arr(vec![hint.into()])),
    ])
}

/// Serial cold baseline: a **fresh engine per request** handles the same
/// deterministic mix inline — no cache reuse, no concurrency. This is the
/// denominator of the bench's speedup column.
pub fn serial_cold_baseline(
    requests: usize,
    clients: usize,
    seed: u64,
    mix: Mix,
    engine: EngineKind,
) -> LoadReport {
    let clients = clients.max(1);
    let started = Instant::now();
    let mut report =
        LoadReport { sent: 0, ok: 0, failed: 0, shed: 0, wall_s: 0.0, hist: LogHistogram::new() };
    // Replay the identical per-client streams, just serially.
    for c in 0..clients {
        let share = requests / clients + if c < requests % clients { 1 } else { 0 };
        let mut rng = client_rng(seed, c as u64);
        for k in 0..share {
            let frame = request_frame(mix, &mut rng, (c * 1_000_000 + k) as u64);
            let req = parse_request(&frame.to_json_string()).expect("generated frame is valid");
            let engine = Engine::new(&EngineConfig { engine, ..EngineConfig::default() });
            let t0 = Instant::now();
            let res = engine.handle(&req);
            report.hist.record(t0.elapsed().as_secs_f64());
            report.sent += 1;
            match res {
                Ok(_) => report.ok += 1,
                Err(_) => report.failed += 1,
            }
        }
    }
    report.wall_s = started.elapsed().as_secs_f64();
    report
}

/// Runs the full bench: serial cold baseline, then an in-process server at
/// each worker count (warmed with one pass over the corpus), all on the
/// same seeded mix. Returns the `BENCH_serve_*.json` document.
///
/// Each measurement is the best of `trials` runs. Best-of, not mean-of:
/// on a shared machine the noise is one-sided (a neighbour stealing the
/// CPU only ever slows a trial down), so the fastest trial is the best
/// estimate of what the code actually costs.
#[allow(clippy::too_many_arguments)]
pub fn bench_workers(
    worker_counts: &[usize],
    requests: usize,
    clients: usize,
    seed: u64,
    mix: Mix,
    trials: usize,
    engine: EngineKind,
) -> std::io::Result<JsonValue> {
    let trials = trials.max(1);
    let baseline = (0..trials)
        .map(|_| serial_cold_baseline(requests, clients, seed, mix, engine))
        .max_by(|a, b| a.throughput_rps().total_cmp(&b.throughput_rps()))
        .expect("at least one trial");
    let mut servers = Vec::new();
    for &workers in worker_counts {
        let server = Server::bind(&ServerConfig {
            workers,
            queue_depth: requests.max(64),
            engine: EngineConfig { engine, ..EngineConfig::default() },
            ..Default::default()
        })?;
        let addr = server.local_addr()?.to_string();
        let handle = std::thread::spawn(move || server.run());
        // Warm the shared cache: one compile of every corpus program.
        warm(&addr)?;
        let cfg = LoadConfig { addr: addr.clone(), requests, clients, seed, mix };
        let mut report = run_load(&cfg)?;
        for _ in 1..trials {
            let again = run_load(&cfg)?;
            if again.throughput_rps() > report.throughput_rps() {
                report = again;
            }
        }
        shutdown(&addr)?;
        handle.join().expect("server thread").expect("server run");
        let mut entry = match report.to_json() {
            JsonValue::Obj(pairs) => pairs,
            _ => unreachable!(),
        };
        entry.insert(1, ("workers".to_string(), workers.into()));
        entry.push((
            "speedup_vs_serial_cold".to_string(),
            if baseline.throughput_rps() > 0.0 {
                (report.throughput_rps() / baseline.throughput_rps()).into()
            } else {
                JsonValue::Null
            },
        ));
        servers.push(JsonValue::Obj(entry));
    }
    Ok(JsonValue::obj([
        ("schema", BENCH_SCHEMA.into()),
        ("requests", requests.into()),
        ("clients", clients.into()),
        ("seed", seed.into()),
        ("trials", trials.into()),
        ("engine", engine.label().into()),
        ("mix", mix.label().into()),
        ("baseline", baseline.to_json()),
        ("servers", JsonValue::Arr(servers)),
    ]))
}

/// One `compile` of every corpus program, so the measured run hits warm.
fn warm(addr: &str) -> std::io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    for v in 0..CORPUS {
        let frame = JsonValue::obj([
            ("id", (v as u64).into()),
            ("op", "compile".into()),
            ("ir", corpus_program(v).into()),
            ("hints", JsonValue::Arr(vec![64u64.into()])),
        ]);
        let mut line = frame.to_json_string();
        line.push('\n');
        writer.write_all(line.as_bytes())?;
        let mut resp = String::new();
        reader.read_line(&mut resp)?;
    }
    Ok(())
}

/// Sends a `shutdown` request and waits for the acknowledgement.
pub fn shutdown(addr: &str) -> std::io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    writer.write_all(b"{\"id\":0,\"op\":\"shutdown\"}\n")?;
    let mut resp = String::new();
    reader.read_line(&mut resp)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_programs_all_parse_and_cycle() {
        for v in 0..CORPUS + 2 {
            let text = corpus_program(v);
            let m = dae_ir::parse::parse_module(&text).expect("corpus program parses");
            dae_ir::verify_module(&m).expect("corpus program verifies");
            assert_eq!(m.task_ids().len(), 1);
            assert_eq!(text, corpus_program(v % CORPUS), "corpus cycles");
        }
    }

    #[test]
    fn request_stream_is_deterministic_per_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let mut c = SplitMix64::new(8);
        let mut differs = false;
        for k in 0..16 {
            let fa = request_frame(Mix::Mixed, &mut a, k).to_json_string();
            let fb = request_frame(Mix::Mixed, &mut b, k).to_json_string();
            let fc = request_frame(Mix::Mixed, &mut c, k).to_json_string();
            assert_eq!(fa, fb, "same seed, same stream");
            differs |= fa != fc;
        }
        assert!(differs, "different seeds diverge");
    }

    #[test]
    fn end_to_end_load_against_an_in_process_server() {
        let server =
            Server::bind(&ServerConfig { workers: 2, queue_depth: 64, ..Default::default() })
                .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run());
        let cfg =
            LoadConfig { addr: addr.clone(), requests: 24, clients: 3, seed: 1, mix: Mix::Compile };
        let report = run_load(&cfg).unwrap();
        assert_eq!(report.sent, 24);
        assert_eq!(report.ok, 24, "nothing shed below queue depth, nothing fails");
        assert_eq!(report.hist.count(), 24);
        let v = report.to_json();
        assert_eq!(v.get("schema").unwrap().as_str(), Some(LOAD_SCHEMA));
        assert!(v.get("throughput_rps").unwrap().as_f64().unwrap() > 0.0);
        shutdown(&addr).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn serial_baseline_handles_the_same_mix() {
        let r = serial_cold_baseline(6, 2, 3, Mix::Compile, EngineKind::default());
        assert_eq!(r.sent, 6);
        assert_eq!(r.ok, 6);
        assert!(r.wall_s > 0.0);
    }
}
