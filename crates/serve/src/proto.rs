//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response per line, matched by the caller via
//! the echoed `id`. Responses to a connection may arrive **out of request
//! order** (workers finish independently); `id` is the only correlation.
//!
//! ```json
//! {"id": 1, "op": "compile", "ir": "task fn f() { … }", "hints": [4096]}
//! {"id": 1, "ok": true, "result": {"module": "…", "tasks": 1, …}}
//! {"id": 2, "ok": false, "error": {"code": "ir.parse", "message": "…"}}
//! ```
//!
//! Every field of a successful response is **deterministic**: a request's
//! response bytes are identical whatever the worker count, queue state or
//! cache temperature (which is what makes the service's responses testable
//! against a direct `daec`-equivalent run). Volatile data — latency
//! percentiles, queue depth, cache hit counters — only ever appears in
//! `stats`/`health` responses.

use dae_trace::json::{parse, JsonValue};

/// Frames longer than this are refused with [`codes::TOO_LARGE`] before
/// JSON parsing: the reader never buffers unbounded attacker input.
pub const MAX_FRAME_BYTES: usize = 4 << 20;

/// Stable error-code strings of the serving layer itself. Layer errors
/// (`ir.parse`, `sim.trap`, …) pass through from `dae_ir::CodedError`.
pub mod codes {
    /// The admission queue was full; the request was shed, not queued.
    pub const OVERLOADED: &str = "serve.overloaded";
    /// The server is draining; new requests are refused.
    pub const DRAINING: &str = "serve.draining";
    /// The request spent longer queued than its deadline allowed.
    pub const DEADLINE: &str = "serve.deadline";
    /// The request frame exceeded [`super::MAX_FRAME_BYTES`].
    pub const TOO_LARGE: &str = "serve.frame-too-large";
    /// The frame parsed as JSON but is not a valid request.
    pub const BAD_REQUEST: &str = "serve.bad-request";
    /// The module's global data exceeds the server's memory cap.
    pub const MODULE_TOO_LARGE: &str = "serve.module-too-large";
    /// A handler panicked; the worker survived and returned this instead.
    pub const INTERNAL: &str = "serve.internal";
}

/// The request operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Transform the module: respond with the printed compiled module.
    Compile,
    /// Per-task strategy/statistics report (the `daec --report` view).
    Report,
    /// Compile and simulate every task, coupled vs decoupled
    /// (the `daec --run` view), under a frequency policy.
    Run,
    /// Live server counters, latency histograms and cache statistics.
    Stats,
    /// Phase-profile store summary plus recompile-worker counters.
    Profiles,
    /// Liveness/readiness probe.
    Health,
    /// Begin a graceful drain: complete in-flight work, refuse new work.
    Shutdown,
}

impl Op {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Op::Compile => "compile",
            Op::Report => "report",
            Op::Run => "run",
            Op::Stats => "stats",
            Op::Profiles => "profiles",
            Op::Health => "health",
            Op::Shutdown => "shutdown",
        }
    }

    fn parse(s: &str) -> Option<Op> {
        Some(match s {
            "compile" => Op::Compile,
            "report" => Op::Report,
            "run" => Op::Run,
            "stats" => Op::Stats,
            "profiles" => Op::Profiles,
            "health" => Op::Health,
            "shutdown" => Op::Shutdown,
            _ => return None,
        })
    }

    /// True for operations that go through the admission queue and a
    /// worker (the expensive ones). Control-plane ops (`stats`, `health`,
    /// `shutdown`) answer inline on the connection thread.
    pub fn is_work(self) -> bool {
        matches!(self, Op::Compile | Op::Report | Op::Run)
    }
}

/// A parsed, validated request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: JsonValue,
    /// The operation.
    pub op: Op,
    /// Module text (required for work ops, ignored otherwise).
    pub ir: String,
    /// Representative parameter values, applied to every task.
    pub hints: Vec<i64>,
    /// Frequency-policy spec for `run` (default `dae-optimal`).
    pub policy: Option<String>,
    /// Per-request deadline in milliseconds (0 = none): if the request is
    /// still queued when it expires, it is answered with
    /// [`codes::DEADLINE`] instead of being executed.
    pub deadline_ms: u64,
}

/// A structured error: stable code plus human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorBody {
    /// Stable machine-readable code (`serve.*` or a layer code).
    pub code: String,
    /// Human-readable description; not part of the stability contract.
    pub message: String,
}

impl ErrorBody {
    /// An error body with the given code and message.
    pub fn new(code: impl Into<String>, message: impl Into<String>) -> ErrorBody {
        ErrorBody { code: code.into(), message: message.into() }
    }

    /// An error body from any [`dae_ir::CodedError`].
    pub fn from_coded(e: &dyn dae_ir::CodedError) -> ErrorBody {
        ErrorBody::new(e.code(), e.to_string())
    }
}

/// Serialises a success response line (no trailing newline).
pub fn ok_response(id: &JsonValue, result: JsonValue) -> String {
    JsonValue::Obj(vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), JsonValue::Bool(true)),
        ("result".to_string(), result),
    ])
    .to_json_string()
}

/// Serialises a success response line from an already-serialised result
/// object, skipping the tree build. Byte-identical to [`ok_response`]
/// because the JSON writer is canonical (compact, insertion-ordered).
pub fn ok_response_raw(id: &JsonValue, result_json: &str) -> String {
    let mut out = String::with_capacity(result_json.len() + 32);
    out.push_str("{\"id\":");
    out.push_str(&id.to_json_string());
    out.push_str(",\"ok\":true,\"result\":");
    out.push_str(result_json);
    out.push('}');
    out
}

/// Serialises an error response line (no trailing newline).
pub fn err_response(id: &JsonValue, error: &ErrorBody) -> String {
    JsonValue::Obj(vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), JsonValue::Bool(false)),
        (
            "error".to_string(),
            JsonValue::obj([
                ("code", error.code.as_str().into()),
                ("message", error.message.as_str().into()),
            ]),
        ),
    ])
    .to_json_string()
}

/// Parses one frame into a [`Request`].
///
/// Returns `Err((id, error))` on malformed frames; the id is whatever
/// could be recovered (or `null`), so the client can still correlate.
pub fn parse_request(line: &str) -> Result<Request, (JsonValue, ErrorBody)> {
    if line.len() > MAX_FRAME_BYTES {
        return Err((
            JsonValue::Null,
            ErrorBody::new(
                codes::TOO_LARGE,
                format!("frame is {} bytes, limit {}", line.len(), MAX_FRAME_BYTES),
            ),
        ));
    }
    let v = match parse(line) {
        Ok(v) => v,
        Err(e) => return Err((JsonValue::Null, ErrorBody::new(e.code(), e.to_string()))),
    };
    let id = v.get("id").cloned().unwrap_or(JsonValue::Null);
    let bad = |msg: &str| (id.clone(), ErrorBody::new(codes::BAD_REQUEST, msg));
    if v.as_obj().is_none() {
        return Err(bad("request must be a JSON object"));
    }
    let op_str =
        v.get("op").and_then(JsonValue::as_str).ok_or_else(|| bad("missing string field `op`"))?;
    let op = Op::parse(op_str).ok_or_else(|| {
        bad(&format!("unknown op `{op_str}` (compile/report/run/stats/profiles/health/shutdown)"))
    })?;
    let ir = match v.get("ir") {
        Some(JsonValue::Str(s)) => s.clone(),
        Some(_) => return Err(bad("field `ir` must be a string")),
        None if op.is_work() => return Err(bad(&format!("op `{op_str}` needs an `ir` field"))),
        None => String::new(),
    };
    let hints = match v.get("hints") {
        None => Vec::new(),
        Some(JsonValue::Arr(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for it in items {
                match it.as_f64() {
                    Some(f) if f.fract() == 0.0 && f.abs() <= 9e15 => out.push(f as i64),
                    _ => return Err(bad("field `hints` must be an array of integers")),
                }
            }
            out
        }
        Some(_) => return Err(bad("field `hints` must be an array of integers")),
    };
    let policy = match v.get("policy") {
        None => None,
        Some(JsonValue::Str(s)) => Some(s.clone()),
        Some(_) => return Err(bad("field `policy` must be a string")),
    };
    let deadline_ms = match v.get("deadline_ms") {
        None => 0,
        Some(d) => match d.as_f64() {
            Some(f) if f >= 0.0 && f.fract() == 0.0 && f <= 9e15 => f as u64,
            _ => return Err(bad("field `deadline_ms` must be a non-negative integer")),
        },
    };
    Ok(Request { id, op, ir, hints, policy, deadline_ms })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_and_tree_success_responses_are_byte_identical() {
        let id = JsonValue::Str("req-\"9\"".to_string());
        let result = JsonValue::obj([
            ("module", "task fn f()".into()),
            ("tasks", 2u64.into()),
            ("nested", JsonValue::Arr(vec![JsonValue::Null, 0.5f64.into()])),
        ]);
        assert_eq!(ok_response_raw(&id, &result.to_json_string()), ok_response(&id, result),);
    }

    #[test]
    fn parses_a_minimal_compile_request() {
        let r = parse_request(r#"{"id": 7, "op": "compile", "ir": "x"}"#).unwrap();
        assert_eq!(r.id, JsonValue::Num(7.0));
        assert_eq!(r.op, Op::Compile);
        assert_eq!(r.ir, "x");
        assert!(r.hints.is_empty());
        assert_eq!(r.deadline_ms, 0);
    }

    #[test]
    fn parses_full_run_request() {
        let r = parse_request(
            r#"{"id":"a-1","op":"run","ir":"t","hints":[1,2],"policy":"dae-minmax","deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(r.op, Op::Run);
        assert_eq!(r.hints, vec![1, 2]);
        assert_eq!(r.policy.as_deref(), Some("dae-minmax"));
        assert_eq!(r.deadline_ms, 250);
    }

    #[test]
    fn control_ops_need_no_ir() {
        for op in ["stats", "profiles", "health", "shutdown"] {
            let r = parse_request(&format!(r#"{{"id":1,"op":"{op}"}}"#)).unwrap();
            assert!(!r.op.is_work());
        }
    }

    #[test]
    fn malformed_frames_return_structured_errors() {
        let cases = [
            ("{not json", "json.parse"),
            ("[1,2]", "serve.bad-request"),
            (r#"{"id":1}"#, "serve.bad-request"),
            (r#"{"id":1,"op":"evaporate"}"#, "serve.bad-request"),
            (r#"{"id":1,"op":"compile"}"#, "serve.bad-request"),
            (r#"{"id":1,"op":"compile","ir":5}"#, "serve.bad-request"),
            (r#"{"id":1,"op":"compile","ir":"x","hints":["a"]}"#, "serve.bad-request"),
            (r#"{"id":1,"op":"compile","ir":"x","deadline_ms":-4}"#, "serve.bad-request"),
            (r#"{"id":1,"op":"run","ir":"x","policy":9}"#, "serve.bad-request"),
        ];
        for (line, want) in cases {
            let (_, e) = parse_request(line).unwrap_err();
            assert_eq!(e.code, want, "case {line}");
            assert!(!e.message.is_empty());
        }
    }

    #[test]
    fn recovered_id_survives_bad_requests() {
        let (id, _) = parse_request(r#"{"id": 42, "op": "noop"}"#).unwrap_err();
        assert_eq!(id, JsonValue::Num(42.0));
    }

    #[test]
    fn oversized_frame_is_refused_before_parsing() {
        let line = format!(r#"{{"op":"compile","ir":"{}"}}"#, "x".repeat(MAX_FRAME_BYTES));
        let (_, e) = parse_request(&line).unwrap_err();
        assert_eq!(e.code, codes::TOO_LARGE);
    }

    #[test]
    fn responses_echo_the_id_and_shape() {
        let id = JsonValue::Str("req-9".into());
        let ok = ok_response(&id, JsonValue::obj([("n", 3u64.into())]));
        let v = parse(&ok).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("req-9"));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("result").unwrap().get("n").unwrap().as_f64(), Some(3.0));
        let err = err_response(&id, &ErrorBody::new("serve.overloaded", "queue full"));
        let v = parse(&err).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("error").unwrap().get("code").unwrap().as_str(), Some("serve.overloaded"));
    }
}
