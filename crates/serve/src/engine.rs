//! The execution engine: untrusted IR text in, deterministic JSON out.
//!
//! One [`Engine`] is shared by every worker thread. It owns the one
//! [`dae_driver::Driver`] — and therefore the one content-addressed
//! incremental cache — so identical programs submitted by *different*
//! clients replay each other's compiles. Compilation runs under the driver
//! mutex (cheap when warm); simulation, the expensive part of a `run`
//! request, runs outside any lock.
//!
//! # Hardening
//!
//! The IR text is attacker-controlled, so the engine refuses before it
//! allocates: module global data is capped ([`EngineConfig::max_global_bytes`])
//! because the simulator materialises every global as a flat byte vector.
//! Runaway programs hit the interpreter's own step limit (`sim.step-limit`).
//! Any residual panic is caught at [`Engine::handle`]'s boundary and
//! becomes a `serve.internal` error response; the worker, the driver and
//! the cache all survive.
//!
//! # Determinism
//!
//! Successful responses contain only content-derived data: printed IR,
//! strategy reports, and virtual-time run reports. Cache temperature,
//! worker count and queue state are deliberately invisible — the bytes for
//! a given request are identical cold or warm, which is what the e2e suite
//! checks against a fresh single-use engine.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dae_core::{CompilerOptions, Strategy};
use dae_driver::{Driver, DriverConfig, Fnv64};
use dae_ir::{parse::parse_module, print_module, verify_module, FuncId, Function, Module};
use dae_pgo::{ProfileCollector, ProfileStore};
use dae_runtime::{run_workload, run_workload_profiled, FreqPolicy, RuntimeConfig, TaskInstance};
use dae_sim::{EngineKind, Val};
use dae_trace::json::JsonValue;

use crate::proto::{codes, ErrorBody, Op, Request};

/// Schema tag of the `profiles` result object.
pub const PROFILES_SCHEMA: &str = "dae-serve-profiles/1";

/// Modules remembered for background recompilation (most recent first;
/// deduplicated by content).
const RECENT_MODULES_CAP: usize = 32;

/// Engine construction knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Driver configuration (cache directory, in-memory byte budget).
    /// `jobs` is forced to 1: parallelism comes from concurrent requests,
    /// not from fan-out inside one compile.
    pub driver: DriverConfig,
    /// Upper bound on a module's total global data, in bytes. The
    /// simulator allocates globals eagerly, so this is the lever that
    /// keeps a hostile `global huge[9e18]` from becoming an OOM.
    pub max_global_bytes: u64,
    /// Byte budget (approximate) of the response cache. Responses are
    /// pure functions of the request, so a repeated request is answered
    /// from here without even re-parsing the IR.
    pub resp_max_bytes: usize,
    /// Dynamic-instruction budget per simulated phase. Untrusted IR can
    /// loop forever in virtual time; this converts a hostile spin into a
    /// prompt `sim.step-limit` error instead of a captive worker. The
    /// default leaves honest workloads three orders of magnitude of
    /// headroom.
    pub max_steps: u64,
    /// Execution engine for simulated phases. Responses are identical
    /// either way (the engines are observationally equivalent), so the
    /// choice does not participate in the response-cache key.
    pub engine: EngineKind,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            driver: DriverConfig::default(),
            max_global_bytes: 256 << 20,
            resp_max_bytes: 32 << 20,
            max_steps: 10_000_000,
            engine: EngineKind::default(),
        }
    }
}

/// The shared compile-and-simulate executor behind every worker.
pub struct Engine {
    driver: Mutex<Driver>,
    resp: Mutex<ResponseCache>,
    pgo: Mutex<PgoState>,
    recompiles_started: AtomicU64,
    recompiles_completed: AtomicU64,
    recompiles_swapped: AtomicU64,
    max_global_bytes: u64,
    max_steps: u64,
    engine: EngineKind,
}

/// Profile state accumulated from `run` requests: the in-memory store
/// (keyed by base compile key) plus the modules worth recompiling when
/// the profile picture changes.
struct PgoState {
    store: ProfileStore,
    recent: VecDeque<RecentModule>,
    /// Content hash of the store the last recompile pass saw; an
    /// unchanged hash makes the next pass a no-op.
    last_hash: u64,
}

/// One remembered module: everything a background recompile needs.
#[derive(Clone)]
struct RecentModule {
    /// Fnv64 over `ir` + `hints` — the dedup key.
    key: u64,
    ir: String,
    hints: Vec<i64>,
}

impl Engine {
    /// An engine with a fresh driver (and therefore a cold cache).
    pub fn new(config: &EngineConfig) -> Engine {
        let driver_cfg = DriverConfig { jobs: 1, ..config.driver.clone() };
        Engine {
            driver: Mutex::new(Driver::new(&driver_cfg)),
            resp: Mutex::new(ResponseCache::new(config.resp_max_bytes)),
            pgo: Mutex::new(PgoState {
                store: ProfileStore::new(),
                recent: VecDeque::new(),
                last_hash: 0,
            }),
            recompiles_started: AtomicU64::new(0),
            recompiles_completed: AtomicU64::new(0),
            recompiles_swapped: AtomicU64::new(0),
            max_global_bytes: config.max_global_bytes,
            max_steps: config.max_steps,
            engine: config.engine,
        }
    }

    /// Handles one work request end to end. Never panics: layer errors
    /// come back as their stable codes, panics as [`codes::INTERNAL`].
    ///
    /// Convenience wrapper over [`Engine::handle_raw`] for callers that
    /// want a structured result; the hot serving path uses the raw form.
    pub fn handle(&self, req: &Request) -> Result<JsonValue, ErrorBody> {
        self.handle_raw(req)
            .map(|s| dae_trace::json::parse(&s).expect("cached responses are canonical JSON"))
    }

    /// Handles one work request, returning the `result` object already
    /// serialised.
    ///
    /// Successful responses are pure functions of the request (that is
    /// the protocol's determinism contract), so their bytes are memoised:
    /// a byte-identical request — whoever sends it — is answered from the
    /// response cache without re-parsing the IR or re-printing the JSON.
    pub fn handle_raw(&self, req: &Request) -> Result<Arc<String>, ErrorBody> {
        let key = request_key(req);
        if let Some(result) = lock(&self.resp).get(key) {
            return Ok(result);
        }
        self.miss(req, key)
    }

    /// Response-cache-only lookup, for the server's reader-thread fast
    /// path: a hit is counted and LRU-touched, a miss is *not* counted
    /// (the request proceeds to a worker, whose [`Engine::handle_raw`]
    /// call counts it exactly once).
    pub fn cached_response(&self, req: &Request) -> Option<Arc<String>> {
        lock(&self.resp).peek(request_key(req))
    }

    fn miss(&self, req: &Request, key: u64) -> Result<Arc<String>, ErrorBody> {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.dispatch(req)));
        match outcome {
            Ok(Ok(result)) => {
                let bytes = Arc::new(result.to_json_string());
                lock(&self.resp).insert(key, &bytes);
                Ok(bytes)
            }
            Ok(Err(e)) => Err(e),
            Err(payload) => {
                let what = panic_message(&payload);
                Err(ErrorBody::new(codes::INTERNAL, format!("handler panicked: {what}")))
            }
        }
    }

    /// The execution engine simulated `run` requests use.
    pub fn kind(&self) -> EngineKind {
        self.engine
    }

    /// Response-cache counters only (hits, misses, bytes) — cheap enough
    /// for the `health` fast path: unlike [`Engine::cache_json`] it never
    /// touches the driver lock, so a health probe cannot stall behind a
    /// long compile.
    pub fn resp_cache_json(&self) -> JsonValue {
        let r = lock(&self.resp);
        JsonValue::obj([
            ("resp_hits", r.hits.into()),
            ("resp_misses", r.misses.into()),
            ("resp_used_bytes", r.used_bytes.into()),
        ])
    }

    /// Lifetime cache counters and memory-tier occupancy, for `stats`.
    pub fn cache_json(&self) -> JsonValue {
        let (resp_hits, resp_misses, resp_used) = {
            let r = lock(&self.resp);
            (r.hits, r.misses, r.used_bytes)
        };
        let driver = self.lock_driver();
        let s = driver.cache_stats();
        JsonValue::obj([
            ("mem_hits", s.mem_hits.into()),
            ("disk_hits", s.disk_hits.into()),
            ("misses", s.misses.into()),
            ("evictions", s.evictions.into()),
            ("mem_used_bytes", driver.cache_mem_used_bytes().into()),
            ("resp_hits", resp_hits.into()),
            ("resp_misses", resp_misses.into()),
            ("resp_used_bytes", resp_used.into()),
        ])
    }

    fn dispatch(&self, req: &Request) -> Result<JsonValue, ErrorBody> {
        let (module, map_json) = self.compile(req)?;
        match req.op {
            Op::Compile => Ok(map_json.compile_result(&module)),
            Op::Report => Ok(map_json.report_result(&module)),
            Op::Run => self.run(req, &module, &map_json),
            // Control ops never reach the engine.
            Op::Stats | Op::Profiles | Op::Health | Op::Shutdown => {
                Err(ErrorBody::new(codes::BAD_REQUEST, "control op routed to a worker"))
            }
        }
    }

    /// Parses, verifies, caps and compiles the module.
    fn compile(&self, req: &Request) -> Result<(Module, Compiled), ErrorBody> {
        let mut module = parse_module(&req.ir).map_err(|e| ErrorBody::from_coded(&e))?;
        verify_module(&module).map_err(|e| ErrorBody::from_coded(&e))?;
        let mut global_bytes: u64 = 0;
        for (_, g) in module.globals() {
            global_bytes = global_bytes.saturating_add(g.size_bytes());
        }
        if global_bytes > self.max_global_bytes {
            return Err(ErrorBody::new(
                codes::MODULE_TOO_LARGE,
                format!(
                    "module declares {global_bytes} bytes of global data, limit {}",
                    self.max_global_bytes
                ),
            ));
        }
        let tasks = module.task_ids();
        if tasks.is_empty() {
            return Err(ErrorBody::new(codes::BAD_REQUEST, "module contains no `task fn`"));
        }
        let hints = req.hints.clone();
        let outcome = {
            let mut driver = self.lock_driver();
            driver.compile(&mut module, |_, f: &Function| CompilerOptions {
                param_hints: if hints.len() == f.params.len() {
                    hints.clone()
                } else {
                    vec![0; f.params.len()]
                },
                ..CompilerOptions::default()
            })
        };
        verify_module(&module).map_err(|e| ErrorBody::from_coded(&e))?;
        Ok((module, Compiled { tasks, outcome }))
    }

    fn run(&self, req: &Request, module: &Module, c: &Compiled) -> Result<JsonValue, ErrorBody> {
        let base =
            RuntimeConfig::paper_default().with_max_steps(self.max_steps).with_engine(self.engine);
        let policy = match &req.policy {
            None => FreqPolicy::DaeOptimal,
            Some(spec) => FreqPolicy::parse(spec, &base.table)
                .map_err(|msg| ErrorBody::new(codes::BAD_REQUEST, msg))?,
        };
        // Per-task comparison: coupled baseline at fmax vs decoupled under
        // the requested policy — the service twin of `daec --run`.
        let mut per_task = Vec::with_capacity(c.tasks.len());
        for &task in &c.tasks {
            let f = module.func(task);
            let argv = argv_for(f, &req.hints);
            let cae = vec![TaskInstance::coupled(task, argv.clone())];
            let r1 = run_workload(module, &cae, &base).map_err(|e| ErrorBody::from_coded(&e))?;
            let mut entry = vec![
                ("task".to_string(), JsonValue::from(f.name.as_str())),
                ("cae".to_string(), headline(&r1)),
            ];
            match c.outcome.map.access(task) {
                Some(access) => {
                    let dae = vec![TaskInstance::decoupled(task, access, argv)];
                    let r2 = run_workload(module, &dae, &base.clone().with_policy(policy))
                        .map_err(|e| ErrorBody::from_coded(&e))?;
                    entry.push(("dae".to_string(), headline(&r2)));
                    entry.push((
                        "edp_delta_percent".to_string(),
                        ((r2.edp() / r1.edp() - 1.0) * 100.0).into(),
                    ));
                }
                None => entry.push(("dae".to_string(), JsonValue::Null)),
            }
            per_task.push(JsonValue::Obj(entry));
        }
        // One whole-module run — every task instance, decoupled where an
        // access phase exists — reported in full (`RunReport::to_json`).
        // Compile/cache statistics are deliberately not attached: they
        // vary with cache temperature and the report must not.
        let insts: Vec<TaskInstance> = c
            .tasks
            .iter()
            .map(|&t| {
                let argv = argv_for(module.func(t), &req.hints);
                match c.outcome.map.access(t) {
                    Some(a) => TaskInstance::decoupled(t, a, argv),
                    None => TaskInstance::coupled(t, argv),
                }
            })
            .collect();
        let cfg = base.clone().with_policy(policy);
        // The whole-module run doubles as profile collection: the phase
        // counters ride along without changing the report (the collector
        // only observes), so the response bytes stay exactly what
        // `run_workload` would produce.
        let mut col = ProfileCollector::new();
        let report = run_workload_profiled(module, &insts, &cfg, &mut col)
            .map_err(|e| ErrorBody::from_coded(&e))?;
        self.absorb_profiles(req, c, col);
        Ok(JsonValue::obj([
            ("policy", cfg.policy.label(&cfg.table).into()),
            ("tasks", JsonValue::Arr(per_task)),
            ("report", report.to_json()),
        ]))
    }

    /// Folds one run's collected profiles into the store (keyed by the
    /// task's *base* compile key) and remembers the module for the
    /// background recompile worker.
    fn absorb_profiles(&self, req: &Request, c: &Compiled, mut col: ProfileCollector) {
        if col.is_empty() {
            return;
        }
        let mut mkey = Fnv64::new();
        mkey.write_str(&req.ir);
        mkey.write_u64(req.hints.len() as u64);
        for &v in &req.hints {
            mkey.write_i64(v);
        }
        let mkey = mkey.finish();
        let mut st = lock_pgo(&self.pgo);
        for (func, p) in col.take() {
            if let Some(&key) = c.outcome.keys.get(&func) {
                st.store.merge_record(key, &p);
            }
        }
        st.recent.retain(|m| m.key != mkey);
        st.recent.push_front(RecentModule {
            key: mkey,
            ir: req.ir.clone(),
            hints: req.hints.clone(),
        });
        st.recent.truncate(RECENT_MODULES_CAP);
    }

    /// One background recompile pass: if the profile picture changed since
    /// the last pass, recompile every remembered module with the profiles
    /// applied. Refined artifacts land in the shared incremental cache
    /// under their *refined* keys — publication is one `Cache::insert`, so
    /// the serving path (which probes base keys) never observes a torn
    /// swap and responses stay byte-identical throughout.
    ///
    /// Returns the number of tasks that compiled against a profile.
    pub fn recompile_pass(&self) -> usize {
        let (snapshot, jobs) = {
            let mut st = lock_pgo(&self.pgo);
            let snap = st.store.snapshot();
            if snap.is_empty() {
                return 0;
            }
            let hash = snap.content_hash();
            if hash == st.last_hash {
                return 0;
            }
            st.last_hash = hash;
            (snap, st.recent.iter().cloned().collect::<Vec<_>>())
        };
        let mut refined_tasks = 0usize;
        for m in jobs {
            self.recompiles_started.fetch_add(1, Ordering::Relaxed);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut module = parse_module(&m.ir).ok()?;
                verify_module(&module).ok()?;
                let hints = m.hints.clone();
                let mut driver = self.lock_driver();
                let prev = driver.set_profiles(snapshot.clone());
                let outcome = driver.compile(&mut module, |_, f: &Function| CompilerOptions {
                    param_hints: if hints.len() == f.params.len() {
                        hints.clone()
                    } else {
                        vec![0; f.params.len()]
                    },
                    ..CompilerOptions::default()
                });
                driver.set_profiles(prev);
                Some(outcome.refined)
            }));
            if let Ok(Some(refined)) = result {
                self.recompiles_completed.fetch_add(1, Ordering::Relaxed);
                self.recompiles_swapped.fetch_add(refined as u64, Ordering::Relaxed);
                refined_tasks += refined;
            }
        }
        refined_tasks
    }

    /// Compact profile/recompile counters for `health` and `stats` — no
    /// driver lock, so probes never stall behind a compile.
    pub fn pgo_json(&self) -> JsonValue {
        let (records, recent) = {
            let st = lock_pgo(&self.pgo);
            (st.store.len(), st.recent.len())
        };
        JsonValue::obj([
            ("profile_records", records.into()),
            ("recent_modules", recent.into()),
            ("recompiles_started", self.recompiles_started.load(Ordering::Relaxed).into()),
            ("recompiles_completed", self.recompiles_completed.load(Ordering::Relaxed).into()),
            ("recompiles_swapped", self.recompiles_swapped.load(Ordering::Relaxed).into()),
        ])
    }

    /// The `profiles` result object: every resident profile record
    /// (derived metrics included) plus store and recompile counters.
    pub fn profiles_json(&self) -> JsonValue {
        let st = lock_pgo(&self.pgo);
        let records: Vec<JsonValue> =
            st.store.snapshot().iter().map(|(&k, p)| p.summary_json(k)).collect();
        let s = st.store.stats();
        JsonValue::obj([
            ("schema", PROFILES_SCHEMA.into()),
            ("records", JsonValue::Arr(records)),
            (
                "store",
                JsonValue::obj([
                    ("resident", s.resident.into()),
                    ("merged", s.merged.into()),
                    ("skipped_records", s.skipped_records.into()),
                    ("evicted", s.evicted.into()),
                ]),
            ),
            ("recent_modules", st.recent.len().into()),
            (
                "recompiles",
                JsonValue::obj([
                    ("started", self.recompiles_started.load(Ordering::Relaxed).into()),
                    ("completed", self.recompiles_completed.load(Ordering::Relaxed).into()),
                    ("swapped", self.recompiles_swapped.load(Ordering::Relaxed).into()),
                ]),
            ),
        ])
    }

    fn lock_driver(&self) -> std::sync::MutexGuard<'_, Driver> {
        // A panic inside `handle` is already converted to an error
        // response; the driver's own state is only ever mutated through
        // `Cache::insert`, which is atomic per artifact, so recovering the
        // poisoned lock is safe.
        self.driver.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Content key of one work request: everything the response depends on.
/// The `id` is deliberately excluded — it only decorates the envelope.
///
/// Public because the gateway (`dae-gate`) routes on exactly this key:
/// consistent-hash routing on the response-cache key is what makes a
/// repeated request land on the backend that already memoised it.
pub fn request_key(req: &Request) -> u64 {
    let mut h = Fnv64::new();
    h.write(&[req.op as u8]);
    h.write_str(&req.ir);
    h.write_u64(req.hints.len() as u64);
    for &v in &req.hints {
        h.write_i64(v);
    }
    h.write_str(req.policy.as_deref().unwrap_or(""));
    h.finish()
}

/// A byte-bounded LRU of memoised, already-serialised `result` objects,
/// keyed by [`request_key`]. Only successes are cached: errors are cheap
/// to recompute and must not pin the budget.
struct ResponseCache {
    map: HashMap<u64, Arc<String>>,
    order: VecDeque<u64>,
    used_bytes: usize,
    max_bytes: usize,
    hits: u64,
    misses: u64,
}

impl ResponseCache {
    fn new(max_bytes: usize) -> ResponseCache {
        ResponseCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            used_bytes: 0,
            max_bytes: max_bytes.max(1),
            hits: 0,
            misses: 0,
        }
    }

    fn get(&mut self, key: u64) -> Option<Arc<String>> {
        let hit = self.peek(key);
        if hit.is_none() {
            self.misses += 1;
        }
        hit
    }

    /// Like [`ResponseCache::get`] but a miss is not counted.
    fn peek(&mut self, key: u64) -> Option<Arc<String>> {
        match self.map.get(&key) {
            Some(s) => {
                let s = Arc::clone(s);
                self.hits += 1;
                self.order.retain(|k| *k != key);
                self.order.push_back(key);
                Some(s)
            }
            None => None,
        }
    }

    fn insert(&mut self, key: u64, result: &Arc<String>) {
        if let Some(old) = self.map.insert(key, Arc::clone(result)) {
            self.used_bytes -= old.len();
            self.order.retain(|k| *k != key);
        }
        self.used_bytes += result.len();
        self.order.push_back(key);
        // Evict from the cold end; the sole newest entry never evicts
        // itself, so one oversized response still caches.
        while self.used_bytes > self.max_bytes && self.order.len() > 1 {
            let victim = self.order.pop_front().expect("non-empty");
            if let Some(s) = self.map.remove(&victim) {
                self.used_bytes -= s.len();
            }
        }
    }
}

fn lock(m: &Mutex<ResponseCache>) -> std::sync::MutexGuard<'_, ResponseCache> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn lock_pgo(m: &Mutex<PgoState>) -> std::sync::MutexGuard<'_, PgoState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A compiled module's task list and driver outcome.
struct Compiled {
    tasks: Vec<FuncId>,
    outcome: dae_driver::CompileOutcome,
}

impl Compiled {
    /// `compile` result: the printed module plus deterministic counts.
    fn compile_result(&self, module: &Module) -> JsonValue {
        JsonValue::obj([
            ("module", print_module(module).into()),
            ("tasks", self.outcome.tasks.into()),
            ("generated", self.outcome.generated.into()),
            ("refused", self.outcome.refused.into()),
        ])
    }

    /// `report` result: per-task strategy and statistics.
    fn report_result(&self, module: &Module) -> JsonValue {
        let map = &self.outcome.map;
        let tasks: Vec<JsonValue> = self
            .tasks
            .iter()
            .map(|task| {
                let name = module.func(*task).name.as_str();
                match map.strategy_of.get(task) {
                    Some(Strategy::Polyhedral(s)) => JsonValue::obj([
                        ("task", name.into()),
                        ("strategy", "polyhedral".into()),
                        ("n_orig", s.n_orig.into()),
                        ("n_conv_un", s.n_conv_un.into()),
                        ("classes", s.classes.into()),
                        ("nests", s.nests.into()),
                        ("orig_depth", s.orig_depth.into()),
                        ("gen_depth", s.gen_depth.into()),
                    ]),
                    Some(Strategy::Skeleton) => {
                        let info = &map.info_of[task];
                        JsonValue::obj([
                            ("task", name.into()),
                            ("strategy", "skeleton".into()),
                            ("loops_affine", info.loops_affine.into()),
                            ("loops_total", info.loops_total.into()),
                            ("total_loads", info.total_loads.into()),
                            ("non_affine_loads", info.non_affine_loads.into()),
                        ])
                    }
                    None => JsonValue::obj([
                        ("task", name.into()),
                        ("strategy", "refused".into()),
                        ("reason", map.refused[task].to_string().into()),
                    ]),
                }
            })
            .collect();
        JsonValue::obj([
            ("tasks", JsonValue::Arr(tasks)),
            ("generated", self.outcome.generated.into()),
            ("refused", self.outcome.refused.into()),
        ])
    }
}

/// Headline metrics of one run: the stable triple every client wants.
fn headline(r: &dae_runtime::RunReport) -> JsonValue {
    JsonValue::obj([
        ("time_s", r.time_s.into()),
        ("energy_j", r.energy_j.into()),
        ("edp", r.edp().into()),
    ])
}

/// Argument vector for one task invocation: integer hints positionally,
/// zero elsewhere (mirrors `daec`).
fn argv_for(f: &Function, hints: &[i64]) -> Vec<Val> {
    f.params
        .iter()
        .enumerate()
        .map(|(i, t)| match t {
            dae_ir::Type::F64 => Val::F(0.0),
            _ => Val::I(hints.get(i).copied().unwrap_or(0)),
        })
        .collect()
}

/// Best-effort text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "non-string panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::parse_request;

    const STREAM: &str = "\
global g0 a : 4096 x f64

task fn stream(arg0: i64) {
bb0:
  jump bb1(0)
bb1(bb1p0: i64):
  v0: bool = icmp lt bb1p0, 1024
  br v0, bb2, bb3
bb2:
  v1: i64 = iadd arg0, bb1p0
  v2: i64 = imul v1, 8
  v3: ptr = ptradd @g0, v2
  v4: f64 = load v3
  v5: f64 = fmul v4, 2.0
  store v3, v5
  v6: i64 = iadd bb1p0, 1
  jump bb1(v6)
bb3:
  ret
}
";

    fn req(json: &str) -> Request {
        parse_request(json).expect("valid request")
    }

    fn run_req(op: &str) -> Request {
        let frame = JsonValue::obj([
            ("id", 1u64.into()),
            ("op", op.into()),
            ("ir", STREAM.into()),
            ("hints", JsonValue::Arr(vec![64u64.into()])),
        ]);
        req(&frame.to_json_string())
    }

    #[test]
    fn compile_run_report_share_one_cache_and_stay_deterministic() {
        let engine = Engine::new(&EngineConfig::default());
        let cold = engine.handle(&run_req("compile")).unwrap();
        let warm = engine.handle(&run_req("compile")).unwrap();
        assert_eq!(
            cold.to_json_string(),
            warm.to_json_string(),
            "cache temperature must be invisible"
        );
        assert!(cold.get("module").unwrap().as_str().unwrap().contains("stream__access"));
        // The warm compile was served from the response cache without
        // touching the driver again (one artifact miss total).
        let stats = engine.cache_json();
        assert_eq!(stats.get("resp_hits").unwrap().as_f64(), Some(1.0));
        assert_eq!(stats.get("resp_misses").unwrap().as_f64(), Some(1.0));
        assert_eq!(stats.get("misses").unwrap().as_f64(), Some(1.0));
        assert_eq!(stats.get("mem_hits").unwrap().as_f64(), Some(0.0));
        assert!(stats.get("resp_used_bytes").unwrap().as_f64().unwrap() > 0.0);
        // Report + run also answer.
        let rep = engine.handle(&run_req("report")).unwrap();
        let t = &rep.get("tasks").unwrap().as_arr().unwrap()[0];
        assert_eq!(t.get("strategy").unwrap().as_str(), Some("polyhedral"));
        let run = engine.handle(&run_req("run")).unwrap();
        assert_eq!(run.get("policy").unwrap().as_str(), Some("dae-optimal"));
        let per = &run.get("tasks").unwrap().as_arr().unwrap()[0];
        assert!(per.get("dae").unwrap().get("edp").unwrap().as_f64().unwrap() > 0.0);
        assert!(run.get("report").unwrap().get("time_s").unwrap().as_f64().unwrap() > 0.0);
        assert!(run.get("report").unwrap().get("compile").is_none(), "no volatile counters");
    }

    #[test]
    fn engine_responses_match_a_fresh_engine_per_request() {
        let shared = Engine::new(&EngineConfig::default());
        for op in ["compile", "report", "run"] {
            let warmup = shared.handle(&run_req(op)).unwrap();
            let again = shared.handle(&run_req(op)).unwrap();
            let fresh = Engine::new(&EngineConfig::default()).handle(&run_req(op)).unwrap();
            assert_eq!(warmup.to_json_string(), fresh.to_json_string(), "op {op} cold == shared");
            assert_eq!(again.to_json_string(), fresh.to_json_string(), "op {op} warm == cold");
        }
    }

    #[test]
    fn layer_errors_surface_with_stable_codes() {
        let engine = Engine::new(&EngineConfig::default());
        let e = engine.handle(&req(r#"{"id":1,"op":"compile","ir":"task fn"}"#)).unwrap_err();
        assert_eq!(e.code, "ir.parse");
        let e = engine
            .handle(&req(r#"{"id":1,"op":"compile","ir":"fn helper() {\nbb0:\n  ret\n}\n"}"#))
            .unwrap_err();
        assert_eq!(e.code, codes::BAD_REQUEST, "no tasks");
        let frame = JsonValue::obj([
            ("id", 1u64.into()),
            ("op", "run".into()),
            ("ir", STREAM.into()),
            ("policy", "warp-speed".into()),
        ]);
        let e = engine.handle(&req(&frame.to_json_string())).unwrap_err();
        assert_eq!(e.code, codes::BAD_REQUEST, "bad policy");
    }

    #[test]
    fn run_requests_feed_profiles_and_recompiles_stay_invisible() {
        let engine = Engine::new(&EngineConfig::default());
        // No runs yet: empty store, recompile pass is a no-op.
        assert_eq!(engine.recompile_pass(), 0);
        let p = engine.profiles_json();
        assert_eq!(p.get("schema").unwrap().as_str(), Some(PROFILES_SCHEMA));
        assert!(p.get("records").unwrap().as_arr().unwrap().is_empty());
        // A run request collects one profile record per task.
        let before = engine.handle(&run_req("run")).unwrap().to_json_string();
        let p = engine.profiles_json();
        assert_eq!(p.get("records").unwrap().as_arr().unwrap().len(), 1);
        let rec = &p.get("records").unwrap().as_arr().unwrap()[0];
        assert!(rec.get("runs").unwrap().as_f64().unwrap() >= 1.0);
        // The recompile pass sees the changed profile picture once.
        let refined = engine.recompile_pass();
        assert!(refined >= 1, "the profiled module should recompile refined");
        assert_eq!(engine.recompile_pass(), 0, "unchanged profiles are a no-op");
        let pg = engine.pgo_json();
        assert_eq!(pg.get("recompiles_started").unwrap().as_f64(), Some(1.0));
        assert_eq!(pg.get("recompiles_completed").unwrap().as_f64(), Some(1.0));
        assert!(pg.get("recompiles_swapped").unwrap().as_f64().unwrap() >= 1.0);
        // Hot swap is client-invisible: the same requests answer with the
        // same bytes as before the swap and as a fresh engine.
        let after = engine.handle(&run_req("run")).unwrap().to_json_string();
        assert_eq!(before, after, "swap must not change run responses");
        let fresh = Engine::new(&EngineConfig::default());
        for op in ["compile", "report", "run"] {
            assert_eq!(
                engine.handle(&run_req(op)).unwrap().to_json_string(),
                fresh.handle(&run_req(op)).unwrap().to_json_string(),
                "op {op} after swap == fresh engine"
            );
        }
    }

    #[test]
    fn huge_globals_are_refused_before_allocation() {
        let engine = Engine::new(&EngineConfig::default());
        let ir = "global g0 big : 9000000000000000 x f64\n\n\
                  task fn t() {\nbb0:\n  v0: ptr = ptradd @g0, 0\n  store v0, 1.0\n  ret\n}\n";
        let frame = JsonValue::obj([("id", 1u64.into()), ("op", "run".into()), ("ir", ir.into())]);
        let e = engine.handle(&req(&frame.to_json_string())).unwrap_err();
        assert_eq!(e.code, codes::MODULE_TOO_LARGE);
    }
}
