//! # dae-serve — the concurrent compile-and-simulate service
//!
//! A std-only TCP daemon that accepts untrusted DAE IR text over
//! newline-delimited JSON and serves six request types: `compile`,
//! `report`, `run` (the work ops), plus `stats`, `profiles` and `health`
//! (control ops), with `shutdown` starting a graceful drain. Two binaries ship on
//! top: `daed` (the daemon) and `dae-load` (a deterministic seeded load
//! generator producing `BENCH_serve_*.json`).
//!
//! The moving parts, one module each:
//!
//! * [`proto`] — the wire protocol: framing, request validation, the
//!   stable `serve.*` error-code vocabulary, and the determinism contract
//!   (successful response bytes never depend on cache temperature, worker
//!   count or queue state).
//! * [`queue`] — the bounded admission queue: full means *shed now* with
//!   `serve.overloaded`, never buffer-and-pray; closed means *drain*.
//! * [`engine`] — the shared executor: one `dae-driver` (one incremental
//!   cache) behind a mutex for compiles, simulation outside any lock,
//!   input hardening (global-data cap, frame cap, panic containment).
//! * [`server`] — the daemon: per-connection reader threads, a worker
//!   pool, per-request deadlines, live metrics, graceful drain on
//!   `shutdown`/SIGTERM.
//! * [`metrics`] — counters and log-bucketed latency histograms behind the
//!   `stats` endpoint.
//! * [`load`] — the seeded load generator and the multi-worker-count
//!   benchmark harness.
//!
//! # Protocol at a glance
//!
//! ```text
//! $ printf '{"id":1,"op":"health"}\n' | nc 127.0.0.1 7777
//! {"id":1,"ok":true,"result":{"schema":"dae-serve-health/3","status":"ok",...}}
//! ```
//!
//! Work requests carry the IR inline and answer with either a `result`
//! (printed module, strategy report, or run report in deterministic
//! virtual time) or a structured `error` with a stable machine-readable
//! `code` — the server never drops a frame silently and never panics on
//! adversarial input.

#![warn(missing_docs)]

pub mod engine;
pub mod load;
pub mod metrics;
pub mod proto;
pub mod queue;
pub mod server;

pub use dae_driver::Fnv64;
pub use dae_sim::EngineKind;
pub use engine::{request_key, Engine, EngineConfig, PROFILES_SCHEMA};
pub use load::{bench_workers, run_load, LoadConfig, LoadReport, Mix};
pub use metrics::{Metrics, STATS_SCHEMA};
pub use proto::{
    codes, err_response, ok_response, ok_response_raw, parse_request, ErrorBody, Op, Request,
    MAX_FRAME_BYTES,
};
pub use queue::{Push, Queue};
pub use server::{
    install_signal_drain, signal_drain_requested, Server, ServerConfig, HEALTH_SCHEMA,
};
