//! A single set-associative cache with LRU replacement.

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.assoc as u64 * self.line_bytes)
    }
}

/// Hit/miss counters of one level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses occurred.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// Outcome of one cache access: whether it hit, and a dirty line evicted
/// to make room (write-back traffic for the next level).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The line was already resident.
    pub hit: bool,
    /// A dirty victim was evicted (its line number).
    pub evicted_dirty: Option<u64>,
}

/// Dirty flag, packed into the top bit of a slot (line numbers are
/// `addr >> line_shift`, so bit 63 is never part of a real line).
const DIRTY: u64 = 1 << 63;

/// Sentinel line number for an empty way (all 63 line bits set — a real
/// line that large would need a memory beyond any simulated address
/// space).
const INVALID_LINE: u64 = u64::MAX >> 1;

/// One set-associative LRU write-back cache. Tracks line presence and dirty
/// state only — data lives in the simulator's flat memory.
///
/// Storage is a single flat slot array (`num_sets * assoc` entries,
/// MRU-first within each set, empty ways as trailing sentinels) and the
/// line/set extraction uses precomputed shift/mask values — this sits on
/// the simulator's per-load hot path, so no divisions and no per-set
/// allocations.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// `log2(line_bytes)`.
    line_shift: u32,
    /// `num_sets - 1` when the set count is a power of two, else 0 and
    /// [`Cache::set_mod`] is the modulus.
    set_mask: u64,
    /// Modulus for non-power-of-two set counts (0 when `set_mask` is used).
    set_mod: u64,
    /// `num_sets * assoc` slots of `line | dirty-bit`, MRU-first per set
    /// (one 64-bit word per way keeps a whole 8-way set in one cache line
    /// of the host).
    slots: Vec<u64>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible into
    /// sets, or line size not a power of two).
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(cfg.assoc > 0, "associativity must be positive");
        assert_eq!(
            cfg.size_bytes % (cfg.assoc as u64 * cfg.line_bytes),
            0,
            "size must divide into sets"
        );
        let num_sets = cfg.num_sets();
        let (set_mask, set_mod) =
            if num_sets.is_power_of_two() { (num_sets - 1, 0) } else { (0, num_sets) };
        Cache {
            cfg,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask,
            set_mod,
            slots: vec![INVALID_LINE; (num_sets as usize) * cfg.assoc],
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears counters (keeps contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Empties the cache (keeps counters).
    pub fn flush(&mut self) {
        self.slots.fill(INVALID_LINE);
    }

    #[inline]
    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// First slot index of the set holding `line`.
    #[inline]
    fn set_start(&self, line: u64) -> usize {
        let set = if self.set_mod == 0 { line & self.set_mask } else { line % self.set_mod };
        set as usize * self.cfg.assoc
    }

    #[inline]
    fn set_of(&self, line: u64) -> &[u64] {
        let s = self.set_start(line);
        &self.slots[s..s + self.cfg.assoc]
    }

    #[inline]
    fn set_of_mut(&mut self, line: u64) -> &mut [u64] {
        let s = self.set_start(line);
        &mut self.slots[s..s + self.cfg.assoc]
    }

    /// `log2(line_bytes)` — for callers that need the line number of an
    /// address without a division.
    #[inline]
    pub(crate) fn line_shift(&self) -> u32 {
        self.line_shift
    }

    /// Accesses `addr`; returns `true` on hit. On miss the line is filled
    /// clean (LRU eviction). Convenience wrapper over [`Cache::access_full`].
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_full(addr, false).hit
    }

    /// Accesses `addr`, marking the line dirty when `write` is set. On miss
    /// the line is filled (dirty iff `write`); the LRU victim's dirty state
    /// is reported so callers can model write-back traffic.
    #[inline]
    pub fn access_full(&mut self, addr: u64, write: bool) -> AccessOutcome {
        let line = self.line_of(addr);
        let set = self.set_of_mut(line);
        if let Some(pos) = set.iter().position(|&s| s & !DIRTY == line) {
            // Move to MRU position, accumulating dirtiness.
            let d = set[pos] & DIRTY;
            set[..=pos].rotate_right(1);
            set[0] = line | d | ((write as u64) << 63);
            self.stats.hits += 1;
            AccessOutcome { hit: true, evicted_dirty: None }
        } else {
            // The LRU victim is the last way; empty ways are sentinels that
            // always sit at the tail, so a non-full set evicts nothing.
            let victim = set[set.len() - 1];
            set.rotate_right(1);
            set[0] = line | ((write as u64) << 63);
            self.stats.misses += 1;
            let evicted_dirty = if victim & !DIRTY != INVALID_LINE && victim & DIRTY != 0 {
                Some(victim & !DIRTY)
            } else {
                None
            };
            AccessOutcome { hit: false, evicted_dirty }
        }
    }

    /// Marks the line containing `addr` dirty if resident (used to sink a
    /// lower level's write-back); returns whether it was resident.
    #[inline]
    pub fn mark_dirty_line(&mut self, line: u64) -> bool {
        if let Some(entry) = self.set_of_mut(line).iter_mut().find(|s| **s & !DIRTY == line) {
            *entry |= DIRTY;
            true
        } else {
            false
        }
    }

    /// True if the line containing `addr` is resident (no state change, no
    /// stat update).
    pub fn probe(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        self.set_of(line).iter().any(|&s| s & !DIRTY == line)
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.slots.iter().filter(|&&s| s & !DIRTY != INVALID_LINE).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 64 B lines = 256 B.
        Cache::new(CacheConfig { size_bytes: 256, assoc: 2, line_bytes: 64 })
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().num_sets(), 2);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line, other set
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // Set 0 holds lines {0, 2, 4, ...} (even line numbers).
        c.access(0); // line 0 -> set 0
        c.access(128); // line 2 -> set 0
        c.access(0); // touch line 0: MRU
        c.access(256); // line 4 -> set 0, evicts line 2 (LRU)
        assert!(c.probe(0));
        assert!(!c.probe(128));
        assert!(c.probe(256));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0); // set 0
        c.access(64); // set 1
        c.access(192); // set 1
        c.access(320); // set 1 — evicts 64
        assert!(c.probe(0), "set 0 must be untouched");
        assert!(!c.probe(64));
    }

    #[test]
    fn flush_and_reset() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert!(!c.probe(0));
        assert_eq!(c.stats().misses, 1);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn miss_ratio() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_ratio(), 0.0);
        c.access(0);
        c.access(0);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = Cache::new(CacheConfig { size_bytes: 256, assoc: 2, line_bytes: 48 });
    }
}
