//! # dae-mem — set-associative multi-level cache simulation
//!
//! The memory-hierarchy substrate of the CGO 2014 DAE reproduction: private
//! L1/L2 per core over a shared LLC, with LRU replacement and inclusive
//! fills, mirroring the quad-core Sandybridge the paper measures on.
//!
//! Data values are *not* stored here — the IR interpreter in `dae-sim` owns
//! a flat byte memory; this crate only answers "which level served this
//! address" so the timing model can charge the right latency, and so the
//! decoupled access-execute warm-up effect (prefetch in the access phase →
//! L1/L2 hits in the execute phase) emerges structurally.
//!
//! # Examples
//!
//! ```
//! use dae_mem::{CoreCaches, HierarchyConfig, HitLevel, SharedLlc};
//!
//! let cfg = HierarchyConfig::default();
//! let mut llc = SharedLlc::new(cfg.llc);
//! let mut core = CoreCaches::new(&cfg);
//!
//! assert_eq!(core.access(&mut llc, 0x1000), HitLevel::Memory);
//! assert_eq!(core.access(&mut llc, 0x1000), HitLevel::L1);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod hierarchy;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{CoreCaches, HierarchyConfig, HitLevel, SharedLlc};
