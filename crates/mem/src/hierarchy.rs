//! A private L1/L2 plus shared LLC hierarchy, Sandybridge-like.
//!
//! The paper sizes tasks so their working set "just fits the private cache
//! hierarchy of a core (i.e., the L1 and the L2 cache)" (§3.1); the runtime
//! creates one [`CoreCaches`] per simulated core over one shared
//! [`SharedLlc`].

use crate::cache::{Cache, CacheConfig, CacheStats};

/// Where an access was served from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HitLevel {
    /// Served by the private L1.
    L1,
    /// Served by the private L2.
    L2,
    /// Served by the shared last-level cache.
    Llc,
    /// Served by DRAM.
    Memory,
}

/// Default Sandybridge-like geometry: 32 KiB/8-way L1, 256 KiB/8-way L2,
/// 8 MiB/16-way LLC, 64 B lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Private L1 data cache.
    pub l1: CacheConfig,
    /// Private L2.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1: CacheConfig { size_bytes: 32 * 1024, assoc: 8, line_bytes: 64 },
            l2: CacheConfig { size_bytes: 256 * 1024, assoc: 8, line_bytes: 64 },
            llc: CacheConfig { size_bytes: 8 * 1024 * 1024, assoc: 16, line_bytes: 64 },
        }
    }
}

/// The shared last-level cache.
#[derive(Clone, Debug)]
pub struct SharedLlc {
    cache: Cache,
}

impl SharedLlc {
    /// Creates an empty LLC.
    pub fn new(cfg: CacheConfig) -> Self {
        SharedLlc { cache: Cache::new(cfg) }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        self.cache.flush();
    }
}

/// A simple per-core stream detector modelling the L2 hardware
/// prefetcher: a demand miss whose line extends a recently-seen
/// ascending/descending miss stream is considered covered (the line was
/// fetched ahead of use).
#[derive(Clone, Debug, Default)]
pub struct StreamPrefetcher {
    /// Ring buffer of the last [`StreamPrefetcher::TRACKED`] miss lines
    /// (coverage only asks set membership, so order inside is irrelevant —
    /// no shifting on the per-miss hot path).
    recent_lines: [u64; Self::TRACKED],
    head: usize,
    len: usize,
}

impl StreamPrefetcher {
    const TRACKED: usize = 16;

    /// Observes a demand-miss line; returns `true` when a tracked stream
    /// covers it (i.e. the hardware prefetcher would have fetched it). Only
    /// unit-line strides train the detector — pointer chases and gathers
    /// stay uncovered.
    #[inline]
    pub fn observe(&mut self, line: u64) -> bool {
        let covered = self.recent_lines[..self.len]
            .iter()
            .any(|&l| line.wrapping_sub(l) == 1 || l.wrapping_sub(line) == 1);
        self.recent_lines[self.head] = line;
        self.head = (self.head + 1) % Self::TRACKED;
        self.len = (self.len + 1).min(Self::TRACKED);
        covered
    }
}

/// The private caches of one core, accessing a shared LLC.
#[derive(Clone, Debug)]
pub struct CoreCaches {
    l1: Cache,
    l2: Cache,
    streams: StreamPrefetcher,
}

impl CoreCaches {
    /// Creates empty private caches.
    pub fn new(cfg: &HierarchyConfig) -> Self {
        CoreCaches {
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            streams: StreamPrefetcher::default(),
        }
    }

    /// Performs one access (demand or prefetch — both fill), returning the
    /// level that served it. Misses fill every level on the way down
    /// (inclusive fill).
    #[inline]
    pub fn access(&mut self, llc: &mut SharedLlc, addr: u64) -> HitLevel {
        if self.l1.access(addr) {
            return HitLevel::L1;
        }
        if self.l2.access(addr) {
            return HitLevel::L2;
        }
        if llc.cache.access(addr) {
            return HitLevel::Llc;
        }
        HitLevel::Memory
    }

    /// Demand access that also consults the hardware stream prefetcher:
    /// returns the serving level plus `true` when a DRAM miss was covered by
    /// a detected stream (the timing model then charges on-chip latency and
    /// memory bandwidth instead of a full DRAM stall).
    #[inline]
    pub fn access_demand(&mut self, llc: &mut SharedLlc, addr: u64) -> (HitLevel, bool) {
        let level = self.access(llc, addr);
        if level == HitLevel::Memory {
            let covered = self.streams.observe(addr >> self.l1.line_shift());
            (level, covered)
        } else {
            (level, false)
        }
    }

    /// A store: like [`CoreCaches::access`] but marks lines dirty and
    /// models write-back propagation (L1 victim's dirt sinks into L2, L2's
    /// into the LLC, and a dirty LLC victim becomes a DRAM write-back).
    /// Returns the serving level plus the number of DRAM write-back lines
    /// this access caused.
    #[inline]
    pub fn access_write(&mut self, llc: &mut SharedLlc, addr: u64) -> (HitLevel, u64) {
        let mut dram_writebacks = 0u64;
        let sink_l2 = |l2: &mut Cache, llc: &mut SharedLlc, line: u64, wb: &mut u64| {
            // Write the victim into L2 (mark dirty); if L2 doesn't hold it
            // (non-inclusive corner), push the dirt to the LLC directly.
            if !l2.mark_dirty_line(line) && !llc.cache.mark_dirty_line(line) {
                *wb += 1; // nowhere on chip: straight to DRAM
            }
        };

        let o1 = self.l1.access_full(addr, true);
        if let Some(victim) = o1.evicted_dirty {
            sink_l2(&mut self.l2, llc, victim, &mut dram_writebacks);
        }
        if o1.hit {
            return (HitLevel::L1, dram_writebacks);
        }
        let o2 = self.l2.access_full(addr, true);
        if let Some(victim) = o2.evicted_dirty {
            if !llc.cache.mark_dirty_line(victim) {
                dram_writebacks += 1;
            }
        }
        if o2.hit {
            return (HitLevel::L2, dram_writebacks);
        }
        let o3 = llc.cache.access_full(addr, true);
        if o3.evicted_dirty.is_some() {
            dram_writebacks += 1;
        }
        let level = if o3.hit { HitLevel::Llc } else { HitLevel::Memory };
        (level, dram_writebacks)
    }

    /// L1 counters.
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// L2 counters.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Empties both private levels.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }

    /// Capacity of L1 + L2 in bytes (the paper's task working-set target).
    pub fn private_capacity(&self) -> u64 {
        self.l1.config().size_bytes + self.l2.config().size_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig { size_bytes: 256, assoc: 2, line_bytes: 64 },
            l2: CacheConfig { size_bytes: 1024, assoc: 4, line_bytes: 64 },
            llc: CacheConfig { size_bytes: 4096, assoc: 8, line_bytes: 64 },
        }
    }

    #[test]
    fn miss_fills_all_levels() {
        let cfg = small_cfg();
        let mut llc = SharedLlc::new(cfg.llc);
        let mut core = CoreCaches::new(&cfg);
        assert_eq!(core.access(&mut llc, 0), HitLevel::Memory);
        assert_eq!(core.access(&mut llc, 0), HitLevel::L1);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let cfg = small_cfg();
        let mut llc = SharedLlc::new(cfg.llc);
        let mut core = CoreCaches::new(&cfg);
        // L1: 2 sets × 2 ways. Lines 0,2,4 all map to set 0 (even lines).
        core.access(&mut llc, 0);
        core.access(&mut llc, 128);
        core.access(&mut llc, 256); // evicts line 0 from L1, still in L2
        assert_eq!(core.access(&mut llc, 0), HitLevel::L2);
    }

    #[test]
    fn prefetch_then_demand_hits_l1() {
        // The DAE mechanism in miniature: access phase warms the cache,
        // execute phase hits.
        let cfg = small_cfg();
        let mut llc = SharedLlc::new(cfg.llc);
        let mut core = CoreCaches::new(&cfg);
        for addr in (0..256u64).step_by(64) {
            core.access(&mut llc, addr); // prefetch pass
        }
        for addr in (0..256u64).step_by(8) {
            assert_eq!(core.access(&mut llc, addr), HitLevel::L1);
        }
    }

    #[test]
    fn two_cores_share_llc() {
        let cfg = small_cfg();
        let mut llc = SharedLlc::new(cfg.llc);
        let mut c0 = CoreCaches::new(&cfg);
        let mut c1 = CoreCaches::new(&cfg);
        c0.access(&mut llc, 0); // memory; fills LLC
                                // Other core: private miss, but LLC hit.
        assert_eq!(c1.access(&mut llc, 0), HitLevel::Llc);
    }

    #[test]
    fn private_capacity_matches_config() {
        let cfg = small_cfg();
        let core = CoreCaches::new(&cfg);
        assert_eq!(core.private_capacity(), 256 + 1024);
    }

    #[test]
    fn default_is_sandybridge_like() {
        let cfg = HierarchyConfig::default();
        assert_eq!(cfg.l1.size_bytes, 32 * 1024);
        assert_eq!(cfg.l2.size_bytes, 256 * 1024);
        assert_eq!(cfg.llc.size_bytes, 8 * 1024 * 1024);
        assert_eq!(cfg.l1.line_bytes, 64);
    }
}

#[cfg(test)]
mod writeback_tests {
    use super::*;
    use crate::cache::CacheConfig;

    fn small_cfg() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig { size_bytes: 256, assoc: 2, line_bytes: 64 },
            l2: CacheConfig { size_bytes: 512, assoc: 2, line_bytes: 64 },
            llc: CacheConfig { size_bytes: 1024, assoc: 2, line_bytes: 64 },
        }
    }

    #[test]
    fn clean_evictions_cause_no_writebacks() {
        let cfg = small_cfg();
        let mut llc = SharedLlc::new(cfg.llc);
        let mut core = CoreCaches::new(&cfg);
        // Read-stream far beyond every capacity: all evictions are clean.
        for k in 0..256u64 {
            let (_, _) = core.access_demand(&mut llc, k * 64);
        }
        // No writes happened, so a final write must report zero write-backs
        // beyond its own chain.
        let (_, wb) = core.access_write(&mut llc, 999 * 64);
        assert_eq!(wb, 0);
    }

    #[test]
    fn dirty_lines_eventually_write_back() {
        let cfg = small_cfg();
        let mut llc = SharedLlc::new(cfg.llc);
        let mut core = CoreCaches::new(&cfg);
        // Write a stream much larger than LLC: dirty LLC victims must be
        // written back to DRAM.
        let mut total_wb = 0;
        for k in 0..512u64 {
            let (_, wb) = core.access_write(&mut llc, k * 64);
            total_wb += wb;
        }
        assert!(
            total_wb > 400,
            "most of the 512 dirty lines must eventually write back, got {total_wb}"
        );
    }

    #[test]
    fn write_hit_in_l1_is_cheap() {
        let cfg = small_cfg();
        let mut llc = SharedLlc::new(cfg.llc);
        let mut core = CoreCaches::new(&cfg);
        core.access_write(&mut llc, 0);
        let (level, wb) = core.access_write(&mut llc, 8);
        assert_eq!(level, HitLevel::L1);
        assert_eq!(wb, 0);
    }
}
