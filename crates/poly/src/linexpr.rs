//! Linear expressions over a fixed variable space.

use crate::rat::Rat;
use std::fmt;

/// The variable space of a polyhedron: `dims` set variables followed by
/// `params` symbolic parameters.
///
/// Coefficient vectors are laid out `[d0 … d_{dims-1}, p0 … p_{params-1}, 1]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Space {
    /// Number of set dimensions (e.g. loop counters).
    pub dims: usize,
    /// Number of symbolic parameters (e.g. block offsets, sizes).
    pub params: usize,
}

impl Space {
    /// Creates a space with `dims` dimensions and `params` parameters.
    pub fn new(dims: usize, params: usize) -> Space {
        Space { dims, params }
    }

    /// Total coefficient-vector length (dims + params + constant).
    pub fn width(&self) -> usize {
        self.dims + self.params + 1
    }

    /// Column index of dimension `d`.
    pub fn dim_col(&self, d: usize) -> usize {
        assert!(d < self.dims, "dim out of range");
        d
    }

    /// Column index of parameter `p`.
    pub fn param_col(&self, p: usize) -> usize {
        assert!(p < self.params, "param out of range");
        self.dims + p
    }

    /// Column index of the constant term.
    pub fn const_col(&self) -> usize {
        self.dims + self.params
    }
}

/// An integer-coefficient linear expression `Σ ci·di + Σ kj·pj + c`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LinExpr {
    /// Owning space.
    pub space: Space,
    /// Coefficients, laid out per [`Space`].
    pub coeffs: Vec<i128>,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero(space: Space) -> LinExpr {
        LinExpr { space, coeffs: vec![0; space.width()] }
    }

    /// The constant expression `c`.
    pub fn constant(space: Space, c: i128) -> LinExpr {
        let mut e = LinExpr::zero(space);
        e.coeffs[space.const_col()] = c;
        e
    }

    /// The expression `1·d`.
    pub fn dim(space: Space, d: usize) -> LinExpr {
        let mut e = LinExpr::zero(space);
        e.coeffs[space.dim_col(d)] = 1;
        e
    }

    /// The expression `1·p`.
    pub fn param(space: Space, p: usize) -> LinExpr {
        let mut e = LinExpr::zero(space);
        e.coeffs[space.param_col(p)] = 1;
        e
    }

    /// Coefficient of dimension `d`.
    pub fn dim_coeff(&self, d: usize) -> i128 {
        self.coeffs[self.space.dim_col(d)]
    }

    /// Coefficient of parameter `p`.
    pub fn param_coeff(&self, p: usize) -> i128 {
        self.coeffs[self.space.param_col(p)]
    }

    /// The constant term.
    pub fn const_term(&self) -> i128 {
        self.coeffs[self.space.const_col()]
    }

    /// Sets the coefficient of dimension `d` (builder style).
    pub fn with_dim(mut self, d: usize, c: i128) -> LinExpr {
        self.coeffs[self.space.dim_col(d)] = c;
        self
    }

    /// Sets the coefficient of parameter `p` (builder style).
    pub fn with_param(mut self, p: usize, c: i128) -> LinExpr {
        self.coeffs[self.space.param_col(p)] = c;
        self
    }

    /// Sets the constant term (builder style).
    pub fn with_const(mut self, c: i128) -> LinExpr {
        self.coeffs[self.space.const_col()] = c;
        self
    }

    /// Pointwise sum.
    pub fn add(&self, o: &LinExpr) -> LinExpr {
        assert_eq!(self.space, o.space);
        let coeffs = self.coeffs.iter().zip(&o.coeffs).map(|(a, b)| a + b).collect();
        LinExpr { space: self.space, coeffs }
    }

    /// Pointwise difference.
    pub fn sub(&self, o: &LinExpr) -> LinExpr {
        self.add(&o.scale(-1))
    }

    /// Scaled by an integer.
    pub fn scale(&self, k: i128) -> LinExpr {
        LinExpr { space: self.space, coeffs: self.coeffs.iter().map(|c| c * k).collect() }
    }

    /// Divides all coefficients by their (positive) gcd; no-op for zero.
    pub fn normalize(&self) -> LinExpr {
        let mut g: i128 = 0;
        for &c in &self.coeffs {
            g = gcd(g, c);
        }
        if g <= 1 {
            return self.clone();
        }
        LinExpr { space: self.space, coeffs: self.coeffs.iter().map(|c| c / g).collect() }
    }

    /// Evaluates at rational dimension values with integer parameter values.
    pub fn eval(&self, dim_vals: &[Rat], param_vals: &[i64]) -> Rat {
        assert_eq!(dim_vals.len(), self.space.dims);
        assert_eq!(param_vals.len(), self.space.params);
        let mut acc = Rat::int(self.const_term());
        for (d, v) in dim_vals.iter().enumerate() {
            acc = acc + *v * Rat::int(self.dim_coeff(d));
        }
        for (p, v) in param_vals.iter().enumerate() {
            acc = acc + Rat::int(self.param_coeff(p) * *v as i128);
        }
        acc
    }

    /// Evaluates at integer dimension values and integer parameters.
    pub fn eval_int(&self, dim_vals: &[i64], param_vals: &[i64]) -> i128 {
        let mut acc = self.const_term();
        for (d, v) in dim_vals.iter().enumerate() {
            acc += self.dim_coeff(d) * *v as i128;
        }
        for (p, v) in param_vals.iter().enumerate() {
            acc += self.param_coeff(p) * *v as i128;
        }
        acc
    }

    /// Rewrites into a space with the same layout but with parameters
    /// substituted by concrete values (result has zero params).
    pub fn instantiate_params(&self, values: &[i64]) -> LinExpr {
        assert_eq!(values.len(), self.space.params);
        let new_space = Space::new(self.space.dims, 0);
        let mut e = LinExpr::zero(new_space);
        for d in 0..self.space.dims {
            e.coeffs[d] = self.dim_coeff(d);
        }
        let mut c = self.const_term();
        for (p, v) in values.iter().enumerate() {
            c += self.param_coeff(p) * *v as i128;
        }
        e.coeffs[new_space.const_col()] = c;
        e
    }

    /// True if every dimension coefficient is zero.
    pub fn is_param_only(&self) -> bool {
        (0..self.space.dims).all(|d| self.dim_coeff(d) == 0)
    }
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl fmt::Debug for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut write_term = |f: &mut fmt::Formatter<'_>, c: i128, name: String| -> fmt::Result {
            if c == 0 {
                return Ok(());
            }
            if first {
                first = false;
                if c == 1 {
                    write!(f, "{name}")?;
                } else if c == -1 {
                    write!(f, "-{name}")?;
                } else {
                    write!(f, "{c}{name}")?;
                }
            } else if c > 0 {
                write!(f, " + {}{name}", if c == 1 { String::new() } else { c.to_string() })?;
            } else {
                write!(f, " - {}{name}", if c == -1 { String::new() } else { (-c).to_string() })?;
            }
            Ok(())
        };
        for d in 0..self.space.dims {
            write_term(f, self.dim_coeff(d), format!("d{d}"))?;
        }
        for p in 0..self.space.params {
            write_term(f, self.param_coeff(p), format!("n{p}"))?;
        }
        let c = self.const_term();
        if first {
            write!(f, "{c}")
        } else if c > 0 {
            write!(f, " + {c}")
        } else if c < 0 {
            write!(f, " - {}", -c)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout() {
        let s = Space::new(2, 1);
        assert_eq!(s.width(), 4);
        assert_eq!(s.dim_col(1), 1);
        assert_eq!(s.param_col(0), 2);
        assert_eq!(s.const_col(), 3);
    }

    #[test]
    fn eval() {
        let s = Space::new(2, 1);
        // 3*d0 - d1 + 2*n0 + 7
        let e = LinExpr::zero(s).with_dim(0, 3).with_dim(1, -1).with_param(0, 2).with_const(7);
        assert_eq!(e.eval_int(&[1, 2], &[5]), 3 - 2 + 10 + 7);
        assert_eq!(e.eval(&[Rat::new(1, 2), Rat::ZERO], &[0]), Rat::new(17, 2));
    }

    #[test]
    fn instantiate() {
        let s = Space::new(1, 2);
        let e = LinExpr::zero(s).with_dim(0, 1).with_param(0, 4).with_param(1, -1).with_const(3);
        let i = e.instantiate_params(&[10, 2]);
        assert_eq!(i.space.params, 0);
        assert_eq!(i.const_term(), 3 + 40 - 2);
        assert_eq!(i.dim_coeff(0), 1);
    }

    #[test]
    fn normalize_divides_gcd() {
        let s = Space::new(1, 0);
        let e = LinExpr::zero(s).with_dim(0, 4).with_const(8);
        let n = e.normalize();
        assert_eq!(n.dim_coeff(0), 1);
        assert_eq!(n.const_term(), 2);
        // zero expr normalizes to itself
        assert_eq!(LinExpr::zero(s).normalize(), LinExpr::zero(s));
    }

    #[test]
    fn debug_format() {
        let s = Space::new(2, 1);
        let e = LinExpr::zero(s).with_dim(0, 1).with_dim(1, -2).with_param(0, 3).with_const(-4);
        assert_eq!(format!("{e:?}"), "d0 - 2d1 + 3n0 - 4");
    }
}
