//! Loop-nest extraction: turning a polyhedron into scanning loop bounds.
//!
//! This is the code-generation back half of §5.1: once the convex hull of
//! the accessed cells is known, the compiler "generates the loop nest of
//! minimal depth required to prefetch these addresses". A
//! [`LoopNestSpec`] gives, for every dimension in order, the affine lower
//! and upper bounds (in outer dimensions and parameters) obtained by
//! Fourier–Motzkin projection; `dae-core` lowers the spec to IR loops.

use crate::linexpr::LinExpr;
use crate::polyhedron::Polyhedron;

/// One bound of a dimension: `coeff · d ⋛ expr` with `coeff > 0`.
///
/// For a lower bound the scan starts at `ceil(-expr / coeff)`; for an upper
/// bound it ends at `floor(expr / coeff)` (inclusive). `expr` has non-zero
/// coefficients only for outer dimensions and parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bound {
    /// Positive coefficient of the bounded dimension.
    pub coeff: i128,
    /// The bound expression.
    pub expr: LinExpr,
}

/// Bounds of one scanning dimension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DimBounds {
    /// Lower bounds; the effective bound is their maximum.
    pub lowers: Vec<Bound>,
    /// Upper bounds (inclusive); the effective bound is their minimum.
    pub uppers: Vec<Bound>,
}

impl DimBounds {
    /// True if both bound sets are unit-coefficient (no division needed when
    /// lowering to IR).
    pub fn is_unit(&self) -> bool {
        self.lowers.iter().chain(&self.uppers).all(|b| b.coeff == 1)
    }
}

/// A scanning loop nest for a polyhedron: one [`DimBounds`] per dimension,
/// outermost first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopNestSpec {
    /// Per-dimension bounds.
    pub dims: Vec<DimBounds>,
}

impl LoopNestSpec {
    /// Depth of the nest.
    pub fn depth(&self) -> usize {
        self.dims.len()
    }

    /// True when every bound has unit coefficient — directly lowerable
    /// without floor/ceil division.
    pub fn is_unit(&self) -> bool {
        self.dims.iter().all(DimBounds::is_unit)
    }

    /// True when every dimension has exactly one lower and one upper bound
    /// (a "box-like" nest that lowers to plain counted loops without
    /// min/max chains).
    pub fn is_simple(&self) -> bool {
        self.dims.iter().all(|d| d.lowers.len() == 1 && d.uppers.len() == 1)
    }
}

/// Extracts a scanning loop nest from `p` in dimension order `0, 1, …`.
///
/// Returns `None` if some dimension ends up without both a lower and an
/// upper bound (an unbounded scan cannot be generated).
pub fn extract_loop_nest(p: &Polyhedron) -> Option<LoopNestSpec> {
    let dims = p.space().dims;
    let mut out = Vec::with_capacity(dims);
    for d in 0..dims {
        let (lowers_raw, uppers_raw) = p.dim_bounds(d);
        if lowers_raw.is_empty() || uppers_raw.is_empty() {
            return None;
        }
        let mk = |v: Vec<(i128, LinExpr)>, negate: bool| -> Vec<Bound> {
            v.into_iter()
                .map(|(coeff, expr)| Bound {
                    coeff,
                    expr: if negate { expr.scale(-1) } else { expr },
                })
                .collect()
        };
        // dim_bounds returns (coeff, rest) with `coeff·d + rest >= 0` for
        // lowers (d >= -rest/coeff) and `coeff` positive with
        // `-coeff·d + rest >= 0` for uppers (d <= rest/coeff). Normalise so
        // Bound::expr is the RHS of `coeff·d >= expr` / `coeff·d <= expr`.
        let lowers = mk(lowers_raw, true);
        let uppers = mk(uppers_raw, false);
        out.push(DimBounds { lowers, uppers });
    }
    Some(LoopNestSpec { dims: out })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::Space;

    #[test]
    fn box_nest() {
        // { (i, j) | 0 <= i < n, 0 <= j < n } — Listing 1(c).
        let s = Space::new(2, 1);
        let mut p = Polyhedron::universe(s);
        p.add_ge0(LinExpr::dim(s, 0));
        p.add_ge0(LinExpr::dim(s, 0).scale(-1).with_param(0, 1).with_const(-1));
        p.add_ge0(LinExpr::dim(s, 1));
        p.add_ge0(LinExpr::dim(s, 1).scale(-1).with_param(0, 1).with_const(-1));
        let nest = extract_loop_nest(&p).expect("bounded");
        assert_eq!(nest.depth(), 2);
        assert!(nest.is_simple());
        assert!(nest.is_unit());
        // dim 0 lower bound: 0; upper: n - 1
        let d0 = &nest.dims[0];
        assert_eq!(d0.lowers[0].expr.const_term(), 0);
        assert_eq!(d0.uppers[0].expr.param_coeff(0), 1);
        assert_eq!(d0.uppers[0].expr.const_term(), -1);
    }

    #[test]
    fn triangular_nest_has_outer_dim_in_inner_bound() {
        // { (i, j) | 0 <= i < n, i+1 <= j < n }
        let s = Space::new(2, 1);
        let mut p = Polyhedron::universe(s);
        p.add_ge0(LinExpr::dim(s, 0));
        p.add_ge0(LinExpr::dim(s, 0).scale(-1).with_param(0, 1).with_const(-1));
        p.add_ge0(LinExpr::dim(s, 1).with_dim(0, -1).with_const(-1));
        p.add_ge0(LinExpr::dim(s, 1).scale(-1).with_param(0, 1).with_const(-1));
        let nest = extract_loop_nest(&p).expect("bounded");
        // inner lower bound is i + 1: expr = d0 + 1
        let inner_low = &nest.dims[1].lowers[0];
        assert_eq!(inner_low.coeff, 1);
        assert_eq!(inner_low.expr.dim_coeff(0), 1);
        assert_eq!(inner_low.expr.const_term(), 1);
        // after projection the outer dim keeps usable bounds
        assert!(nest.dims[0].lowers.iter().any(|b| b.expr.const_term() <= 0));
    }

    #[test]
    fn unbounded_dimension_rejected() {
        let s = Space::new(1, 0);
        let mut p = Polyhedron::universe(s);
        p.add_ge0(LinExpr::dim(s, 0)); // only a lower bound
        assert!(extract_loop_nest(&p).is_none());
    }

    #[test]
    fn non_unit_coefficient_detected() {
        // { i | 0 <= 2i <= 9 } — bounds have coefficient 2.
        let s = Space::new(1, 0);
        let mut p = Polyhedron::universe(s);
        p.add_ge0(LinExpr::dim(s, 0).scale(2));
        p.add_ge0(LinExpr::dim(s, 0).scale(-2).with_const(9));
        let nest = extract_loop_nest(&p).expect("bounded");
        assert!(!nest.is_unit());
    }
}
