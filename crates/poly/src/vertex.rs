//! Vertex enumeration for bounded, parameter-free polyhedra.
//!
//! Uses the basis-enumeration method: every vertex of a `d`-dimensional
//! polyhedron is the unique solution of `d` linearly independent active
//! constraints. With the small constraint systems produced by loop nests
//! (a handful of inequalities, `d <= 3`) the `C(m, d)` enumeration is
//! instantaneous and exact.

use crate::linexpr::LinExpr;
use crate::polyhedron::{ConstraintKind, Polyhedron};
use crate::rat::Rat;

/// Solves the square rational system `rows · x = rhs` by Gaussian
/// elimination. Returns `None` if singular.
#[allow(clippy::needless_range_loop)] // pivot/target rows alias the same matrix
fn solve(rows: &[Vec<Rat>], rhs: &[Rat]) -> Option<Vec<Rat>> {
    let n = rows.len();
    let mut a: Vec<Vec<Rat>> = rows
        .iter()
        .zip(rhs)
        .map(|(r, b)| {
            let mut row = r.clone();
            row.push(*b);
            row
        })
        .collect();
    for col in 0..n {
        // Find pivot.
        let pivot = (col..n).find(|&r| !a[r][col].is_zero())?;
        a.swap(col, pivot);
        let p = a[col][col];
        for c in col..=n {
            a[col][c] = a[col][c] / p;
        }
        for r in 0..n {
            if r != col && !a[r][col].is_zero() {
                let factor = a[r][col];
                for c in col..=n {
                    a[r][c] = a[r][c] - factor * a[col][c];
                }
            }
        }
    }
    Some((0..n).map(|r| a[r][n]).collect())
}

fn expr_row(e: &LinExpr) -> (Vec<Rat>, Rat) {
    let d = e.space.dims;
    let row: Vec<Rat> = (0..d).map(|i| Rat::int(e.dim_coeff(i))).collect();
    // expr = Σ ci·xi + c ; active means expr == 0, i.e. Σ ci·xi = -c.
    (row, Rat::int(-e.const_term()))
}

/// Enumerates the vertices of a parameter-free polyhedron.
///
/// Equalities are active in every candidate basis. Returns deduplicated
/// rational points; an empty result means the polyhedron is empty, a single
/// point, lower-dimensional with no vertices in the chosen bases, or
/// unbounded with no vertices at all.
pub fn vertices(p: &Polyhedron) -> Vec<Vec<Rat>> {
    assert_eq!(p.space().params, 0, "instantiate parameters before vertex enumeration");
    let d = p.space().dims;
    let eqs: Vec<&LinExpr> = p
        .constraints()
        .iter()
        .filter(|c| c.kind == ConstraintKind::EqZero)
        .map(|c| &c.expr)
        .collect();
    let ineqs: Vec<&LinExpr> = p
        .constraints()
        .iter()
        .filter(|c| c.kind == ConstraintKind::GeZero)
        .map(|c| &c.expr)
        .collect();

    let need = d.saturating_sub(eqs.len().min(d));
    let mut out: Vec<Vec<Rat>> = Vec::new();

    for choice in combinations(ineqs.len(), need) {
        // Assemble the active system: all equalities plus `need` inequalities.
        let mut rows: Vec<Vec<Rat>> = Vec::with_capacity(d);
        let mut rhs: Vec<Rat> = Vec::with_capacity(d);
        for e in eqs.iter().take(d) {
            let (r, b) = expr_row(e);
            rows.push(r);
            rhs.push(b);
        }
        for &i in &choice {
            let (r, b) = expr_row(ineqs[i]);
            rows.push(r);
            rhs.push(b);
        }
        if rows.len() != d {
            continue;
        }
        if let Some(x) = solve(&rows, &rhs) {
            if p.contains_rat(&x, &[]) && !out.contains(&x) {
                out.push(x);
            }
        }
    }
    out
}

/// All `k`-element subsets of `0..n`, in lexicographic order.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if k > n {
        return out;
    }
    let mut cur: Vec<usize> = Vec::with_capacity(k);
    fn rec(n: usize, k: usize, start: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(n, k, i + 1, cur, out);
            cur.pop();
        }
    }
    rec(n, k, 0, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::Space;

    #[test]
    fn unit_square_vertices() {
        let s = Space::new(2, 0);
        let mut p = Polyhedron::universe(s);
        p.bound_dim(0, 0, 3);
        p.bound_dim(1, 0, 2);
        let mut vs = vertices(&p);
        vs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vs.len(), 4);
        assert_eq!(vs[0], vec![Rat::int(0), Rat::int(0)]);
        assert_eq!(vs[3], vec![Rat::int(3), Rat::int(2)]);
    }

    #[test]
    fn triangle_vertices() {
        // { (i,j) | 0 <= i, 0 <= j, i + j <= 4 }
        let s = Space::new(2, 0);
        let mut p = Polyhedron::universe(s);
        p.add_ge0(LinExpr::dim(s, 0));
        p.add_ge0(LinExpr::dim(s, 1));
        p.add_ge0(LinExpr::dim(s, 0).scale(-1).with_dim(1, -1).with_const(4));
        let mut vs = vertices(&p);
        vs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vs.len(), 3);
        assert_eq!(vs[0], vec![Rat::int(0), Rat::int(0)]);
        assert_eq!(vs[1], vec![Rat::int(0), Rat::int(4)]);
        assert_eq!(vs[2], vec![Rat::int(4), Rat::int(0)]);
    }

    #[test]
    fn rational_vertex() {
        // { x | 2x <= 5, x >= 0 } in 1-D: vertices at 0 and 5/2.
        let s = Space::new(1, 0);
        let mut p = Polyhedron::universe(s);
        p.add_ge0(LinExpr::dim(s, 0));
        p.add_ge0(LinExpr::dim(s, 0).scale(-2).with_const(5));
        let mut vs = vertices(&p);
        vs.sort();
        assert_eq!(vs, vec![vec![Rat::int(0)], vec![Rat::new(5, 2)]]);
    }

    #[test]
    fn equality_restricts_to_segment() {
        // { (x,y) | x == y, 0 <= x <= 3 }
        let s = Space::new(2, 0);
        let mut p = Polyhedron::universe(s);
        p.add_eq0(LinExpr::dim(s, 0).with_dim(1, -1));
        p.bound_dim(0, 0, 3);
        let mut vs = vertices(&p);
        vs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0], vec![Rat::int(0), Rat::int(0)]);
        assert_eq!(vs[1], vec![Rat::int(3), Rat::int(3)]);
    }

    #[test]
    fn empty_polyhedron_has_no_vertices() {
        let s = Space::new(1, 0);
        let mut p = Polyhedron::universe(s);
        p.bound_dim(0, 5, 2);
        assert!(vertices(&p).is_empty());
    }

    #[test]
    fn solve_rejects_singular() {
        let rows = vec![vec![Rat::int(1), Rat::int(2)], vec![Rat::int(2), Rat::int(4)]];
        let rhs = vec![Rat::int(1), Rat::int(2)];
        assert!(solve(&rows, &rhs).is_none());
    }
}
