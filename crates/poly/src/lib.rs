//! # dae-poly — an exact polyhedral library (PolyLib stand-in)
//!
//! The polyhedral substrate of the CGO 2014 DAE reproduction. The paper uses
//! PolyLib (plus Ehrhart counting and Z-polytope machinery) for its §5.1
//! affine access analysis; this crate implements exactly the facilities that
//! analysis needs, from scratch, over exact `i128` rationals:
//!
//! * [`rat::Rat`] — exact rational arithmetic,
//! * [`linexpr::LinExpr`]/[`linexpr::Space`] — integer affine expressions
//!   over dimensions and symbolic parameters,
//! * [`polyhedron::Polyhedron`] — constraint-form polyhedra with
//!   intersection, Fourier–Motzkin projection, exact emptiness, bound
//!   extraction and integer-point enumeration/counting,
//! * [`vertex::vertices`] — exact vertex enumeration (basis enumeration),
//! * [`hull::convex_hull`] — convex hulls of point sets (exact in 1-D/2-D),
//! * [`map::AffineImage`] — Z-polytopes as affine images of domains, with
//!   distinct-point counting for the paper's `NOrig`,
//! * [`count::ehrhart_interpolate`] — parametric counting by Ehrhart
//!   interpolation,
//! * [`codegen::extract_loop_nest`] — scanning loop bounds for a polyhedron
//!   (the "loop nest of minimal depth" generation).
//!
//! # Examples
//!
//! The paper's Listing 1 profitability check in miniature: two transposed
//! accesses cover the full block; the convex hull of the union adds no
//! extra cells, so the `NconvUn <= NOrig` check accepts the hull scan.
//!
//! ```
//! use dae_poly::linexpr::{LinExpr, Space};
//! use dae_poly::polyhedron::Polyhedron;
//! use dae_poly::map::{count_union_distinct, AffineImage};
//! use dae_poly::hull::convex_hull;
//!
//! // domain { (i, j) | 0 <= i < 8, 0 <= j < 8 }
//! let s = Space::new(2, 0);
//! let mut dom = Polyhedron::universe(s);
//! dom.bound_dim(0, 0, 7);
//! dom.bound_dim(1, 0, 7);
//!
//! // two accesses: A[i][j] and A[j][i]
//! let a1 = AffineImage::new(dom.clone(), vec![LinExpr::dim(s, 0), LinExpr::dim(s, 1)]);
//! let a2 = AffineImage::new(dom.clone(), vec![LinExpr::dim(s, 1), LinExpr::dim(s, 0)]);
//!
//! let n_orig = count_union_distinct(&[a1.clone(), a2.clone()], &[]);
//! let mut pts = a1.image_vertices(&[]);
//! pts.extend(a2.image_vertices(&[]));
//! let hull = convex_hull(2, &pts);
//! let n_conv = hull.count_integer_points();
//! assert_eq!(n_orig, 64);
//! assert_eq!(n_conv, 64); // hull adds nothing: scan it
//! ```

#![warn(missing_docs)]

pub mod codegen;
pub mod count;
pub mod hull;
pub mod linexpr;
pub mod map;
pub mod polyhedron;
pub mod rat;
pub mod vertex;

pub use codegen::{extract_loop_nest, Bound, DimBounds, LoopNestSpec};
pub use count::{ehrhart_interpolate, lagrange, Poly};
pub use hull::convex_hull;
pub use linexpr::{LinExpr, Space};
pub use map::{count_union_distinct, try_count_union_distinct, AffineImage};
pub use polyhedron::{Constraint, ConstraintKind, Polyhedron, Unbounded};
pub use rat::Rat;
pub use vertex::vertices;
