//! Polyhedra as conjunctions of affine constraints, with Fourier–Motzkin
//! projection and exact emptiness testing.

use crate::linexpr::{LinExpr, Space};
use crate::rat::Rat;

/// Constraint sense.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// `expr >= 0`.
    GeZero,
    /// `expr == 0`.
    EqZero,
}

/// One affine constraint over a space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Constraint {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Sense.
    pub kind: ConstraintKind,
}

impl Constraint {
    /// `expr >= 0`.
    pub fn ge0(expr: LinExpr) -> Constraint {
        Constraint { expr, kind: ConstraintKind::GeZero }
    }

    /// `expr == 0`.
    pub fn eq0(expr: LinExpr) -> Constraint {
        Constraint { expr, kind: ConstraintKind::EqZero }
    }
}

/// One bound on a dimension, as returned by [`Polyhedron::dim_bounds`]:
/// `(coeff, expr)` with `coeff·d + expr >= 0`.
pub type DimBound = (i128, LinExpr);

/// Integer-point enumeration found no finite lower or upper bound for a
/// dimension: the polyhedron is unbounded and cannot be scanned. Callers
/// in the compiler treat this as a refusal (§5.1 profitability demands a
/// finite cell count) and fall back to the skeleton strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Unbounded {
    /// The first dimension (in scanning order) with a missing bound.
    pub dim: usize,
}

impl std::fmt::Display for Unbounded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "polyhedron unbounded in dim {}", self.dim)
    }
}

impl std::error::Error for Unbounded {}

impl Unbounded {
    /// Stable machine-readable error code (the zero-dependency mirror of
    /// `dae_ir::CodedError`, same `<layer>.<class>` namespace).
    pub fn code(&self) -> &'static str {
        "poly.unbounded"
    }
}

/// A convex polyhedron `{ x | A·x + B·n + c >= 0, E·x + F·n + g == 0 }`
/// over [`Space`] variables `x` (dims) and parameters `n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Polyhedron {
    space: Space,
    constraints: Vec<Constraint>,
}

impl Polyhedron {
    /// The universe (no constraints) of `space`.
    pub fn universe(space: Space) -> Polyhedron {
        Polyhedron { space, constraints: Vec::new() }
    }

    /// The owning space.
    pub fn space(&self) -> Space {
        self.space
    }

    /// The constraint list.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds `expr >= 0`.
    pub fn add_ge0(&mut self, expr: LinExpr) {
        assert_eq!(expr.space, self.space);
        self.constraints.push(Constraint::ge0(expr.normalize()));
    }

    /// Adds `expr == 0`.
    pub fn add_eq0(&mut self, expr: LinExpr) {
        assert_eq!(expr.space, self.space);
        self.constraints.push(Constraint::eq0(expr.normalize()));
    }

    /// Adds `lo <= dim` and `dim <= hi` for constants.
    pub fn bound_dim(&mut self, d: usize, lo: i128, hi: i128) {
        let s = self.space;
        self.add_ge0(LinExpr::dim(s, d).with_const(-lo)); // d - lo >= 0
        self.add_ge0(LinExpr::dim(s, d).scale(-1).with_const(hi)); // hi - d >= 0
    }

    /// Intersection (same space).
    pub fn intersect(&self, other: &Polyhedron) -> Polyhedron {
        assert_eq!(self.space, other.space);
        let mut out = self.clone();
        out.constraints.extend(other.constraints.iter().cloned());
        out
    }

    /// True if the given integer point (dims) with parameters satisfies all
    /// constraints.
    pub fn contains_int(&self, point: &[i64], params: &[i64]) -> bool {
        self.constraints.iter().all(|c| {
            let v = c.expr.eval_int(point, params);
            match c.kind {
                ConstraintKind::GeZero => v >= 0,
                ConstraintKind::EqZero => v == 0,
            }
        })
    }

    /// True if the given rational point satisfies all constraints.
    pub fn contains_rat(&self, point: &[Rat], params: &[i64]) -> bool {
        self.constraints.iter().all(|c| {
            let v = c.expr.eval(point, params);
            match c.kind {
                ConstraintKind::GeZero => v >= Rat::ZERO,
                ConstraintKind::EqZero => v.is_zero(),
            }
        })
    }

    /// Substitutes concrete parameter values, producing a param-free
    /// polyhedron.
    pub fn instantiate_params(&self, values: &[i64]) -> Polyhedron {
        let mut out = Polyhedron::universe(Space::new(self.space.dims, 0));
        for c in &self.constraints {
            let e = c.expr.instantiate_params(values);
            match c.kind {
                ConstraintKind::GeZero => out.add_ge0(e),
                ConstraintKind::EqZero => out.add_eq0(e),
            }
        }
        out
    }

    /// Eliminates dimension `d` by Fourier–Motzkin (existential projection
    /// over the rationals). The result lives in a space with one fewer dim;
    /// dims above `d` shift down.
    pub fn eliminate_dim(&self, d: usize) -> Polyhedron {
        assert!(d < self.space.dims);
        let new_space = Space::new(self.space.dims - 1, self.space.params);
        let drop_col = |e: &LinExpr| -> LinExpr {
            let mut coeffs = Vec::with_capacity(new_space.width());
            for (i, &c) in e.coeffs.iter().enumerate() {
                if i != d {
                    coeffs.push(c);
                }
            }
            LinExpr { space: new_space, coeffs }
        };

        // If an equality involves d, use it to substitute d away exactly.
        if let Some(eq_pos) = self
            .constraints
            .iter()
            .position(|c| c.kind == ConstraintKind::EqZero && c.expr.dim_coeff(d) != 0)
        {
            let eq = &self.constraints[eq_pos].expr;
            let a = eq.dim_coeff(d);
            let mut out = Polyhedron::universe(new_space);
            for (i, c) in self.constraints.iter().enumerate() {
                if i == eq_pos {
                    continue;
                }
                let b = c.expr.dim_coeff(d);
                let combined = if b == 0 {
                    c.expr.clone()
                } else {
                    // a*c.expr - b*eq has zero coefficient at d; keep the
                    // inequality direction by multiplying with |a| signs.
                    let scaled_c = c.expr.scale(a.abs());
                    let scaled_eq = eq.scale(b * a.signum());
                    scaled_c.sub(&scaled_eq)
                };
                let e = drop_col(&combined);
                match c.kind {
                    ConstraintKind::GeZero => out.add_ge0(e),
                    ConstraintKind::EqZero => out.add_eq0(e),
                }
            }
            return out;
        }

        // Classic FM on inequalities.
        let mut lowers: Vec<&LinExpr> = Vec::new(); // coeff(d) > 0: d >= -rest/coeff
        let mut uppers: Vec<&LinExpr> = Vec::new(); // coeff(d) < 0
        let mut free: Vec<&Constraint> = Vec::new();
        for c in &self.constraints {
            let k = c.expr.dim_coeff(d);
            if k == 0 {
                free.push(c);
            } else if k > 0 {
                lowers.push(&c.expr);
            } else {
                uppers.push(&c.expr);
            }
        }
        let mut out = Polyhedron::universe(new_space);
        for c in free {
            let e = drop_col(&c.expr);
            match c.kind {
                ConstraintKind::GeZero => out.add_ge0(e),
                ConstraintKind::EqZero => out.add_eq0(e),
            }
        }
        for lo in &lowers {
            for up in &uppers {
                let a = lo.dim_coeff(d); // > 0
                let b = -up.dim_coeff(d); // > 0
                                          // b*lo + a*up has zero coeff at d and stays >= 0.
                let combined = lo.scale(b).add(&up.scale(a));
                out.add_ge0(drop_col(&combined));
            }
        }
        out
    }

    /// Eliminates all dimensions, leaving constraints over parameters only.
    pub fn eliminate_all_dims(&self) -> Polyhedron {
        let mut p = self.clone();
        while p.space.dims > 0 {
            p = p.eliminate_dim(p.space.dims - 1);
        }
        p
    }

    /// Exact rational emptiness test (ignores integrality).
    ///
    /// With parameters present, answers "is the polyhedron empty for **all**
    /// parameter values" — i.e. returns `true` only if the constraint system
    /// is contradictory independent of parameters.
    pub fn is_empty_rational(&self) -> bool {
        // Eliminate dims, then params, then inspect constant constraints.
        let mut p = self.eliminate_all_dims();
        // Reinterpret params as dims so FM can eliminate them too.
        p = Polyhedron {
            space: Space::new(p.space.params, 0),
            constraints: p
                .constraints
                .into_iter()
                .map(|c| Constraint {
                    expr: LinExpr {
                        space: Space::new(c.expr.space.params, 0),
                        coeffs: c.expr.coeffs,
                    },
                    kind: c.kind,
                })
                .collect(),
        };
        while p.space.dims > 0 {
            p = p.eliminate_dim(p.space.dims - 1);
        }
        p.constraints.iter().any(|c| {
            let v = c.expr.const_term();
            match c.kind {
                ConstraintKind::GeZero => v < 0,
                ConstraintKind::EqZero => v != 0,
            }
        })
    }

    /// Lower and upper bounds of dimension `d` as functions of dimensions
    /// `< d` and the parameters, obtained by eliminating all dimensions
    /// `> d` first.
    ///
    /// Returns `(lowers, uppers)` where each entry is `(coeff, expr)` meaning
    /// `coeff·d >= -expr` (lower, `coeff > 0`) or `coeff·d <= expr`
    /// rewritten as: for lowers `d >= ceil(-expr / coeff)` and for uppers
    /// `d <= floor(expr / |coeff|)`; `expr` has zero coefficients for dims
    /// `>= d`.
    pub fn dim_bounds(&self, d: usize) -> (Vec<DimBound>, Vec<DimBound>) {
        let mut p = self.clone();
        while p.space.dims > d + 1 {
            p = p.eliminate_dim(p.space.dims - 1);
        }
        let mut lowers = Vec::new();
        let mut uppers = Vec::new();
        for c in &p.constraints {
            let k = c.expr.dim_coeff(d);
            let mut rest = c.expr.clone();
            rest.coeffs[d] = 0;
            match c.kind {
                ConstraintKind::GeZero => {
                    if k > 0 {
                        lowers.push((k, rest));
                    } else if k < 0 {
                        uppers.push((-k, rest));
                    }
                }
                ConstraintKind::EqZero => {
                    if k != 0 {
                        // k·d + rest == 0  ⇒  |k|·d == -sign(k)·rest, which
                        // acts as both a lower bound (|k|·d + sign·rest >= 0)
                        // and an upper bound (d <= -sign·rest / |k|).
                        let sign = k.signum();
                        lowers.push((k * sign, rest.scale(sign)));
                        uppers.push((k * sign, rest.scale(-sign)));
                    }
                }
            }
        }
        (lowers, uppers)
    }

    /// Enumerates all integer points of a **parameter-free, bounded**
    /// polyhedron in lexicographic order, invoking `f` on each.
    ///
    /// Returns [`Unbounded`] when some dimension has no finite lower or
    /// upper bound, so callers can refuse generation instead of aborting.
    ///
    /// # Panics
    ///
    /// Panics if the polyhedron still has parameters.
    pub fn try_for_each_integer_point(&self, mut f: impl FnMut(&[i64])) -> Result<(), Unbounded> {
        assert_eq!(self.space.params, 0, "instantiate parameters before enumerating");
        // projs[k] = projection of self onto its first k dims.
        let mut projs: Vec<Polyhedron> = vec![self.clone()];
        for _ in 0..self.space.dims {
            let last = projs.last().unwrap();
            let d = last.space.dims - 1;
            projs.push(last.eliminate_dim(d));
        }
        projs.reverse(); // projs[k] has k dims

        let dims = self.space.dims;
        let mut point = vec![0i64; dims];
        fn recurse(
            projs: &[Polyhedron],
            full: &Polyhedron,
            point: &mut Vec<i64>,
            depth: usize,
            f: &mut impl FnMut(&[i64]),
        ) -> Result<(), Unbounded> {
            let dims = point.len();
            if depth == dims {
                if full.contains_int(point, &[]) {
                    f(point);
                }
                return Ok(());
            }
            let p = &projs[depth + 1]; // polyhedron over dims 0..=depth
            let (lowers, uppers) = p.dim_bounds(depth);
            // `rest` lives in a (depth+1)-dim space with a zero coefficient
            // at dim `depth`; pad the evaluation point accordingly.
            let mut vals: Vec<i64> = point[..depth].to_vec();
            vals.push(0);
            // A contradictory projection (e.g. `-1 >= 0` produced by FM from
            // an empty polyhedron) has no bounds on this dim; bail out early
            // instead of reporting unboundedness.
            let contradicted = p.constraints.iter().any(|c| {
                if c.expr.dim_coeff(depth) != 0 {
                    return false;
                }
                let v = c.expr.eval_int(&vals, &[]);
                match c.kind {
                    ConstraintKind::GeZero => v < 0,
                    ConstraintKind::EqZero => v != 0,
                }
            });
            if contradicted {
                point[depth] = 0;
                return Ok(());
            }
            let mut lo: Option<i64> = None;
            let mut hi: Option<i64> = None;
            for (k, rest) in &lowers {
                // k*d + rest >= 0  =>  d >= ceil(-rest / k)
                let rest_v = rest.eval_int(&vals, &[]);
                let bound = Rat::new(-rest_v, *k).ceil() as i64;
                lo = Some(lo.map_or(bound, |c| c.max(bound)));
            }
            for (k, rest) in &uppers {
                let rest_v = rest.eval_int(&vals, &[]);
                let bound = Rat::new(rest_v, *k).floor() as i64;
                hi = Some(hi.map_or(bound, |c| c.min(bound)));
            }
            let (lo, hi) = match (lo, hi) {
                (Some(l), Some(h)) => (l, h),
                _ => return Err(Unbounded { dim: depth }),
            };
            for v in lo..=hi {
                point[depth] = v;
                recurse(projs, full, point, depth + 1, f)?;
            }
            point[depth] = 0;
            Ok(())
        }
        recurse(&projs, self, &mut point, 0, &mut f)
    }

    /// Infallible [`Polyhedron::try_for_each_integer_point`] for polyhedra
    /// that are bounded by construction.
    ///
    /// # Panics
    ///
    /// Panics if the polyhedron has parameters or is unbounded.
    pub fn for_each_integer_point(&self, f: impl FnMut(&[i64])) {
        self.try_for_each_integer_point(f).expect("bounded polyhedron");
    }

    /// Collects all integer points, or [`Unbounded`] when they cannot be
    /// enumerated (see [`Polyhedron::try_for_each_integer_point`]).
    pub fn try_integer_points(&self) -> Result<Vec<Vec<i64>>, Unbounded> {
        let mut out = Vec::new();
        self.try_for_each_integer_point(|p| out.push(p.to_vec()))?;
        Ok(out)
    }

    /// Collects all integer points (see [`Polyhedron::for_each_integer_point`]).
    ///
    /// # Panics
    ///
    /// Panics if the polyhedron has parameters or is unbounded.
    pub fn integer_points(&self) -> Vec<Vec<i64>> {
        self.try_integer_points().expect("bounded polyhedron")
    }

    /// Counts integer points of a parameter-free polyhedron, or
    /// [`Unbounded`] when the count is infinite.
    pub fn try_count_integer_points(&self) -> Result<u64, Unbounded> {
        let mut n = 0u64;
        self.try_for_each_integer_point(|_| n += 1)?;
        Ok(n)
    }

    /// Counts integer points of a parameter-free bounded polyhedron.
    ///
    /// # Panics
    ///
    /// Panics if the polyhedron has parameters or is unbounded.
    pub fn count_integer_points(&self) -> u64 {
        self.try_count_integer_points().expect("bounded polyhedron")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(n: i128) -> Polyhedron {
        // { (x, y) | 0 <= x < n, 0 <= y < n }
        let s = Space::new(2, 0);
        let mut p = Polyhedron::universe(s);
        p.bound_dim(0, 0, n - 1);
        p.bound_dim(1, 0, n - 1);
        p
    }

    #[test]
    fn unbounded_enumeration_is_refused_not_fatal() {
        // { x | x >= 0 } has no upper bound: enumeration must report the
        // offending dimension instead of aborting the process.
        let s = Space::new(1, 0);
        let mut p = Polyhedron::universe(s);
        p.add_ge0(LinExpr::dim(s, 0));
        assert_eq!(p.try_count_integer_points(), Err(Unbounded { dim: 0 }));
        assert_eq!(p.try_integer_points(), Err(Unbounded { dim: 0 }));

        // Unbounded in an inner dimension only: { (x, y) | 0<=x<4, y>=x }.
        let s2 = Space::new(2, 0);
        let mut q = Polyhedron::universe(s2);
        q.bound_dim(0, 0, 3);
        q.add_ge0(LinExpr::dim(s2, 1).with_dim(0, -1));
        assert_eq!(q.try_count_integer_points(), Err(Unbounded { dim: 1 }));
    }

    #[test]
    fn contains_and_count_square() {
        let p = square(4);
        assert!(p.contains_int(&[0, 0], &[]));
        assert!(p.contains_int(&[3, 3], &[]));
        assert!(!p.contains_int(&[4, 0], &[]));
        assert_eq!(p.count_integer_points(), 16);
    }

    #[test]
    fn triangle_count() {
        // { (i, j) | 0 <= i < 4, i+1 <= j < 4 } — the LU inner domain.
        let s = Space::new(2, 0);
        let mut p = Polyhedron::universe(s);
        p.bound_dim(0, 0, 3);
        // j - i - 1 >= 0
        p.add_ge0(LinExpr::dim(s, 1).with_dim(0, -1).with_const(-1));
        // 3 - j >= 0
        p.add_ge0(LinExpr::dim(s, 1).scale(-1).with_const(3));
        assert_eq!(p.count_integer_points(), 3 + 2 + 1);
        let pts = p.integer_points();
        assert!(pts.contains(&vec![0, 1]));
        assert!(!pts.contains(&vec![3, 3]));
    }

    #[test]
    fn fm_projection_of_triangle() {
        // project {0<=i<4, i<j<=4} onto i: i in [0, 3]
        let s = Space::new(2, 0);
        let mut p = Polyhedron::universe(s);
        p.bound_dim(0, 0, 3);
        p.add_ge0(LinExpr::dim(s, 1).with_dim(0, -1).with_const(-1)); // j >= i+1
        p.add_ge0(LinExpr::dim(s, 1).scale(-1).with_const(4)); // j <= 4
        let q = p.eliminate_dim(1);
        assert_eq!(q.space().dims, 1);
        assert!(q.contains_int(&[0], &[]));
        assert!(q.contains_int(&[3], &[]));
        assert!(!q.contains_int(&[4], &[]));
        assert!(!q.contains_int(&[-1], &[]));
    }

    #[test]
    fn equality_substitution() {
        // { (x, y) | x == 2y, 0 <= y <= 3 } project out x
        let s = Space::new(2, 0);
        let mut p = Polyhedron::universe(s);
        p.add_eq0(LinExpr::dim(s, 0).with_dim(1, -2)); // x - 2y == 0
        p.bound_dim(1, 0, 3);
        let q = p.eliminate_dim(0);
        assert!(q.contains_int(&[0], &[]));
        assert!(q.contains_int(&[3], &[]));
        assert!(!q.contains_int(&[4], &[]));
    }

    #[test]
    fn emptiness() {
        let s = Space::new(1, 0);
        let mut p = Polyhedron::universe(s);
        p.add_ge0(LinExpr::dim(s, 0).with_const(-10)); // x >= 10
        p.add_ge0(LinExpr::dim(s, 0).scale(-1).with_const(5)); // x <= 5
        assert!(p.is_empty_rational());

        let mut q = Polyhedron::universe(s);
        q.bound_dim(0, 0, 0);
        assert!(!q.is_empty_rational());
    }

    #[test]
    fn parametric_bounds() {
        // { i | 0 <= i < n } with parameter n
        let s = Space::new(1, 1);
        let mut p = Polyhedron::universe(s);
        p.add_ge0(LinExpr::dim(s, 0)); // i >= 0
        p.add_ge0(LinExpr::dim(s, 0).scale(-1).with_param(0, 1).with_const(-1)); // n - 1 - i >= 0
        let (lowers, uppers) = p.dim_bounds(0);
        assert_eq!(lowers.len(), 1);
        assert_eq!(uppers.len(), 1);
        let inst = p.instantiate_params(&[8]);
        assert_eq!(inst.count_integer_points(), 8);
    }

    #[test]
    fn empty_enumeration_is_empty() {
        let s = Space::new(2, 0);
        let mut p = Polyhedron::universe(s);
        p.bound_dim(0, 3, 2); // empty range
        p.bound_dim(1, 0, 5);
        assert_eq!(p.count_integer_points(), 0);
    }

    #[test]
    fn rational_membership() {
        let p = square(2);
        assert!(p.contains_rat(&[Rat::new(1, 2), Rat::new(1, 2)], &[]));
        assert!(!p.contains_rat(&[Rat::new(3, 2), Rat::new(5, 2)], &[]));
    }
}
