//! Exact rational arithmetic over `i128`.
//!
//! Polyhedral computations (vertex enumeration, Fourier–Motzkin) must be
//! exact: floating point would misclassify touching/empty polyhedra. All
//! coefficients in this workspace are small (loop bounds, strides), so an
//! `i128` numerator/denominator pair with eager normalisation is ample; all
//! arithmetic panics on overflow in debug and is checked in release.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number. The denominator is always positive and the
/// fraction is always in lowest terms.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rat { num, den }
    }

    /// Creates the integer `n`.
    pub fn int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub fn num(self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn den(self) -> i128 {
        self.den
    }

    /// True if the value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// True if zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Sign: -1, 0 or 1.
    pub fn signum(self) -> i128 {
        self.num.signum()
    }

    /// Largest integer `<= self`.
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `>= self`.
    pub fn ceil(self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Reciprocal.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(self) -> Rat {
        Rat::new(self.den, self.num)
    }

    /// Converts to `f64` (test/diagnostic use only).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// The integer value, if [`Rat::is_integer`].
    pub fn as_integer(self) -> Option<i128> {
        if self.is_integer() {
            Some(self.num)
        } else {
            None
        }
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::ZERO
    }
}

impl Add for Rat {
    type Output = Rat;
    // a/b + c/d needs cross-multiplication.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, o: Rat) -> Rat {
        Rat::new(
            self.num
                .checked_mul(o.den)
                .and_then(|a| a.checked_add(o.num * self.den))
                .expect("rat overflow"),
            self.den * o.den,
        )
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, o: Rat) -> Rat {
        self + (-o)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, o: Rat) -> Rat {
        Rat::new(self.num.checked_mul(o.num).expect("rat overflow"), self.den * o.den)
    }
}

impl Div for Rat {
    type Output = Rat;
    // Division is multiplication by the reciprocal.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, o: Rat) -> Rat {
        self * o.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat { num: -self.num, den: self.den }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, o: &Rat) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}

impl Ord for Rat {
    fn cmp(&self, o: &Rat) -> Ordering {
        // den > 0 on both sides, so cross-multiplication preserves order.
        (self.num * o.den).cmp(&(o.num * self.den))
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat::int(v as i128)
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 5), Rat::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 2);
        let b = Rat::new(1, 3);
        assert_eq!(a + b, Rat::new(5, 6));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 6));
        assert_eq!(a / b, Rat::new(3, 2));
        assert_eq!(-a, Rat::new(-1, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::int(5).floor(), 5);
        assert_eq!(Rat::int(5).ceil(), 5);
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::new(-1, 3));
        assert_eq!(Rat::new(2, 4).cmp(&Rat::new(1, 2)), Ordering::Equal);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn integer_queries() {
        assert!(Rat::int(3).is_integer());
        assert!(!Rat::new(1, 2).is_integer());
        assert_eq!(Rat::int(3).as_integer(), Some(3));
        assert_eq!(Rat::new(1, 2).as_integer(), None);
    }
}
