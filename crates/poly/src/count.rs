//! Integer-point counting, including parametric Ehrhart interpolation.
//!
//! The paper counts `NOrig` and `NconvUn` with Ehrhart polynomials (their ref.\[5\]). For
//! instantiated parameters we count exactly by enumeration
//! ([`crate::polyhedron::Polyhedron::count_integer_points`]); for symbolic
//! parameters this module reconstructs the Ehrhart (quasi-)polynomial of a
//! one-parameter family by Lagrange interpolation of exact counts — the
//! classic interpolation construction of Ehrhart theory.

use crate::rat::Rat;

/// A univariate polynomial with rational coefficients, lowest degree first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Poly {
    /// Coefficients `c0 + c1·n + c2·n² + …`.
    pub coeffs: Vec<Rat>,
}

impl Poly {
    /// Evaluates at integer `n`.
    pub fn eval(&self, n: i64) -> Rat {
        let x = Rat::from(n);
        let mut acc = Rat::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Degree (index of last non-zero coefficient; 0 for the zero poly).
    pub fn degree(&self) -> usize {
        self.coeffs.iter().rposition(|c| !c.is_zero()).unwrap_or(0)
    }
}

/// Interpolates the unique polynomial of degree `<= points.len() - 1`
/// through `(x, y)` pairs (Lagrange form).
pub fn lagrange(points: &[(i64, i64)]) -> Poly {
    let n = points.len();
    assert!(n > 0, "need at least one point");
    // Accumulate coefficients of Σ yi · Π_{j≠i} (x - xj)/(xi - xj).
    let mut coeffs = vec![Rat::ZERO; n];
    for (i, &(xi, yi)) in points.iter().enumerate() {
        // numerator polynomial Π_{j≠i} (x - xj), built incrementally.
        let mut num = vec![Rat::ZERO; n];
        num[0] = Rat::ONE;
        let mut deg = 0;
        let mut denom = Rat::ONE;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if j == i {
                continue;
            }
            // multiply num by (x - xj)
            for k in (0..=deg).rev() {
                let c = num[k];
                num[k + 1] = num[k + 1] + c;
                num[k] = c * Rat::from(-xj);
            }
            deg += 1;
            denom = denom * Rat::from(xi - xj);
        }
        let scale = Rat::from(yi) / denom;
        for k in 0..n {
            coeffs[k] = coeffs[k] + num[k] * scale;
        }
    }
    Poly { coeffs }
}

/// Reconstructs the degree-`degree` Ehrhart polynomial of a one-parameter
/// counting function by sampling `count` at `degree + 1` consecutive
/// parameter values starting at `start`.
///
/// For genuinely polynomial families (all the access sets generated in this
/// workspace) the result is exact; for quasi-polynomial families it is the
/// polynomial piece of the sampled residue class.
pub fn ehrhart_interpolate(degree: usize, start: i64, mut count: impl FnMut(i64) -> u64) -> Poly {
    let pts: Vec<(i64, i64)> =
        (0..=degree as i64).map(|k| (start + k, count(start + k) as i64)).collect();
    lagrange(&pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::{LinExpr, Space};
    use crate::polyhedron::Polyhedron;

    #[test]
    fn lagrange_through_line() {
        let p = lagrange(&[(0, 1), (1, 3)]);
        assert_eq!(p.eval(0), Rat::int(1));
        assert_eq!(p.eval(1), Rat::int(3));
        assert_eq!(p.eval(10), Rat::int(21));
        assert_eq!(p.degree(), 1);
    }

    #[test]
    fn lagrange_through_square_counts() {
        // n^2 through three points.
        let p = lagrange(&[(1, 1), (2, 4), (3, 9)]);
        assert_eq!(p.eval(7), Rat::int(49));
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn ehrhart_of_square_domain() {
        // |{(i,j) | 0<=i<n, 0<=j<n}| = n²
        let s = Space::new(2, 1);
        let mut dom = Polyhedron::universe(s);
        dom.add_ge0(LinExpr::dim(s, 0));
        dom.add_ge0(LinExpr::dim(s, 0).scale(-1).with_param(0, 1).with_const(-1));
        dom.add_ge0(LinExpr::dim(s, 1));
        dom.add_ge0(LinExpr::dim(s, 1).scale(-1).with_param(0, 1).with_const(-1));
        let p = ehrhart_interpolate(2, 1, |n| dom.instantiate_params(&[n]).count_integer_points());
        assert_eq!(p.eval(10), Rat::int(100));
        assert_eq!(p.eval(31), Rat::int(961));
    }

    #[test]
    fn ehrhart_of_triangle_domain() {
        // |{(i,j) | 0<=i<n, i+1<=j<n}| = n(n-1)/2  (the LU j-loop domain)
        let s = Space::new(2, 1);
        let mut dom = Polyhedron::universe(s);
        dom.add_ge0(LinExpr::dim(s, 0));
        dom.add_ge0(LinExpr::dim(s, 0).scale(-1).with_param(0, 1).with_const(-1));
        dom.add_ge0(LinExpr::dim(s, 1).with_dim(0, -1).with_const(-1));
        dom.add_ge0(LinExpr::dim(s, 1).scale(-1).with_param(0, 1).with_const(-1));
        let p = ehrhart_interpolate(2, 2, |n| dom.instantiate_params(&[n]).count_integer_points());
        assert_eq!(p.eval(10), Rat::int(45));
        assert_eq!(p.eval(64), Rat::int(64 * 63 / 2));
    }

    #[test]
    fn constant_family() {
        let p = ehrhart_interpolate(0, 1, |_| 7);
        assert_eq!(p.eval(100), Rat::int(7));
        assert_eq!(p.degree(), 0);
    }
}
