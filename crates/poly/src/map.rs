//! Affine images of polyhedra (Z-polytopes) and unions thereof.
//!
//! An [`AffineImage`] is the compiler's model of one memory instruction: the
//! set of array cells it touches is the image of its iteration domain under
//! the affine subscript map. The paper's `NOrig` is the number of *distinct*
//! points in the union of these images (a union of Z-polytopes, counted in
//! the paper with Ehrhart polynomials; counted here by exact enumeration for
//! instantiated parameters, with Ehrhart interpolation available in
//! [`crate::count`] for parametric counts).

use crate::linexpr::LinExpr;
use crate::polyhedron::{Polyhedron, Unbounded};
use crate::rat::Rat;
use crate::vertex::vertices;
use std::collections::HashSet;

/// The image of an iteration domain under an affine subscript map.
#[derive(Clone, Debug)]
pub struct AffineImage {
    /// Iteration domain (dims = loop counters; params allowed).
    pub domain: Polyhedron,
    /// One affine expression per target (subscript) coordinate, over the
    /// domain's space.
    pub map: Vec<LinExpr>,
}

impl AffineImage {
    /// Creates an image; all map expressions must live in the domain's space.
    pub fn new(domain: Polyhedron, map: Vec<LinExpr>) -> Self {
        for e in &map {
            assert_eq!(e.space, domain.space(), "map expression space mismatch");
        }
        AffineImage { domain, map }
    }

    /// Number of target coordinates.
    pub fn target_dims(&self) -> usize {
        self.map.len()
    }

    /// Enumerates the distinct integer target points for concrete parameter
    /// values, or [`Unbounded`] when the instantiated domain cannot be
    /// scanned.
    pub fn try_enumerate(&self, params: &[i64]) -> Result<HashSet<Vec<i64>>, Unbounded> {
        let dom = self.domain.instantiate_params(params);
        let maps: Vec<LinExpr> = self.map.iter().map(|e| e.instantiate_params(params)).collect();
        let mut out = HashSet::new();
        dom.try_for_each_integer_point(|pt| {
            let img: Vec<i64> = maps.iter().map(|e| e.eval_int(pt, &[]) as i64).collect();
            out.insert(img);
        })?;
        Ok(out)
    }

    /// Enumerates the distinct integer target points for concrete parameter
    /// values.
    ///
    /// # Panics
    ///
    /// Panics if the instantiated domain is unbounded; compiler paths use
    /// [`AffineImage::try_enumerate`] and refuse instead.
    pub fn enumerate(&self, params: &[i64]) -> HashSet<Vec<i64>> {
        self.try_enumerate(params).expect("bounded image domain")
    }

    /// The rational vertices of the image for concrete parameter values:
    /// the images of the domain's vertices (exact for affine maps — the
    /// image of a convex hull is the convex hull of the vertex images).
    pub fn image_vertices(&self, params: &[i64]) -> Vec<Vec<Rat>> {
        let dom = self.domain.instantiate_params(params);
        let maps: Vec<LinExpr> = self.map.iter().map(|e| e.instantiate_params(params)).collect();
        let mut out: Vec<Vec<Rat>> = Vec::new();
        for v in vertices(&dom) {
            let img: Vec<Rat> = maps
                .iter()
                .map(|e| {
                    let mut acc = Rat::int(e.const_term());
                    for (d, val) in v.iter().enumerate() {
                        acc = acc + *val * Rat::int(e.dim_coeff(d));
                    }
                    acc
                })
                .collect();
            if !out.contains(&img) {
                out.push(img);
            }
        }
        out
    }
}

/// Counts the distinct points in the union of several images for concrete
/// parameter values (the paper's `NOrig`), or [`Unbounded`] when some
/// image's domain cannot be scanned — the caller should refuse generation
/// rather than abort.
pub fn try_count_union_distinct(images: &[AffineImage], params: &[i64]) -> Result<u64, Unbounded> {
    let mut all: HashSet<Vec<i64>> = HashSet::new();
    for img in images {
        all.extend(img.try_enumerate(params)?);
    }
    Ok(all.len() as u64)
}

/// Counts the distinct points in the union of several images for concrete
/// parameter values (the paper's `NOrig`).
///
/// # Panics
///
/// Panics if some image's domain is unbounded; compiler paths use
/// [`try_count_union_distinct`] and refuse instead.
pub fn count_union_distinct(images: &[AffineImage], params: &[i64]) -> u64 {
    try_count_union_distinct(images, params).expect("bounded image domains")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::Space;

    /// Builds the iteration domain { (i, j) | 0 <= i < n, 0 <= j < n } with
    /// one parameter n.
    fn square_domain() -> Polyhedron {
        let s = Space::new(2, 1);
        let mut p = Polyhedron::universe(s);
        p.add_ge0(LinExpr::dim(s, 0));
        p.add_ge0(LinExpr::dim(s, 0).scale(-1).with_param(0, 1).with_const(-1));
        p.add_ge0(LinExpr::dim(s, 1));
        p.add_ge0(LinExpr::dim(s, 1).scale(-1).with_param(0, 1).with_const(-1));
        p
    }

    #[test]
    fn identity_image_counts_square() {
        let s = Space::new(2, 1);
        let img = AffineImage::new(square_domain(), vec![LinExpr::dim(s, 0), LinExpr::dim(s, 1)]);
        assert_eq!(img.enumerate(&[4]).len(), 16);
    }

    #[test]
    fn collapsing_image_dedupes() {
        // map (i, j) -> (i): all j collapse.
        let s = Space::new(2, 1);
        let img = AffineImage::new(square_domain(), vec![LinExpr::dim(s, 0)]);
        assert_eq!(img.enumerate(&[5]).len(), 5);
    }

    #[test]
    fn union_counts_overlap_once() {
        // A[i][j] and A[i][j] again (two instructions, same cells) — union
        // must not double count. Third image shifted by 1 row adds n cells.
        let s = Space::new(2, 1);
        let a = AffineImage::new(square_domain(), vec![LinExpr::dim(s, 0), LinExpr::dim(s, 1)]);
        let b = a.clone();
        let c = AffineImage::new(
            square_domain(),
            vec![LinExpr::dim(s, 0).with_const(1), LinExpr::dim(s, 1)],
        );
        assert_eq!(count_union_distinct(&[a.clone(), b], &[4]), 16);
        assert_eq!(count_union_distinct(&[a, c], &[4]), 20);
    }

    #[test]
    fn image_vertices_are_mapped_domain_vertices() {
        let s = Space::new(2, 1);
        // map (i,j) -> (i + j, j): a shear.
        let img = AffineImage::new(
            square_domain(),
            vec![LinExpr::dim(s, 0).with_dim(1, 1), LinExpr::dim(s, 1)],
        );
        let vs = img.image_vertices(&[3]);
        assert_eq!(vs.len(), 4);
        assert!(vs.contains(&vec![Rat::int(0), Rat::int(0)]));
        assert!(vs.contains(&vec![Rat::int(4), Rat::int(2)]));
    }

    #[test]
    fn strided_image_is_sparse() {
        // map i -> 2i over 0..n : n distinct points, not 2n.
        let s = Space::new(1, 1);
        let mut dom = Polyhedron::universe(s);
        dom.add_ge0(LinExpr::dim(s, 0));
        dom.add_ge0(LinExpr::dim(s, 0).scale(-1).with_param(0, 1).with_const(-1));
        let img = AffineImage::new(dom, vec![LinExpr::dim(s, 0).scale(2)]);
        let pts = img.enumerate(&[6]);
        assert_eq!(pts.len(), 6);
        assert!(pts.contains(&vec![10]));
        assert!(!pts.contains(&vec![9]));
    }
}
