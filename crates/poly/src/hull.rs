//! Convex hulls of rational point sets, as constraint-form polyhedra.
//!
//! This is the §5.1.2 machinery: the compiler computes "the convex hull of
//! the union" of per-instruction access sets. Exact hulls are implemented in
//! one and two dimensions (covering every array-subscript space in the
//! paper's benchmarks); higher dimensions fall back to the axis-aligned
//! bounding box. Any over-approximation introduced by the fallback is caught
//! by the paper's own profitability check (`NconvUn <= NOrig`).

use crate::linexpr::{LinExpr, Space};
use crate::polyhedron::Polyhedron;
use crate::rat::Rat;

/// Computes the convex hull of `points` (each of dimension `dims`) as a
/// constraint-form polyhedron in a parameter-free space.
///
/// * 1-D and 2-D: exact hull (interval / Andrew monotone chain).
/// * ≥3-D: axis-aligned bounding box (documented over-approximation).
/// * No points: the empty polyhedron.
pub fn convex_hull(dims: usize, points: &[Vec<Rat>]) -> Polyhedron {
    let space = Space::new(dims, 0);
    if points.is_empty() {
        let mut p = Polyhedron::universe(space);
        p.add_ge0(LinExpr::constant(space, -1)); // -1 >= 0 : empty
        return p;
    }
    for pt in points {
        assert_eq!(pt.len(), dims, "point dimension mismatch");
    }
    match dims {
        1 => hull_1d(space, points),
        2 => hull_2d(space, points),
        _ => bounding_box(space, points),
    }
}

/// Axis-aligned bounding box of a point set, exact per dimension.
pub fn bounding_box(space: Space, points: &[Vec<Rat>]) -> Polyhedron {
    let mut p = Polyhedron::universe(space);
    for d in 0..space.dims {
        let lo = points.iter().map(|pt| pt[d]).min().expect("nonempty");
        let hi = points.iter().map(|pt| pt[d]).max().expect("nonempty");
        // d - ceil(lo) >= 0 is wrong for rational lo: the hull constraint is
        // den*d - num >= 0 to stay exact.
        p.add_ge0(LinExpr::dim(space, d).scale(lo.den()).with_const(-lo.num()));
        p.add_ge0(LinExpr::dim(space, d).scale(-hi.den()).with_const(hi.num()));
    }
    p
}

fn hull_1d(space: Space, points: &[Vec<Rat>]) -> Polyhedron {
    bounding_box(space, points)
}

fn cross(o: &[Rat], a: &[Rat], b: &[Rat]) -> Rat {
    (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])
}

fn hull_2d(space: Space, points: &[Vec<Rat>]) -> Polyhedron {
    // Andrew's monotone chain over deduplicated sorted points.
    let mut pts: Vec<Vec<Rat>> = points.to_vec();
    pts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    pts.dedup();

    if pts.len() == 1 {
        let mut p = Polyhedron::universe(space);
        for (d, &v) in pts[0].iter().enumerate().take(2) {
            p.add_eq0(LinExpr::dim(space, d).scale(v.den()).with_const(-v.num()));
        }
        return p;
    }

    let mut lower: Vec<Vec<Rat>> = Vec::new();
    for pt in &pts {
        while lower.len() >= 2
            && cross(&lower[lower.len() - 2], &lower[lower.len() - 1], pt).signum() <= 0
        {
            lower.pop();
        }
        lower.push(pt.clone());
    }
    let mut upper: Vec<Vec<Rat>> = Vec::new();
    for pt in pts.iter().rev() {
        while upper.len() >= 2
            && cross(&upper[upper.len() - 2], &upper[upper.len() - 1], pt).signum() <= 0
        {
            upper.pop();
        }
        upper.push(pt.clone());
    }
    lower.pop();
    upper.pop();
    let hull: Vec<Vec<Rat>> = lower.into_iter().chain(upper).collect(); // CCW

    if hull.len() == 2 {
        // Degenerate: all points collinear. Constrain to the segment: the
        // carrier line as an equality plus the bounding box.
        let (p0, p1) = (&hull[0], &hull[1]);
        let mut p = bounding_box(space, points);
        // line through p0,p1: (y1-y0)(x-x0) - (x1-x0)(y-y0) == 0
        let dy = p1[1] - p0[1];
        let dx = p1[0] - p0[0];
        // scale to integer coefficients
        let mult = Rat::int(dy.den() * dx.den() * p0[0].den() * p0[1].den());
        let a = dy * mult; // coeff of x
        let b = -(dx * mult); // coeff of y
        let c = -(dy * mult * p0[0]) + dx * mult * p0[1];
        debug_assert!(a.is_integer() && b.is_integer() && c.is_integer());
        p.add_eq0(
            LinExpr::zero(space).with_dim(0, a.num()).with_dim(1, b.num()).with_const(c.num()),
        );
        return p;
    }

    // Each CCW edge (p, q) contributes: cross(q-p, x-p) >= 0.
    let mut poly = Polyhedron::universe(space);
    let n = hull.len();
    for i in 0..n {
        let p0 = &hull[i];
        let p1 = &hull[(i + 1) % n];
        let dx = p1[0] - p0[0];
        let dy = p1[1] - p0[1];
        // (x - p0x)*dy' ... expand cross((dx,dy), (x-p0x, y-p0y)) >= 0:
        //   dx*(y-p0y) - dy*(x-p0x) >= 0
        // Scale by the lcm of all denominators to integer coefficients.
        let scale = Rat::int(lcm(lcm(dx.den(), dy.den()), lcm(p0[0].den(), p0[1].den())));
        let a = -(dy * scale); // coeff of x
        let b = dx * scale; // coeff of y
        let c = dy * scale * p0[0] - dx * scale * p0[1];
        debug_assert!(a.is_integer() && b.is_integer() && c.is_integer());
        poly.add_ge0(
            LinExpr::zero(space).with_dim(0, a.num()).with_dim(1, b.num()).with_const(c.num()),
        );
    }
    poly
}

fn lcm(a: i128, b: i128) -> i128 {
    let g = gcd(a, b);
    if g == 0 {
        0
    } else {
        (a / g) * b
    }
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: i64, y: i64) -> Vec<Rat> {
        vec![Rat::from(x), Rat::from(y)]
    }

    #[test]
    fn hull_of_square_corners() {
        let pts = vec![pt(0, 0), pt(3, 0), pt(0, 3), pt(3, 3), pt(1, 1)];
        let h = convex_hull(2, &pts);
        assert_eq!(h.count_integer_points(), 16);
        assert!(h.contains_int(&[2, 2], &[]));
        assert!(!h.contains_int(&[4, 0], &[]));
    }

    #[test]
    fn hull_of_triangle() {
        let pts = vec![pt(0, 0), pt(4, 0), pt(0, 4)];
        let h = convex_hull(2, &pts);
        // integer points of the closed triangle: 15
        assert_eq!(h.count_integer_points(), 15);
        assert!(h.contains_int(&[1, 1], &[]));
        assert!(!h.contains_int(&[3, 3], &[]));
    }

    #[test]
    fn hull_1d_interval() {
        let pts = vec![vec![Rat::from(7)], vec![Rat::from(2)], vec![Rat::from(5)]];
        let h = convex_hull(1, &pts);
        assert_eq!(h.count_integer_points(), 6);
        assert!(h.contains_int(&[2], &[]));
        assert!(h.contains_int(&[7], &[]));
        assert!(!h.contains_int(&[8], &[]));
    }

    #[test]
    fn hull_of_single_point() {
        let h = convex_hull(2, &[pt(3, 5)]);
        assert_eq!(h.count_integer_points(), 1);
        assert!(h.contains_int(&[3, 5], &[]));
    }

    #[test]
    fn hull_of_collinear_points() {
        let pts = vec![pt(0, 0), pt(2, 2), pt(4, 4)];
        let h = convex_hull(2, &pts);
        // Segment (0,0)-(4,4): integer points on the diagonal only.
        assert_eq!(h.count_integer_points(), 5);
        assert!(h.contains_int(&[3, 3], &[]));
        assert!(!h.contains_int(&[3, 2], &[]));
    }

    #[test]
    fn empty_point_set_gives_empty_polyhedron() {
        let h = convex_hull(2, &[]);
        assert_eq!(h.count_integer_points(), 0);
    }

    #[test]
    fn bounding_box_fallback_3d() {
        let pts = vec![
            vec![Rat::from(0), Rat::from(0), Rat::from(0)],
            vec![Rat::from(1), Rat::from(2), Rat::from(3)],
        ];
        let h = convex_hull(3, &pts);
        assert_eq!(h.count_integer_points(), 2 * 3 * 4);
    }

    #[test]
    fn rational_points_are_handled_exactly() {
        // hull of {1/2, 5/2} in 1-D contains integers 1 and 2 only.
        let pts = vec![vec![Rat::new(1, 2)], vec![Rat::new(5, 2)]];
        let h = convex_hull(1, &pts);
        assert_eq!(h.count_integer_points(), 2);
    }
}
