//! Property-based tests of the polyhedral substrate's invariants.

use dae_poly::{convex_hull, lagrange, LinExpr, Polyhedron, Rat, Space};
use proptest::prelude::*;

fn rat() -> impl Strategy<Value = Rat> {
    (-50i128..50, 1i128..10).prop_map(|(n, d)| Rat::new(n, d))
}

proptest! {
    // ---- exact rational arithmetic ------------------------------------

    #[test]
    fn rat_add_commutes(a in rat(), b in rat()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn rat_mul_distributes(a in rat(), b in rat(), c in rat()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn rat_floor_ceil_bracket(a in rat()) {
        let f = a.floor();
        let c = a.ceil();
        prop_assert!(Rat::int(f) <= a && a <= Rat::int(c));
        prop_assert!(c - f <= 1);
        if a.is_integer() {
            prop_assert_eq!(f, c);
        }
    }

    #[test]
    fn rat_order_consistent_with_sub(a in rat(), b in rat()) {
        prop_assert_eq!(a < b, (b - a).signum() > 0);
    }

    // ---- polyhedra ------------------------------------------------------

    /// Counting equals the length of the enumeration, and every enumerated
    /// point is a member.
    #[test]
    fn count_matches_enumeration(
        x0 in -5i128..5, w in 0i128..6,
        y0 in -5i128..5, h in 0i128..6,
        slope in -2i128..3,
    ) {
        let s = Space::new(2, 0);
        let mut p = Polyhedron::universe(s);
        p.bound_dim(0, x0, x0 + w);
        p.bound_dim(1, y0, y0 + h);
        // an extra half-plane: y <= slope*x + y0 + h (keeps it bounded)
        p.add_ge0(
            LinExpr::dim(s, 1).scale(-1).with_dim(0, slope).with_const(y0 + h),
        );
        let pts = p.integer_points();
        prop_assert_eq!(pts.len() as u64, p.count_integer_points());
        for pt in &pts {
            prop_assert!(p.contains_int(pt, &[]));
        }
    }

    /// Fourier–Motzkin projection is sound: the projection of any member
    /// point is a member of the projection.
    #[test]
    fn fm_projection_sound(
        x0 in -4i128..4, w in 0i128..5,
        y0 in -4i128..4, h in 0i128..5,
        a in -2i128..3, b in -2i128..3, c in -6i128..7,
    ) {
        let s = Space::new(2, 0);
        let mut p = Polyhedron::universe(s);
        p.bound_dim(0, x0, x0 + w);
        p.bound_dim(1, y0, y0 + h);
        p.add_ge0(LinExpr::zero(s).with_dim(0, a).with_dim(1, b).with_const(c));
        let proj = p.eliminate_dim(1);
        for pt in p.integer_points() {
            prop_assert!(
                proj.contains_int(&[pt[0]], &[]),
                "projection lost x = {}",
                pt[0]
            );
        }
    }

    /// The convex hull contains every input point, and its integer count is
    /// at least the number of distinct integer inputs.
    #[test]
    fn hull_contains_inputs(pts in proptest::collection::vec((-6i64..6, -6i64..6), 1..12)) {
        let rpts: Vec<Vec<Rat>> =
            pts.iter().map(|(x, y)| vec![Rat::from(*x), Rat::from(*y)]).collect();
        let hull = convex_hull(2, &rpts);
        for (x, y) in &pts {
            prop_assert!(hull.contains_int(&[*x, *y], &[]), "lost ({x},{y})");
        }
        let mut distinct = pts.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert!(hull.count_integer_points() >= distinct.len() as u64);
    }

    /// Hull membership respects convexity: the midpoint of two input points
    /// (when integral) is inside.
    #[test]
    fn hull_is_convex_on_midpoints(
        ax in -6i64..6, ay in -6i64..6, bx in -6i64..6, by in -6i64..6,
    ) {
        let pts = vec![
            vec![Rat::from(ax), Rat::from(ay)],
            vec![Rat::from(bx), Rat::from(by)],
        ];
        let hull = convex_hull(2, &pts);
        if (ax + bx) % 2 == 0 && (ay + by) % 2 == 0 {
            prop_assert!(hull.contains_int(&[(ax + bx) / 2, (ay + by) / 2], &[]));
        }
    }

    /// Instantiating parameters commutes with membership.
    #[test]
    fn instantiation_consistent(n in 1i64..8, x in -2i64..10) {
        let s = Space::new(1, 1);
        let mut p = Polyhedron::universe(s);
        p.add_ge0(LinExpr::dim(s, 0));
        p.add_ge0(LinExpr::dim(s, 0).scale(-1).with_param(0, 1).with_const(-1));
        let inst = p.instantiate_params(&[n]);
        prop_assert_eq!(p.contains_int(&[x], &[n]), inst.contains_int(&[x], &[]));
    }

    // ---- interpolation ---------------------------------------------------

    /// Lagrange interpolation reproduces its sample points exactly.
    #[test]
    fn lagrange_reproduces_samples(ys in proptest::collection::vec(-30i64..30, 1..6)) {
        let pts: Vec<(i64, i64)> =
            ys.iter().enumerate().map(|(i, y)| (i as i64, *y)).collect();
        let poly = lagrange(&pts);
        for (x, y) in &pts {
            prop_assert_eq!(poly.eval(*x), Rat::from(*y));
        }
    }

    /// Vertex enumeration returns points satisfying all constraints.
    #[test]
    fn vertices_are_members(
        x0 in -4i128..4, w in 1i128..5,
        y0 in -4i128..4, h in 1i128..5,
    ) {
        let s = Space::new(2, 0);
        let mut p = Polyhedron::universe(s);
        p.bound_dim(0, x0, x0 + w);
        p.bound_dim(1, y0, y0 + h);
        let vs = dae_poly::vertices(&p);
        prop_assert_eq!(vs.len(), 4);
        for v in vs {
            prop_assert!(p.contains_rat(&v, &[]));
        }
    }
}
