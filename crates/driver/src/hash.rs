//! Stable structural hashing for incremental-cache keys.
//!
//! The cache key of one task compilation is an FNV-1a-64 digest over
//! everything the generated artifact depends on:
//!
//! * the **printed IR** of the task function and of every function it
//!   (transitively) calls — the printer is deterministic and captures the
//!   full structure, so any semantic change changes the key;
//! * the module's **global declarations** (id, name, length, element type)
//!   — delinearisation and address generation read them; initial *values*
//!   are excluded because generation never does;
//! * every field of the [`CompilerOptions`] in a fixed order;
//! * the **pipeline fingerprint** ([`crate::pass::Pipeline::fingerprint`]),
//!   so artifacts produced by a different pass sequence (or a future
//!   artifact-schema revision) never alias.
//!
//! `std::hash::Hasher` is deliberately not used: its output is not
//! guaranteed stable across Rust releases, and these keys name on-disk
//! artifacts that must survive toolchain upgrades.

use dae_core::CompilerOptions;
use dae_ir::{print_function, FuncId, InstKind, Module};

/// A 64-bit FNV-1a hasher with a stable, documented algorithm.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64::default()
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a string, length-prefixed so concatenations cannot collide.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `i64` in little-endian byte order.
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a boolean as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write(&[v as u8]);
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Functions reachable from `root` through `call` instructions, `root`
/// first, then callees in deterministic first-encounter (pre-order) order.
fn reachable_funcs(module: &Module, root: FuncId) -> Vec<FuncId> {
    let mut order = vec![root];
    let mut cursor = 0;
    while cursor < order.len() {
        let f = module.func(order[cursor]);
        cursor += 1;
        f.for_each_placed_inst(|_, inst| {
            if let InstKind::Call { callee, .. } = &f.inst(inst).kind {
                if !order.contains(callee) {
                    order.push(*callee);
                }
            }
        });
    }
    order
}

/// Absorbs every [`CompilerOptions`] field, in declaration order.
fn write_options(h: &mut Fnv64, opts: &CompilerOptions) {
    // Field-by-field so a new knob cannot silently alias old artifacts —
    // extend this list when CompilerOptions grows.
    let CompilerOptions {
        enable_polyhedral,
        cfg_simplify,
        line_dedup,
        hull_threshold,
        prefetch_writes,
        param_hints,
        skip_hull_check,
    } = opts;
    h.write_bool(*enable_polyhedral);
    h.write_bool(*cfg_simplify);
    h.write_bool(*line_dedup);
    h.write_i64(*hull_threshold);
    h.write_bool(*prefetch_writes);
    h.write_u64(param_hints.len() as u64);
    for &v in param_hints {
        h.write_i64(v);
    }
    h.write_bool(*skip_hull_check);
}

/// The content-addressed cache key of compiling `task` under `opts` with
/// the pipeline identified by `pipeline_fingerprint`.
pub fn task_key(
    module: &Module,
    task: FuncId,
    opts: &CompilerOptions,
    pipeline_fingerprint: u64,
) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("dae-driver-key/1");
    h.write_u64(pipeline_fingerprint);
    for f in reachable_funcs(module, task) {
        h.write_str(&print_function(module.func(f), Some(module)));
    }
    h.write_u64(module.num_globals() as u64);
    for (id, g) in module.globals() {
        h.write_str(&format!("{id}"));
        h.write_str(&g.name);
        h.write_u64(g.len);
        h.write_str(&format!("{}", g.elem_ty));
    }
    write_options(&mut h, opts);
    h.finish()
}

/// Folds a profile's content hash into a base [`task_key`]: the cache key
/// of a **profile-refined** compilation. Refined artifacts therefore
/// never alias the static ones, and a profile change re-keys (and so
/// recompiles) the task — an artifact can never go stale against the
/// profile that shaped it. With no profile the base key is used directly,
/// keeping the static pipeline's cache behaviour byte-identical.
pub fn refined_key(base: u64, profile_hash: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("dae-pgo-refined/1");
    h.write_u64(base);
    h.write_u64(profile_hash);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{FunctionBuilder, Type, Value};

    fn module_with_task(scale: i64) -> (Module, FuncId) {
        let mut m = Module::new();
        let a = m.add_global("a", Type::F64, 128);
        let mut b = FunctionBuilder::new("t", vec![Type::I64], Type::Void);
        b.set_task();
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            let x = b.imul(i, scale);
            let p = b.elem_addr(Value::Global(a), x, Type::F64);
            let _ = b.load(Type::F64, p);
        });
        b.ret(None);
        let t = m.add_function(b.finish());
        (m, t)
    }

    #[test]
    fn fnv_is_stable() {
        // Reference value of FNV-1a-64 over "hello" (no length prefix).
        let mut h = Fnv64::new();
        h.write(b"hello");
        assert_eq!(h.finish(), 0xa430_d846_80aa_bd0b);
    }

    #[test]
    fn key_is_deterministic_and_content_sensitive() {
        let (m1, t1) = module_with_task(1);
        let (m2, t2) = module_with_task(1);
        let (m3, t3) = module_with_task(2);
        let opts = CompilerOptions { param_hints: vec![64], ..Default::default() };
        let k1 = task_key(&m1, t1, &opts, 7);
        assert_eq!(k1, task_key(&m2, t2, &opts, 7), "same content, same key");
        assert_ne!(k1, task_key(&m3, t3, &opts, 7), "different IR, different key");
        assert_ne!(k1, task_key(&m1, t1, &opts, 8), "different pipeline, different key");
        let other = CompilerOptions { param_hints: vec![65], ..Default::default() };
        assert_ne!(k1, task_key(&m1, t1, &other, 7), "different options, different key");
    }

    #[test]
    fn key_covers_callees_and_globals() {
        let build = |leaf_scale: i64, glen: u64| {
            let mut m = Module::new();
            let a = m.add_global("a", Type::F64, glen);
            let mut lb = FunctionBuilder::new("leaf", vec![Type::I64], Type::I64);
            let v = lb.imul(Value::Arg(0), leaf_scale);
            lb.ret(Some(v));
            let leaf = m.add_function(lb.finish());
            let mut b = FunctionBuilder::new("t", vec![Type::I64], Type::Void);
            b.set_task();
            let x = b.call(leaf, vec![Value::Arg(0)], Type::I64).expect("non-void call");
            let p = b.elem_addr(Value::Global(a), x, Type::F64);
            let _ = b.load(Type::F64, p);
            b.ret(None);
            let t = m.add_function(b.finish());
            (m, t)
        };
        let opts = CompilerOptions::default();
        let (m1, t1) = build(1, 128);
        let (m2, t2) = build(2, 128);
        let (m3, t3) = build(1, 256);
        assert_ne!(
            task_key(&m1, t1, &opts, 0),
            task_key(&m2, t2, &opts, 0),
            "callee body is part of the key"
        );
        assert_ne!(
            task_key(&m1, t1, &opts, 0),
            task_key(&m3, t3, &opts, 0),
            "global declarations are part of the key"
        );
    }
}
