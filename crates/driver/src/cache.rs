//! The content-addressed incremental compilation cache.
//!
//! Artifacts — one per `(task IR, callees, globals, options, pipeline)`
//! key from [`crate::hash::task_key`] — live in two tiers:
//!
//! * an **in-memory LRU** tier holding already-parsed artifacts, bounded
//!   by approximate bytes
//!   ([`DriverConfig::mem_max_bytes`](crate::DriverConfig::mem_max_bytes))
//!   so a long-running server cannot grow without limit;
//! * an optional **on-disk** tier (`--cache-dir`): one JSON file per key,
//!   the function body stored as printed IR and re-parsed on load. Both
//!   the printer and the generators end in a dense `compact`, so
//!   print → parse → print is a fixed point and a disk round-trip
//!   reproduces the function byte-for-byte.
//!
//! Disk IO is strictly best-effort: an unreadable, unparsable, or
//! wrong-schema file is treated as a miss (and counted as one), never an
//! error — a corrupted cache can cost time, not correctness.

use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};

use dae_core::{AffineStats, RefuseReason, Strategy, TaskAccessInfo};
use dae_ir::parse::parse_module;
use dae_ir::{print_function, Function};
use dae_trace::json::{parse, JsonValue};

/// Schema tag of on-disk artifacts. Bump on any layout change — the tag is
/// part of the pipeline fingerprint, so old artifacts simply stop matching.
pub const ARTIFACT_SCHEMA: &str = "dae-driver-artifact/1";

/// The cacheable part of a task's access analysis: every scalar from
/// [`TaskAccessInfo`] except the per-access descriptors, which only the
/// generator itself consumes (and it has already run).
#[derive(Clone, Debug, PartialEq)]
pub struct InfoSummary {
    /// Total loads encountered.
    pub total_loads: usize,
    /// Loads without a complete affine description.
    pub non_affine_loads: usize,
    /// Loops in the task, total.
    pub loops_total: usize,
    /// Loops in which every contained load is affine.
    pub loops_affine: usize,
    /// True when the task has data-dependent control flow.
    pub has_data_dependent_cf: bool,
}

impl InfoSummary {
    /// The cacheable summary of a full analysis.
    pub fn of(info: &TaskAccessInfo) -> InfoSummary {
        InfoSummary {
            total_loads: info.total_loads,
            non_affine_loads: info.non_affine_loads,
            loops_total: info.loops_total,
            loops_affine: info.loops_affine,
            has_data_dependent_cf: info.has_data_dependent_cf,
        }
    }

    /// Rehydrates a [`TaskAccessInfo`] (with empty per-access descriptors).
    pub fn into_info(self) -> TaskAccessInfo {
        TaskAccessInfo {
            affine: Vec::new(),
            total_loads: self.total_loads,
            non_affine_loads: self.non_affine_loads,
            loops_total: self.loops_total,
            loops_affine: self.loops_affine,
            has_data_dependent_cf: self.has_data_dependent_cf,
        }
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("total_loads", (self.total_loads).into()),
            ("non_affine_loads", (self.non_affine_loads).into()),
            ("loops_total", (self.loops_total).into()),
            ("loops_affine", (self.loops_affine).into()),
            ("has_data_dependent_cf", self.has_data_dependent_cf.into()),
        ])
    }

    fn from_json(v: &JsonValue) -> Option<InfoSummary> {
        let usize_of = |k: &str| v.get(k)?.as_f64().map(|f| f as usize);
        Some(InfoSummary {
            total_loads: usize_of("total_loads")?,
            non_affine_loads: usize_of("non_affine_loads")?,
            loops_total: usize_of("loops_total")?,
            loops_affine: usize_of("loops_affine")?,
            has_data_dependent_cf: v.get("has_data_dependent_cf")?.as_bool()?,
        })
    }
}

/// One cached compilation result: either the generated access function or
/// the (deterministic) refusal.
#[derive(Clone, Debug)]
pub enum Artifact {
    /// Generation succeeded.
    Generated {
        /// The access function.
        func: Function,
        /// Which §5 path produced it.
        strategy: Strategy,
        /// Scalars of the task's access analysis.
        info: InfoSummary,
    },
    /// Generation was refused; the task runs coupled.
    Refused {
        /// Why.
        reason: RefuseReason,
    },
}

impl Artifact {
    /// Serialises the artifact (schema [`ARTIFACT_SCHEMA`]).
    pub fn to_json(&self) -> JsonValue {
        match self {
            Artifact::Generated { func, strategy, info } => {
                let mut pairs = vec![
                    ("schema", JsonValue::from(ARTIFACT_SCHEMA)),
                    ("kind", "generated".into()),
                    // Access functions reference globals positionally
                    // (`@gN`), which the parser resolves without global
                    // declarations in scope.
                    ("func", print_function(func, None).into()),
                ];
                match strategy {
                    Strategy::Polyhedral(s) => {
                        pairs.push(("strategy", "polyhedral".into()));
                        pairs.push((
                            "stats",
                            JsonValue::obj([
                                ("n_orig", s.n_orig.into()),
                                ("n_conv_un", s.n_conv_un.into()),
                                ("classes", s.classes.into()),
                                ("nests", s.nests.into()),
                                ("orig_depth", s.orig_depth.into()),
                                ("gen_depth", s.gen_depth.into()),
                            ]),
                        ));
                    }
                    Strategy::Skeleton => pairs.push(("strategy", "skeleton".into())),
                }
                pairs.push(("info", info.to_json()));
                JsonValue::obj(pairs)
            }
            Artifact::Refused { reason } => {
                let (tag, detail) = match reason {
                    RefuseReason::NonInlinableCall(name) => {
                        ("non-inlinable-call", Some(name.as_str()))
                    }
                    RefuseReason::ControlDependsOnTaskWrites => {
                        ("control-depends-on-task-writes", None)
                    }
                    RefuseReason::NothingToPrefetch => ("nothing-to-prefetch", None),
                };
                let mut pairs = vec![
                    ("schema", JsonValue::from(ARTIFACT_SCHEMA)),
                    ("kind", "refused".into()),
                    ("reason", tag.into()),
                ];
                if let Some(d) = detail {
                    pairs.push(("detail", d.into()));
                }
                JsonValue::obj(pairs)
            }
        }
    }

    /// Deserialises an artifact; `None` on any mismatch (wrong schema,
    /// malformed IR, unknown tags).
    pub fn from_json(v: &JsonValue) -> Option<Artifact> {
        if v.get("schema")?.as_str()? != ARTIFACT_SCHEMA {
            return None;
        }
        match v.get("kind")?.as_str()? {
            "generated" => {
                let text = v.get("func")?.as_str()?;
                let module = parse_module(text).ok()?;
                let (_, func) = module.funcs().next()?;
                let strategy = match v.get("strategy")?.as_str()? {
                    "skeleton" => Strategy::Skeleton,
                    "polyhedral" => {
                        let s = v.get("stats")?;
                        let u64_of = |k: &str| s.get(k)?.as_f64().map(|f| f as u64);
                        let usize_of = |k: &str| s.get(k)?.as_f64().map(|f| f as usize);
                        Strategy::Polyhedral(AffineStats {
                            n_orig: u64_of("n_orig")?,
                            n_conv_un: u64_of("n_conv_un")?,
                            classes: usize_of("classes")?,
                            nests: usize_of("nests")?,
                            orig_depth: usize_of("orig_depth")?,
                            gen_depth: usize_of("gen_depth")?,
                        })
                    }
                    _ => return None,
                };
                Some(Artifact::Generated {
                    func: func.clone(),
                    strategy,
                    info: InfoSummary::from_json(v.get("info")?)?,
                })
            }
            "refused" => {
                let reason = match v.get("reason")?.as_str()? {
                    "non-inlinable-call" => {
                        RefuseReason::NonInlinableCall(v.get("detail")?.as_str()?.to_string())
                    }
                    "control-depends-on-task-writes" => RefuseReason::ControlDependsOnTaskWrites,
                    "nothing-to-prefetch" => RefuseReason::NothingToPrefetch,
                    _ => return None,
                };
                Some(Artifact::Refused { reason })
            }
            _ => None,
        }
    }
}

/// Monotonic cache counters (totals since construction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the in-memory tier.
    pub mem_hits: u64,
    /// Lookups answered from the on-disk tier.
    pub disk_hits: u64,
    /// Lookups answered by neither tier.
    pub misses: u64,
    /// Artifacts evicted from the in-memory tier.
    pub evictions: u64,
    /// Artifacts written to the on-disk tier.
    pub disk_writes: u64,
}

impl CacheStats {
    /// Total hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }

    /// The counter increments since `earlier` (a previous snapshot).
    pub fn delta(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            mem_hits: self.mem_hits - earlier.mem_hits,
            disk_hits: self.disk_hits - earlier.disk_hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            disk_writes: self.disk_writes - earlier.disk_writes,
        }
    }
}

/// Approximate in-memory footprint of an artifact, in bytes.
///
/// The canonical size of a generated artifact is its printed IR — the
/// same text the disk tier stores — plus a fixed allowance for the parsed
/// structure. "Approximate" is the contract: the bound protects a
/// long-running server from unbounded growth, it is not an allocator
/// audit.
pub fn artifact_approx_bytes(artifact: &Artifact) -> usize {
    const FIXED: usize = 128;
    match artifact {
        Artifact::Generated { func, .. } => {
            // Printed text once on insert; generation itself dwarfs this.
            FIXED + 2 * print_function(func, None).len()
        }
        Artifact::Refused { reason } => {
            FIXED
                + match reason {
                    RefuseReason::NonInlinableCall(name) => name.len(),
                    _ => 0,
                }
        }
    }
}

/// The in-memory LRU tier, bounded by **approximate bytes** rather than
/// entry count so a long-running server's footprint does not scale with
/// how large the cached functions happen to be.
struct MemCache {
    max_bytes: usize,
    used_bytes: usize,
    map: HashMap<u64, (Artifact, usize)>,
    /// Keys from least- to most-recently used.
    order: VecDeque<u64>,
}

impl MemCache {
    fn new(max_bytes: usize) -> MemCache {
        MemCache {
            max_bytes: max_bytes.max(1),
            used_bytes: 0,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
        }
        self.order.push_back(key);
    }

    fn get(&mut self, key: u64) -> Option<Artifact> {
        let hit = self.map.get(&key).map(|(a, _)| a.clone());
        if hit.is_some() {
            self.touch(key);
        }
        hit
    }

    /// Inserts and returns the number of evictions it forced. The entry
    /// just inserted is never its own victim — a single artifact larger
    /// than the whole budget still caches (as the only resident entry).
    fn insert(&mut self, key: u64, artifact: Artifact) -> u64 {
        let bytes = artifact_approx_bytes(&artifact);
        if let Some((_, old)) = self.map.insert(key, (artifact, bytes)) {
            self.used_bytes -= old;
        }
        self.used_bytes += bytes;
        self.touch(key);
        let mut evicted = 0;
        while self.used_bytes > self.max_bytes && self.order.len() > 1 {
            let victim = self.order.pop_front().expect("len > 1");
            if let Some((_, vb)) = self.map.remove(&victim) {
                self.used_bytes -= vb;
            }
            evicted += 1;
        }
        evicted
    }

    fn used_bytes(&self) -> usize {
        self.used_bytes
    }
}

/// The two-tier artifact cache.
pub struct Cache {
    mem: MemCache,
    dir: Option<PathBuf>,
    stats: CacheStats,
}

impl Cache {
    /// A cache with an in-memory tier of at most `mem_max_bytes`
    /// approximate bytes and an optional on-disk tier rooted at `dir`.
    pub fn new(mem_max_bytes: usize, dir: Option<&Path>) -> Cache {
        Cache {
            mem: MemCache::new(mem_max_bytes),
            dir: dir.map(Path::to_path_buf),
            stats: CacheStats::default(),
        }
    }

    /// Approximate bytes currently held by the in-memory tier.
    pub fn mem_used_bytes(&self) -> usize {
        self.mem.used_bytes()
    }

    fn artifact_path(dir: &Path, key: u64) -> PathBuf {
        dir.join(format!("{key:016x}.json"))
    }

    /// Looks `key` up: memory first, then disk (promoting the artifact into
    /// memory). Counts exactly one of `mem_hits` / `disk_hits` / `misses`.
    pub fn lookup(&mut self, key: u64) -> Option<Artifact> {
        if let Some(a) = self.mem.get(key) {
            self.stats.mem_hits += 1;
            return Some(a);
        }
        if let Some(dir) = &self.dir {
            // Validation happens *before* counting the hit: an unreadable
            // or malformed file must count as a miss, not a hit.
            let loaded = std::fs::read_to_string(Self::artifact_path(dir, key))
                .ok()
                .and_then(|text| parse(&text).ok())
                .and_then(|v| Artifact::from_json(&v));
            if let Some(a) = loaded {
                self.stats.disk_hits += 1;
                self.stats.evictions += self.mem.insert(key, a.clone());
                return Some(a);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Stores an artifact under `key` in both tiers. Disk IO is
    /// best-effort; a failed write is silently skipped.
    ///
    /// The disk write is **atomic**: the JSON goes to a unique temp file
    /// in the cache directory and is renamed into place, so a worker
    /// killed mid-write can never leave a torn artifact for a later
    /// validate-before-count lookup to reject.
    pub fn insert(&mut self, key: u64, artifact: Artifact) {
        if let Some(dir) = &self.dir {
            let ok = std::fs::create_dir_all(dir).is_ok()
                && write_atomic(
                    &Self::artifact_path(dir, key),
                    artifact.to_json().to_json_string().as_bytes(),
                )
                .is_ok();
            if ok {
                self.stats.disk_writes += 1;
            }
        }
        self.stats.evictions += self.mem.insert(key, artifact);
    }

    /// The monotonic counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// Writes `bytes` to `path` via a unique temp file in the same directory
/// followed by a rename — the rename is the atomicity barrier, so
/// concurrent readers only ever observe absent-or-complete artifacts.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let base = path.file_name().and_then(|n| n.to_str()).unwrap_or("artifact");
    let tmp = dir.join(format!(
        ".{base}.{}.{}.tmp",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_core::{generate_access, CompilerOptions};
    use dae_ir::{FunctionBuilder, Module, Type, Value};

    fn generated_artifact() -> Artifact {
        let mut m = Module::new();
        let a = m.add_global("a", Type::F64, 256);
        let mut b = FunctionBuilder::new("stream", vec![Type::I64], Type::Void);
        b.set_task();
        b.counted_loop(Value::i64(0), Value::i64(64), Value::i64(1), |b, i| {
            let p = b.elem_addr(Value::Global(a), i, Type::F64);
            let v = b.load(Type::F64, p);
            let w = b.fmul(v, 2.0f64);
            b.store(p, w);
        });
        b.ret(None);
        let t = m.add_function(b.finish());
        let opts = CompilerOptions { param_hints: vec![64], ..Default::default() };
        let g = generate_access(&m, t, &opts).expect("generates");
        Artifact::Generated { func: g.func, strategy: g.strategy, info: InfoSummary::of(&g.info) }
    }

    #[test]
    fn artifact_json_round_trips_bytewise() {
        let a = generated_artifact();
        let text = a.to_json().to_json_string();
        let b = Artifact::from_json(&parse(&text).unwrap()).expect("parses");
        // The IR printer is the canonical form: one round-trip must be the
        // fixed point, or disk-cached compiles would not be byte-identical.
        assert_eq!(text, b.to_json().to_json_string());
        let r = Artifact::Refused { reason: RefuseReason::NonInlinableCall("f".into()) };
        let rt = r.to_json().to_json_string();
        let r2 = Artifact::from_json(&parse(&rt).unwrap()).expect("parses");
        assert_eq!(rt, r2.to_json().to_json_string());
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let mut v = generated_artifact().to_json();
        if let JsonValue::Obj(pairs) = &mut v {
            pairs[0].1 = JsonValue::from("dae-driver-artifact/0");
        }
        assert!(Artifact::from_json(&v).is_none());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let a = || Artifact::Refused { reason: RefuseReason::NothingToPrefetch };
        // A refusal is ~128 approximate bytes; budget exactly two of them.
        let two = 2 * artifact_approx_bytes(&a());
        let mut c = Cache::new(two, None);
        c.insert(1, a());
        c.insert(2, a());
        assert!(c.lookup(1).is_some(), "refresh key 1");
        c.insert(3, a()); // evicts 2, the least recently used
        assert!(c.lookup(1).is_some());
        assert!(c.lookup(3).is_some());
        assert!(c.lookup(2).is_none());
        let s = c.stats();
        assert_eq!((s.mem_hits, s.misses, s.evictions), (3, 1, 1));
        assert!(c.mem_used_bytes() <= two);
    }

    #[test]
    fn byte_budget_bounds_the_memory_tier() {
        let g = generated_artifact();
        let bytes = artifact_approx_bytes(&g);
        assert!(bytes > 128, "generated artifacts account their printed IR");
        // Budget for ~3 generated artifacts: inserting 10 distinct keys
        // keeps usage under the budget and evicts the rest.
        let mut c = Cache::new(3 * bytes, None);
        for key in 0..10u64 {
            c.insert(key, g.clone());
        }
        assert!(c.mem_used_bytes() <= 3 * bytes);
        assert_eq!(c.stats().evictions, 7);
        // Most-recent keys survive; oldest were evicted.
        assert!(c.lookup(9).is_some());
        assert!(c.lookup(0).is_none());
        // Re-inserting an existing key replaces, never double-counts.
        let used = c.mem_used_bytes();
        c.insert(9, g.clone());
        assert_eq!(c.mem_used_bytes(), used);
    }

    #[test]
    fn oversized_artifact_still_caches_alone() {
        let g = generated_artifact();
        let mut c = Cache::new(1, None); // 1-byte budget: everything oversized
        c.insert(1, g.clone());
        assert!(c.lookup(1).is_some(), "sole entry is never its own victim");
        c.insert(2, g);
        assert!(c.lookup(2).is_some());
        assert!(c.lookup(1).is_none(), "second insert evicts the first");
    }

    #[test]
    fn disk_tier_survives_a_fresh_cache() {
        let dir = std::env::temp_dir().join(format!("dae-driver-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = 0xfeed_beef_u64;
        {
            let mut c = Cache::new(64 << 10, Some(&dir));
            c.insert(key, generated_artifact());
            assert_eq!(c.stats().disk_writes, 1);
        }
        // The atomic write leaves no temp droppings behind.
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            let name = entry.file_name();
            assert!(name.to_str().unwrap().ends_with(".json"), "unexpected file {name:?}");
        }
        let mut c = Cache::new(64 << 10, Some(&dir));
        match c.lookup(key) {
            Some(Artifact::Generated { info, .. }) => assert_eq!(info.total_loads, 1),
            other => panic!("expected generated artifact, got {other:?}"),
        }
        let s = c.stats();
        assert_eq!((s.mem_hits, s.disk_hits, s.misses), (0, 1, 0));
        // Promoted into memory: the second lookup is a memory hit.
        assert!(c.lookup(key).is_some());
        assert_eq!(c.stats().mem_hits, 1);
        // A corrupted file is a miss, not an error.
        std::fs::write(Cache::artifact_path(&dir, 7), "{not json").unwrap();
        assert!(c.lookup(7).is_none());
        assert_eq!(c.stats().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
