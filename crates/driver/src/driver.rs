//! The parallel compilation executor with deterministic merge.
//!
//! [`Driver::compile`] replaces [`dae_core::transform_module`]: it compiles
//! every task in the module through a [`Pipeline`], consulting the
//! incremental [`Cache`] first and fanning the misses out over a
//! `std::thread::scope` worker pool. The output is **bit-identical at any
//! thread count** — and to the sequential `transform_module` path — by
//! construction:
//!
//! * workers only *read* the module (a shared `&Module` snapshot) and
//!   return their generated functions; nothing mutates shared state off
//!   the main thread;
//! * results are scattered into per-task slots, then merged into the
//!   module **in task order** on the main thread, so generated functions
//!   get the same [`dae_ir::FuncId`]s regardless of completion order;
//! * cache probes and inserts also happen on the main thread in task
//!   order, so [`CacheStats`] are deterministic too.
//!
//! Work distribution (which worker compiles which task) is the only
//! scheduling freedom, and it is observable *only* in the wall-clock
//! [`PassSpan`]s — never in the compiled module or its statistics.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use dae_core::{CompilerOptions, DaeMap, GeneratedAccess, RefuseReason};
use dae_ir::{FuncId, Function, Module};
use dae_pgo::{PhaseProfile, ProfileSet};
use dae_trace::{TraceEvent, TraceSink};

use crate::cache::{Artifact, Cache, CacheStats, InfoSummary};
use crate::hash::{refined_key, task_key};
use crate::pass::{PassSpan, Pipeline};

/// Driver construction knobs.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Worker threads for cache-miss compilation (1 = run on the caller).
    pub jobs: usize,
    /// Root of the on-disk cache tier; `None` disables it.
    pub cache_dir: Option<PathBuf>,
    /// Byte budget (approximate) of the in-memory cache tier. Exposed on
    /// the CLIs as `--cache-max-mb`.
    pub mem_max_bytes: usize,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig { jobs: 1, cache_dir: None, mem_max_bytes: 64 << 20 }
    }
}

/// The result of one [`Driver::compile`] call.
#[derive(Debug)]
pub struct CompileOutcome {
    /// The task → access-function registry, exactly as
    /// [`dae_core::transform_module`] would have produced it.
    pub map: DaeMap,
    /// Tasks seen.
    pub tasks: usize,
    /// Tasks for which an access function exists (compiled or cached).
    pub generated: usize,
    /// Tasks refused (they run coupled).
    pub refused: usize,
    /// Tasks answered from the cache (hits, both tiers).
    pub from_cache: usize,
    /// Tasks compiled (or replayed) under a profile-refined cache key.
    pub refined: usize,
    /// Cache counter increments attributable to this compile.
    pub cache: CacheStats,
    /// Timed pass spans, grouped by task in task order.
    pub spans: Vec<PassSpan>,
    /// The **base** (profile-independent) cache key of every task — what
    /// profile collection keys records by, so a stored profile finds the
    /// task again on the next compile regardless of refinement state.
    pub keys: HashMap<FuncId, u64>,
}

/// One task's progress through probe → compile → merge.
enum Slot {
    /// Cache hit: merge the artifact directly.
    Ready(Artifact),
    /// Cache miss: the `k`-th entry of the parallel work list.
    Work(usize),
}

/// The pipeline manager: compiles modules through a [`Pipeline`] with
/// incremental caching and a parallel executor.
pub struct Driver {
    pipeline: Pipeline,
    cache: Cache,
    jobs: usize,
    profiles: ProfileSet,
}

impl Driver {
    /// A driver running [`Pipeline::standard`] under `config`.
    pub fn new(config: &DriverConfig) -> Driver {
        Driver::with_pipeline(Pipeline::standard(), config)
    }

    /// A driver running a custom pipeline.
    pub fn with_pipeline(pipeline: Pipeline, config: &DriverConfig) -> Driver {
        Driver {
            pipeline,
            cache: Cache::new(config.mem_max_bytes, config.cache_dir.as_deref()),
            jobs: config.jobs.max(1),
            profiles: ProfileSet::new(),
        }
    }

    /// Installs the profile set consulted by subsequent [`Driver::compile`]
    /// calls. A task whose **base** key has a profile compiles through the
    /// `refine` pass under a profile-folded cache key; every other task —
    /// and every task when the set is empty — stays on the static path,
    /// byte-identical, same cache keys. Returns the previous set.
    pub fn set_profiles(&mut self, profiles: ProfileSet) -> ProfileSet {
        std::mem::replace(&mut self.profiles, profiles)
    }

    /// The installed profile set.
    pub fn profiles(&self) -> &ProfileSet {
        &self.profiles
    }

    /// The driver's pipeline.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Cache counters accumulated over the driver's lifetime.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Approximate bytes currently held by the in-memory cache tier.
    pub fn cache_mem_used_bytes(&self) -> usize {
        self.cache.mem_used_bytes()
    }

    /// Compiles every task in `module`, adding the generated access
    /// functions exactly like [`dae_core::transform_module`] — same
    /// functions, same ids, same registry — at any job count, cold or
    /// warm cache.
    pub fn compile(
        &mut self,
        module: &mut Module,
        mut opts_for: impl FnMut(FuncId, &Function) -> CompilerOptions,
    ) -> CompileOutcome {
        let origin = Instant::now();
        let before = self.cache.stats();
        let fingerprint = self.pipeline.fingerprint();
        let tasks = module.task_ids();

        // Probe phase (main thread, task order): resolve each task to a
        // cached artifact or a work-list slot. A task with a profile is
        // keyed under `refined_key(base, profile_hash)` so refined
        // artifacts never alias static ones and a profile change re-keys.
        let mut slots: Vec<Slot> = Vec::with_capacity(tasks.len());
        let mut task_spans: Vec<Vec<PassSpan>> = vec![Vec::new(); tasks.len()];
        let mut work: Vec<(FuncId, CompilerOptions, u64, Option<PhaseProfile>)> = Vec::new();
        let mut base_keys: HashMap<FuncId, u64> = HashMap::with_capacity(tasks.len());
        let mut refined = 0usize;
        for (i, &task) in tasks.iter().enumerate() {
            let opts = opts_for(task, module.func(task));
            let base = task_key(module, task, &opts, fingerprint);
            base_keys.insert(task, base);
            let profile = self.profiles.get(base).copied().filter(|p| p.runs > 0);
            let key = match &profile {
                Some(p) => {
                    refined += 1;
                    refined_key(base, p.content_hash())
                }
                None => base,
            };
            let start_s = origin.elapsed().as_secs_f64();
            match self.cache.lookup(key) {
                Some(artifact) => {
                    task_spans[i].push(PassSpan {
                        worker: 0,
                        pass: "cache",
                        func: module.func(task).name.clone(),
                        start_s,
                        dur_s: origin.elapsed().as_secs_f64() - start_s,
                        cached: true,
                    });
                    slots.push(Slot::Ready(artifact));
                }
                None => {
                    slots.push(Slot::Work(work.len()));
                    work.push((task, opts, key, profile));
                }
            }
        }

        // Compile phase: run the pipeline over every miss. Workers see a
        // read-only module snapshot and return results keyed by work index.
        type TaskResult = (Result<GeneratedAccess, RefuseReason>, Vec<PassSpan>);
        let mut results: Vec<Option<TaskResult>> = Vec::with_capacity(work.len());
        results.resize_with(work.len(), || None);
        if self.jobs == 1 || work.len() <= 1 {
            for (k, (task, opts, _, profile)) in work.iter().enumerate() {
                let mut spans = Vec::new();
                let res = self.pipeline.run_task(
                    module,
                    *task,
                    opts.clone(),
                    *profile,
                    origin,
                    0,
                    &mut spans,
                );
                results[k] = Some((res, spans));
            }
        } else {
            let snapshot: &Module = module;
            let pipeline = &self.pipeline;
            let next = AtomicUsize::new(0);
            let worker_results = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.jobs.min(work.len()))
                    .map(|w| {
                        let work = &work;
                        let next = &next;
                        scope.spawn(move || {
                            let mut out: Vec<(usize, TaskResult)> = Vec::new();
                            loop {
                                let k = next.fetch_add(1, Ordering::Relaxed);
                                let Some((task, opts, _, profile)) = work.get(k) else { break };
                                let mut spans = Vec::new();
                                let res = pipeline.run_task(
                                    snapshot,
                                    *task,
                                    opts.clone(),
                                    *profile,
                                    origin,
                                    w as u32,
                                    &mut spans,
                                );
                                out.push((k, (res, spans)));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (k, r) in worker_results {
                results[k] = Some(r);
            }
        }

        // Merge phase (main thread, task order): identical add_function
        // order — and therefore identical FuncIds — at any job count.
        let mut map = DaeMap::default();
        let mut outcome = CompileOutcome {
            map: DaeMap::default(),
            tasks: tasks.len(),
            generated: 0,
            refused: 0,
            from_cache: 0,
            refined,
            cache: CacheStats::default(),
            spans: Vec::new(),
            keys: base_keys,
        };
        for (i, (&task, slot)) in tasks.iter().zip(slots).enumerate() {
            match slot {
                Slot::Ready(artifact) => {
                    outcome.from_cache += 1;
                    match artifact {
                        Artifact::Generated { func, strategy, info } => {
                            outcome.generated += 1;
                            let access_id = module.add_function(func);
                            map.access_of.insert(task, access_id);
                            map.strategy_of.insert(task, strategy);
                            map.info_of.insert(task, info.into_info());
                        }
                        Artifact::Refused { reason } => {
                            outcome.refused += 1;
                            map.refused.insert(task, reason);
                        }
                    }
                }
                Slot::Work(k) => {
                    let (res, spans) = results[k].take().expect("every work item was compiled");
                    task_spans[i] = spans;
                    let key = work[k].2;
                    match res {
                        Ok(g) => {
                            outcome.generated += 1;
                            self.cache.insert(
                                key,
                                Artifact::Generated {
                                    func: g.func.clone(),
                                    strategy: g.strategy.clone(),
                                    info: InfoSummary::of(&g.info),
                                },
                            );
                            let access_id = module.add_function(g.func);
                            map.access_of.insert(task, access_id);
                            map.strategy_of.insert(task, g.strategy);
                            map.info_of.insert(task, g.info);
                        }
                        Err(reason) => {
                            outcome.refused += 1;
                            self.cache.insert(key, Artifact::Refused { reason: reason.clone() });
                            map.refused.insert(task, reason);
                        }
                    }
                }
            }
        }
        outcome.map = map;
        outcome.cache = self.cache.stats().delta(&before);
        outcome.spans = task_spans.into_iter().flatten().collect();
        outcome
    }
}

/// Forwards pass spans to a trace sink as
/// [`dae_trace::TraceEvent::CompilePass`] events. Worker indices are folded
/// onto the sink's `lanes` (the traced machine's core count) so exporters
/// indexing per-core arrays never see an out-of-range lane.
pub fn emit_spans(spans: &[PassSpan], lanes: usize, sink: &mut dyn TraceSink) {
    if !sink.is_enabled() {
        return;
    }
    let lanes = lanes.max(1) as u32;
    for s in spans {
        sink.record(TraceEvent::CompilePass {
            core: s.worker % lanes,
            pass: s.pass.to_string(),
            func: s.func.clone(),
            start_s: s.start_s,
            dur_s: s.dur_s,
            cached: s.cached,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_core::transform_module;
    use dae_ir::{print_module, FunctionBuilder, Type, Value};
    use dae_trace::Recorder;

    /// A module with several distinct tasks: two affine streams, a gather
    /// (skeleton path), and a store-only task (refused).
    fn test_module() -> Module {
        let mut m = Module::new();
        let a = m.add_global("a", Type::F64, 4096);
        let idx = m.add_global("idx", Type::I64, 512);
        for (name, stride) in [("stream1", 1i64), ("stream2", 3i64)] {
            let mut b = FunctionBuilder::new(name, vec![Type::I64], Type::Void);
            b.set_task();
            b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
                let x = b.imul(i, stride);
                let p = b.elem_addr(Value::Global(a), x, Type::F64);
                let v = b.load(Type::F64, p);
                let w = b.fmul(v, 2.0f64);
                b.store(p, w);
            });
            b.ret(None);
            m.add_function(b.finish());
        }
        let mut b = FunctionBuilder::new("gather", vec![Type::I64], Type::Void);
        b.set_task();
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            let ip = b.elem_addr(Value::Global(idx), i, Type::I64);
            let j = b.load(Type::I64, ip);
            let p = b.elem_addr(Value::Global(a), j, Type::F64);
            let _ = b.load(Type::F64, p);
        });
        b.ret(None);
        m.add_function(b.finish());
        let mut b = FunctionBuilder::new("writeonly", vec![], Type::Void);
        b.set_task();
        let p = b.elem_addr(Value::Global(a), Value::i64(0), Type::F64);
        b.store(p, 1.0f64);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    fn opts_for(_: FuncId, f: &Function) -> CompilerOptions {
        CompilerOptions { param_hints: vec![64; f.params.len()], ..Default::default() }
    }

    #[test]
    fn matches_transform_module_at_any_job_count() {
        let mut reference = test_module();
        let ref_map = transform_module(&mut reference, opts_for);
        let ref_text = print_module(&reference);
        for jobs in [1usize, 2, 8] {
            let mut m = test_module();
            let mut d = Driver::new(&DriverConfig { jobs, ..Default::default() });
            let out = d.compile(&mut m, opts_for);
            assert_eq!(print_module(&m), ref_text, "jobs={jobs} must be bit-identical");
            assert_eq!(out.tasks, 4);
            assert_eq!(out.generated, 3);
            assert_eq!(out.refused, 1);
            assert_eq!(out.from_cache, 0);
            assert_eq!(out.cache.misses, 4);
            for (task, access) in &ref_map.access_of {
                assert_eq!(out.map.access(*task), Some(*access), "same FuncIds");
            }
            assert_eq!(out.map.refused.len(), ref_map.refused.len());
        }
    }

    #[test]
    fn warm_compile_hits_the_cache_and_stays_identical() {
        let mut cold = test_module();
        let mut d = Driver::new(&DriverConfig::default());
        let first = d.compile(&mut cold, opts_for);
        assert_eq!(first.cache.misses, 4);
        let mut warm = test_module();
        let second = d.compile(&mut warm, opts_for);
        assert_eq!(second.from_cache, 4);
        assert_eq!(second.cache.mem_hits, 4);
        assert_eq!(second.cache.misses, 0);
        assert_eq!(print_module(&warm), print_module(&cold));
        // Cached refusals replay too.
        assert_eq!(second.refused, 1);
        // Hit spans replace pass spans.
        assert!(second.spans.iter().all(|s| s.pass == "cache" && s.cached));
        assert_eq!(second.spans.len(), 4);
    }

    #[test]
    fn disk_cache_round_trip_is_bit_identical() {
        let dir = std::env::temp_dir().join(format!("dae-driver-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = DriverConfig { cache_dir: Some(dir.clone()), ..Default::default() };
        let mut cold = test_module();
        Driver::new(&cfg).compile(&mut cold, opts_for);
        // A *fresh* driver (empty memory tier) against the same directory.
        let mut warm = test_module();
        let mut d = Driver::new(&cfg);
        let out = d.compile(&mut warm, opts_for);
        assert_eq!(out.cache.disk_hits, 4, "all tasks replay from disk");
        assert_eq!(print_module(&warm), print_module(&cold));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn options_change_invalidates_the_cache() {
        let mut d = Driver::new(&DriverConfig::default());
        let mut m1 = test_module();
        d.compile(&mut m1, opts_for);
        let mut m2 = test_module();
        let out = d.compile(&mut m2, |_, f| CompilerOptions {
            param_hints: vec![128; f.params.len()],
            ..Default::default()
        });
        // The writeonly task has no params, so its options are unchanged —
        // everything else misses.
        assert_eq!(out.cache.misses, 3);
        assert_eq!(out.from_cache, 1);
    }

    #[test]
    fn profiles_rekey_tasks_and_can_flip_outcomes() {
        use dae_pgo::{PhaseProfile, PhaseSample, ProfileSet};
        // Static compile to learn the base keys.
        let mut d = Driver::new(&DriverConfig::default());
        let mut m = test_module();
        let statics = d.compile(&mut m, opts_for);
        assert_eq!(statics.keys.len(), 4, "every task reports its base key");
        assert_eq!(statics.refined, 0);

        // Profile stream1 with useless coverage: the refine pass refuses it.
        let stream1 = *statics
            .keys
            .iter()
            .find(|(&f, _)| m.func(f).name == "stream1")
            .map(|(_, k)| k)
            .expect("stream1 compiled");
        let mut useless = PhaseProfile::default();
        useless.absorb(
            Some(&PhaseSample { instrs: 100, prefetches: 64, ..Default::default() }),
            &PhaseSample { instrs: 400, loads: 64, dram_misses: 64, ..Default::default() },
        );
        let mut set = ProfileSet::new();
        set.insert(stream1, useless);
        d.set_profiles(set);

        let mut refined_m = test_module();
        let refined = d.compile(&mut refined_m, opts_for);
        assert_eq!(refined.refined, 1, "exactly one task took the refined key");
        // The profiled task misses the cache (new key) and is refused;
        // the other three replay from the static compile untouched.
        assert_eq!(refined.from_cache, 3);
        assert_eq!(refined.refused, 2, "writeonly plus the profile-refused stream1");
        assert_eq!(refined.generated, 2);

        // Restoring the empty set restores the static result bit-for-bit.
        d.set_profiles(ProfileSet::new());
        let mut back = test_module();
        let again = d.compile(&mut back, opts_for);
        assert_eq!(again.refined, 0);
        assert_eq!(again.from_cache, 4);
        assert_eq!(print_module(&back), print_module(&m));
    }

    #[test]
    fn spans_emit_as_compile_pass_events_clamped_to_lanes() {
        let mut m = test_module();
        let mut d = Driver::new(&DriverConfig { jobs: 8, ..Default::default() });
        let out = d.compile(&mut m, opts_for);
        let mut rec = Recorder::new(2);
        emit_spans(&out.spans, rec.cores(), &mut rec);
        assert_eq!(rec.len(), out.spans.len());
        assert!(rec.events().iter().all(|e| e.core() < 2), "lanes folded onto cores");
        assert!(rec.events().iter().all(|e| matches!(e, TraceEvent::CompilePass { .. })));
        // The summary exporter aggregates them without panicking.
        let s = dae_trace::summary::Summary::from_recorder(&rec);
        assert_eq!(s.compile_passes, out.spans.len());
    }
}
