//! The pass manager: named pipelines of per-task compilation passes with
//! per-pass wall-clock timing and analysis invalidation.
//!
//! A [`Pipeline`] is an ordered list of [`Pass`]es run over a
//! [`TaskState`] — the mutable state of one task's compilation (the task's
//! inlined body, its access analysis, and finally the generated access
//! function). Transform passes declare which analyses they invalidate;
//! the manager drops those state slots after the pass runs, so a stale
//! analysis can never leak into a later pass.
//!
//! The standard pipeline decomposes [`dae_core::generate_access`] into its
//! four stages (inline → optimize → analyze → generate) and is **behaviour
//! preserving**: it calls the same functions in the same order, so the
//! produced access function is byte-identical to the monolithic path.
//!
//! Every executed pass yields a [`PassSpan`] — host wall-clock seconds
//! relative to the driver run's origin — which the driver forwards as
//! [`dae_trace::TraceEvent::CompilePass`] spans.

use dae_core::{
    analyze_task, generate_affine_access, generate_skeleton_access, CompilerOptions,
    GeneratedAccess, RefuseReason, Strategy, TaskAccessInfo,
};
use dae_ir::{FuncId, Function, Module};
use dae_pgo::{plan_refinement, PhaseProfile, RefineThresholds};
use std::time::Instant;

use crate::hash::Fnv64;

/// The timed record of one executed pass (or one cache probe).
#[derive(Clone, Debug, PartialEq)]
pub struct PassSpan {
    /// Worker lane that ran the pass (0 for the main thread).
    pub worker: u32,
    /// Pass name, e.g. `"inline"` or `"cache"`.
    pub pass: &'static str,
    /// Name of the task function being compiled.
    pub func: String,
    /// Start, in host seconds since the driver run's origin.
    pub start_s: f64,
    /// Duration, in host seconds.
    pub dur_s: f64,
    /// True when the result came from the incremental cache.
    pub cached: bool,
}

/// State slot names used by [`Pass::invalidates`].
pub mod slots {
    /// The task body after inlining/cleanup ([`super::TaskState::inlined`]).
    pub const INLINED_IR: &str = "inlined-ir";
    /// The access analysis ([`super::TaskState::info`]).
    pub const ACCESS_INFO: &str = "access-info";
}

/// Mutable state of one task's trip through a pipeline.
pub struct TaskState<'m> {
    /// The module being compiled (read-only: generated functions are merged
    /// by the driver, deterministically, after all workers finish).
    pub module: &'m Module,
    /// The task under compilation.
    pub task: FuncId,
    /// Options for this task.
    pub opts: CompilerOptions,
    /// The task's measured phase profile, when one exists. `None` (the
    /// static path) makes the `refine` pass a strict no-op.
    pub profile: Option<PhaseProfile>,
    /// The task body after inlining (and, later, cleanup).
    pub inlined: Option<Function>,
    /// The access analysis of the inlined body.
    pub info: Option<TaskAccessInfo>,
    /// The generated access function and the strategy that produced it.
    pub generated: Option<(Function, Strategy)>,
}

impl<'m> TaskState<'m> {
    /// Fresh state for one task.
    pub fn new(module: &'m Module, task: FuncId, opts: CompilerOptions) -> Self {
        TaskState { module, task, opts, profile: None, inlined: None, info: None, generated: None }
    }

    /// Drops one named state slot (pass-manager invalidation).
    fn invalidate(&mut self, slot: &str) {
        match slot {
            slots::INLINED_IR => self.inlined = None,
            slots::ACCESS_INFO => self.info = None,
            _ => {}
        }
    }
}

/// One compilation pass over a [`TaskState`].
pub trait Pass: Send + Sync {
    /// Short stable name (part of the pipeline fingerprint and trace spans).
    fn name(&self) -> &'static str;

    /// State slots this pass invalidates; the manager clears them after the
    /// pass runs.
    fn invalidates(&self) -> &'static [&'static str] {
        &[]
    }

    /// Runs the pass. An `Err` refuses the task (it runs coupled) and
    /// skips the remaining passes.
    fn run(&self, state: &mut TaskState<'_>) -> Result<(), RefuseReason>;
}

/// Inlines all calls so later passes see through them (the paper generates
/// the access version after traditional optimizations of the whole task).
struct InlineTask;

impl Pass for InlineTask {
    fn name(&self) -> &'static str {
        "inline"
    }

    fn run(&self, st: &mut TaskState<'_>) -> Result<(), RefuseReason> {
        let inlined = dae_analysis::transform::inline_all(st.module, st.task)
            .map_err(|_| RefuseReason::NonInlinableCall(st.module.func(st.task).name.clone()))?;
        st.inlined = Some(inlined);
        Ok(())
    }
}

/// The `-O3`-style cleanup over the inlined body.
struct CleanupIr;

impl Pass for CleanupIr {
    fn name(&self) -> &'static str {
        "optimize"
    }

    fn invalidates(&self) -> &'static [&'static str] {
        // Rewriting the body invalidates any analysis of it.
        &[slots::ACCESS_INFO]
    }

    fn run(&self, st: &mut TaskState<'_>) -> Result<(), RefuseReason> {
        let body = st.inlined.as_ref().expect("pipeline runs `inline` first");
        st.inlined = Some(dae_analysis::transform::optimize(body));
        Ok(())
    }
}

/// Profile-guided refinement (§PGO): turns the task's measured
/// [`PhaseProfile`] into option changes — or an outright refusal — before
/// analysis and generation run. With no profile attached this pass is a
/// strict no-op, keeping the static pipeline byte-identical.
struct RefineFromProfile {
    thresholds: RefineThresholds,
}

impl Pass for RefineFromProfile {
    fn name(&self) -> &'static str {
        "refine"
    }

    fn run(&self, st: &mut TaskState<'_>) -> Result<(), RefuseReason> {
        let Some(profile) = &st.profile else { return Ok(()) };
        let hints_present = st.opts.param_hints.iter().any(|&h| h != 0);
        let plan = plan_refinement(profile, hints_present, &self.thresholds);
        if plan.drop_access_phase {
            // Measured coverage says the access phase fetches nothing
            // execute would miss on: running it is pure overhead, so the
            // task runs coupled like any other refusal.
            return Err(RefuseReason::NothingToPrefetch);
        }
        if plan.line_dedup {
            st.opts.line_dedup = true;
        }
        if plan.force_profitable {
            st.opts.skip_hull_check = true;
        }
        if let Some(trips) = plan.trip_hint {
            // The measured trip count stands in for absent caller hints.
            let params = st.module.func(st.task).params.len();
            st.opts.param_hints = vec![trips; params];
        }
        Ok(())
    }
}

/// Extracts the affine access descriptors (Table 1's loop statistics).
struct AnalyzeAccesses;

impl Pass for AnalyzeAccesses {
    fn name(&self) -> &'static str {
        "analyze"
    }

    fn run(&self, st: &mut TaskState<'_>) -> Result<(), RefuseReason> {
        let body = st.inlined.as_ref().expect("pipeline runs `inline` first");
        st.info = Some(analyze_task(st.module, body));
        Ok(())
    }
}

/// Emits the access phase: polyhedral (§5.1) when affine and profitable,
/// otherwise the optimized skeleton (§5.2) — exactly mirroring
/// [`dae_core::generate_access`].
struct GenerateAccessPhase;

impl Pass for GenerateAccessPhase {
    fn name(&self) -> &'static str {
        "generate"
    }

    fn run(&self, st: &mut TaskState<'_>) -> Result<(), RefuseReason> {
        let body = st.inlined.as_ref().expect("pipeline runs `inline` first");
        let info = st.info.as_ref().expect("pipeline runs `analyze` first");
        if let Some(affine) = generate_affine_access(body, info, &st.opts) {
            st.generated = Some((affine.func, Strategy::Polyhedral(affine.stats)));
            return Ok(());
        }
        let func = generate_skeleton_access(st.module, st.task, &st.opts)?;
        st.generated = Some((func, Strategy::Skeleton));
        Ok(())
    }
}

/// A named, ordered pass sequence.
pub struct Pipeline {
    name: &'static str,
    passes: Vec<Box<dyn Pass>>,
}

impl Pipeline {
    /// The standard access-phase pipeline:
    /// `inline → optimize → refine → analyze → generate`.
    ///
    /// `refine` is profile-guided and a strict no-op for tasks without a
    /// profile, so the static path stays byte-identical to
    /// [`dae_core::generate_access`].
    pub fn standard() -> Pipeline {
        Pipeline {
            name: "dae-access",
            passes: vec![
                Box::new(InlineTask),
                Box::new(CleanupIr),
                Box::new(RefineFromProfile { thresholds: RefineThresholds::default() }),
                Box::new(AnalyzeAccesses),
                Box::new(GenerateAccessPhase),
            ],
        }
    }

    /// The pipeline's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The pass names, in execution order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// A stable digest of the pipeline identity (name, pass sequence, and
    /// the on-disk artifact schema revision). Part of every cache key:
    /// artifacts from a different pipeline or schema never alias.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str(crate::cache::ARTIFACT_SCHEMA);
        h.write_str(self.name);
        h.write_u64(self.passes.len() as u64);
        for p in &self.passes {
            h.write_str(p.name());
        }
        h.finish()
    }

    /// Runs every pass over `task`, timing each one relative to `origin`
    /// and appending a [`PassSpan`] per executed pass.
    ///
    /// `profile` is the task's measured phase profile, consumed by the
    /// `refine` pass; `None` keeps the static path byte-identical.
    ///
    /// Read-only with respect to `module`; the caller merges the returned
    /// access function into the module (in deterministic task order).
    #[allow(clippy::too_many_arguments)]
    pub fn run_task(
        &self,
        module: &Module,
        task: FuncId,
        opts: CompilerOptions,
        profile: Option<PhaseProfile>,
        origin: Instant,
        worker: u32,
        spans: &mut Vec<PassSpan>,
    ) -> Result<GeneratedAccess, RefuseReason> {
        let func_name = module.func(task).name.clone();
        let mut st = TaskState::new(module, task, opts);
        st.profile = profile;
        for pass in &self.passes {
            let start_s = origin.elapsed().as_secs_f64();
            let result = pass.run(&mut st);
            spans.push(PassSpan {
                worker,
                pass: pass.name(),
                func: func_name.clone(),
                start_s,
                dur_s: origin.elapsed().as_secs_f64() - start_s,
                cached: false,
            });
            result?;
            for slot in pass.invalidates() {
                st.invalidate(slot);
            }
        }
        let (func, strategy) = st.generated.take().expect("`generate` is the final pass");
        let info = st.info.take().expect("`analyze` ran and `generate` preserves it");
        Ok(GeneratedAccess { func, strategy, info })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{print_function, FunctionBuilder, Type, Value};

    fn module_with_task() -> (Module, FuncId) {
        let mut m = Module::new();
        let a = m.add_global("a", Type::F64, 256);
        let mut b = FunctionBuilder::new("stream", vec![Type::I64], Type::Void);
        b.set_task();
        b.counted_loop(Value::i64(0), Value::i64(64), Value::i64(1), |b, i| {
            let idx = b.iadd(Value::Arg(0), i);
            let p = b.elem_addr(Value::Global(a), idx, Type::F64);
            let v = b.load(Type::F64, p);
            let w = b.fmul(v, 2.0f64);
            b.store(p, w);
        });
        b.ret(None);
        let t = m.add_function(b.finish());
        (m, t)
    }

    #[test]
    fn standard_pipeline_matches_generate_access() {
        let (m, t) = module_with_task();
        let opts = CompilerOptions { param_hints: vec![64], ..Default::default() };
        let reference = dae_core::generate_access(&m, t, &opts).expect("generates");
        let mut spans = Vec::new();
        let pipe = Pipeline::standard();
        let ours =
            pipe.run_task(&m, t, opts, None, Instant::now(), 3, &mut spans).expect("generates");
        assert_eq!(
            print_function(&ours.func, None),
            print_function(&reference.func, None),
            "pipeline must be byte-identical to the monolithic path"
        );
        assert_eq!(ours.strategy, reference.strategy);
        assert_eq!(ours.info.total_loads, reference.info.total_loads);
        assert_eq!(spans.len(), 5, "one span per pass");
        assert_eq!(
            spans.iter().map(|s| s.pass).collect::<Vec<_>>(),
            ["inline", "optimize", "refine", "analyze", "generate"]
        );
        assert!(spans.iter().all(|s| s.worker == 3 && !s.cached && s.dur_s >= 0.0));
        // Spans are ordered and non-overlapping within one task.
        for w in spans.windows(2) {
            assert!(w[1].start_s >= w[0].start_s + w[0].dur_s - 1e-9);
        }
    }

    #[test]
    fn refusal_skips_remaining_passes() {
        // A task with no loads refuses in `generate` with NothingToPrefetch.
        let mut m = Module::new();
        let a = m.add_global("a", Type::F64, 8);
        let mut b = FunctionBuilder::new("wo", vec![], Type::Void);
        b.set_task();
        let p = b.elem_addr(Value::Global(a), Value::i64(0), Type::F64);
        b.store(p, 1.0f64);
        b.ret(None);
        let t = m.add_function(b.finish());
        let mut spans = Vec::new();
        let err = Pipeline::standard()
            .run_task(&m, t, CompilerOptions::default(), None, Instant::now(), 0, &mut spans)
            .expect_err("refused");
        assert_eq!(err, RefuseReason::NothingToPrefetch);
        assert_eq!(spans.len(), 5, "the failing pass still reports its span");
    }

    #[test]
    fn fingerprint_is_stable_within_a_build() {
        assert_eq!(Pipeline::standard().fingerprint(), Pipeline::standard().fingerprint());
        assert_eq!(
            Pipeline::standard().pass_names(),
            ["inline", "optimize", "refine", "analyze", "generate"]
        );
    }

    #[test]
    fn refine_pass_applies_a_profile_and_noops_without_one() {
        use dae_pgo::{PhaseProfile, PhaseSample};
        let (m, t) = module_with_task();
        let opts = CompilerOptions { param_hints: vec![64], ..Default::default() };
        let pipe = Pipeline::standard();
        let origin = Instant::now();
        let statics =
            pipe.run_task(&m, t, opts.clone(), None, origin, 0, &mut Vec::new()).expect("static");

        // A useless access phase (zero coverage) refuses the task.
        let mut useless = PhaseProfile::default();
        useless.absorb(
            Some(&PhaseSample { instrs: 100, prefetches: 64, ..Default::default() }),
            &PhaseSample { instrs: 400, loads: 64, dram_misses: 64, ..Default::default() },
        );
        let err = pipe
            .run_task(&m, t, opts.clone(), Some(useless), origin, 0, &mut Vec::new())
            .expect_err("refused by refine");
        assert_eq!(err, RefuseReason::NothingToPrefetch);

        // A healthy profile leaves the static output intact, and the same
        // profile always produces the same bytes.
        let mut healthy = PhaseProfile::default();
        healthy.absorb(
            Some(&PhaseSample {
                instrs: 100,
                prefetches: 64,
                prefetch_dram_lines: 60,
                ..Default::default()
            }),
            &PhaseSample { instrs: 400, loads: 64, dram_misses: 4, ..Default::default() },
        );
        let refined = pipe
            .run_task(&m, t, opts.clone(), Some(healthy), origin, 0, &mut Vec::new())
            .expect("generates");
        assert_eq!(
            print_function(&refined.func, None),
            print_function(&statics.func, None),
            "a profile that plans nothing must not change the output"
        );
        let again = pipe
            .run_task(&m, t, opts, Some(healthy), origin, 0, &mut Vec::new())
            .expect("generates");
        assert_eq!(print_function(&again.func, None), print_function(&refined.func, None));
    }
}
