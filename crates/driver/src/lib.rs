//! dae-driver: the parallel, incrementally-cached compilation pipeline
//! manager.
//!
//! The crate sits between the front end (a [`dae_ir::Module`] full of
//! tasks) and the per-task generators in `dae-core`, and owns *how* the
//! module gets compiled rather than *what* is generated:
//!
//! * [`pass`] — the pass manager: a named [`Pipeline`] of [`Pass`]es
//!   with per-pass timing and analysis invalidation; the standard
//!   pipeline reproduces
//!   [`dae_core::generate_access`] stage by stage.
//! * [`hash`] — stable FNV-1a-64 structural keys over a task's IR, its
//!   transitive callees, the module's global declarations, the compiler
//!   options, and the pipeline fingerprint.
//! * [`cache`] — the content-addressed artifact cache: an in-memory LRU
//!   tier plus an optional on-disk tier storing printed IR, so warm
//!   recompiles skip the polyhedral analysis entirely.
//! * [`driver`] — the parallel executor: a `std::thread::scope` worker
//!   pool over cache misses with a deterministic task-order merge, so the
//!   output module is **bit-identical at any `--jobs` count** — and to
//!   the sequential [`dae_core::transform_module`] path — cold or warm.
//!
//! Timing is reported as [`PassSpan`]s and can be forwarded to a
//! `dae-trace` sink ([`emit_spans`]) as `CompilePass` events for the
//! Chrome-trace and summary exporters.

#![warn(missing_docs)]

pub mod cache;
pub mod driver;
pub mod hash;
pub mod pass;

pub use cache::{artifact_approx_bytes, Artifact, Cache, CacheStats, InfoSummary, ARTIFACT_SCHEMA};
pub use dae_ir::CodedError;
pub use driver::{emit_spans, CompileOutcome, Driver, DriverConfig};
pub use hash::{refined_key, task_key, Fnv64};
pub use pass::{Pass, PassSpan, Pipeline, TaskState};
