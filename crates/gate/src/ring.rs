//! The consistent-hash routing ring.
//!
//! Each backend owns `vnodes` points on a 64-bit ring (FNV-1a over
//! `"<addr>#<replica>"`); a request's route key (the serving layer's
//! response-cache key, [`dae_serve::request_key`]) is looked up clockwise.
//! Walking onward from the owning point yields every backend exactly once
//! in a key-dependent order — the failover / bounded-load-spill order.
//!
//! Why consistent hashing instead of round-robin: the backends memoise
//! responses and compiled artifacts, so a request is cheap exactly on the
//! backend that has seen it before. The ring pins each key to one home
//! backend (aggregate cache capacity scales with the fleet), and keeps
//! the pinning stable when a backend is ejected or re-admitted — only the
//! ejected backend's keys move.

use dae_serve::Fnv64;

/// MurmurHash3's 64-bit finaliser. FNV-1a alone clusters on short,
/// near-identical inputs (`"10.0.0.1:7777#3"` vs `"…#4"`), which skews
/// ring shards by 2–3×; this mix restores avalanche so 128 vnodes land
/// within a few percent of even.
fn fmix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

/// A consistent-hash ring over backend indices `0..n`.
#[derive(Debug)]
pub struct Ring {
    /// `(point, backend)` sorted by point.
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl Ring {
    /// Builds a ring with `vnodes` points per backend. Backend identity is
    /// its address string, so ring layout survives restarts and is shared
    /// by every gateway replica configured with the same fleet.
    pub fn new(addrs: &[String], vnodes: usize) -> Ring {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(addrs.len() * vnodes);
        for (b, addr) in addrs.iter().enumerate() {
            for replica in 0..vnodes {
                let mut h = Fnv64::new();
                h.write_str(addr);
                h.write(b"#");
                h.write_u64(replica as u64);
                points.push((fmix64(h.finish()), b));
            }
        }
        points.sort_unstable();
        Ring { points, backends: addrs.len() }
    }

    /// Number of backends the ring was built over.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// The ordered candidate list for `key`: the owning backend first,
    /// then each remaining backend in the order the clockwise walk first
    /// meets them. Deterministic per key; different keys interleave the
    /// tail differently, which spreads failover load across the fleet
    /// instead of dogpiling one neighbour.
    pub fn candidates(&self, key: u64) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.backends);
        if self.points.is_empty() {
            return order;
        }
        let start = self.points.partition_point(|&(p, _)| p < key) % self.points.len();
        let mut seen = vec![false; self.backends];
        for i in 0..self.points.len() {
            let (_, b) = self.points[(start + i) % self.points.len()];
            if !seen[b] {
                seen[b] = true;
                order.push(b);
                if order.len() == self.backends {
                    break;
                }
            }
        }
        order
    }

    /// The home backend of `key` (the first candidate).
    pub fn home(&self, key: u64) -> Option<usize> {
        self.candidates(key).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7777")).collect()
    }

    #[test]
    fn candidates_cover_every_backend_exactly_once() {
        let ring = Ring::new(&addrs(5), 16);
        for key in [0u64, 1, 0xdead_beef, u64::MAX] {
            let mut c = ring.candidates(key);
            assert_eq!(c.len(), 5);
            c.sort_unstable();
            assert_eq!(c, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn distribution_is_roughly_balanced() {
        let ring = Ring::new(&addrs(3), 128);
        let mut counts = [0usize; 3];
        for key in 0..3000u64 {
            counts[ring.home(key.wrapping_mul(0x9e37_79b9_7f4a_7c15)).unwrap()] += 1;
        }
        for &c in &counts {
            // Perfect balance is 1000; 128 vnodes keeps every shard
            // within about +-25 %.
            assert!((600..1400).contains(&c), "imbalanced shard: {counts:?}");
        }
    }

    #[test]
    fn removing_a_backend_only_remaps_its_own_keys() {
        let all = addrs(4);
        let full = Ring::new(&all, 64);
        let reduced = Ring::new(&all[..3], 64);
        for key in 0..2000u64 {
            let key = key.wrapping_mul(0x2545_f491_4f6c_dd1d);
            let before = full.home(key).unwrap();
            let after = reduced.home(key).unwrap();
            if before < 3 {
                assert_eq!(before, after, "surviving backends keep their keys");
            }
        }
    }

    #[test]
    fn same_fleet_same_ring() {
        let a = Ring::new(&addrs(3), 32);
        let b = Ring::new(&addrs(3), 32);
        for key in [7u64, 99, 12345] {
            assert_eq!(a.candidates(key), b.candidates(key));
        }
    }

    #[test]
    fn empty_fleet_routes_nowhere() {
        let ring = Ring::new(&[], 16);
        assert!(ring.candidates(42).is_empty());
        assert_eq!(ring.home(42), None);
    }
}
