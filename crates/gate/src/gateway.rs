//! The gateway daemon: accept → admit → route → forward → respond.
//!
//! ```text
//!            readers (1/conn)      bounded queue       routers (N)
//!  client ──► parse frame ──► admit ────────────► pop → pick backend
//!     ▲         │   │           │ full → gate.overloaded   │ ring walk,
//!     │         │   │           │ drain → gate.draining    │ retry, hedge
//!     └─────────┴───┴───────────┴───────────◄──────────────┘
//!                      response line (backend bytes, verbatim)
//! ```
//!
//! The gateway speaks the exact `daed` wire protocol on both sides. A work
//! frame is re-serialised once (canonically, with its deadline budget
//! decremented by the time already spent inside the gateway) and the
//! backend's response line passes through **verbatim** — the gateway never
//! rewrites a successful response, which is what makes the fleet
//! byte-identical to a single fresh engine.
//!
//! Routing is cache-affine: the ring key is [`dae_serve::request_key`],
//! the same key the backends memoise responses under, so a repeated
//! request lands on the backend that already holds its answer and the
//! fleet's cache capacity adds up instead of overlapping.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dae_serve::{
    err_response, ok_response, parse_request, signal_drain_requested, ErrorBody, Op, Push, Queue,
    Request, MAX_FRAME_BYTES,
};
use dae_trace::json::JsonValue;
use dae_trace::{Recorder, TraceEvent, TraceSink};

use crate::backend::{Backend, CallError, HealthState};
use crate::metrics::{codes, GateMetrics, GATE_HEALTH_SCHEMA};
use crate::ring::Ring;

/// Gateway construction knobs.
#[derive(Clone, Debug)]
pub struct GateConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Backend `host:port` addresses (the fleet).
    pub backends: Vec<String>,
    /// Router threads forwarding work requests.
    pub routers: usize,
    /// Admission-queue capacity; beyond it requests are shed.
    pub queue_depth: usize,
    /// Virtual nodes per backend on the routing ring.
    pub vnodes: usize,
    /// Per-backend in-flight cap: a home backend at the cap spills the
    /// request to the next ring candidate (bounded load).
    pub inflight_cap: usize,
    /// Idle connections pooled per backend.
    pub pool_cap: usize,
    /// Consecutive failures before a backend is ejected.
    pub eject_after: u32,
    /// Cooldown before an ejected backend goes half-open.
    pub readmit_ms: u64,
    /// Health-probe period (0 disables probing).
    pub probe_interval_ms: u64,
    /// Per-attempt forwarding timeout.
    pub attempt_timeout_ms: u64,
    /// Extra forwarding attempts after the first failure.
    pub max_retries: u32,
    /// Backoff before retry `n` is `min(retry_base_ms << n, retry_cap_ms)`.
    pub retry_base_ms: u64,
    /// Backoff ceiling.
    pub retry_cap_ms: u64,
    /// Launch a hedge on the next backend if the primary has not answered
    /// after this long (0 disables hedging).
    pub hedge_after_ms: u64,
    /// Record `GateRoute`/`BackendEject` trace events (unbounded memory
    /// under sustained load; meant for short diagnostic runs).
    pub trace: bool,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            addr: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            routers: 8,
            queue_depth: 128,
            vnodes: 128,
            inflight_cap: 32,
            pool_cap: 8,
            eject_after: 3,
            readmit_ms: 500,
            probe_interval_ms: 100,
            attempt_timeout_ms: 10_000,
            max_retries: 2,
            retry_base_ms: 10,
            retry_cap_ms: 200,
            hedge_after_ms: 0,
            trace: false,
        }
    }
}

/// One admitted work request, en route to a router thread.
struct Job {
    req: Request,
    /// The client's frame exactly as received. With no deadline to
    /// rewrite the gateway forwards these bytes verbatim instead of
    /// re-serialising the (IR-sized) request per attempt.
    raw: String,
    conn: Arc<Conn>,
    admitted: Instant,
    deadline: Option<Instant>,
}

/// The write half of a client connection (one mutex: lines never
/// interleave).
struct Conn {
    stream: Mutex<TcpStream>,
}

impl Conn {
    fn send(&self, line: &str) {
        let mut s = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        let _ = s.write_all(line.as_bytes());
        let _ = s.write_all(b"\n");
        let _ = s.flush();
    }
}

/// The gateway: a bound listener plus the shared routing state.
pub struct Gateway {
    listener: TcpListener,
    shared: Arc<Shared>,
    routers: usize,
    probe_interval: Duration,
}

/// State shared by readers, routers and the probe thread.
struct Shared {
    fleet: Arc<Vec<Backend>>,
    ring: Ring,
    metrics: GateMetrics,
    queue: Queue<Job>,
    drain: AtomicBool,
    started: Instant,
    cfg: RouteCfg,
    routers: usize,
    recorder: Option<Mutex<Recorder>>,
    probe_id: AtomicU64,
}

/// The routing knobs the hot path reads (copied out of [`GateConfig`]).
#[derive(Clone, Copy)]
struct RouteCfg {
    inflight_cap: usize,
    eject_after: u32,
    readmit: Duration,
    attempt_timeout: Duration,
    max_retries: u32,
    retry_base_ms: u64,
    retry_cap_ms: u64,
    hedge_after: Option<Duration>,
}

impl Gateway {
    /// Binds the listener; routing starts with [`Gateway::run`].
    pub fn bind(config: &GateConfig) -> std::io::Result<Gateway> {
        let listener = TcpListener::bind(&config.addr)?;
        let fleet: Vec<Backend> = config
            .backends
            .iter()
            .enumerate()
            .map(|(i, addr)| Backend::new(addr.clone(), i, config.pool_cap))
            .collect();
        let ring = Ring::new(&config.backends, config.vnodes);
        let shared = Shared {
            fleet: Arc::new(fleet),
            ring,
            metrics: GateMetrics::new(),
            queue: Queue::new(config.queue_depth),
            drain: AtomicBool::new(false),
            started: Instant::now(),
            cfg: RouteCfg {
                inflight_cap: config.inflight_cap.max(1),
                eject_after: config.eject_after.max(1),
                readmit: Duration::from_millis(config.readmit_ms.max(1)),
                attempt_timeout: Duration::from_millis(config.attempt_timeout_ms.max(1)),
                max_retries: config.max_retries,
                retry_base_ms: config.retry_base_ms,
                retry_cap_ms: config.retry_cap_ms.max(config.retry_base_ms),
                hedge_after: (config.hedge_after_ms > 0)
                    .then(|| Duration::from_millis(config.hedge_after_ms)),
            },
            routers: config.routers.max(1),
            recorder: config.trace.then(|| Mutex::new(Recorder::new(config.backends.len().max(1)))),
            probe_id: AtomicU64::new(0),
        };
        Ok(Gateway {
            listener,
            shared: Arc::new(shared),
            routers: config.routers.max(1),
            probe_interval: Duration::from_millis(config.probe_interval_ms),
        })
    }

    /// The bound address (the actual port when `addr` asked for port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a drain is requested (a `shutdown` frame or
    /// SIGTERM/SIGINT), completes all admitted work, and returns. Every
    /// admitted request is answered before `run` returns.
    pub fn run(&self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            for _ in 0..self.routers {
                scope.spawn(|| router_loop(&self.shared));
            }
            if !self.probe_interval.is_zero() && !self.shared.fleet.is_empty() {
                scope.spawn(|| probe_loop(&self.shared, self.probe_interval));
            }
            while !self.draining() {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nodelay(true);
                        let shared = Arc::clone(&self.shared);
                        std::thread::spawn(move || reader_loop(stream, shared));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            self.shared.drain.store(true, Ordering::SeqCst);
            self.shared.queue.close();
            // Scope exit joins routers and the probe thread.
        });
        Ok(())
    }

    /// The captured trace events (empty when `trace` was off).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        match &self.shared.recorder {
            Some(r) => r.lock().unwrap_or_else(|e| e.into_inner()).events().to_vec(),
            None => Vec::new(),
        }
    }

    /// Number of trace lanes (backends) for exporters.
    pub fn trace_lanes(&self) -> usize {
        self.shared.fleet.len().max(1)
    }

    fn draining(&self) -> bool {
        self.shared.drain.load(Ordering::SeqCst) || signal_drain_requested()
    }
}

impl Shared {
    fn record(&self, event: TraceEvent) {
        if let Some(r) = &self.recorder {
            r.lock().unwrap_or_else(|e| e.into_inner()).record(event);
        }
    }

    /// Seconds since gateway start (the trace time base).
    fn now_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// Frames newline-delimited requests off one client connection until EOF.
fn reader_loop(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let conn = match stream.try_clone() {
        Ok(w) => Arc::new(Conn { stream: Mutex::new(w) }),
        Err(_) => return,
    };
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let frame: Vec<u8> = buf.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&frame[..nl]);
            let line = line.trim();
            if !line.is_empty() {
                handle_frame(line, &conn, &shared);
            }
        }
        if buf.len() > MAX_FRAME_BYTES {
            shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            let e = ErrorBody::new(
                dae_serve::codes::TOO_LARGE,
                format!("frame exceeds {MAX_FRAME_BYTES} bytes before its newline"),
            );
            conn.send(&err_response(&JsonValue::Null, &e));
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

/// Routes one parsed frame: control ops inline, work ops into the queue.
fn handle_frame(line: &str, conn: &Arc<Conn>, shared: &Arc<Shared>) {
    let req = match parse_request(line) {
        Ok(req) => req,
        Err((id, e)) => {
            shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            conn.send(&err_response(&id, &e));
            return;
        }
    };
    match req.op {
        Op::Stats => {
            let backends =
                shared.fleet.iter().map(|b| b.to_json(shared.cfg.readmit)).collect::<Vec<_>>();
            let body = shared.metrics.to_json(
                shared.started,
                shared.queue.len(),
                shared.routers,
                backends,
            );
            conn.send(&ok_response(&req.id, body));
        }
        Op::Health => {
            let draining = shared.drain.load(Ordering::SeqCst)
                || shared.queue.is_closed()
                || signal_drain_requested();
            let mut up = 0usize;
            for b in shared.fleet.iter() {
                if b.state(shared.cfg.readmit) == HealthState::Up {
                    up += 1;
                }
            }
            let body = JsonValue::obj([
                ("schema", GATE_HEALTH_SCHEMA.into()),
                ("status", if draining { "draining" } else { "ok" }.into()),
                ("backends", shared.fleet.len().into()),
                ("backends_up", up.into()),
                ("queue_depth", shared.queue.len().into()),
                ("queue_capacity", shared.queue.capacity().into()),
            ]);
            conn.send(&ok_response(&req.id, body));
        }
        Op::Profiles => {
            conn.send(&ok_response(&req.id, aggregate_profiles(shared)));
        }
        Op::Shutdown => {
            conn.send(&ok_response(&req.id, JsonValue::obj([("draining", true.into())])));
            shared.drain.store(true, Ordering::SeqCst);
            shared.queue.close();
        }
        Op::Compile | Op::Report | Op::Run => {
            let deadline = (req.deadline_ms > 0)
                .then(|| Instant::now() + Duration::from_millis(req.deadline_ms));
            let job = Job {
                req,
                raw: line.trim_end().to_string(),
                conn: Arc::clone(conn),
                admitted: Instant::now(),
                deadline,
            };
            match shared.queue.push(job) {
                Push::Queued => {
                    shared.metrics.accepted.fetch_add(1, Ordering::Relaxed);
                }
                Push::Full(job) => {
                    shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
                    let e = ErrorBody::new(
                        codes::OVERLOADED,
                        format!(
                            "gateway queue full ({} deep); retry later",
                            shared.queue.capacity()
                        ),
                    );
                    job.conn.send(&err_response(&job.req.id, &e));
                }
                Push::Closed(job) => {
                    shared.metrics.refused_draining.fetch_add(1, Ordering::Relaxed);
                    let e = ErrorBody::new(codes::DRAINING, "gateway is draining");
                    job.conn.send(&err_response(&job.req.id, &e));
                }
            }
        }
    }
}

/// Pops admitted jobs and routes each through the fleet.
fn router_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let waited = job.admitted.elapsed();
        let t0 = Instant::now();
        let (line, ok) = route(shared, &job);
        job.conn.send(&line);
        shared.metrics.record_done(
            ok,
            waited.as_secs_f64(),
            waited.as_secs_f64() + t0.elapsed().as_secs_f64(),
        );
    }
}

/// Routes one work request: candidate walk, bounded-load spill, retries
/// with capped exponential backoff, optional hedging. Returns the
/// response line (backend bytes verbatim on success) and whether it is a
/// success frame.
fn route(shared: &Arc<Shared>, job: &Job) -> (String, bool) {
    let cfg = shared.cfg;
    if deadline_expired(job) {
        shared.metrics.deadline_expired.fetch_add(1, Ordering::Relaxed);
        let e = ErrorBody::new(
            codes::DEADLINE,
            format!("deadline of {} ms expired in the gateway queue", job.req.deadline_ms),
        );
        return (err_response(&job.req.id, &e), false);
    }
    let key = dae_serve::request_key(&job.req);
    let candidates = shared.ring.candidates(key);
    if candidates.is_empty() {
        return (no_backends(job), false);
    }
    // Admitted candidates in key order, honouring health state.
    let admitted: Vec<usize> =
        candidates.iter().copied().filter(|&b| shared.fleet[b].admit(cfg.readmit)).collect();
    if admitted.is_empty() {
        return (no_backends(job), false);
    }
    // Bounded load: rotate past candidates already at their in-flight cap.
    // If every admitted backend is saturated, shed — queueing more onto a
    // saturated fleet only grows tail latency.
    let start = match admitted
        .iter()
        .position(|&b| shared.fleet[b].inflight.load(Ordering::Relaxed) < cfg.inflight_cap)
    {
        Some(i) => i,
        None => {
            shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
            let e = ErrorBody::new(
                codes::OVERLOADED,
                format!("all {} routable backends at in-flight cap", admitted.len()),
            );
            return (err_response(&job.req.id, &e), false);
        }
    };
    let spilled = start > 0 || admitted[0] != candidates[0];
    if spilled {
        shared.metrics.spills.fetch_add(1, Ordering::Relaxed);
    }
    let order: Vec<usize> = admitted[start..].iter().chain(&admitted[..start]).copied().collect();

    let id_json = job.req.id.to_json_string();
    let route_start_s = shared.now_s();
    let t0 = Instant::now();

    // Fast path: without hedging there is never more than one attempt in
    // flight, so the attempt loop runs inline in this router thread —
    // `Backend::call` already enforces the per-attempt timeout through
    // socket deadlines. The channel-and-thread machinery below exists
    // only for concurrent hedged attempts; spawning a thread per
    // forwarded request costs more than the forward itself on the warm
    // path.
    if cfg.hedge_after.is_none() {
        let mut attempts: u32 = 0;
        loop {
            let backend_idx = order[attempts as usize % order.len()];
            let rebuilt;
            let line: &str = match job.deadline {
                None => &job.raw,
                Some(_) => {
                    rebuilt = forward_line(&job.req, job.deadline);
                    &rebuilt
                }
            };
            let timeout = attempt_timeout(cfg, job.deadline);
            attempts += 1;
            match shared.fleet[backend_idx].call(line, &id_json, timeout) {
                Ok(resp) => {
                    note_route_success(shared, backend_idx);
                    shared.record(TraceEvent::GateRoute {
                        core: backend_idx as u32,
                        key,
                        backend: shared.fleet[backend_idx].addr.clone(),
                        attempts,
                        hedged: false,
                        spilled,
                        start_s: route_start_s,
                        dur_s: t0.elapsed().as_secs_f64(),
                    });
                    return (resp, true);
                }
                Err(err) => {
                    note_route_failure(shared, backend_idx, &err);
                    if attempts <= cfg.max_retries && !deadline_expired(job) && order.len() > 1 {
                        let backoff = retry_backoff(cfg, attempts);
                        if !backoff.is_zero() {
                            std::thread::sleep(backoff);
                        }
                        shared.metrics.retries.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    return route_failed(job, shared, attempts, &err.describe());
                }
            }
        }
    }

    let (tx, rx) = channel::<(usize, Result<String, CallError>)>();
    let launch = |slot: usize| {
        let backend_idx = order[slot % order.len()];
        let line = match job.deadline {
            None => job.raw.clone(),
            Some(_) => forward_line(&job.req, job.deadline),
        };
        let timeout = attempt_timeout(cfg, job.deadline);
        let fleet = Arc::clone(&shared.fleet);
        let id_json = id_json.clone();
        let tx = tx.clone();
        std::thread::spawn(move || {
            let result = fleet[backend_idx].call(&line, &id_json, timeout);
            let _ = tx.send((backend_idx, result));
        });
    };

    let mut attempts: u32 = 1;
    let mut hedged = false;
    let mut outstanding = 1usize;
    let mut next_slot = 1usize;
    let mut last_error = String::new();
    launch(0);
    loop {
        let wait = match (cfg.hedge_after, hedged) {
            (Some(h), false) => h,
            _ => cfg.attempt_timeout + Duration::from_millis(100),
        };
        match rx.recv_timeout(wait) {
            Ok((backend_idx, Ok(resp))) => {
                note_route_success(shared, backend_idx);
                if hedged && backend_idx != order[0] {
                    shared.metrics.hedge_wins.fetch_add(1, Ordering::Relaxed);
                }
                shared.record(TraceEvent::GateRoute {
                    core: backend_idx as u32,
                    key,
                    backend: shared.fleet[backend_idx].addr.clone(),
                    attempts,
                    hedged,
                    spilled,
                    start_s: route_start_s,
                    dur_s: t0.elapsed().as_secs_f64(),
                });
                return (resp, true);
            }
            Ok((backend_idx, Err(err))) => {
                outstanding -= 1;
                last_error = err.describe();
                note_route_failure(shared, backend_idx, &err);
                // A backend-origin failure is retryable on another
                // backend: every work op is deterministic, so a second
                // execution is safe (idempotent).
                let retries_left = attempts <= cfg.max_retries;
                if retries_left && !deadline_expired(job) && order.len() > 1 {
                    let backoff = retry_backoff(cfg, attempts);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    shared.metrics.retries.fetch_add(1, Ordering::Relaxed);
                    attempts += 1;
                    launch(next_slot);
                    next_slot += 1;
                    outstanding += 1;
                } else if outstanding == 0 {
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if let (Some(_), false) = (cfg.hedge_after, hedged) {
                    hedged = true;
                    if order.len() > 1 && !deadline_expired(job) {
                        shared.metrics.hedges.fetch_add(1, Ordering::Relaxed);
                        attempts += 1;
                        launch(next_slot);
                        next_slot += 1;
                        outstanding += 1;
                    }
                } else if outstanding == 0 {
                    break;
                }
                // With attempts still outstanding, keep waiting: each has
                // a hard per-attempt timeout and will report back.
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    route_failed(job, shared, attempts, &last_error)
}

/// The terminal failure response of a route: `gate.deadline` if the
/// client's budget ran out along the way, `gate.upstream` otherwise.
fn route_failed(
    job: &Job,
    shared: &Arc<Shared>,
    attempts: u32,
    last_error: &str,
) -> (String, bool) {
    if deadline_expired(job) {
        shared.metrics.deadline_expired.fetch_add(1, Ordering::Relaxed);
        let e = ErrorBody::new(
            codes::DEADLINE,
            format!("deadline of {} ms expired while routing", job.req.deadline_ms),
        );
        return (err_response(&job.req.id, &e), false);
    }
    let e = ErrorBody::new(
        codes::UPSTREAM,
        format!("{attempts} attempt(s) failed; last: {last_error}"),
    );
    (err_response(&job.req.id, &e), false)
}

fn no_backends(job: &Job) -> String {
    let e = ErrorBody::new(codes::NO_BACKENDS, "no routable backend (all ejected or draining)");
    err_response(&job.req.id, &e)
}

fn deadline_expired(job: &Job) -> bool {
    matches!(job.deadline, Some(d) if Instant::now() >= d)
}

/// Per-attempt timeout: the configured cap, shrunk to the remaining
/// deadline budget when one exists.
fn attempt_timeout(cfg: RouteCfg, deadline: Option<Instant>) -> Duration {
    match deadline {
        Some(d) => {
            let remaining = d.saturating_duration_since(Instant::now());
            cfg.attempt_timeout.min(remaining).max(Duration::from_millis(1))
        }
        None => cfg.attempt_timeout,
    }
}

/// Capped exponential backoff before retry `attempt` (1-based).
fn retry_backoff(cfg: RouteCfg, attempt: u32) -> Duration {
    let exp = cfg.retry_base_ms.saturating_mul(1u64 << attempt.min(16).saturating_sub(1));
    Duration::from_millis(exp.min(cfg.retry_cap_ms))
}

fn note_route_success(shared: &Arc<Shared>, backend_idx: usize) {
    if shared.fleet[backend_idx].note_success() {
        shared.metrics.readmits.fetch_add(1, Ordering::Relaxed);
    }
}

fn note_route_failure(shared: &Arc<Shared>, backend_idx: usize, err: &CallError) {
    let b = &shared.fleet[backend_idx];
    if let Some(failures) = b.note_failure(shared.cfg.eject_after) {
        shared.metrics.ejects.fetch_add(1, Ordering::Relaxed);
        b.drop_pool();
        shared.record(TraceEvent::BackendEject {
            core: backend_idx as u32,
            backend: b.addr.clone(),
            reason: err.describe(),
            failures,
            start_s: shared.now_s(),
        });
    }
}

/// The canonical forward frame: the client's fields re-serialised with
/// the deadline budget decremented by the time already spent here. The
/// backend's response-cache key ignores `id` and `deadline_ms`, so the
/// rewrite never breaks cache affinity.
fn forward_line(req: &Request, deadline: Option<Instant>) -> String {
    let mut pairs: Vec<(String, JsonValue)> = Vec::with_capacity(6);
    pairs.push(("id".to_string(), req.id.clone()));
    pairs.push(("op".to_string(), JsonValue::Str(req.op.as_str().to_string())));
    pairs.push(("ir".to_string(), JsonValue::Str(req.ir.clone())));
    if !req.hints.is_empty() {
        let hints = req.hints.iter().map(|&h| JsonValue::Num(h as f64)).collect();
        pairs.push(("hints".to_string(), JsonValue::Arr(hints)));
    }
    if let Some(policy) = &req.policy {
        pairs.push(("policy".to_string(), JsonValue::Str(policy.clone())));
    }
    if let Some(d) = deadline {
        let remaining_ms = d.saturating_duration_since(Instant::now()).as_millis() as u64;
        // Never forward 0 (= "no deadline"): an expired budget surfaces as
        // `gate.deadline` here, not as an unbounded request there.
        pairs.push(("deadline_ms".to_string(), JsonValue::Num(remaining_ms.max(1) as f64)));
    }
    JsonValue::Obj(pairs).to_json_string()
}

/// Fans a `profiles` request out to every routable backend and merges
/// the answers: per-backend bodies verbatim plus fleet-wide totals
/// (profile records held, recompile-worker counters) summed from them.
fn aggregate_profiles(shared: &Arc<Shared>) -> JsonValue {
    let mut backends = Vec::with_capacity(shared.fleet.len());
    let mut records = 0.0f64;
    let mut started = 0.0f64;
    let mut completed = 0.0f64;
    let mut swapped = 0.0f64;
    for b in shared.fleet.iter() {
        if b.state(shared.cfg.readmit) != HealthState::Up {
            backends.push(JsonValue::obj([
                ("addr", b.addr.as_str().into()),
                ("ok", false.into()),
                ("error", b.state(shared.cfg.readmit).as_str().into()),
            ]));
            continue;
        }
        let id = shared.probe_id.fetch_add(1, Ordering::Relaxed);
        let line = format!("{{\"id\":\"gate-profiles-{id}\",\"op\":\"profiles\"}}");
        let id_json = format!("\"gate-profiles-{id}\"");
        match b.call(&line, &id_json, Duration::from_millis(1000)) {
            Ok(resp) => {
                let result = dae_trace::json::parse(&resp)
                    .ok()
                    .and_then(|v| v.get("result").cloned())
                    .unwrap_or(JsonValue::Null);
                let num = |v: &JsonValue, path: [&str; 2]| {
                    v.get(path[0]).and_then(|s| s.get(path[1])).and_then(JsonValue::as_f64)
                };
                records += num(&result, ["store", "resident"]).unwrap_or(0.0);
                started += num(&result, ["recompiles", "started"]).unwrap_or(0.0);
                completed += num(&result, ["recompiles", "completed"]).unwrap_or(0.0);
                swapped += num(&result, ["recompiles", "swapped"]).unwrap_or(0.0);
                backends.push(JsonValue::obj([
                    ("addr", b.addr.as_str().into()),
                    ("ok", true.into()),
                    ("result", result),
                ]));
            }
            Err(err) => backends.push(JsonValue::obj([
                ("addr", b.addr.as_str().into()),
                ("ok", false.into()),
                ("error", err.describe().into()),
            ])),
        }
    }
    JsonValue::obj([
        ("schema", "dae-gate-profiles/1".into()),
        (
            "totals",
            JsonValue::obj([
                ("profile_records", records.into()),
                ("recompiles_started", started.into()),
                ("recompiles_completed", completed.into()),
                ("recompiles_swapped", swapped.into()),
            ]),
        ),
        ("backends", JsonValue::Arr(backends)),
    ])
}

/// Probes every backend's `health` op on a fixed period, driving the
/// state machine from probe results: failures eject, `draining` bodies
/// quarantine, recoveries re-admit.
fn probe_loop(shared: &Arc<Shared>, interval: Duration) {
    while !(shared.drain.load(Ordering::SeqCst) || signal_drain_requested()) {
        for b in shared.fleet.iter() {
            shared.metrics.probes.fetch_add(1, Ordering::Relaxed);
            let id = shared.probe_id.fetch_add(1, Ordering::Relaxed);
            let line = format!("{{\"id\":\"gate-probe-{id}\",\"op\":\"health\"}}");
            let id_json = format!("\"gate-probe-{id}\"");
            match b.call(&line, &id_json, Duration::from_millis(250)) {
                Ok(resp) => {
                    let result =
                        dae_trace::json::parse(&resp).ok().and_then(|v| v.get("result").cloned());
                    let draining = result
                        .as_ref()
                        .and_then(|r| r.get("status"))
                        .and_then(JsonValue::as_str)
                        .map(|s| s == "draining")
                        .unwrap_or(false);
                    // Ride-along scrape: `/3` health bodies carry the
                    // backend's profile/recompile counters for `stats`.
                    if let Some(pgo) = result.as_ref().and_then(|r| r.get("pgo")) {
                        b.note_pgo(pgo.clone());
                    }
                    if draining {
                        if b.note_draining() {
                            shared.record(TraceEvent::BackendEject {
                                core: b.index as u32,
                                backend: b.addr.clone(),
                                reason: "draining".to_string(),
                                failures: 0,
                                start_s: shared.now_s(),
                            });
                        }
                    } else if b.note_success() {
                        shared.metrics.readmits.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(err) => {
                    if let Some(failures) = b.note_failure(shared.cfg.eject_after) {
                        shared.metrics.ejects.fetch_add(1, Ordering::Relaxed);
                        b.drop_pool();
                        shared.record(TraceEvent::BackendEject {
                            core: b.index as u32,
                            backend: b.addr.clone(),
                            reason: err.describe(),
                            failures,
                            start_s: shared.now_s(),
                        });
                    }
                }
            }
        }
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(deadline_ms: u64) -> Request {
        parse_request(&format!(
            r#"{{"id":7,"op":"compile","ir":"x","hints":[4,8],"policy":"dae-optimal","deadline_ms":{deadline_ms}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn forward_line_decrements_the_deadline_budget() {
        let r = req(10_000);
        let deadline = Instant::now() + Duration::from_millis(600);
        let line = forward_line(&r, Some(deadline));
        let v = dae_trace::json::parse(&line).unwrap();
        let fwd = v.get("deadline_ms").unwrap().as_f64().unwrap();
        assert!((1.0..=600.0).contains(&fwd), "forwarded budget {fwd} not decremented");
        assert_eq!(v.get("op").unwrap().as_str(), Some("compile"));
        assert_eq!(v.get("policy").unwrap().as_str(), Some("dae-optimal"));
        assert_eq!(v.get("hints").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn forward_line_is_reparsable_and_key_stable() {
        let r = req(0);
        let line = forward_line(&r, None);
        let reparsed = parse_request(&line).unwrap();
        assert_eq!(dae_serve::request_key(&r), dae_serve::request_key(&reparsed));
        assert!(!line.contains("deadline_ms"), "no budget means no deadline field");
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let cfg = RouteCfg {
            inflight_cap: 1,
            eject_after: 1,
            readmit: Duration::from_millis(1),
            attempt_timeout: Duration::from_secs(1),
            max_retries: 8,
            retry_base_ms: 10,
            retry_cap_ms: 80,
            hedge_after: None,
        };
        assert_eq!(retry_backoff(cfg, 1), Duration::from_millis(10));
        assert_eq!(retry_backoff(cfg, 2), Duration::from_millis(20));
        assert_eq!(retry_backoff(cfg, 3), Duration::from_millis(40));
        assert_eq!(retry_backoff(cfg, 4), Duration::from_millis(80));
        assert_eq!(retry_backoff(cfg, 9), Duration::from_millis(80), "capped");
    }
}
