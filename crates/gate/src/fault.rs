//! Deterministic in-process fault injection for gateway tests.
//!
//! [`FaultProxy`] sits between the gateway and one backend as a TCP
//! man-in-the-middle. Client→backend bytes pass through untouched;
//! backend→client **response lines** are individually subjected to a
//! seeded fault draw: forwarded clean, dropped, delayed, garbled,
//! truncated mid-frame, or the connection closed outright.
//!
//! Determinism: every fault decision comes from one shared SplitMix64
//! stream seeded at construction, consumed one draw per response line in
//! arrival order. A single-connection test replays identically from the
//! same seed; concurrent tests get a *reproducible distribution* (the
//! interleaving may vary, the marginal fault rates cannot).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The injectable fault classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Swallow the response line entirely (the caller times out).
    Drop,
    /// Forward the line after a fixed delay.
    Delay,
    /// Close the connection instead of responding.
    Close,
    /// Forward the line with its bytes corrupted (still newline-framed).
    Garble,
    /// Forward a prefix of the line and close without the newline.
    Truncate,
}

/// Per-mille fault rates plus the RNG seed. Rates are evaluated against
/// one draw per response line; their sum must be ≤ 1000 (the remainder
/// forwards clean).
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// SplitMix64 seed: same seed, same decision sequence.
    pub seed: u64,
    /// Per-mille of lines dropped.
    pub drop_pm: u16,
    /// Per-mille of lines delayed by `delay_ms`.
    pub delay_pm: u16,
    /// Delay applied to delayed lines.
    pub delay_ms: u64,
    /// Per-mille of lines answered by closing the connection.
    pub close_pm: u16,
    /// Per-mille of lines garbled.
    pub garble_pm: u16,
    /// Per-mille of lines truncated mid-frame.
    pub truncate_pm: u16,
}

impl FaultPlan {
    /// A plan that forwards everything untouched.
    pub fn clean(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_pm: 0,
            delay_pm: 0,
            delay_ms: 0,
            close_pm: 0,
            garble_pm: 0,
            truncate_pm: 0,
        }
    }

    /// Decides the fate of the next response line from one RNG draw.
    /// `None` means forward clean.
    fn decide(&self, draw: u64) -> Option<FaultKind> {
        let x = (draw % 1000) as u16;
        let mut edge = self.drop_pm;
        if x < edge {
            return Some(FaultKind::Drop);
        }
        edge += self.close_pm;
        if x < edge {
            return Some(FaultKind::Close);
        }
        edge += self.garble_pm;
        if x < edge {
            return Some(FaultKind::Garble);
        }
        edge += self.truncate_pm;
        if x < edge {
            return Some(FaultKind::Truncate);
        }
        edge += self.delay_pm;
        if x < edge {
            return Some(FaultKind::Delay);
        }
        None
    }
}

/// SplitMix64: tiny, seedable, good enough for fault schedules.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A running fault-injection proxy in front of one upstream address.
pub struct FaultProxy {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    /// Faults injected so far, by class (drop, delay, close, garble,
    /// truncate) — for asserting a test actually exercised the fault path.
    injected: Arc<[AtomicU64; 5]>,
}

impl FaultProxy {
    /// Starts a proxy on an ephemeral local port forwarding to
    /// `upstream`. The accept loop runs on a background thread until
    /// [`FaultProxy::stop`] (or drop of the process).
    pub fn start(upstream: String, plan: FaultPlan) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let injected: Arc<[AtomicU64; 5]> = Arc::new(Default::default());
        let rng = Arc::new(Mutex::new(plan.seed));
        {
            let stop = Arc::clone(&stop);
            let injected = Arc::clone(&injected);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let upstream = upstream.clone();
                            let rng = Arc::clone(&rng);
                            let injected = Arc::clone(&injected);
                            std::thread::spawn(move || {
                                let _ = pipe_connection(client, &upstream, plan, &rng, &injected);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(2)),
                    }
                }
            });
        }
        Ok(FaultProxy { addr, stop, injected })
    }

    /// The proxy's listen address (give this to the gateway as the
    /// backend address).
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Faults injected of one class.
    pub fn injected_of(&self, kind: FaultKind) -> u64 {
        self.injected[fault_slot(kind)].load(Ordering::Relaxed)
    }

    /// Stops accepting new connections (existing pipes die with their
    /// sockets).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn fault_slot(kind: FaultKind) -> usize {
    match kind {
        FaultKind::Drop => 0,
        FaultKind::Delay => 1,
        FaultKind::Close => 2,
        FaultKind::Garble => 3,
        FaultKind::Truncate => 4,
    }
}

/// One proxied connection: raw copy client→upstream, line-framed faulty
/// copy upstream→client.
fn pipe_connection(
    client: TcpStream,
    upstream: &str,
    plan: FaultPlan,
    rng: &Arc<Mutex<u64>>,
    injected: &Arc<[AtomicU64; 5]>,
) -> std::io::Result<()> {
    let up = TcpStream::connect(upstream)?;
    let _ = up.set_nodelay(true);
    let _ = client.set_nodelay(true);
    // client → upstream: verbatim.
    {
        let mut from = client.try_clone()?;
        let mut to = up.try_clone()?;
        std::thread::spawn(move || {
            let mut buf = [0u8; 16 * 1024];
            loop {
                match from.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if to.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
            let _ = to.shutdown(std::net::Shutdown::Write);
        });
    }
    // upstream → client: per-line fault draws.
    let mut reader = BufReader::new(up);
    let mut writer = client;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return Ok(()),
            Ok(_) => {}
        }
        let draw = {
            let mut s = rng.lock().unwrap_or_else(|e| e.into_inner());
            splitmix64(&mut s)
        };
        match plan.decide(draw) {
            None => writer.write_all(line.as_bytes())?,
            Some(kind) => {
                injected[fault_slot(kind)].fetch_add(1, Ordering::Relaxed);
                match kind {
                    FaultKind::Drop => {}
                    FaultKind::Delay => {
                        std::thread::sleep(Duration::from_millis(plan.delay_ms));
                        writer.write_all(line.as_bytes())?;
                    }
                    FaultKind::Close => {
                        let _ = writer.shutdown(std::net::Shutdown::Both);
                        return Ok(());
                    }
                    FaultKind::Garble => {
                        let garbled = garble_line(&line, draw);
                        writer.write_all(garbled.as_bytes())?;
                    }
                    FaultKind::Truncate => {
                        let keep = line.len().saturating_sub(1).max(1) / 2;
                        let cut = floor_char_boundary(&line, keep);
                        writer.write_all(&line.as_bytes()[..cut])?;
                        let _ = writer.flush();
                        let _ = writer.shutdown(std::net::Shutdown::Both);
                        return Ok(());
                    }
                }
            }
        }
        writer.flush()?;
    }
}

/// Corrupts a line while keeping it newline-framed: flips a run of bytes
/// to printable junk so the frame is still "one line" but no longer valid
/// JSON (or valid JSON of the wrong shape).
fn garble_line(line: &str, draw: u64) -> String {
    let body = line.trim_end_matches(['\n', '\r']);
    let mut bytes = body.as_bytes().to_vec();
    if bytes.is_empty() {
        return "\u{0}!garbled!\n".to_string();
    }
    let start = (draw as usize) % bytes.len();
    let len = 1 + ((draw >> 17) as usize) % 16usize.min(bytes.len());
    for (i, b) in bytes.iter_mut().enumerate().skip(start).take(len) {
        *b = b'!' + ((draw >> (i % 32)) as u8 % 64);
    }
    let mut out = String::from_utf8_lossy(&bytes).into_owned();
    out.push('\n');
    out
}

/// Largest char boundary ≤ `i` (stable substitute for
/// `str::floor_char_boundary`).
fn floor_char_boundary(s: &str, i: usize) -> usize {
    let mut i = i.min(s.len());
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    loop {
                        let mut line = String::new();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {
                                if writer.write_all(line.as_bytes()).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                });
            }
        });
        (addr, handle)
    }

    #[test]
    fn clean_plan_is_a_transparent_pipe() {
        let (addr, _h) = echo_server();
        let proxy = FaultProxy::start(addr, FaultPlan::clean(1)).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"{\"id\":1,\"ok\":true}\n").unwrap();
        let mut reader = BufReader::new(c.try_clone().unwrap());
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        assert_eq!(resp, "{\"id\":1,\"ok\":true}\n");
        assert_eq!(proxy.injected(), 0);
    }

    #[test]
    fn always_drop_swallows_every_line() {
        let (addr, _h) = echo_server();
        let plan = FaultPlan { drop_pm: 1000, ..FaultPlan::clean(7) };
        let proxy = FaultProxy::start(addr, plan).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
        c.write_all(b"hello\n").unwrap();
        let mut buf = [0u8; 64];
        let got = c.read(&mut buf);
        assert!(
            matches!(got, Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut),
            "dropped line must never arrive: {got:?}"
        );
        assert!(proxy.injected_of(FaultKind::Drop) >= 1);
    }

    #[test]
    fn garble_keeps_framing_but_breaks_content() {
        let (addr, _h) = echo_server();
        let plan = FaultPlan { garble_pm: 1000, ..FaultPlan::clean(99) };
        let proxy = FaultProxy::start(addr, plan).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        let sent = "{\"id\":1,\"ok\":true,\"result\":{\"x\":12345}}\n";
        c.write_all(sent.as_bytes()).unwrap();
        let mut reader = BufReader::new(c.try_clone().unwrap());
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        assert!(resp.ends_with('\n'), "garbled frame stays newline-framed");
        assert_ne!(resp, sent, "content must be corrupted");
        assert_eq!(proxy.injected_of(FaultKind::Garble), 1);
    }

    #[test]
    fn same_seed_same_decision_sequence() {
        let plan = FaultPlan {
            drop_pm: 100,
            close_pm: 100,
            garble_pm: 100,
            truncate_pm: 100,
            delay_pm: 100,
            ..FaultPlan::clean(42)
        };
        let seq = |seed: u64| {
            let mut s = seed;
            (0..200).map(|_| plan.decide(splitmix64(&mut s))).collect::<Vec<_>>()
        };
        assert_eq!(seq(42), seq(42));
        assert_ne!(seq(42), seq(43), "different seeds diverge");
        let faults = seq(42).iter().filter(|d| d.is_some()).count();
        assert!((40..160).contains(&faults), "~50% fault rate, got {faults}/200");
    }

    #[test]
    fn truncate_cuts_the_frame_and_closes() {
        let (addr, _h) = echo_server();
        let plan = FaultPlan { truncate_pm: 1000, ..FaultPlan::clean(5) };
        let proxy = FaultProxy::start(addr, plan).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        let sent = "{\"id\":1,\"ok\":true,\"result\":{\"payload\":\"abcdefgh\"}}\n";
        c.write_all(sent.as_bytes()).unwrap();
        let mut got = Vec::new();
        c.read_to_end(&mut got).unwrap();
        assert!(!got.is_empty() && got.len() < sent.len(), "partial frame, then EOF");
        assert!(!got.ends_with(b"\n"));
    }
}
