//! One `daed` backend as the gateway sees it: a pooled connection set, a
//! health state machine, an in-flight gauge and per-backend counters.
//!
//! # Connection discipline
//!
//! A pooled connection is **checked out exclusively** for one
//! request/response exchange. With a single outstanding frame per
//! connection, the next line the backend sends is by construction the
//! answer to the frame just written — the gateway never has to reorder
//! responses. A connection that times out, errors, or produces a frame
//! that fails validation is *discarded*, never returned to the pool: a
//! late response from a timed-out exchange must not be mistaken for the
//! answer to the next request.
//!
//! # Health state machine
//!
//! ```text
//!        consecutive failures >= eject_after            readmit_ms
//!  Up ────────────────────────────────────► Ejected ────────────► HalfOpen
//!   ▲                                          ▲                     │
//!   │              any success                 │     trial fails     │
//!   └───────────────────────────── HalfOpen ───┴─────────────────────┘
//! ```
//!
//! `Draining` is a fourth, probe-driven state: the backend answered
//! `health` with `status: "draining"`, so new requests stop routing to it
//! *before* its socket disappears; a later `ok` probe (a restart) brings
//! it straight back to `Up`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dae_trace::json::JsonValue;
use dae_trace::LogHistogram;

/// Routability of a backend, as decided by probes and request outcomes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// Routable.
    Up,
    /// Ejected after consecutive failures; not routable until the
    /// re-admission cooldown elapses.
    Ejected,
    /// Cooldown elapsed: exactly one trial request/probe may pass.
    HalfOpen,
    /// The backend reported a graceful drain; not routable, not failed.
    Draining,
}

impl HealthState {
    /// Stable lowercase name for stats output.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Up => "up",
            HealthState::Ejected => "ejected",
            HealthState::HalfOpen => "half-open",
            HealthState::Draining => "draining",
        }
    }
}

/// Why a single forwarding attempt failed.
#[derive(Debug)]
pub enum CallError {
    /// Could not connect (refused, unreachable, connect timeout).
    Connect(String),
    /// The exchange died mid-flight (reset, EOF, write/read error).
    Io(String),
    /// No complete response line within the deadline.
    Timeout,
    /// The backend sent bytes that are not a valid response to this
    /// request (unparsable JSON, wrong shape, or a mismatched `id`).
    Garbled(String),
}

impl CallError {
    /// Human-readable description for the terminal `gate.upstream` error.
    pub fn describe(&self) -> String {
        match self {
            CallError::Connect(e) => format!("connect failed: {e}"),
            CallError::Io(e) => format!("exchange failed: {e}"),
            CallError::Timeout => "response timed out".to_string(),
            CallError::Garbled(e) => format!("invalid backend frame: {e}"),
        }
    }
}

struct Health {
    state: HealthState,
    /// When the state last changed (drives the re-admission cooldown).
    since: Instant,
    /// A half-open trial currently in flight (only one may pass).
    trial_inflight: bool,
}

/// One backend: address, pool, health, counters.
pub struct Backend {
    /// The backend's `host:port`.
    pub addr: String,
    /// Index in the gateway's fleet (the trace lane).
    pub index: usize,
    pool: Mutex<Vec<TcpStream>>,
    pool_cap: usize,
    health: Mutex<Health>,
    /// Requests currently being exchanged with this backend.
    pub inflight: AtomicUsize,
    /// Consecutive failures (probes and requests both count; any success
    /// resets it).
    pub consecutive_failures: AtomicU32,
    /// Requests forwarded (attempts, including retries and hedges).
    pub sent: AtomicU64,
    /// Attempts that returned a valid response frame.
    pub ok: AtomicU64,
    /// Attempts that failed (connect, io, timeout, garble).
    pub failed: AtomicU64,
    /// Per-backend forwarding latency (successful attempts).
    latency: Mutex<LogHistogram>,
    /// Latest `pgo` section scraped from this backend's `health` body
    /// (`None` until a probe has seen one).
    pgo: Mutex<Option<JsonValue>>,
}

impl Backend {
    /// A backend starting `Up` with an empty pool.
    pub fn new(addr: String, index: usize, pool_cap: usize) -> Backend {
        Backend {
            addr,
            index,
            pool: Mutex::new(Vec::new()),
            pool_cap: pool_cap.max(1),
            health: Mutex::new(Health {
                state: HealthState::Up,
                since: Instant::now(),
                trial_inflight: false,
            }),
            inflight: AtomicUsize::new(0),
            consecutive_failures: AtomicU32::new(0),
            sent: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            latency: Mutex::new(LogHistogram::new()),
            pgo: Mutex::new(None),
        }
    }

    /// Remembers the `pgo` section of the latest health probe.
    pub fn note_pgo(&self, pgo: JsonValue) {
        *lock(&self.pgo) = Some(pgo);
    }

    /// The latest scraped `pgo` section, if any probe carried one.
    pub fn pgo_json(&self) -> Option<JsonValue> {
        lock(&self.pgo).clone()
    }

    /// Current health state (with the Ejected → HalfOpen clock applied).
    pub fn state(&self, readmit_after: Duration) -> HealthState {
        let mut h = lock(&self.health);
        if h.state == HealthState::Ejected && h.since.elapsed() >= readmit_after {
            h.state = HealthState::HalfOpen;
            h.trial_inflight = false;
        }
        h.state
    }

    /// Claims the right to route one request here. `Up` admits freely
    /// (under the in-flight cap, which the router checks separately);
    /// `HalfOpen` admits exactly one trial at a time; `Ejected` and
    /// `Draining` refuse.
    pub fn admit(&self, readmit_after: Duration) -> bool {
        let mut h = lock(&self.health);
        if h.state == HealthState::Ejected && h.since.elapsed() >= readmit_after {
            h.state = HealthState::HalfOpen;
            h.trial_inflight = false;
        }
        match h.state {
            HealthState::Up => true,
            HealthState::HalfOpen if !h.trial_inflight => {
                h.trial_inflight = true;
                true
            }
            _ => false,
        }
    }

    /// Records a successful exchange (request or probe): failures reset,
    /// a half-open backend is re-admitted. Returns `true` when this call
    /// flipped the backend back to `Up` (a re-admission).
    pub fn note_success(&self) -> bool {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        let mut h = lock(&self.health);
        match h.state {
            HealthState::Up => false,
            _ => {
                h.state = HealthState::Up;
                h.since = Instant::now();
                h.trial_inflight = false;
                true
            }
        }
    }

    /// Records a failed exchange. Returns `Some(consecutive)` when this
    /// failure crossed `eject_after` and ejected the backend (the caller
    /// records the `BackendEject` trace event and counter).
    pub fn note_failure(&self, eject_after: u32) -> Option<u32> {
        let n = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        let mut h = lock(&self.health);
        match h.state {
            HealthState::HalfOpen => {
                // The trial failed: back to Ejected, cooldown restarts.
                h.state = HealthState::Ejected;
                h.since = Instant::now();
                h.trial_inflight = false;
                Some(n)
            }
            HealthState::Up if n >= eject_after => {
                h.state = HealthState::Ejected;
                h.since = Instant::now();
                Some(n)
            }
            _ => None,
        }
    }

    /// Marks the backend as gracefully draining (probe saw
    /// `status: "draining"`). Returns `true` on the transition.
    pub fn note_draining(&self) -> bool {
        let mut h = lock(&self.health);
        if h.state == HealthState::Draining {
            return false;
        }
        h.state = HealthState::Draining;
        h.since = Instant::now();
        h.trial_inflight = false;
        true
    }

    /// One request/response exchange: write `line`, read one frame,
    /// validate it echoes `id_json`. The connection comes from the pool
    /// when possible and returns to it only after a fully valid exchange.
    ///
    /// `timeout` bounds the whole exchange (connect + write + read).
    pub fn call(&self, line: &str, id_json: &str, timeout: Duration) -> Result<String, CallError> {
        self.sent.fetch_add(1, Ordering::Relaxed);
        self.inflight.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let outcome = self.exchange(line, id_json, timeout);
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        match &outcome {
            Ok(_) => {
                self.ok.fetch_add(1, Ordering::Relaxed);
                lock(&self.latency).record(started.elapsed().as_secs_f64());
            }
            Err(_) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    fn exchange(&self, line: &str, id_json: &str, timeout: Duration) -> Result<String, CallError> {
        let stream = match self.checkout() {
            Some(s) => s,
            None => {
                let addr = self
                    .addr
                    .parse::<std::net::SocketAddr>()
                    .map_err(|e| CallError::Connect(format!("bad address: {e}")))?;
                let s = TcpStream::connect_timeout(&addr, timeout)
                    .map_err(|e| CallError::Connect(e.to_string()))?;
                let _ = s.set_nodelay(true);
                s
            }
        };
        stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))
            .map_err(|e| CallError::Io(e.to_string()))?;
        let mut writer = stream.try_clone().map_err(|e| CallError::Io(e.to_string()))?;
        writer.write_all(line.as_bytes()).map_err(|e| CallError::Io(e.to_string()))?;
        writer.write_all(b"\n").map_err(|e| CallError::Io(e.to_string()))?;
        let mut reader = BufReader::new(stream);
        let mut resp = String::new();
        match reader.read_line(&mut resp) {
            Ok(0) => return Err(CallError::Io("backend closed the connection".into())),
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(CallError::Timeout)
            }
            Err(e) => return Err(CallError::Io(e.to_string())),
        }
        if !resp.ends_with('\n') {
            return Err(CallError::Garbled("truncated frame (no trailing newline)".into()));
        }
        let resp = resp.trim_end_matches(['\n', '\r']).to_string();
        validate_response(&resp, id_json)?;
        // Fully valid exchange: the connection is in a known-clean state
        // and may serve the next request.
        self.checkin(reader.into_inner());
        Ok(resp)
    }

    fn checkout(&self) -> Option<TcpStream> {
        lock(&self.pool).pop()
    }

    fn checkin(&self, stream: TcpStream) {
        let mut pool = lock(&self.pool);
        if pool.len() < self.pool_cap {
            pool.push(stream);
        }
    }

    /// Drops every pooled connection (used after an ejection: the pooled
    /// sockets are likely dead too, and dialling fresh is cheaper than
    /// failing once per stale socket).
    pub fn drop_pool(&self) {
        lock(&self.pool).clear();
    }

    /// Idle pooled connections (racy, for stats).
    pub fn pooled(&self) -> usize {
        lock(&self.pool).len()
    }

    /// Per-backend stats object.
    pub fn to_json(&self, readmit_after: Duration) -> JsonValue {
        JsonValue::obj([
            ("addr", self.addr.as_str().into()),
            ("state", self.state(readmit_after).as_str().into()),
            ("inflight", self.inflight.load(Ordering::Relaxed).into()),
            ("pooled", self.pooled().into()),
            ("consecutive_failures", self.consecutive_failures.load(Ordering::Relaxed).into()),
            ("sent", self.sent.load(Ordering::Relaxed).into()),
            ("ok", self.ok.load(Ordering::Relaxed).into()),
            ("failed", self.failed.load(Ordering::Relaxed).into()),
            ("latency", lock(&self.latency).to_json()),
            ("pgo", self.pgo_json().unwrap_or(JsonValue::Null)),
        ])
    }
}

/// A response frame must be a JSON object with an `ok` bool that echoes
/// the request's `id` — anything else is a protocol violation and the
/// connection that produced it is poisoned.
fn validate_response(resp: &str, id_json: &str) -> Result<(), CallError> {
    // Fast path: a well-behaved `daed` serialises every response as
    // `{"id":<id>,"ok":<bool>,...}` in exactly that key order, so the id
    // echo and the `ok` bool fall out of a prefix compare; the rest only
    // needs a syntax scan (truncation and most garbling break syntax).
    // Responses survive the gateway verbatim, so the scan must guarantee
    // the client's parse cannot fail where ours succeeded — the scanner
    // mirrors `dae_trace::json::parse`, never laxer. Non-canonical key
    // order falls through to the tree-building parse below.
    if let Some(rest) = resp.strip_prefix("{\"id\":").and_then(|r| r.strip_prefix(id_json)) {
        if (rest.starts_with(",\"ok\":true") || rest.starts_with(",\"ok\":false"))
            && json_syntax_ok(resp)
        {
            return Ok(());
        }
    }
    let v = dae_trace::json::parse(resp)
        .map_err(|e| CallError::Garbled(format!("response is not JSON: {e}")))?;
    if v.as_obj().is_none() || v.get("ok").and_then(JsonValue::as_bool).is_none() {
        return Err(CallError::Garbled("response lacks an `ok` field".into()));
    }
    let echoed = v.get("id").cloned().unwrap_or(JsonValue::Null).to_json_string();
    if echoed != id_json {
        return Err(CallError::Garbled(format!("response id {echoed} does not echo {id_json}")));
    }
    Ok(())
}

/// Allocation-free JSON syntax check mirroring `dae_trace::json::parse`:
/// same grammar, same `MAX_DEPTH`, same trailing-garbage rule, no tree.
/// Where the two could diverge the scanner is the *stricter* one (it
/// requires hex digits after `\u`, the parser also tolerates a sign), so
/// `json_syntax_ok(s)` implies `parse(s)` succeeds — the invariant the
/// verbatim pass-through fast path rests on.
fn json_syntax_ok(text: &str) -> bool {
    let mut s = Scan { bytes: text.as_bytes(), pos: 0, depth: 0 };
    s.skip_ws();
    if !s.value() {
        return false;
    }
    s.skip_ws();
    s.pos == s.bytes.len()
}

struct Scan<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Scan<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> bool {
        match self.peek() {
            Some(b'{') => self.container(b'}'),
            Some(b'[') => self.container(b']'),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => false,
        }
    }

    fn literal(&mut self, word: &[u8]) -> bool {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn container(&mut self, close: u8) -> bool {
        self.pos += 1; // the opening brace/bracket, already peeked
        self.depth += 1;
        if self.depth > dae_trace::json::MAX_DEPTH {
            return false;
        }
        self.skip_ws();
        if self.peek() == Some(close) {
            self.pos += 1;
            self.depth -= 1;
            return true;
        }
        loop {
            self.skip_ws();
            if close == b'}' {
                if !self.string() {
                    return false;
                }
                self.skip_ws();
                if self.peek() != Some(b':') {
                    return false;
                }
                self.pos += 1;
                self.skip_ws();
            }
            if !self.value() {
                return false;
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(c) if c == close => {
                    self.pos += 1;
                    self.depth -= 1;
                    return true;
                }
                _ => return false,
            }
        }
    }

    fn string(&mut self) -> bool {
        if self.peek() != Some(b'"') {
            return false;
        }
        self.pos += 1;
        loop {
            match self.peek() {
                None => return false,
                Some(b'"') => {
                    self.pos += 1;
                    return true;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len()
                                || !self.bytes[self.pos + 1..self.pos + 5]
                                    .iter()
                                    .all(u8::is_ascii_hexdigit)
                            {
                                return false;
                            }
                            self.pos += 4;
                        }
                        _ => return false,
                    }
                    self.pos += 1;
                }
                // The input is a &str, so multi-byte scalars are valid
                // UTF-8 by construction; continuation bytes just pass.
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> bool {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>().map(f64::is_finite).unwrap_or(false)
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    const READMIT: Duration = Duration::from_millis(40);

    #[test]
    fn syntax_scanner_is_never_laxer_than_the_parser() {
        let cases: &[&str] = &[
            // Canonical frames the fast path must accept.
            "{\"id\":1,\"ok\":true,\"result\":{\"x\":[1,2.5e-3,\"s\\n\"]}}",
            "{\"id\":\"a-b\",\"ok\":false,\"error\":{\"code\":\"gate.upstream\"}}",
            "{\"id\":null,\"ok\":true,\"result\":\"\\u0041\\\\\"}",
            " [1, -2.5E3, [], {}, \"\"] ",
            // Damage in the shapes the fault proxy produces.
            "{\"id\":1,\"ok\":true,\"result\":",
            "{\"id\":1,\"ok\":truX,\"result\":1}",
            "{\"id\":1,\"ok\":true,\"result\":1}}",
            "{\"id\":1,\"ok\":true,\"result\":\"\\u12G4\"}",
            "{\"id\":1,\"ok\":true,\"result\":1e}",
            "{\"id\":1,\"ok\":true \"result\":1}",
            "{\"id\":1,,\"ok\":true}",
            "{\"id\":1,\"ok\":true,\"result\":-}",
            "nul",
            "",
        ];
        for case in cases {
            if json_syntax_ok(case) {
                assert!(
                    dae_trace::json::parse(case).is_ok(),
                    "scanner accepted what the parser rejects: {case:?}"
                );
            }
        }
        assert!(json_syntax_ok(cases[0]), "canonical frames must take the fast path");
        assert!(json_syntax_ok(cases[1]));
        // Depth: the scanner enforces the same nesting limit.
        let deep_ok = format!(
            "{}1{}",
            "[".repeat(dae_trace::json::MAX_DEPTH),
            "]".repeat(dae_trace::json::MAX_DEPTH)
        );
        let deep_bad = format!(
            "{}1{}",
            "[".repeat(dae_trace::json::MAX_DEPTH + 1),
            "]".repeat(dae_trace::json::MAX_DEPTH + 1)
        );
        assert!(json_syntax_ok(&deep_ok));
        assert!(!json_syntax_ok(&deep_bad));
    }

    #[test]
    fn state_machine_ejects_cools_down_and_readmits() {
        let b = Backend::new("127.0.0.1:1".into(), 0, 4);
        assert_eq!(b.state(READMIT), HealthState::Up);
        assert!(b.note_failure(3).is_none());
        assert!(b.note_failure(3).is_none());
        assert_eq!(b.note_failure(3), Some(3), "third consecutive failure ejects");
        assert_eq!(b.state(READMIT), HealthState::Ejected);
        assert!(!b.admit(READMIT), "ejected backends are not routable");
        std::thread::sleep(READMIT + Duration::from_millis(5));
        assert_eq!(b.state(READMIT), HealthState::HalfOpen);
        assert!(b.admit(READMIT), "half-open admits one trial");
        assert!(!b.admit(READMIT), "only one trial at a time");
        assert!(b.note_success(), "trial success re-admits");
        assert_eq!(b.state(READMIT), HealthState::Up);
        assert!(b.admit(READMIT));
    }

    #[test]
    fn failed_trial_restarts_the_cooldown() {
        let b = Backend::new("127.0.0.1:1".into(), 0, 4);
        for _ in 0..2 {
            b.note_failure(2);
        }
        std::thread::sleep(READMIT + Duration::from_millis(5));
        assert!(b.admit(READMIT));
        assert!(b.note_failure(2).is_some(), "half-open trial failure re-ejects");
        assert_eq!(b.state(READMIT), HealthState::Ejected);
        assert!(!b.admit(READMIT));
    }

    #[test]
    fn draining_is_not_routable_but_recovers_on_success() {
        let b = Backend::new("127.0.0.1:1".into(), 0, 4);
        assert!(b.note_draining());
        assert!(!b.note_draining(), "transition reported once");
        assert!(!b.admit(READMIT));
        assert!(b.note_success(), "a healthy probe after restart re-admits");
        assert_eq!(b.state(READMIT), HealthState::Up);
    }

    #[test]
    fn call_roundtrips_and_pools_the_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            for _ in 0..2 {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                writer.write_all(b"{\"id\":7,\"ok\":true,\"result\":{}}\n").unwrap();
            }
        });
        let b = Backend::new(addr.to_string(), 0, 4);
        let resp =
            b.call(r#"{"id":7,"op":"health"}"#, "7", Duration::from_secs(2)).expect("first call");
        assert!(resp.contains("\"ok\":true"));
        assert_eq!(b.pooled(), 1, "clean exchange returns the connection");
        b.call(r#"{"id":7,"op":"health"}"#, "7", Duration::from_secs(2)).expect("pooled call");
        assert_eq!(b.ok.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn mismatched_id_is_garbled_and_poisons_the_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            writer.write_all(b"{\"id\":999,\"ok\":true}\n").unwrap();
        });
        let b = Backend::new(addr.to_string(), 0, 4);
        let err = b.call(r#"{"id":7,"op":"health"}"#, "7", Duration::from_secs(2)).unwrap_err();
        assert!(matches!(err, CallError::Garbled(_)), "{err:?}");
        assert_eq!(b.pooled(), 0, "garbled exchange must not pool the connection");
    }

    #[test]
    fn connect_refused_is_a_connect_error() {
        // Bind-then-drop guarantees an unused port.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let b = Backend::new(addr, 0, 4);
        let err = b.call(r#"{"id":1,"op":"health"}"#, "1", Duration::from_millis(500)).unwrap_err();
        assert!(matches!(err, CallError::Connect(_)), "{err:?}");
        assert_eq!(b.failed.load(Ordering::Relaxed), 1);
    }
}
