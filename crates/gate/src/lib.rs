//! # dae-gate — a sharded, fault-tolerant gateway over a fleet of `daed`s
//!
//! A std-only TCP front end that speaks the exact `daed` wire protocol
//! (newline-delimited JSON) and fans requests out over a fleet of `daed`
//! backends. One binary ships on top: `daeg`.
//!
//! The moving parts, one module each:
//!
//! * [`ring`] — consistent-hash routing on the backends' own
//!   response-cache key ([`dae_serve::request_key`]): warm requests land
//!   on the backend that memoised them, so fleet cache capacity *adds*
//!   instead of overlapping, and ejections only remap the ejected
//!   backend's keys.
//! * [`backend`] — one backend as the gateway sees it: an exclusive-
//!   checkout connection pool, the Up → Ejected → HalfOpen health state
//!   machine, and per-backend counters.
//! * [`gateway`] — the daemon: reader threads, a bounded admission queue
//!   (shed with `gate.overloaded`, drain with `gate.draining`), router
//!   threads doing bounded-load spill, capped-exponential-backoff retries
//!   on a *different* backend, optional hedged requests and deadline-
//!   budget propagation.
//! * [`metrics`] — aggregate counters/histograms behind `stats`
//!   (`dae-gate-stats/1`) and the stable `gate.*` error-code vocabulary.
//! * [`fault`] — a deterministic in-process fault-injection proxy
//!   (drop/delay/close/garble/truncate, seeded) for tests.
//! * [`mod@bench`] — the gateway benchmark harness behind `dae-load --target`
//!   producing `BENCH_gate_*.json`.
//!
//! # Contract
//!
//! Successful responses pass through from the backend **verbatim** — a
//! fleet behind `daeg` is byte-identical to one fresh engine. Failures
//! the gateway absorbs (crashed backend, garbled frame, timeout) surface
//! only as retries/hedges in `stats`; failures it cannot absorb answer
//! with a stable dotted `gate.*` code, never silence.

#![warn(missing_docs)]

pub mod backend;
pub mod bench;
pub mod fault;
pub mod gateway;
pub mod metrics;
pub mod ring;

pub use backend::{Backend, CallError, HealthState};
pub use bench::{bench_gate, GateBenchConfig};
pub use fault::{FaultKind, FaultPlan, FaultProxy};
pub use gateway::{GateConfig, Gateway};
pub use metrics::{codes, GateMetrics, GATE_HEALTH_SCHEMA, GATE_STATS_SCHEMA};
pub use ring::Ring;
