//! The gateway benchmark: `dae-load --target gate` →
//! `BENCH_gate_workers.json`.
//!
//! # What the fleet actually buys on a small machine
//!
//! The backends are CPU-bound and this harness does not assume spare
//! cores. What *does* scale with fleet size is **response-cache
//! capacity**: each backend holds an LRU of memoised responses, and the
//! gateway's consistent-hash routing sends each request key to one home
//! backend, so the fleet's caches shard the working set instead of
//! duplicating it.
//!
//! The bench makes that measurable deliberately:
//!
//! 1. A **probe pass** replays the seeded warm mix against one in-process
//!    engine and sums the bytes of the distinct responses — the working
//!    set `S`.
//! 2. Every backend (and the direct-`daed` baseline) gets a response-cache
//!    budget of `S/2`: one backend *cannot* hold the working set, three
//!    shards (≈ `S/3` each, ±ring imbalance) can.
//! 3. Each configuration is warmed with one full pass of the mix, then
//!    measured. The baseline replays the same pass order, which is LRU's
//!    pathological case at half capacity; the sharded fleet answers from
//!    cache.
//!
//! The reported `speedup_vs_single_direct` is therefore a *cache
//! capacity* effect — exactly the effect a `daeg` fleet exists to buy —
//! not a parallel-CPU artefact that would evaporate on a 1-core host.

use std::collections::HashSet;
use std::time::Instant;

use dae_serve::load::{client_rng, request_frame, shutdown};
use dae_serve::{
    parse_request, request_key, run_load, Engine, EngineConfig, LoadConfig, Mix, Server,
    ServerConfig,
};
use dae_trace::json::JsonValue;

use crate::gateway::{GateConfig, Gateway};

/// Schema tag of the gateway bench JSON.
pub const GATE_BENCH_SCHEMA: &str = "dae-gate-bench/1";

/// Gateway-bench knobs.
#[derive(Clone, Debug)]
pub struct GateBenchConfig {
    /// Fleet sizes to measure (each behind one gateway).
    pub fleets: Vec<usize>,
    /// Total requests per measured pass.
    pub requests: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Seed of the request streams.
    pub seed: u64,
    /// Best-of trials per configuration.
    pub trials: usize,
    /// Gateway router threads.
    pub routers: usize,
}

impl Default for GateBenchConfig {
    fn default() -> Self {
        GateBenchConfig {
            fleets: vec![1, 2, 3],
            requests: 240,
            clients: 4,
            seed: 42,
            trials: 2,
            routers: 8,
        }
    }
}

/// Replays the seeded warm mix against one unbounded in-process engine
/// and returns `(distinct_requests, working_set_bytes)`: the number of
/// distinct request keys and the total bytes of their cached responses.
fn probe_working_set(cfg: &GateBenchConfig) -> (usize, usize) {
    let engine =
        Engine::new(&EngineConfig { resp_max_bytes: usize::MAX / 2, ..EngineConfig::default() });
    let clients = cfg.clients.max(1);
    let mut seen: HashSet<u64> = HashSet::new();
    let mut bytes = 0usize;
    for c in 0..clients {
        let share = cfg.requests / clients + if c < cfg.requests % clients { 1 } else { 0 };
        // The exact stream split `dae-load` uses (see `client_rng`'s doc):
        // this is what makes `--target gate` and a direct-daed run draw
        // identical per-client request sequences for a given seed.
        let mut rng = client_rng(cfg.seed, c as u64);
        for k in 0..share {
            let frame = request_frame(Mix::Warm, &mut rng, (c * 1_000_000 + k) as u64);
            let req = parse_request(&frame.to_json_string()).expect("generated frame is valid");
            if !seen.insert(request_key(&req)) {
                continue;
            }
            if let Ok(result) = engine.handle_raw(&req) {
                bytes += result.len();
            }
        }
    }
    (seen.len(), bytes)
}

/// One backend daemon sized so it *cannot* hold the whole working set.
fn spawn_backend(
    resp_max_bytes: usize,
    queue_depth: usize,
) -> std::io::Result<(String, std::thread::JoinHandle<std::io::Result<()>>)> {
    let server = Server::bind(&ServerConfig {
        workers: 2,
        queue_depth,
        engine: EngineConfig { resp_max_bytes, ..EngineConfig::default() },
        ..Default::default()
    })?;
    let addr = server.local_addr()?.to_string();
    let handle = std::thread::spawn(move || server.run());
    Ok((addr, handle))
}

/// Best-of-`trials` measured passes of the warm mix against `addr`,
/// preceded by one unmeasured warming pass.
fn measure(addr: &str, cfg: &GateBenchConfig) -> std::io::Result<dae_serve::LoadReport> {
    let load = LoadConfig {
        addr: addr.to_string(),
        requests: cfg.requests,
        clients: cfg.clients,
        seed: cfg.seed,
        mix: Mix::Warm,
    };
    run_load(&load)?; // warming pass: populates the response caches
    let mut best = run_load(&load)?;
    for _ in 1..cfg.trials.max(1) {
        let again = run_load(&load)?;
        if again.throughput_rps() > best.throughput_rps() {
            best = again;
        }
    }
    Ok(best)
}

/// Runs the full gateway bench and returns the
/// `BENCH_gate_workers.json` document.
pub fn bench_gate(cfg: &GateBenchConfig) -> std::io::Result<JsonValue> {
    let t0 = Instant::now();
    let (distinct, working_set) = probe_working_set(cfg);
    // Half the working set: the single-backend baseline must thrash.
    let budget = (working_set / 2).max(1);
    let queue_depth = cfg.requests.max(64);

    // Baseline: one daed, hit directly (no gateway in the path).
    let (base_addr, base_handle) = spawn_backend(budget, queue_depth)?;
    let baseline = measure(&base_addr, cfg)?;
    shutdown(&base_addr)?;
    base_handle.join().expect("baseline thread")?;

    let mut entries = Vec::new();
    for &fleet in &cfg.fleets {
        let fleet = fleet.max(1);
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..fleet {
            let (addr, handle) = spawn_backend(budget, queue_depth)?;
            addrs.push(addr);
            handles.push(handle);
        }
        let gateway = Gateway::bind(&GateConfig {
            backends: addrs.clone(),
            routers: cfg.routers.max(1),
            queue_depth,
            inflight_cap: cfg.clients.max(8),
            ..GateConfig::default()
        })?;
        let gate_addr = gateway.local_addr()?.to_string();
        let gate_handle = std::thread::spawn(move || gateway.run());
        let report = measure(&gate_addr, cfg)?;
        shutdown(&gate_addr)?;
        gate_handle.join().expect("gateway thread")?;
        for addr in &addrs {
            shutdown(addr)?;
        }
        for h in handles {
            h.join().expect("backend thread")?;
        }
        let mut entry = match report.to_json() {
            JsonValue::Obj(pairs) => pairs,
            _ => unreachable!(),
        };
        entry.insert(1, ("backends".to_string(), fleet.into()));
        entry.push((
            "speedup_vs_single_direct".to_string(),
            if baseline.throughput_rps() > 0.0 {
                (report.throughput_rps() / baseline.throughput_rps()).into()
            } else {
                JsonValue::Null
            },
        ));
        entries.push(JsonValue::Obj(entry));
    }
    Ok(JsonValue::obj([
        ("schema", GATE_BENCH_SCHEMA.into()),
        ("requests", cfg.requests.into()),
        ("clients", cfg.clients.into()),
        ("seed", cfg.seed.into()),
        ("trials", cfg.trials.max(1).into()),
        ("mix", Mix::Warm.label().into()),
        ("distinct_requests", distinct.into()),
        ("working_set_bytes", working_set.into()),
        ("backend_cache_budget_bytes", budget.into()),
        ("bench_wall_s", t0.elapsed().as_secs_f64().into()),
        ("baseline_direct", baseline.to_json()),
        ("gateways", JsonValue::Arr(entries)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_pass_finds_a_nonempty_working_set() {
        let cfg = GateBenchConfig { requests: 16, clients: 2, ..GateBenchConfig::default() };
        let (distinct, bytes) = probe_working_set(&cfg);
        assert!(distinct > 1, "warm mix must spread over distinct requests");
        assert!(distinct <= 16);
        assert!(bytes > 0, "successful responses have bytes");
        // Deterministic: the probe is a pure function of the seed.
        assert_eq!((distinct, bytes), probe_working_set(&cfg));
    }

    #[test]
    fn tiny_bench_end_to_end() {
        let cfg = GateBenchConfig {
            fleets: vec![2],
            requests: 12,
            clients: 2,
            seed: 7,
            trials: 1,
            routers: 4,
        };
        let doc = bench_gate(&cfg).expect("bench runs");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(GATE_BENCH_SCHEMA));
        let gws = doc.get("gateways").unwrap().as_arr().unwrap();
        assert_eq!(gws.len(), 1);
        let entry = &gws[0];
        assert_eq!(entry.get("backends").unwrap().as_f64(), Some(2.0));
        assert_eq!(entry.get("sent").unwrap().as_f64(), Some(12.0));
        assert_eq!(entry.get("ok").unwrap().as_f64(), Some(12.0), "no failures through the gate");
        assert!(entry.get("speedup_vs_single_direct").unwrap().as_f64().is_some());
    }
}
