//! Gateway-level counters, latency histograms and the `stats` body.
//!
//! Everything here is either atomic or behind a short-lived mutex so the
//! hot path never blocks on stats readers. The JSON shape is versioned
//! (`dae-gate-stats/1`) like the serving layer's, and per-backend detail
//! comes from [`crate::backend::Backend::to_json`] — this module only owns
//! the aggregate view.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use dae_trace::json::JsonValue;
use dae_trace::LogHistogram;

/// Stable schema tag for the gateway `stats` response body.
pub const GATE_STATS_SCHEMA: &str = "dae-gate-stats/1";

/// Stable schema tag for the gateway `health` response body.
pub const GATE_HEALTH_SCHEMA: &str = "dae-gate-health/1";

/// Stable machine-readable error codes the gateway itself emits.
/// Backend-origin errors pass through verbatim with their `serve.*` codes.
pub mod codes {
    /// The gateway admission queue is full; retry with backoff.
    pub const OVERLOADED: &str = "gate.overloaded";
    /// The gateway is draining and no longer admits work requests.
    pub const DRAINING: &str = "gate.draining";
    /// The request's deadline budget expired inside the gateway.
    pub const DEADLINE: &str = "gate.deadline";
    /// No routable backend exists (all ejected or draining).
    pub const NO_BACKENDS: &str = "gate.no-backends";
    /// Every forwarding attempt failed; the last upstream error is quoted.
    pub const UPSTREAM: &str = "gate.upstream";
    /// A gateway bug surfaced as a response (never expected).
    pub const INTERNAL: &str = "gate.internal";
}

/// Aggregate gateway counters and latency histograms.
#[derive(Default)]
pub struct GateMetrics {
    /// Frames admitted to the queue.
    pub accepted: AtomicU64,
    /// Requests answered with `ok: true` (from any backend).
    pub completed: AtomicU64,
    /// Requests answered with an error frame (gate- or backend-origin).
    pub failed: AtomicU64,
    /// Frames shed at admission with `gate.overloaded`.
    pub shed: AtomicU64,
    /// Work frames refused with `gate.draining`.
    pub refused_draining: AtomicU64,
    /// Requests whose deadline budget expired inside the gateway.
    pub deadline_expired: AtomicU64,
    /// Frames rejected before routing (parse / validation errors).
    pub bad_requests: AtomicU64,
    /// Forwarding attempts beyond the first, excluding hedges.
    pub retries: AtomicU64,
    /// Hedge attempts launched.
    pub hedges: AtomicU64,
    /// Hedge attempts that produced the winning response.
    pub hedge_wins: AtomicU64,
    /// Requests routed off their home backend by the bounded-load rule.
    pub spills: AtomicU64,
    /// Backend ejections (consecutive-failure trips and failed trials).
    pub ejects: AtomicU64,
    /// Backends returned to `Up` after ejection or drain.
    pub readmits: AtomicU64,
    /// Health probes sent.
    pub probes: AtomicU64,
    /// End-to-end gateway latency for answered requests.
    pub latency: Mutex<LogHistogram>,
    /// Time spent queued before a router thread picked the request up.
    pub queue_wait: Mutex<LogHistogram>,
}

impl GateMetrics {
    /// Fresh all-zero metrics.
    pub fn new() -> GateMetrics {
        GateMetrics::default()
    }

    /// Records one answered request.
    pub fn record_done(&self, ok: bool, queue_wait_s: f64, total_s: f64) {
        if ok {
            self.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        lock(&self.queue_wait).record(queue_wait_s);
        lock(&self.latency).record(total_s);
    }

    /// The `stats` response body. `backends` carries per-backend objects
    /// built by the caller (which owns the fleet), `queue_depth` the
    /// current admission-queue occupancy.
    pub fn to_json(
        &self,
        started: Instant,
        queue_depth: usize,
        routers: usize,
        backends: Vec<JsonValue>,
    ) -> JsonValue {
        let c = |a: &AtomicU64| JsonValue::from(a.load(Ordering::Relaxed));
        JsonValue::obj([
            ("schema", GATE_STATS_SCHEMA.into()),
            ("uptime_s", started.elapsed().as_secs_f64().into()),
            ("routers", routers.into()),
            ("queue_depth", queue_depth.into()),
            ("accepted", c(&self.accepted)),
            ("completed", c(&self.completed)),
            ("failed", c(&self.failed)),
            ("shed", c(&self.shed)),
            ("refused_draining", c(&self.refused_draining)),
            ("deadline_expired", c(&self.deadline_expired)),
            ("bad_requests", c(&self.bad_requests)),
            ("retries", c(&self.retries)),
            ("hedges", c(&self.hedges)),
            ("hedge_wins", c(&self.hedge_wins)),
            ("spills", c(&self.spills)),
            ("ejects", c(&self.ejects)),
            ("readmits", c(&self.readmits)),
            ("probes", c(&self.probes)),
            ("latency", lock(&self.latency).to_json()),
            ("queue_wait", lock(&self.queue_wait).to_json()),
            ("backends", JsonValue::Arr(backends)),
        ])
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_body_has_schema_and_counters() {
        let m = GateMetrics::new();
        m.accepted.fetch_add(3, Ordering::Relaxed);
        m.record_done(true, 0.001, 0.010);
        m.record_done(false, 0.002, 0.020);
        let body = m.to_json(Instant::now(), 1, 4, vec![JsonValue::obj([("addr", "x".into())])]);
        assert_eq!(body.get("schema").unwrap().as_str().unwrap(), GATE_STATS_SCHEMA);
        assert_eq!(body.get("accepted").unwrap().as_f64().unwrap(), 3.0);
        assert_eq!(body.get("completed").unwrap().as_f64().unwrap(), 1.0);
        assert_eq!(body.get("failed").unwrap().as_f64().unwrap(), 1.0);
        assert_eq!(body.get("backends").unwrap().as_arr().unwrap().len(), 1);
        let lat = body.get("latency").unwrap();
        assert_eq!(lat.get("count").unwrap().as_f64().unwrap(), 2.0);
    }

    #[test]
    fn codes_are_dotted_and_gate_scoped() {
        for c in [
            codes::OVERLOADED,
            codes::DRAINING,
            codes::DEADLINE,
            codes::NO_BACKENDS,
            codes::UPSTREAM,
            codes::INTERNAL,
        ] {
            assert!(c.starts_with("gate."), "{c}");
            assert!(!c.contains(' '));
        }
    }
}
