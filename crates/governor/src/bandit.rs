//! The EDP bandit: per-class, per-phase ε-greedy search over the table.
//!
//! `DaeOptimal` (the oracle) minimises each phase's energy-delay product
//! by exhaustively re-timing it at every operating point. This governor
//! pursues the same objective online: per task class it runs **two
//! independent multi-armed bandits** — one over access-phase frequencies,
//! one over execute-phase frequencies — whose reward is the *measured*
//! phase EDP at the chosen point, including any DVFS transition the choice
//! triggered. On a stationary per-phase EDP landscape the marginal bandits
//! converge to the oracle's per-phase choice; where transition costs
//! dominate (short tasks), the shared transition penalty pulls both
//! bandits onto a common operating point — a pair effect the
//! transition-blind oracle never sees, which is how a warmed-up bandit can
//! *beat* `DaeOptimal` on run-level EDP.
//!
//! Exploration is deterministic: each class derives a SplitMix64 stream
//! from the configured seed and its own identity, so a fixed seed yields a
//! bit-reproducible run. Arms are first swept systematically
//! ([`BanditConfig::min_pulls`] each, slowest first), then ε-greedy with a
//! decaying ε takes over; once decisions stabilise the class freezes
//! (exploration stops) until the safety guard or fresh feedback says
//! otherwise.

use crate::cache::{CacheConfig, DecisionCache};
use crate::class::TaskClass;
use crate::obs::TaskObs;
use crate::rng::SplitMix64;
use crate::{ClassSnapshot, Decision, Governor};
use dae_power::{DvfsTable, FreqId};

/// Tuning of [`BanditEdp`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BanditConfig {
    /// Decision-cache and safety-guard knobs.
    pub cache: CacheConfig,
    /// Seed of the deterministic exploration stream.
    pub seed: u64,
    /// Initial exploration rate (probability of a random arm after the
    /// sweep).
    pub epsilon: f64,
    /// Observation count over which ε decays to half its initial value.
    pub epsilon_decay: f64,
    /// Samples per arm taken by the initial systematic sweep.
    pub min_pulls: u64,
}

impl Default for BanditConfig {
    fn default() -> Self {
        BanditConfig {
            cache: CacheConfig::default(),
            seed: crate::DEFAULT_BANDIT_SEED,
            epsilon: 0.1,
            epsilon_decay: 12.0,
            min_pulls: 1,
        }
    }
}

/// Sample count and running-mean reward of one arm.
#[derive(Clone, Copy, Debug, Default)]
struct ArmStats {
    pulls: u64,
    mean_edp: f64,
}

/// One per-phase bandit: an arm per operating point.
#[derive(Clone, Debug, Default)]
struct Role {
    arms: Vec<ArmStats>,
}

impl Role {
    fn ensure(&mut self, n: usize) {
        if self.arms.is_empty() {
            self.arms = vec![ArmStats::default(); n];
        }
    }

    /// The next arm of the systematic sweep, slowest first.
    fn unswept(&self, min_pulls: u64) -> Option<usize> {
        self.arms.iter().position(|a| a.pulls < min_pulls)
    }

    /// Greedy choice: lowest mean EDP; ties go to the slower point (the
    /// lower-energy side).
    fn best(&self) -> usize {
        let mut best = 0;
        for (i, a) in self.arms.iter().enumerate() {
            if a.pulls > 0 && (self.arms[best].pulls == 0 || a.mean_edp < self.arms[best].mean_edp)
            {
                best = i;
            }
        }
        best
    }

    fn credit(&mut self, arm: usize, edp: f64) {
        let a = &mut self.arms[arm];
        a.pulls += 1;
        a.mean_edp += (edp - a.mean_edp) / a.pulls as f64;
    }
}

/// Learned per-class state: two role bandits plus the class's own
/// exploration stream.
#[derive(Clone, Debug, Default)]
pub struct BanditState {
    access: Role,
    execute: Role,
    rng: Option<SplitMix64>,
    /// Becomes true on the first observation that includes an access
    /// phase; classes that always run coupled never explore access arms.
    access_seen: bool,
}

/// A [`Governor`] minimising observed per-phase EDP by ε-greedy search.
#[derive(Clone, Debug)]
pub struct BanditEdp {
    table: DvfsTable,
    cfg: BanditConfig,
    cache: DecisionCache<BanditState>,
}

impl BanditEdp {
    /// A fresh bandit over `table`.
    pub fn new(table: DvfsTable, cfg: BanditConfig) -> Self {
        BanditEdp { table, cfg, cache: DecisionCache::new(cfg.cache) }
    }

    /// Class-specific deterministic seed: the run seed mixed with the
    /// class identity, so concurrent classes draw independent streams and
    /// cache eviction order cannot leak into another class's decisions.
    fn class_seed(&self, class: TaskClass) -> u64 {
        self.cfg.seed ^ (class.func.0 as u64).rotate_left(32) ^ class.sig
    }

    /// Warm-starts a class from a *profiled* memory-boundedness estimate
    /// (PGO): every arm receives one synthetic pull whose mean EDP is
    /// shaped as a V around the boundedness-implied operating point —
    /// fully memory-bound phases point at the slowest arm, compute-bound
    /// ones at the fastest. The synthetic pulls satisfy the systematic
    /// sweep (at the default `min_pulls = 1`), so a profiled class skips
    /// straight to greedy exploitation of the prior and real observations
    /// immediately start correcting it (each arm's next credit halves the
    /// prior's weight). `access_mem_bound = None` leaves the access
    /// bandit dormant, exactly like a class that has only run coupled.
    pub fn seed_prior(
        &mut self,
        class: TaskClass,
        access_mem_bound: Option<f64>,
        execute_mem_bound: f64,
    ) {
        let n = self.table.len();
        let shape = |role: &mut Role, mem_bound: f64| {
            role.ensure(n);
            // Boundedness → target arm: arm 0 is the slowest point, so a
            // fully memory-bound phase (1.0) targets it and a fully
            // compute-bound phase (0.0) targets the fastest.
            let mb = mem_bound.clamp(0.0, 1.0);
            let target = ((1.0 - mb) * (n.saturating_sub(1)) as f64).round();
            for (i, arm) in role.arms.iter_mut().enumerate() {
                if arm.pulls == 0 {
                    arm.pulls = 1;
                    arm.mean_edp = 1.0 + 0.25 * (i as f64 - target).abs();
                }
            }
        };
        let e = self.cache.entry(class);
        if let Some(mb) = access_mem_bound {
            e.state.access_seen = true;
            shape(&mut e.state.access, mb);
        }
        shape(&mut e.state.execute, execute_mem_bound);
    }
}

impl Governor for BanditEdp {
    fn name(&self) -> &'static str {
        "bandit"
    }

    fn decide(&mut self, class: TaskClass) -> Decision {
        let (min, max) = (self.table.min(), self.table.max());
        let n = self.table.len();
        let cfg = self.cfg;
        let seed = self.class_seed(class);
        let e = self.cache.entry(class);
        if e.guarded {
            return Decision { access: min, execute: max, explore: false, guarded: true };
        }
        let rng = e.state.rng.get_or_insert_with(|| SplitMix64::new(seed));
        let mut rng = *rng;
        let converged = e.converged;
        let obs = e.observations;
        let eps = cfg.epsilon / (1.0 + obs as f64 / cfg.epsilon_decay);

        let mut explore = false;
        let mut pick = |role: &mut Role, default: usize, active: bool| -> usize {
            if !active {
                return default;
            }
            role.ensure(n);
            if let Some(arm) = role.unswept(cfg.min_pulls) {
                explore = true;
                return arm;
            }
            if !converged && rng.next_f64() < eps {
                explore = true;
                return rng.next_below(n as u64) as usize;
            }
            role.best()
        };
        // The access bandit only activates once an access phase has been
        // observed; classes that run coupled keep the safe fmin default.
        let a_active = e.state.access_seen;
        let access = FreqId(pick(&mut e.state.access, min.0, a_active));
        let execute = FreqId(pick(&mut e.state.execute, max.0, true));
        e.state.rng = Some(rng);
        if explore {
            e.explored += 1;
        }
        e.note_decision(access, execute, cfg.cache.stable_after);
        Decision { access, execute, explore, guarded: false }
    }

    fn observe(&mut self, class: TaskClass, obs: &TaskObs) {
        let n = self.table.len();
        let e = self.cache.observe_common(class, obs);
        let Some((a_freq, e_freq)) = e.last_decision else {
            // Feedback with no preceding decision (e.g. the entry was
            // evicted in between): nothing to credit.
            return;
        };
        if let Some(a) = &obs.access {
            e.state.access_seen = true;
            e.state.access.ensure(n);
            e.state.access.credit(a_freq.0, a.edp());
        }
        e.state.execute.ensure(n);
        e.state.execute.credit(e_freq.0, obs.execute.edp());
    }

    fn snapshot(&self) -> Vec<ClassSnapshot> {
        self.cache
            .iter()
            .map(|(class, e)| {
                let (access, execute) =
                    e.last_decision.unwrap_or((self.table.min(), self.table.max()));
                ClassSnapshot {
                    class: *class,
                    observations: e.observations,
                    explored: e.explored,
                    converged: e.converged,
                    guarded: e.guarded,
                    access,
                    execute,
                    mean_task_edp: e.mean_task_edp,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::PhaseObs;
    use dae_ir::FuncId;

    fn class(n: u32) -> TaskClass {
        TaskClass { func: FuncId(n), sig: 0 }
    }

    /// A stationary synthetic environment: per-phase EDP is a fixed
    /// deterministic function of the chosen arm, minimised at `best`.
    fn phase_edp(arm: usize, best: usize) -> f64 {
        1.0 + 0.25 * (arm as f64 - best as f64).abs()
    }

    fn feed(g: &mut BanditEdp, c: TaskClass, d: &Decision, best_a: usize, best_e: usize) {
        let mk = |edp: f64| PhaseObs {
            time_s: 1.0,
            energy_j: edp, // time 1 s ⇒ phase EDP == energy
            ..Default::default()
        };
        g.observe(
            c,
            &TaskObs {
                access: Some(mk(phase_edp(d.access.0, best_a))),
                execute: mk(phase_edp(d.execute.0, best_e)),
            },
        );
    }

    fn run(
        g: &mut BanditEdp,
        c: TaskClass,
        rounds: usize,
        best_a: usize,
        best_e: usize,
    ) -> Vec<Decision> {
        let mut out = Vec::new();
        for _ in 0..rounds {
            let d = g.decide(c);
            feed(g, c, &d, best_a, best_e);
            out.push(d);
        }
        out
    }

    #[test]
    fn sweeps_every_arm_then_locks_onto_the_best() {
        let t = DvfsTable::sandybridge();
        let n = t.len();
        let cfg = BanditConfig { epsilon: 0.0, ..Default::default() };
        let mut g = BanditEdp::new(t, cfg);
        let c = class(0);
        // Access phase must first be *seen* before its arms are swept.
        let ds = run(&mut g, c, 3 * n + 4, 1, 3);
        let last = ds.last().unwrap();
        assert_eq!(last.execute, FreqId(3));
        assert_eq!(last.access, FreqId(1));
        // Every execute arm was pulled during the sweep.
        let mut pulled = vec![false; n];
        for d in &ds {
            pulled[d.execute.0] = true;
        }
        assert!(pulled.iter().all(|&p| p), "sweep must cover all arms: {pulled:?}");
    }

    #[test]
    fn regret_is_monotone_non_increasing_on_a_stationary_workload() {
        let t = DvfsTable::sandybridge();
        let n = t.len();
        let (best_a, best_e) = (2, 4);
        let cfg = BanditConfig { epsilon: 0.0, ..Default::default() };
        let mut g = BanditEdp::new(t, cfg);
        let c = class(0);
        let optimal = phase_edp(best_a, best_a) + phase_edp(best_e, best_e);
        // Instantaneous regret per round: chosen total phase EDP − optimal.
        let regret: Vec<f64> = run(&mut g, c, 6 * n, best_a, best_e)
            .iter()
            .map(|d| phase_edp(d.access.0, best_a) + phase_edp(d.execute.0, best_e) - optimal)
            .collect();
        // After the sweep (n rounds of execute + n of access, interleaved;
        // 2n is a safe bound) the bandit is greedy and exact: regret 0.
        let warmup = 2 * n;
        for (i, r) in regret.iter().enumerate().skip(warmup) {
            assert_eq!(*r, 0.0, "round {i}: nonzero post-warm-up regret {r}");
        }
        // Cumulative mean regret is monotone non-increasing from the end
        // of the warm-up on.
        let mut cum = 0.0;
        let means: Vec<f64> = regret
            .iter()
            .enumerate()
            .map(|(i, r)| {
                cum += r;
                cum / (i + 1) as f64
            })
            .collect();
        for w in means[warmup..].windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "mean regret increased: {w:?}");
        }
    }

    #[test]
    fn fixed_seed_reproduces_decisions_exactly() {
        let t = DvfsTable::sandybridge();
        let cfg = BanditConfig { seed: 123, epsilon: 0.3, ..Default::default() };
        let mut g1 = BanditEdp::new(t.clone(), cfg);
        let mut g2 = BanditEdp::new(t, cfg);
        let c = class(0);
        let d1 = run(&mut g1, c, 60, 1, 4);
        let d2 = run(&mut g2, c, 60, 1, 4);
        assert_eq!(d1, d2);
    }

    #[test]
    fn different_seeds_may_explore_differently() {
        let t = DvfsTable::sandybridge();
        let mk =
            |seed| BanditConfig { seed, epsilon: 0.5, epsilon_decay: 1e9, ..Default::default() };
        let mut g1 = BanditEdp::new(t.clone(), mk(1));
        let mut g2 = BanditEdp::new(t, mk(2));
        let c = class(0);
        let d1 = run(&mut g1, c, 80, 1, 4);
        let d2 = run(&mut g2, c, 80, 1, 4);
        assert_ne!(d1, d2, "distinct seeds should produce distinct exploration");
    }

    #[test]
    fn coupled_classes_keep_the_access_default() {
        let t = DvfsTable::sandybridge();
        let mut g = BanditEdp::new(t.clone(), BanditConfig { epsilon: 0.0, ..Default::default() });
        let c = class(0);
        for _ in 0..20 {
            let d = g.decide(c);
            assert_eq!(d.access, t.min(), "no access phase ⇒ access arm stays at fmin");
            let obs = TaskObs {
                access: None,
                execute: PhaseObs {
                    time_s: 1.0,
                    energy_j: phase_edp(d.execute.0, 5),
                    ..Default::default()
                },
            };
            g.observe(c, &obs);
        }
        assert_eq!(g.decide(c).execute, FreqId(5));
    }

    #[test]
    fn seeded_priors_skip_the_sweep_and_stay_correctable() {
        let t = DvfsTable::sandybridge();
        let n = t.len();
        let cfg = BanditConfig { epsilon: 0.0, ..Default::default() };
        let mut g = BanditEdp::new(t.clone(), cfg);
        let c = class(0);
        // A memory-bound execute phase (0.9) and a fully memory-bound
        // access phase: priors point low on the table.
        g.seed_prior(c, Some(1.0), 0.9);
        let d = g.decide(c);
        assert!(!d.explore, "priors satisfy the sweep — first decision is greedy");
        assert_eq!(d.access, t.min(), "fully bound access prior picks the slowest arm");
        let expect_e = ((1.0 - 0.9) * (n - 1) as f64).round() as usize;
        assert_eq!(d.execute, FreqId(expect_e));
        // Real feedback pointing elsewhere overrides the prior: one bad
        // observation at the seeded arm halves the prior's weight and the
        // greedy choice moves off it.
        let ds = run(&mut g, c, 4, 1, n - 1);
        assert!(
            ds.iter().any(|d| d.execute.0 > expect_e),
            "observations must pull decisions off a wrong prior: {ds:?}"
        );
        // Determinism: seeding the same prior twice yields the same run.
        let mut g2 = BanditEdp::new(t, cfg);
        g2.seed_prior(c, Some(1.0), 0.9);
        let first = g2.decide(c);
        assert_eq!((first.access, first.execute), (d.access, d.execute));
    }

    #[test]
    fn guard_overrides_learning() {
        let t = DvfsTable::sandybridge();
        let cfg = BanditConfig {
            cache: CacheConfig { access_budget: 0.2, guard_min_obs: 2, ..Default::default() },
            epsilon: 0.0,
            ..Default::default()
        };
        let mut g = BanditEdp::new(t.clone(), cfg);
        let c = class(0);
        for _ in 0..4 {
            let _ = g.decide(c);
            // Access phase dominates: 70% of task time.
            g.observe(
                c,
                &TaskObs {
                    access: Some(PhaseObs { time_s: 0.7, energy_j: 1.0, ..Default::default() }),
                    execute: PhaseObs { time_s: 0.3, energy_j: 1.0, ..Default::default() },
                },
            );
        }
        let d = g.decide(c);
        assert!(d.guarded);
        assert_eq!((d.access, d.execute), (t.min(), t.max()));
        assert!(g.snapshot()[0].guarded);
    }
}
