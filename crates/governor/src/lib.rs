//! # dae-governor — online, profiling-guided per-phase DVFS
//!
//! The paper's evaluation (§6.1) selects frequencies with an *oracle*:
//! `DaeOptimal` re-times every phase at every operating point and keeps the
//! EDP-best one — exact, but impossible online. This crate is the realistic
//! counterpart, in the spirit of the profiling-assisted follow-up work: a
//! runtime layer that observes per-task behaviour and **converges** on good
//! per-phase frequencies on the fly.
//!
//! Decisions are made per *task class* ([`TaskClass`]: the execute function
//! plus a coarse argument signature), fed back through [`TaskObs`] after
//! every completed task, and cached in a [`DecisionCache`] with per-class
//! convergence tracking and a safety guard (classes whose access phase
//! overshoots the overhead budget fall back to the paper's min/max
//! assignment and stay there).
//!
//! Three [`Governor`] implementations:
//!
//! * [`StaticGovernor`] — a fixed per-phase assignment; wraps today's
//!   table-driven policies so static and learned selection share one
//!   interface;
//! * [`MissRatioHeuristic`] — classifies each phase memory- vs
//!   compute-bound from its counters (the §3 intuition made operational)
//!   and maps boundedness onto the DVFS table;
//! * [`BanditEdp`] — a per-class, per-phase ε-greedy bandit over the
//!   [`DvfsTable`] minimising observed phase EDP, with deterministic
//!   seeded exploration so virtual-time runs stay reproducible.
//!
//! The runtime integrates this via `FreqPolicy::Governed` (see
//! `dae-runtime`); [`GovernorKind`] is the plumbing-friendly value type
//! that names a governor in configs and on the `daec` command line.
//!
//! # Examples
//!
//! ```
//! use dae_governor::{Governor, GovernorKind, TaskClass, TaskObs, PhaseObs};
//! use dae_power::DvfsTable;
//! use dae_ir::FuncId;
//!
//! let table = DvfsTable::sandybridge();
//! let mut gov = GovernorKind::Bandit { seed: 42 }.build(&table);
//! let class = TaskClass::of(FuncId(0), &[]);
//! let d = gov.decide(class);
//! // ... run the task at d.access / d.execute, measure, then:
//! gov.observe(
//!     class,
//!     &TaskObs { access: None, execute: PhaseObs { time_s: 1e-6, energy_j: 2e-6, ..Default::default() } },
//! );
//! assert_eq!(gov.snapshot().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod bandit;
pub mod cache;
pub mod class;
pub mod heuristic;
pub mod obs;
pub mod rng;
pub mod statik;

pub use bandit::{BanditConfig, BanditEdp};
pub use cache::{CacheConfig, ClassEntry, DecisionCache};
pub use class::TaskClass;
pub use heuristic::{HeuristicConfig, MissRatioHeuristic};
pub use obs::{PhaseObs, TaskObs};
pub use rng::SplitMix64;
pub use statik::StaticGovernor;

use dae_power::{DvfsTable, FreqId};

/// One per-task frequency decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Operating point for the access phase (ignored for coupled tasks).
    pub access: FreqId,
    /// Operating point for the execute phase.
    pub execute: FreqId,
    /// True when the decision was exploratory rather than greedy.
    pub explore: bool,
    /// True when the safety guard forced the min/max fallback.
    pub guarded: bool,
}

/// Point-in-time view of one learned class, for reports and JSON.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassSnapshot {
    /// The class.
    pub class: TaskClass,
    /// Completed-task observations.
    pub observations: u64,
    /// Decisions that were exploratory.
    pub explored: u64,
    /// True once decisions stabilised.
    pub converged: bool,
    /// True when pinned to the safety fallback.
    pub guarded: bool,
    /// Current access-phase choice.
    pub access: FreqId,
    /// Current execute-phase choice.
    pub execute: FreqId,
    /// Running mean of the per-task EDP.
    pub mean_task_edp: f64,
}

/// An online per-phase frequency selector.
///
/// The runtime calls [`Governor::decide`] immediately before running a
/// task and [`Governor::observe`] immediately after it completes; both are
/// keyed by the task's [`TaskClass`]. Implementations must be
/// deterministic: the same call sequence always yields the same decisions.
pub trait Governor {
    /// Stable lowercase name ("static", "heuristic", "bandit").
    fn name(&self) -> &'static str;

    /// Chooses the operating points for the next task of `class`.
    fn decide(&mut self, class: TaskClass) -> Decision;

    /// Feeds back the measurements of one completed task of `class`.
    fn observe(&mut self, class: TaskClass, obs: &TaskObs);

    /// Current per-class state, in deterministic (class-ordered) order.
    fn snapshot(&self) -> Vec<ClassSnapshot>;
}

/// Seed used by `bandit` when none is given explicitly.
pub const DEFAULT_BANDIT_SEED: u64 = 0xdae5_eed0;

/// Names a governor implementation in configs and CLI flags — a plain
/// `Copy` value so `FreqPolicy` stays copyable; [`GovernorKind::build`]
/// turns it into live state at the start of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GovernorKind {
    /// [`MissRatioHeuristic`] with default tuning.
    Heuristic,
    /// [`BanditEdp`] with default tuning and the given exploration seed.
    Bandit {
        /// Seed of the deterministic exploration stream.
        seed: u64,
    },
}

impl GovernorKind {
    /// Builds fresh governor state for a run over `table`.
    pub fn build(self, table: &DvfsTable) -> Box<dyn Governor> {
        match self {
            GovernorKind::Heuristic => {
                Box::new(MissRatioHeuristic::new(table.clone(), HeuristicConfig::default()))
            }
            GovernorKind::Bandit { seed } => {
                Box::new(BanditEdp::new(table.clone(), BanditConfig { seed, ..Default::default() }))
            }
        }
    }

    /// Parses the `daec --policy governed[:...]` suffix: empty or
    /// `heuristic` → [`GovernorKind::Heuristic`]; `bandit` or
    /// `bandit:<seed>` → [`GovernorKind::Bandit`].
    pub fn parse(spec: &str) -> Result<GovernorKind, String> {
        match spec {
            "" | "heuristic" => Ok(GovernorKind::Heuristic),
            "bandit" => Ok(GovernorKind::Bandit { seed: DEFAULT_BANDIT_SEED }),
            other => match other.strip_prefix("bandit:") {
                Some(seed) => seed
                    .parse::<u64>()
                    .map(|seed| GovernorKind::Bandit { seed })
                    .map_err(|e| format!("bad bandit seed `{seed}`: {e}")),
                None => Err(format!("unknown governor `{other}` (expected heuristic or bandit)")),
            },
        }
    }

    /// Canonical spec string; `GovernorKind::parse(&k.label())` round-trips.
    pub fn label(self) -> String {
        match self {
            GovernorKind::Heuristic => "heuristic".to_string(),
            GovernorKind::Bandit { seed } => format!("bandit:{seed}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_round_trips() {
        for spec in ["heuristic", "bandit", "bandit:7"] {
            let k = GovernorKind::parse(spec).unwrap();
            assert_eq!(GovernorKind::parse(&k.label()).unwrap(), k);
        }
        assert_eq!(GovernorKind::parse("").unwrap(), GovernorKind::Heuristic);
        assert_eq!(
            GovernorKind::parse("bandit").unwrap(),
            GovernorKind::Bandit { seed: DEFAULT_BANDIT_SEED }
        );
        assert!(GovernorKind::parse("oracle").is_err());
        assert!(GovernorKind::parse("bandit:x").is_err());
    }

    #[test]
    fn build_yields_named_governors() {
        let t = DvfsTable::sandybridge();
        assert_eq!(GovernorKind::Heuristic.build(&t).name(), "heuristic");
        assert_eq!(GovernorKind::Bandit { seed: 1 }.build(&t).name(), "bandit");
    }
}
