//! A tiny deterministic PRNG for seeded exploration.
//!
//! The governor must not perturb the virtual-time scheduler's determinism,
//! so exploration draws come from an explicitly-seeded SplitMix64 stream —
//! the same inputs always produce the same decision sequence, and there is
//! no dependency on an external randomness crate.

/// SplitMix64 (Steele, Lea & Flood; the seeding generator of
/// `java.util.SplittableRandom`): a 64-bit state passed through a
/// bijective mixing function. Statistically solid for exploration draws
/// and trivially reproducible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly-distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of uniformity.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in `0..n` (`n > 0`).
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift range reduction; bias is negligible for the tiny
        // ranges (≤ number of DVFS points) used here.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[r.next_below(6) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }
}
