//! Feedback signals: what the runtime reports back after each task.
//!
//! The governor never sees the simulator's raw `PhaseTrace`; the runtime
//! condenses each phase into a [`PhaseObs`] — time, energy and the two
//! boundedness indicators the heuristic needs — evaluated at the frequency
//! the phase actually ran at (time/energy) and at fmax (boundedness, so
//! the classification is stable across whatever frequency was chosen).

/// Condensed measurement of one executed phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseObs {
    /// Wall-clock time of the phase at the chosen frequency, in seconds.
    pub time_s: f64,
    /// Energy of the phase at the chosen frequency, in joules (full power
    /// model: dynamic + per-core static + chip-base share — the same
    /// objective the `DaeOptimal` oracle minimises).
    pub energy_j: f64,
    /// Instructions per cycle at the chosen frequency.
    pub ipc: f64,
    /// Fraction of the phase's fmax runtime that is frequency-insensitive
    /// (memory-boundedness in `[0, 1]`, measured at fmax).
    pub mem_bound_frac: f64,
    /// DRAM demand misses per executed load, in `[0, 1]`.
    pub miss_ratio: f64,
}

impl PhaseObs {
    /// Energy-delay product of the phase.
    pub fn edp(&self) -> f64 {
        self.time_s * self.energy_j
    }
}

/// Feedback for one completed task instance.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TaskObs {
    /// The access phase, when the task ran decoupled.
    pub access: Option<PhaseObs>,
    /// The execute phase (or the whole task when coupled).
    pub execute: PhaseObs,
}

impl TaskObs {
    /// Total task time in seconds.
    pub fn time_s(&self) -> f64 {
        self.access.map_or(0.0, |a| a.time_s) + self.execute.time_s
    }

    /// Total task energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.access.map_or(0.0, |a| a.energy_j) + self.execute.energy_j
    }

    /// Per-task energy-delay product (the governor's objective).
    pub fn edp(&self) -> f64 {
        self.time_s() * self.energy_j()
    }

    /// Fraction of the task's time spent in the access phase, in `[0, 1]`
    /// — the overhead signal the safety guard watches.
    pub fn access_frac(&self) -> f64 {
        let t = self.time_s();
        if t <= 0.0 {
            0.0
        } else {
            self.access.map_or(0.0, |a| a.time_s) / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(t: f64, e: f64) -> PhaseObs {
        PhaseObs { time_s: t, energy_j: e, ..Default::default() }
    }

    #[test]
    fn task_edp_sums_phases() {
        let t = TaskObs { access: Some(obs(1.0, 2.0)), execute: obs(3.0, 4.0) };
        assert_eq!(t.time_s(), 4.0);
        assert_eq!(t.energy_j(), 6.0);
        assert_eq!(t.edp(), 24.0);
    }

    #[test]
    fn access_fraction() {
        let t = TaskObs { access: Some(obs(1.0, 0.0)), execute: obs(3.0, 0.0) };
        assert!((t.access_frac() - 0.25).abs() < 1e-12);
        let coupled = TaskObs { access: None, execute: obs(3.0, 1.0) };
        assert_eq!(coupled.access_frac(), 0.0);
        assert_eq!(TaskObs::default().access_frac(), 0.0);
    }
}
