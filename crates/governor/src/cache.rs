//! The per-class decision cache shared by all learning governors.
//!
//! Tracks one [`ClassEntry`] per observed [`TaskClass`]: policy-specific
//! learning state `S`, observation counts, convergence status and the
//! **safety guard**. The guard watches the fraction of task time spent in
//! the access phase; when a class overshoots the configured budget its
//! entry is pinned to the `DaeMinMax` fallback — the paper's safe default
//! — and is never evicted, so a pathological class can never be re-learned
//! into a bad operating point after cache pressure.
//!
//! Storage is a `BTreeMap` keyed by `TaskClass` (ordered, deterministic
//! iteration) — the governor must never introduce iteration-order
//! nondeterminism into the virtual-time scheduler.

use crate::class::TaskClass;
use crate::obs::TaskObs;
use dae_power::FreqId;
use std::collections::BTreeMap;

/// Tuning knobs of the decision cache and its safety guard.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheConfig {
    /// Maximum number of unguarded classes tracked at once; beyond it the
    /// least-recently-touched unguarded entry is evicted. Guarded entries
    /// are exempt (losing one would lose the safety fallback).
    pub capacity: usize,
    /// Guard budget: maximum acceptable mean fraction of task time spent
    /// in the access phase. §5 of the paper keeps access overhead low by
    /// construction; a class whose access phase dominates the task is not
    /// profiting from decoupling and gets pinned to min/max frequencies.
    pub access_budget: f64,
    /// Observations of a class required before the guard may trip (one
    /// noisy first sample must not pin a class forever).
    pub guard_min_obs: u64,
    /// Consecutive identical decisions after which a class counts as
    /// converged.
    pub stable_after: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { capacity: 64, access_budget: 0.6, guard_min_obs: 3, stable_after: 8 }
    }
}

/// Cached learning state and statistics of one task class.
#[derive(Clone, Debug)]
pub struct ClassEntry<S> {
    /// Policy-specific learning state.
    pub state: S,
    /// Completed-task observations of this class.
    pub observations: u64,
    /// Decisions flagged as exploratory.
    pub explored: u64,
    /// True once the safety guard pinned this class to the fallback.
    pub guarded: bool,
    /// True once the policy's decisions stabilised.
    pub converged: bool,
    /// Consecutive identical (access, execute) decisions so far.
    pub stable_decisions: u32,
    /// The most recent (access, execute) frequency decision.
    pub last_decision: Option<(FreqId, FreqId)>,
    /// Running mean of the task-time fraction spent in the access phase.
    pub mean_access_frac: f64,
    /// Running mean of the per-task energy-delay product.
    pub mean_task_edp: f64,
    /// LRU stamp (cache-internal).
    last_touch: u64,
}

impl<S: Default> ClassEntry<S> {
    fn new(touch: u64) -> Self {
        ClassEntry {
            state: S::default(),
            observations: 0,
            explored: 0,
            guarded: false,
            converged: false,
            stable_decisions: 0,
            last_decision: None,
            mean_access_frac: 0.0,
            mean_task_edp: 0.0,
            last_touch: touch,
        }
    }
}

impl<S> ClassEntry<S> {
    /// Records a decision and updates the convergence tracker: after
    /// `stable_after` consecutive identical decisions the class counts as
    /// converged (a governor may use that to freeze exploration).
    pub fn note_decision(&mut self, access: FreqId, execute: FreqId, stable_after: u32) {
        let same = self.last_decision == Some((access, execute));
        self.stable_decisions = if same { self.stable_decisions + 1 } else { 0 };
        self.last_decision = Some((access, execute));
        if self.stable_decisions >= stable_after {
            self.converged = true;
        }
    }
}

/// LRU-with-pinning map from [`TaskClass`] to [`ClassEntry`].
#[derive(Clone, Debug)]
pub struct DecisionCache<S> {
    entries: BTreeMap<TaskClass, ClassEntry<S>>,
    cfg: CacheConfig,
    tick: u64,
}

impl<S: Default> DecisionCache<S> {
    /// An empty cache with the given configuration.
    pub fn new(cfg: CacheConfig) -> Self {
        DecisionCache { entries: BTreeMap::new(), cfg, tick: 0 }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Number of tracked classes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no class has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry of `class`, inserted fresh (evicting if necessary) when
    /// absent; the LRU stamp is refreshed either way.
    pub fn entry(&mut self, class: TaskClass) -> &mut ClassEntry<S> {
        self.tick += 1;
        let tick = self.tick;
        if !self.entries.contains_key(&class) && self.unguarded_len() >= self.cfg.capacity {
            self.evict_lru_unguarded();
        }
        let e = self.entries.entry(class).or_insert_with(|| ClassEntry::new(tick));
        e.last_touch = tick;
        e
    }

    /// Read-only lookup without touching LRU state.
    pub fn get(&self, class: TaskClass) -> Option<&ClassEntry<S>> {
        self.entries.get(&class)
    }

    /// Iterates entries in deterministic (class-ordered) order.
    pub fn iter(&self) -> impl Iterator<Item = (&TaskClass, &ClassEntry<S>)> {
        self.entries.iter()
    }

    /// Policy-independent bookkeeping after one completed task: updates
    /// observation count and running means, then re-evaluates the safety
    /// guard. Returns the entry so the caller can update its own state.
    pub fn observe_common(&mut self, class: TaskClass, obs: &TaskObs) -> &mut ClassEntry<S> {
        let budget = self.cfg.access_budget;
        let min_obs = self.cfg.guard_min_obs;
        let e = self.entry(class);
        e.observations += 1;
        let n = e.observations as f64;
        e.mean_access_frac += (obs.access_frac() - e.mean_access_frac) / n;
        e.mean_task_edp += (obs.edp() - e.mean_task_edp) / n;
        if !e.guarded && e.observations >= min_obs && e.mean_access_frac > budget {
            e.guarded = true;
            e.converged = false;
        }
        e
    }

    fn unguarded_len(&self) -> usize {
        self.entries.values().filter(|e| !e.guarded).count()
    }

    fn evict_lru_unguarded(&mut self) {
        // Guarded entries are pinned: evicting one would forget that the
        // class must run on the safety fallback.
        if let Some(class) = self
            .entries
            .iter()
            .filter(|(_, e)| !e.guarded)
            .min_by_key(|(_, e)| e.last_touch)
            .map(|(c, _)| *c)
        {
            self.entries.remove(&class);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::PhaseObs;
    use dae_ir::FuncId;

    fn class(n: u32) -> TaskClass {
        TaskClass { func: FuncId(n), sig: 0 }
    }

    fn obs(access_s: f64, execute_s: f64) -> TaskObs {
        TaskObs {
            access: Some(PhaseObs { time_s: access_s, energy_j: 1.0, ..Default::default() }),
            execute: PhaseObs { time_s: execute_s, energy_j: 1.0, ..Default::default() },
        }
    }

    #[test]
    fn convergence_after_n_identical_decisions() {
        let cfg = CacheConfig { stable_after: 4, ..Default::default() };
        let mut cache: DecisionCache<()> = DecisionCache::new(cfg);
        let (a, b) = (FreqId(0), FreqId(5));
        for i in 0..=4 {
            let e = cache.entry(class(0));
            e.note_decision(a, b, cfg.stable_after);
            if i < 4 {
                assert!(!e.converged, "not yet converged after {} decisions", i + 1);
            }
        }
        assert!(cache.get(class(0)).unwrap().converged);
        // A changed decision resets the streak but convergence latches.
        let e = cache.entry(class(0));
        e.note_decision(b, b, cfg.stable_after);
        assert_eq!(e.stable_decisions, 0);
        assert!(e.converged);
    }

    #[test]
    fn guard_trips_only_after_min_observations() {
        let cfg = CacheConfig { access_budget: 0.5, guard_min_obs: 3, ..Default::default() };
        let mut cache: DecisionCache<()> = DecisionCache::new(cfg);
        // Access phase is 80% of the task: over budget.
        for i in 0..3 {
            let e = cache.observe_common(class(0), &obs(0.8, 0.2));
            assert_eq!(e.guarded, i == 2, "guard state after {} observations", i + 1);
        }
        // A healthy class never trips.
        for _ in 0..10 {
            assert!(!cache.observe_common(class(1), &obs(0.1, 0.9)).guarded);
        }
    }

    #[test]
    fn eviction_never_loses_the_safety_fallback() {
        let cfg =
            CacheConfig { capacity: 4, access_budget: 0.5, guard_min_obs: 1, ..Default::default() };
        let mut cache: DecisionCache<()> = DecisionCache::new(cfg);
        // Trip the guard on class 0.
        cache.observe_common(class(0), &obs(0.9, 0.1));
        assert!(cache.get(class(0)).unwrap().guarded);
        // Flood the cache far beyond capacity with healthy classes.
        for n in 1..40 {
            cache.observe_common(class(n), &obs(0.1, 0.9));
        }
        assert!(cache.get(class(0)).is_some(), "guarded entry was evicted");
        assert!(cache.get(class(0)).unwrap().guarded);
        // Unguarded population respects the capacity bound.
        let unguarded = cache.iter().filter(|(_, e)| !e.guarded).count();
        assert!(unguarded <= cfg.capacity, "unguarded {unguarded} > capacity {}", cfg.capacity);
    }

    #[test]
    fn eviction_is_least_recently_touched() {
        let cfg = CacheConfig { capacity: 2, ..Default::default() };
        let mut cache: DecisionCache<()> = DecisionCache::new(cfg);
        cache.entry(class(0));
        cache.entry(class(1));
        cache.entry(class(0)); // refresh 0 — 1 becomes LRU
        cache.entry(class(2)); // evicts 1
        assert!(cache.get(class(0)).is_some());
        assert!(cache.get(class(1)).is_none());
        assert!(cache.get(class(2)).is_some());
    }

    #[test]
    fn running_means_track_observations() {
        let mut cache: DecisionCache<()> = DecisionCache::new(CacheConfig::default());
        cache.observe_common(class(0), &obs(0.0, 1.0));
        cache.observe_common(class(0), &obs(1.0, 1.0));
        let e = cache.get(class(0)).unwrap();
        assert_eq!(e.observations, 2);
        assert!((e.mean_access_frac - 0.25).abs() < 1e-12);
        assert!(e.mean_task_edp > 0.0);
    }
}
