//! Task classes: the key space the governor learns over.
//!
//! A *class* groups dynamic task instances that are expected to behave
//! alike: the same IR function called with arguments of similar magnitude.
//! The signature is deliberately coarse — it buckets each argument by its
//! binary order of magnitude, so `stream(0)`, `stream(512)` and
//! `stream(1024)` share one class while `stream(0, n=64)` and
//! `stream(0, n=1<<20)` do not. Coarseness keeps the number of classes
//! (and therefore warm-up cost) small without merging tasks whose working
//! sets differ by orders of magnitude.

use dae_ir::FuncId;
use dae_sim::Val;

/// Identifies a set of task instances the governor treats as equivalent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskClass {
    /// The execute-phase function of the task.
    pub func: FuncId,
    /// Coarse signature of the argument vector (see [`TaskClass::of`]).
    pub sig: u64,
}

/// Number of bits of `sig` used per argument.
const SIG_BITS_PER_ARG: u64 = 7;

impl TaskClass {
    /// Builds the class of one task instance.
    ///
    /// Each argument contributes a small bucket code — integers and
    /// pointers by bit length (so values within a factor of two share a
    /// bucket), floats by sign and binary exponent octave, booleans
    /// verbatim — folded into `sig` with a Fowler–Noll–Vo-style mix so
    /// argument order matters.
    pub fn of(func: FuncId, args: &[Val]) -> TaskClass {
        let mut sig: u64 = 0xcbf2_9ce4_8422_2325;
        for a in args {
            let bucket = arg_bucket(a);
            sig ^= bucket;
            sig = sig.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TaskClass { func, sig }
    }

    /// Short hex form of the signature for labels and JSON keys.
    pub fn sig_hex(&self) -> String {
        format!("{:04x}", self.sig & 0xffff)
    }
}

/// Bucket code of one argument: a tag in the low bits plus a coarse
/// magnitude, `SIG_BITS_PER_ARG` bits total.
fn arg_bucket(v: &Val) -> u64 {
    let (tag, mag) = match v {
        // Bit length of |v|: 0 and 1 are distinct, then octaves.
        Val::I(i) => (0u64, 64 - i.unsigned_abs().leading_zeros() as u64),
        // log2 octave of the magnitude, clamped to 5 bits.
        Val::F(f) => {
            let m = if *f == 0.0 || !f.is_finite() {
                0
            } else {
                // IEEE-754 exponent field / 64: 32 coarse octave groups.
                ((f.to_bits() >> 52) & 0x7ff) / 64
            };
            (1u64, m)
        }
        Val::B(b) => (2u64, *b as u64),
        Val::P(p) => (3u64, 64 - p.leading_zeros() as u64),
    };
    (mag << 2 | tag) & ((1 << SIG_BITS_PER_ARG) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(n: u32) -> FuncId {
        FuncId(n)
    }

    #[test]
    fn same_magnitude_args_share_a_class() {
        let a = TaskClass::of(f(0), &[Val::I(512)]);
        let b = TaskClass::of(f(0), &[Val::I(700)]);
        assert_eq!(a, b, "values within one octave must share a class");
    }

    #[test]
    fn different_magnitudes_split_classes() {
        let small = TaskClass::of(f(0), &[Val::I(64)]);
        let large = TaskClass::of(f(0), &[Val::I(1 << 20)]);
        assert_ne!(small, large);
    }

    #[test]
    fn function_distinguishes_classes() {
        let a = TaskClass::of(f(0), &[Val::I(1)]);
        let b = TaskClass::of(f(1), &[Val::I(1)]);
        assert_ne!(a, b);
    }

    #[test]
    fn argument_order_matters() {
        let a = TaskClass::of(f(0), &[Val::I(1), Val::I(1 << 30)]);
        let b = TaskClass::of(f(0), &[Val::I(1 << 30), Val::I(1)]);
        assert_ne!(a, b);
    }

    #[test]
    fn float_buckets_are_coarse() {
        let a = TaskClass::of(f(0), &[Val::F(1.0)]);
        let b = TaskClass::of(f(0), &[Val::F(1.5)]);
        assert_eq!(a, b);
        let zero = TaskClass::of(f(0), &[Val::F(0.0)]);
        let huge = TaskClass::of(f(0), &[Val::F(1e300)]);
        assert_ne!(zero, huge);
    }

    #[test]
    fn deterministic_and_hex_stable() {
        let a = TaskClass::of(f(3), &[Val::I(42), Val::B(true), Val::P(8)]);
        let b = TaskClass::of(f(3), &[Val::I(42), Val::B(true), Val::P(8)]);
        assert_eq!(a.sig, b.sig);
        assert_eq!(a.sig_hex(), b.sig_hex());
        assert_eq!(a.sig_hex().len(), 4);
    }
}
