//! The miss-ratio heuristic: boundedness-driven frequency mapping.
//!
//! The paper's §3 observation, made operational: a memory-bound phase's
//! runtime barely changes with core frequency, so running it slowly costs
//! little time and saves a lot of energy; a compute-bound phase scales
//! ~1/f, so it should run fast. Per phase, this governor maintains an
//! exponential moving average of a **boundedness score** — the simulator's
//! frequency-insensitivity fraction blended with the DRAM miss ratio — and
//! maps it linearly onto the DVFS table: score 1 → fmin, score 0 → fmax.
//!
//! Until a class has been measured the defaults are the paper's min/max
//! assignment (access phases are prefetch slices, presumed memory-bound;
//! execute phases run on a warm cache, presumed compute-bound), so the
//! heuristic can never start worse than `DaeMinMax`.

use crate::cache::{CacheConfig, DecisionCache};
use crate::class::TaskClass;
use crate::obs::{PhaseObs, TaskObs};
use crate::{ClassSnapshot, Decision, Governor};
use dae_power::{DvfsTable, FreqId};

/// Tuning of [`MissRatioHeuristic`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeuristicConfig {
    /// Decision-cache and safety-guard knobs.
    pub cache: CacheConfig,
    /// EMA smoothing factor for the boundedness score (weight of the
    /// newest observation).
    pub ema_alpha: f64,
}

impl Default for HeuristicConfig {
    fn default() -> Self {
        HeuristicConfig { cache: CacheConfig::default(), ema_alpha: 0.3 }
    }
}

/// Learned per-class state: smoothed boundedness per phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct HeurState {
    access_bound: Option<f64>,
    execute_bound: Option<f64>,
}

/// A [`Governor`] mapping observed phase boundedness onto the DVFS table.
#[derive(Clone, Debug)]
pub struct MissRatioHeuristic {
    table: DvfsTable,
    cfg: HeuristicConfig,
    cache: DecisionCache<HeurState>,
}

impl MissRatioHeuristic {
    /// A fresh heuristic over `table`.
    pub fn new(table: DvfsTable, cfg: HeuristicConfig) -> Self {
        MissRatioHeuristic { table, cfg, cache: DecisionCache::new(cfg.cache) }
    }

    /// Boundedness score of one measured phase, in `[0, 1]`.
    fn score(obs: &PhaseObs) -> f64 {
        // The insensitivity fraction is the primary signal; the miss ratio
        // catches latency-bound phases whose stalls overlap (high MLP) but
        // that still gain little from a faster core.
        obs.mem_bound_frac.max(obs.miss_ratio).clamp(0.0, 1.0)
    }

    /// Maps a boundedness score onto the table: 1 → fmin, 0 → fmax.
    fn freq_for(&self, bound: f64) -> FreqId {
        let n = self.table.len();
        let idx = ((1.0 - bound.clamp(0.0, 1.0)) * (n - 1) as f64).round() as usize;
        FreqId(idx.min(n - 1))
    }
}

impl Governor for MissRatioHeuristic {
    fn name(&self) -> &'static str {
        "heuristic"
    }

    fn decide(&mut self, class: TaskClass) -> Decision {
        let stable_after = self.cfg.cache.stable_after;
        let (min, max) = (self.table.min(), self.table.max());
        let e = self.cache.entry(class);
        if e.guarded {
            return Decision { access: min, execute: max, explore: false, guarded: true };
        }
        let explore = e.observations == 0;
        if explore {
            e.explored += 1;
        }
        let (ab, eb) = (e.state.access_bound, e.state.execute_bound);
        let access = ab.map_or(min, |b| self.freq_for(b));
        let execute = eb.map_or(max, |b| self.freq_for(b));
        self.cache.entry(class).note_decision(access, execute, stable_after);
        Decision { access, execute, explore, guarded: false }
    }

    fn observe(&mut self, class: TaskClass, obs: &TaskObs) {
        let alpha = self.cfg.ema_alpha;
        let e = self.cache.observe_common(class, obs);
        let blend = |old: Option<f64>, new: f64| match old {
            None => Some(new),
            Some(o) => Some(o + alpha * (new - o)),
        };
        if let Some(a) = &obs.access {
            e.state.access_bound = blend(e.state.access_bound, Self::score(a));
        }
        e.state.execute_bound = blend(e.state.execute_bound, Self::score(&obs.execute));
    }

    fn snapshot(&self) -> Vec<ClassSnapshot> {
        self.cache
            .iter()
            .map(|(class, e)| {
                let (access, execute) = e.last_decision.unwrap_or_else(|| {
                    if e.guarded {
                        (self.table.min(), self.table.max())
                    } else {
                        (
                            e.state.access_bound.map_or(self.table.min(), |b| self.freq_for(b)),
                            e.state.execute_bound.map_or(self.table.max(), |b| self.freq_for(b)),
                        )
                    }
                });
                ClassSnapshot {
                    class: *class,
                    observations: e.observations,
                    explored: e.explored,
                    converged: e.converged,
                    guarded: e.guarded,
                    access,
                    execute,
                    mean_task_edp: e.mean_task_edp,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::FuncId;

    fn class(n: u32) -> TaskClass {
        TaskClass { func: FuncId(n), sig: 0 }
    }

    fn obs(access_bound: Option<f64>, execute_bound: f64) -> TaskObs {
        TaskObs {
            access: access_bound.map(|b| PhaseObs {
                time_s: 1e-6,
                energy_j: 1e-6,
                mem_bound_frac: b,
                ..Default::default()
            }),
            execute: PhaseObs {
                time_s: 4e-6,
                energy_j: 4e-6,
                mem_bound_frac: execute_bound,
                ..Default::default()
            },
        }
    }

    #[test]
    fn defaults_match_min_max() {
        let t = DvfsTable::sandybridge();
        let mut g = MissRatioHeuristic::new(t.clone(), HeuristicConfig::default());
        let d = g.decide(class(0));
        assert_eq!((d.access, d.execute), (t.min(), t.max()));
        assert!(d.explore, "first decision is a guess");
    }

    #[test]
    fn memory_bound_execute_is_slowed_down() {
        let t = DvfsTable::sandybridge();
        let mut g = MissRatioHeuristic::new(t.clone(), HeuristicConfig::default());
        for _ in 0..10 {
            g.observe(class(0), &obs(None, 0.95));
        }
        let d = g.decide(class(0));
        assert!(d.execute < t.max(), "bound execute must leave fmax, got {:?}", d.execute);
        assert!(d.execute <= FreqId(1));
    }

    #[test]
    fn compute_bound_access_is_sped_up() {
        let t = DvfsTable::sandybridge();
        let mut g = MissRatioHeuristic::new(t.clone(), HeuristicConfig::default());
        for _ in 0..10 {
            g.observe(class(0), &obs(Some(0.05), 0.0));
        }
        let d = g.decide(class(0));
        assert!(d.access > t.min(), "compute-bound access must leave fmin");
        assert_eq!(d.execute, t.max());
    }

    #[test]
    fn miss_ratio_alone_counts_as_bound() {
        let t = DvfsTable::sandybridge();
        let mut g = MissRatioHeuristic::new(t.clone(), HeuristicConfig::default());
        let o = TaskObs {
            access: None,
            execute: PhaseObs {
                time_s: 1e-6,
                energy_j: 1e-6,
                mem_bound_frac: 0.0,
                miss_ratio: 1.0,
                ..Default::default()
            },
        };
        for _ in 0..10 {
            g.observe(class(0), &o);
        }
        assert_eq!(g.decide(class(0)).execute, t.min());
    }

    #[test]
    fn guard_forces_min_max() {
        let t = DvfsTable::sandybridge();
        let cfg = HeuristicConfig {
            cache: CacheConfig { access_budget: 0.1, guard_min_obs: 1, ..Default::default() },
            ..Default::default()
        };
        let mut g = MissRatioHeuristic::new(t.clone(), cfg);
        // Access dominates the task (1e-6 vs 4e-6 is 20% — push harder).
        let o = TaskObs {
            access: Some(PhaseObs { time_s: 9e-6, energy_j: 1e-6, ..Default::default() }),
            execute: PhaseObs { time_s: 1e-6, energy_j: 1e-6, ..Default::default() },
        };
        g.observe(class(0), &o);
        let d = g.decide(class(0));
        assert!(d.guarded);
        assert_eq!((d.access, d.execute), (t.min(), t.max()));
    }

    #[test]
    fn convergence_is_reported() {
        let t = DvfsTable::sandybridge();
        let mut g = MissRatioHeuristic::new(t, HeuristicConfig::default());
        for _ in 0..20 {
            g.decide(class(0));
            g.observe(class(0), &obs(Some(0.9), 0.0));
        }
        let snap = g.snapshot();
        assert_eq!(snap.len(), 1);
        assert!(snap[0].converged, "stationary feedback must converge");
        assert_eq!(snap[0].observations, 20);
    }
}
