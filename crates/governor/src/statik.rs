//! The static governor: a fixed per-phase assignment behind the
//! [`Governor`] interface.
//!
//! Wraps today's table-driven policies (`CoupledMax`, `DaeMinMax`,
//! `DaePhases`) so static and learned frequency selection share one code
//! path in the runtime, and so experiments can compare a learner against a
//! fixed assignment without special-casing. It still tracks per-class
//! observation statistics — the snapshot is useful — but never changes its
//! decision and never trips the guard (the assignment *is* the fallback).

use crate::cache::{CacheConfig, DecisionCache};
use crate::class::TaskClass;
use crate::obs::TaskObs;
use crate::{ClassSnapshot, Decision, Governor};
use dae_power::{DvfsTable, FreqId};

/// A [`Governor`] that always returns the same per-phase assignment.
#[derive(Clone, Debug)]
pub struct StaticGovernor {
    access: FreqId,
    execute: FreqId,
    cache: DecisionCache<()>,
}

impl StaticGovernor {
    /// A fixed (access, execute) assignment.
    pub fn fixed(access: FreqId, execute: FreqId) -> Self {
        // The guard never trips: a static assignment has nothing to fall
        // back to.
        let cfg = CacheConfig { access_budget: f64::INFINITY, ..Default::default() };
        StaticGovernor { access, execute, cache: DecisionCache::new(cfg) }
    }

    /// The paper's "Min/Max f." assignment: access at fmin, execute at
    /// fmax.
    pub fn min_max(table: &DvfsTable) -> Self {
        StaticGovernor::fixed(table.min(), table.max())
    }

    /// Everything at fmax (the coupled baseline's assignment).
    pub fn all_max(table: &DvfsTable) -> Self {
        StaticGovernor::fixed(table.max(), table.max())
    }
}

impl Governor for StaticGovernor {
    fn name(&self) -> &'static str {
        "static"
    }

    fn decide(&mut self, class: TaskClass) -> Decision {
        let stable_after = self.cache.config().stable_after;
        let (access, execute) = (self.access, self.execute);
        self.cache.entry(class).note_decision(access, execute, stable_after);
        Decision { access, execute, explore: false, guarded: false }
    }

    fn observe(&mut self, class: TaskClass, obs: &TaskObs) {
        self.cache.observe_common(class, obs);
    }

    fn snapshot(&self) -> Vec<ClassSnapshot> {
        self.cache
            .iter()
            .map(|(class, e)| ClassSnapshot {
                class: *class,
                observations: e.observations,
                explored: e.explored,
                converged: e.converged,
                guarded: e.guarded,
                access: self.access,
                execute: self.execute,
                mean_task_edp: e.mean_task_edp,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::PhaseObs;
    use dae_ir::FuncId;

    #[test]
    fn decision_never_changes() {
        let t = DvfsTable::sandybridge();
        let mut g = StaticGovernor::min_max(&t);
        let class = TaskClass::of(FuncId(0), &[]);
        let first = g.decide(class);
        assert_eq!(first.access, t.min());
        assert_eq!(first.execute, t.max());
        for _ in 0..20 {
            // Even under guard-worthy feedback the assignment stands.
            g.observe(
                class,
                &TaskObs {
                    access: Some(PhaseObs { time_s: 0.9, energy_j: 1.0, ..Default::default() }),
                    execute: PhaseObs { time_s: 0.1, energy_j: 1.0, ..Default::default() },
                },
            );
            assert_eq!(g.decide(class), first);
        }
        let snap = g.snapshot();
        assert_eq!(snap.len(), 1);
        assert!(!snap[0].guarded);
        assert_eq!(snap[0].observations, 20);
        assert!(snap[0].converged, "static decisions trivially converge");
    }
}
