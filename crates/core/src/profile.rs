//! Profile-guided access generation — the paper's stated future work.
//!
//! §5.2.2: *"some applications would benefit from the additional or more
//! precise prefetching of keeping the conditionals. This is likely if
//! particular conditional-branches are executed for the majority of the
//! iterations. To address such situations, we could detect the hot path
//! through profiling and create a specifically tailored access version."*
//! And §7 lists "employing a profiling step in guiding static
//! transformations" as future work.
//!
//! This module implements that step: [`profile_task`] runs the task's
//! inlined clone on representative inputs and records per-branch taken
//! frequencies; [`crate::generate_skeleton_access_profiled`] then keeps
//! conditionals whose hot arm executes at least
//! [`HotPathConfig::hot_threshold`] of the time (prefetching the hot arm's
//! reads) instead of unconditionally dropping them.

use crate::options::RefuseReason;
use dae_analysis::transform::{compact, inline_all};
use dae_ir::{FuncId, Function, Module};
use dae_mem::{CoreCaches, HierarchyConfig, SharedLlc};
use dae_sim::{BranchProfile, CachePort, Machine, PhaseTrace, Val};

/// Thresholds for hot-path specialisation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HotPathConfig {
    /// A branch taken at least this often keeps its then-edge in the
    /// access version.
    pub hot_threshold: f64,
}

impl Default for HotPathConfig {
    fn default() -> Self {
        HotPathConfig { hot_threshold: 0.9 }
    }
}

/// Builds the canonical inlined clone of `task` that both the profiler and
/// the skeleton generator operate on (block ids must agree between the
/// two).
///
/// # Errors
///
/// Refuses recursive tasks, like the rest of the pipeline.
pub fn inlined_clone(module: &Module, task: FuncId) -> Result<Function, RefuseReason> {
    let inlined = inline_all(module, task)
        .map_err(|_| RefuseReason::NonInlinableCall(module.func(task).name.clone()))?;
    Ok(compact(&inlined))
}

/// Runs the task's inlined clone on each argument sample, returning the
/// merged branch profile (keyed by the clone's block ids).
///
/// # Errors
///
/// Refuses recursive tasks; interpreter traps abort profiling and surface
/// as [`RefuseReason::NonInlinableCall`]-free panics only in debug — here
/// they simply produce an empty profile for the offending sample.
pub fn profile_task(
    module: &Module,
    task: FuncId,
    samples: &[Vec<Val>],
) -> Result<BranchProfile, RefuseReason> {
    let clone = inlined_clone(module, task)?;
    // Execute the clone inside a scratch copy of the module so memory and
    // callees resolve; profiling must not disturb the caller's state.
    let mut scratch = module.clone();
    let clone_id = scratch.add_function(clone);

    let hc = HierarchyConfig::default();
    let mut llc = SharedLlc::new(hc.llc);
    let mut core = CoreCaches::new(&hc);
    let mut machine = Machine::new(&scratch);
    let mut profile = BranchProfile::default();
    for args in samples {
        let mut trace = PhaseTrace::default();
        // A trapping sample contributes nothing but does not abort the
        // compile (profiles are advisory).
        let _ = machine.run_with_profile(
            clone_id,
            args,
            &mut CachePort { core: &mut core, llc: &mut llc },
            &mut trace,
            &mut profile,
        );
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{CmpOp, FunctionBuilder, Type, Value};

    /// A task whose conditional is almost always taken: data[i] > -1 for
    /// the generated inputs.
    fn hot_task(module: &mut Module) -> FuncId {
        let data = module.add_global_init(dae_ir::GlobalData {
            name: "data".into(),
            elem_ty: Type::F64,
            len: 64,
            init: dae_ir::GlobalInit::Words(
                (0..64).map(|k| (if k == 0 { -5.0f64 } else { 1.0 }).to_bits()).collect(),
            ),
        });
        let extra = module.add_global("extra", Type::F64, 64);
        let out = module.add_global("out", Type::F64, 64);
        let mut b = FunctionBuilder::new("hot", vec![], Type::Void);
        b.set_task();
        b.counted_loop(Value::i64(0), Value::i64(64), Value::i64(1), |b, i| {
            let da = b.elem_addr(Value::Global(data), i, Type::F64);
            let d = b.load(Type::F64, da);
            let c = b.cmp(CmpOp::Gt, d, 0.0f64);
            b.if_then(c, |b| {
                let ea = b.elem_addr(Value::Global(extra), i, Type::F64);
                let e = b.load(Type::F64, ea);
                let oa = b.elem_addr(Value::Global(out), i, Type::F64);
                b.store(oa, e);
            });
        });
        b.ret(None);
        module.add_function(b.finish())
    }

    #[test]
    fn profile_counts_hot_branch() {
        let mut m = Module::new();
        let task = hot_task(&mut m);
        let p = profile_task(&m, task, &[vec![]]).expect("profiled");
        // Exactly one data-dependent conditional; taken 63/64.
        let hot = p.counts.iter().any(|(t, n)| *t + *n == 64 && *t == 63);
        assert!(hot, "expected a 63/64-taken branch, got {:?}", p.counts);
    }

    #[test]
    fn profiling_does_not_mutate_caller_module() {
        let mut m = Module::new();
        let task = hot_task(&mut m);
        let before = m.num_funcs();
        let _ = profile_task(&m, task, &[vec![]]).unwrap();
        assert_eq!(m.num_funcs(), before);
        let _ = task;
    }
}
