//! The §5.1 polyhedral access generator.
//!
//! Pipeline, mirroring the paper:
//!
//! 1. partition the task's affine accesses into **classes** — accesses to
//!    the same array whose subscripts use the same parameters (trade-off 3,
//!    Listing 3);
//! 2. per class, compute the **union of per-instruction access sets**
//!    (`NOrig`, counted exactly on representative parameters) and the
//!    **convex hull of the union** (`NconvUn`, integer points of the hull);
//! 3. apply the **profitability check** `NconvUn − th ≤ NOrig` — when it
//!    fails the caller falls back to the §5.2 skeleton path;
//! 4. extract the **minimal-depth scanning loop nest** for each class hull
//!    and **merge** nests with identical bounds (trade-off 2, Listing 2);
//! 5. emit a fresh IR function that scans the hulls and prefetches
//!    `base + elem·Σ strideₖ·(dimₖ + param-partₖ)` for every class.

use crate::access_info::{AffineAccess, ClassKey, TaskAccessInfo};
use crate::options::{AffineStats, CompilerOptions};
use dae_ir::{Function, FunctionBuilder, GlobalId, Type, Value};
use dae_poly::{
    convex_hull, extract_loop_nest, try_count_union_distinct, AffineImage, LinExpr, LoopNestSpec,
    Rat, Space,
};

/// One access class: the unit of hull computation and codegen.
struct Class {
    global: GlobalId,
    elem_bytes: i64,
    strides: Vec<i64>,
    /// Per-subscript parameter coefficients (added back at
    /// address-generation time; constants are part of the hull space).
    param_parts: Vec<Vec<i64>>,
    n_orig: u64,
    n_conv: u64,
    nest: LoopNestSpec,
}

/// A generated affine access phase.
pub struct AffineResult {
    /// The access function (same signature as the task, `void` return).
    pub func: Function,
    /// Decision statistics.
    pub stats: AffineStats,
}

/// Runs the §5.1 pipeline. Returns `None` when the task is not fully
/// affine, parameters lack representative hints, the hull check fails, or a
/// hull cannot be scanned with unit-coefficient bounds.
pub fn generate_affine_access(
    task: &Function,
    info: &TaskAccessInfo,
    opts: &CompilerOptions,
) -> Option<AffineResult> {
    if !opts.enable_polyhedral || !info.fully_affine() || info.affine.is_empty() {
        return None;
    }
    let n_params = task.params.len();
    if n_params > 0 && opts.param_hints.len() != n_params {
        return None; // cannot evaluate profitability counts
    }
    let hints = &opts.param_hints[..];

    // 1. classes, grouped in first-appearance order so the emitted function
    //    is a deterministic (reproducible, cacheable) artifact of the input.
    let mut class_keys: Vec<ClassKey> = Vec::new();
    let mut class_accs: Vec<Vec<&AffineAccess>> = Vec::new();
    for acc in &info.affine {
        let key = acc.class_key();
        match class_keys.iter().position(|k| *k == key) {
            Some(i) => class_accs[i].push(acc),
            None => {
                class_keys.push(key);
                class_accs.push(vec![acc]);
            }
        }
    }

    // 2. per-class union, hull, counts
    let mut classes: Vec<Class> = Vec::new();
    for ((global, _), accs) in class_keys.into_iter().zip(class_accs) {
        let target_dims = accs[0].subscripts.len();
        let mut images: Vec<AffineImage> = Vec::new();
        for acc in &accs {
            // Lift residual subscripts into the access's domain space.
            let dspace = acc.domain.space();
            let map: Vec<LinExpr> = acc
                .subscripts
                .iter()
                .map(|s| {
                    let mut e = LinExpr::constant(dspace, s.residual.const_term());
                    for d in 0..dspace.dims {
                        let c = s.residual.dim_coeff(d);
                        if c != 0 {
                            e = e.add(&LinExpr::dim(dspace, d).scale(c));
                        }
                    }
                    e
                })
                .collect();
            images.push(AffineImage::new(acc.domain.clone(), map));
        }
        // An unbounded domain cannot be counted or scanned: refuse this
        // task (skeleton fallback) instead of aborting compilation.
        let n_orig = try_count_union_distinct(&images, hints).ok()?;
        if n_orig == 0 {
            continue; // empty domain: nothing to prefetch for this class
        }
        let mut points: Vec<Vec<Rat>> = Vec::new();
        for img in &images {
            for v in img.image_vertices(hints) {
                if !points.contains(&v) {
                    points.push(v);
                }
            }
        }
        let hull = convex_hull(target_dims, &points);
        let n_conv = hull.try_count_integer_points().ok()?;
        let nest = match extract_loop_nest(&hull) {
            Some(n) if n.is_unit() => n,
            _ => {
                // Fall back to the bounding box of the points, which always
                // yields unit bounds; the profitability check still guards
                // the over-approximation.
                let bb = dae_poly::hull::bounding_box(Space::new(target_dims, 0), &points);
                extract_loop_nest(&bb)?
            }
        };
        classes.push(Class {
            global,
            elem_bytes: accs[0].elem_bytes,
            strides: accs[0].subscripts.iter().map(|s| s.stride_elems).collect(),
            param_parts: accs[0].subscripts.iter().map(|s| s.param_coeffs.clone()).collect(),
            n_orig,
            n_conv: n_conv.max(1),
            nest,
        });
    }
    if classes.is_empty() {
        return None;
    }

    // 3. profitability
    let n_orig: u64 = classes.iter().map(|c| c.n_orig).sum();
    let n_conv: u64 = classes.iter().map(|c| c.n_conv).sum();
    if !opts.skip_hull_check && (n_conv as i64) - opts.hull_threshold > n_orig as i64 {
        return None;
    }

    // 4. merge classes with identical scanning nests
    let mut groups: Vec<(LoopNestSpec, Vec<usize>)> = Vec::new();
    for (i, c) in classes.iter().enumerate() {
        match groups.iter_mut().find(|(spec, _)| *spec == c.nest) {
            Some((_, members)) => members.push(i),
            None => groups.push((c.nest.clone(), vec![i])),
        }
    }

    // 5. codegen
    let mut b =
        FunctionBuilder::new(format!("{}__access", task.name), task.params.clone(), Type::Void);
    for (spec, members) in &groups {
        let line_step = if opts.line_dedup
            && members
                .iter()
                .all(|&i| classes[i].strides.last() == Some(&1) && classes[i].elem_bytes == 8)
        {
            8
        } else {
            1
        };
        emit_nest(&mut b, spec, 0, &[], &classes, members, line_step);
    }
    b.ret(None);
    // -O3-style clean-up including strength reduction: the scanning nests
    // become tight pointer-increment prefetch streams.
    let func = dae_analysis::transform::strength_reduce_and_clean(&b.finish());

    let stats = AffineStats {
        n_orig,
        n_conv_un: n_conv,
        classes: classes.len(),
        nests: groups.len(),
        orig_depth: info.affine.iter().map(|a| a.nest.len()).max().unwrap_or(0),
        gen_depth: groups.iter().map(|(s, _)| s.depth()).max().unwrap_or(0),
    };
    Some(AffineResult { func, stats })
}

/// Evaluates a bound expression over already-emitted dim values and the
/// function's parameters.
fn emit_bound_expr(b: &mut FunctionBuilder, e: &LinExpr, dims: &[Value]) -> Value {
    let mut acc = Value::i64(e.const_term() as i64);
    for (d, v) in dims.iter().enumerate() {
        let c = e.dim_coeff(d);
        if c != 0 {
            let t = b.imul(*v, c as i64);
            acc = b.iadd(acc, t);
        }
    }
    for p in 0..e.space.params {
        let c = e.param_coeff(p);
        if c != 0 {
            let t = b.imul(Value::Arg(p as u32), c as i64);
            acc = b.iadd(acc, t);
        }
    }
    acc
}

/// Max of several lower bounds / min of several upper bounds via selects.
fn emit_bound(
    b: &mut FunctionBuilder,
    bounds: &[dae_poly::Bound],
    dims: &[Value],
    is_lower: bool,
) -> Value {
    let mut acc: Option<Value> = None;
    for bound in bounds {
        debug_assert_eq!(bound.coeff, 1, "caller guarantees unit bounds");
        let v = emit_bound_expr(b, &bound.expr, dims);
        acc = Some(match acc {
            None => v,
            Some(cur) => {
                let cond = if is_lower {
                    b.cmp(dae_ir::CmpOp::Gt, v, cur)
                } else {
                    b.cmp(dae_ir::CmpOp::Lt, v, cur)
                };
                b.select(cond, v, cur)
            }
        });
    }
    acc.expect("at least one bound")
}

fn emit_nest(
    b: &mut FunctionBuilder,
    spec: &LoopNestSpec,
    depth: usize,
    dims: &[Value],
    classes: &[Class],
    members: &[usize],
    line_step: i64,
) {
    if depth == spec.depth() {
        // innermost body: one prefetch per class
        for &ci in members {
            let c = &classes[ci];
            let mut elems: Option<Value> = None;
            for (k, dim_v) in dims.iter().enumerate() {
                // subscript value = dim + Σ param_coeff·arg + const
                let mut sub = *dim_v;
                for (p, coeff) in c.param_parts[k].iter().enumerate() {
                    if *coeff != 0 {
                        let t = b.imul(Value::Arg(p as u32), *coeff);
                        sub = b.iadd(sub, t);
                    }
                }
                let term = b.imul(sub, c.strides[k]);
                elems = Some(match elems {
                    None => term,
                    Some(cur) => b.iadd(cur, term),
                });
            }
            let elems = elems.expect("at least one subscript");
            let bytes = b.imul(elems, c.elem_bytes);
            let addr = b.ptr_add(Value::Global(c.global), bytes);
            b.prefetch(addr);
        }
        return;
    }
    let d = &spec.dims[depth];
    let lo = emit_bound(b, &d.lowers, dims, true);
    let hi_incl = emit_bound(b, &d.uppers, dims, false);
    let hi = b.iadd(hi_incl, 1i64);
    let step = if depth + 1 == spec.depth() { line_step } else { 1 };
    // A recursive closure is awkward with FnOnce; use explicit recursion by
    // capturing the needed state in a helper.
    let spec_c = spec.clone();
    let mut dims_c = dims.to_vec();
    b.counted_loop(lo, hi, Value::i64(step), |b, iv| {
        dims_c.push(iv);
        emit_nest(b, &spec_c, depth + 1, &dims_c, classes, members, line_step);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access_info::analyze_task;
    use dae_ir::{verify_function, InstKind, Module};

    /// Counts prefetches executed by interpreting the generated function is
    /// not available here (dae-sim would be a dependency cycle); instead we
    /// check structure: loop depth and prefetch count.
    fn count_kind(f: &Function, pred: impl Fn(&InstKind) -> bool) -> usize {
        let mut n = 0;
        f.for_each_placed_inst(|_, i| {
            if pred(&f.inst(i).kind) {
                n += 1;
            }
        });
        n
    }

    fn lu_like(n: i64) -> (Module, Function) {
        // The Listing 1(a) kernel: 3-deep nest touching the whole matrix.
        let mut m = Module::new();
        let a = m.add_global("A", Type::F64, (n * n) as u64);
        let ga = Value::Global(a);
        let mut b = FunctionBuilder::new("lu", vec![Type::I64], Type::Void);
        b.set_task();
        b.counted_loop(Value::i64(0), Value::i64(n), Value::i64(1), |b, i| {
            let lo = b.iadd(i, 1i64);
            b.counted_loop(lo, Value::i64(n), Value::i64(1), |b, j| {
                let ji = {
                    let r = b.imul(j, n);
                    let x = b.iadd(r, i);
                    b.elem_addr(ga, x, Type::F64)
                };
                let ii = {
                    let r = b.imul(i, n);
                    let x = b.iadd(r, i);
                    b.elem_addr(ga, x, Type::F64)
                };
                let vji = b.load(Type::F64, ji);
                let vii = b.load(Type::F64, ii);
                let q = b.fdiv(vji, vii);
                b.store(ji, q);
                let lo2 = b.iadd(i, 1i64);
                b.counted_loop(lo2, Value::i64(n), Value::i64(1), |b, k| {
                    let jk = {
                        let r = b.imul(j, n);
                        let x = b.iadd(r, k);
                        b.elem_addr(ga, x, Type::F64)
                    };
                    let ik = {
                        let r = b.imul(i, n);
                        let x = b.iadd(r, k);
                        b.elem_addr(ga, x, Type::F64)
                    };
                    let vjk = b.load(Type::F64, jk);
                    let vji2 = b.load(Type::F64, ji);
                    let vik = b.load(Type::F64, ik);
                    let t = b.fmul(vji2, vik);
                    let s = b.fsub(vjk, t);
                    b.store(jk, s);
                });
            });
        });
        b.ret(None);
        (m, b.finish())
    }

    #[test]
    fn lu_gets_a_2deep_access_nest() {
        // The paper's headline example: a 3-deep loop nest whose accesses
        // cover the whole matrix is prefetched by a 2-deep nest. The
        // diagonal access A[i][i] delinearises to a separate stride-17
        // class (its own 1-D scan); the off-diagonal accesses form one 2-D
        // class whose hull is the matrix minus the (0,0) corner.
        let (m, f) = lu_like(16);
        let info = analyze_task(&m, &f);
        let opts = CompilerOptions { param_hints: vec![16], ..Default::default() };
        let r = generate_affine_access(&f, &info, &opts).expect("affine access generated");
        verify_function(&r.func, None).unwrap();
        assert_eq!(r.stats.orig_depth, 3);
        assert_eq!(r.stats.gen_depth, 2, "{}", dae_ir::print_function(&r.func, None));
        assert_eq!(r.stats.classes, 2);
        // 255 cells in the 2-D class (corner cut) + 15 diagonal cells
        // (A[i][i] sits inside the j-loop, whose domain excludes i = 15 —
        // the exact-set analysis at work).
        assert_eq!(r.stats.n_orig, 255 + 15);
        assert_eq!(r.stats.n_conv_un, 255 + 15, "hull adds nothing");
        assert_eq!(count_kind(&r.func, |k| matches!(k, InstKind::Prefetch { .. })), 2);
        assert_eq!(count_kind(&r.func, |k| matches!(k, InstKind::Store { .. })), 0);
        assert_eq!(count_kind(&r.func, |k| matches!(k, InstKind::Load { .. })), 0);
    }

    #[test]
    fn two_arrays_merge_into_one_nest() {
        // Listing 2: A[j][k] -= D[j][i] * A[i][k] under a full box domain.
        let n = 8i64;
        let mut m = Module::new();
        let a = m.add_global("A", Type::F64, (n * n) as u64);
        let d = m.add_global("D", Type::F64, (n * n) as u64);
        let mut b = FunctionBuilder::new("t", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::i64(n), Value::i64(1), |b, i| {
            b.counted_loop(Value::i64(0), Value::i64(n), Value::i64(1), |b, j| {
                b.counted_loop(Value::i64(0), Value::i64(n), Value::i64(1), |b, k| {
                    let ajk = {
                        let r = b.imul(j, n);
                        let x = b.iadd(r, k);
                        b.elem_addr(Value::Global(a), x, Type::F64)
                    };
                    let dji = {
                        let r = b.imul(j, n);
                        let x = b.iadd(r, i);
                        b.elem_addr(Value::Global(d), x, Type::F64)
                    };
                    let aik = {
                        let r = b.imul(i, n);
                        let x = b.iadd(r, k);
                        b.elem_addr(Value::Global(a), x, Type::F64)
                    };
                    let v1 = b.load(Type::F64, ajk);
                    let v2 = b.load(Type::F64, dji);
                    let v3 = b.load(Type::F64, aik);
                    let t = b.fmul(v2, v3);
                    let s = b.fsub(v1, t);
                    b.store(ajk, s);
                });
            });
        });
        b.ret(None);
        let f = b.finish();
        let info = analyze_task(&m, &f);
        let opts = CompilerOptions { param_hints: vec![n], ..Default::default() };
        let r = generate_affine_access(&f, &info, &opts).expect("generated");
        verify_function(&r.func, None).unwrap();
        assert_eq!(r.stats.classes, 2, "A and D form separate classes");
        assert_eq!(r.stats.nests, 1, "identical bounds merge into one nest");
        assert_eq!(count_kind(&r.func, |k| matches!(k, InstKind::Prefetch { .. })), 2);
        assert_eq!(r.stats.gen_depth, 2);
    }

    #[test]
    fn blocks_of_one_array_split_into_classes() {
        // Listing 3: A[Ax+j][Ay+k] … A[Dx+j][Dy+i] — same array, distinct
        // parameter offsets.
        let n = 64i64; // row stride
        let blk = 4i64;
        let mut m = Module::new();
        let a = m.add_global("A", Type::F64, (n * n) as u64);
        // params: Ax, Ay, Dx, Dy (block size fixed for simplicity)
        let mut b =
            FunctionBuilder::new("t", vec![Type::I64, Type::I64, Type::I64, Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, j| {
            b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, k| {
                let a1 = {
                    let row = b.iadd(Value::Arg(0), j);
                    let col = b.iadd(Value::Arg(1), k);
                    let r = b.imul(row, n);
                    let x = b.iadd(r, col);
                    b.elem_addr(Value::Global(a), x, Type::F64)
                };
                let a2 = {
                    let row = b.iadd(Value::Arg(2), j);
                    let col = b.iadd(Value::Arg(3), k);
                    let r = b.imul(row, n);
                    let x = b.iadd(r, col);
                    b.elem_addr(Value::Global(a), x, Type::F64)
                };
                let v1 = b.load(Type::F64, a1);
                let v2 = b.load(Type::F64, a2);
                let s = b.fadd(v1, v2);
                b.store(a1, s);
            });
        });
        b.ret(None);
        let f = b.finish();
        let info = analyze_task(&m, &f);
        let opts = CompilerOptions { param_hints: vec![0, 0, 32, 32], ..Default::default() };
        let r = generate_affine_access(&f, &info, &opts).expect("generated");
        verify_function(&r.func, None).unwrap();
        assert_eq!(r.stats.classes, 2, "parameter-distinct blocks split");
        assert_eq!(r.stats.nests, 1, "equal-iteration nests merge");
        // Each class covers exactly the blk×blk block: no hull waste.
        assert_eq!(r.stats.n_orig, 2 * (blk * blk) as u64);
        assert_eq!(r.stats.n_conv_un, 2 * (blk * blk) as u64);
    }

    #[test]
    fn hull_check_rejects_wasteful_scan() {
        // Two far-apart constant-offset regions of one array: same class
        // (classes split on *parameters*, not constants, per §5.1), so the
        // convex hull spans the gap and NconvUn ≫ NOrig → refused.
        let mut m = Module::new();
        let a = m.add_global("A", Type::F64, 2048);
        let mut b = FunctionBuilder::new("gapped", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::i64(16), Value::i64(1), |b, i| {
            let p1 = b.elem_addr(Value::Global(a), i, Type::F64);
            let _ = b.load(Type::F64, p1);
            let far = b.iadd(i, 1000i64);
            let p2 = b.elem_addr(Value::Global(a), far, Type::F64);
            let _ = b.load(Type::F64, p2);
        });
        b.ret(None);
        let f = b.finish();
        let info = analyze_task(&m, &f);
        assert_eq!(info.affine.len(), 2);
        let opts = CompilerOptions { param_hints: vec![16], ..Default::default() };
        assert!(
            generate_affine_access(&f, &info, &opts).is_none(),
            "hull spanning the [16, 1000) gap must fail NconvUn <= NOrig"
        );
        // …but with the check disabled (ablation) it generates.
        let opts2 =
            CompilerOptions { param_hints: vec![16], skip_hull_check: true, ..Default::default() };
        assert!(generate_affine_access(&f, &info, &opts2).is_some());
        // …and a large enough threshold also admits it.
        let opts3 =
            CompilerOptions { param_hints: vec![16], hull_threshold: 2000, ..Default::default() };
        assert!(generate_affine_access(&f, &info, &opts3).is_some());
    }

    #[test]
    fn missing_param_hints_fall_back() {
        let (m, f) = lu_like(8);
        let info = analyze_task(&m, &f);
        let opts = CompilerOptions::default(); // no hints
        assert!(generate_affine_access(&f, &info, &opts).is_none());
    }

    #[test]
    fn line_dedup_steps_by_line() {
        let (m, f) = lu_like(16);
        let info = analyze_task(&m, &f);
        let base = CompilerOptions { param_hints: vec![16], ..Default::default() };
        let dedup = CompilerOptions { line_dedup: true, ..base.clone() };
        let r1 = generate_affine_access(&f, &info, &base).unwrap();
        let r2 = generate_affine_access(&f, &info, &dedup).unwrap();
        let text1 = dae_ir::print_function(&r1.func, None);
        let text2 = dae_ir::print_function(&r2.func, None);
        assert!(text1.contains("iadd") && text2.contains("iadd"));
        assert_ne!(text1, text2, "line dedup must change the inner step");
    }
}
