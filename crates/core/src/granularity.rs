//! Automatic task-granularity selection — the §5.2.3 avenue
//! ("adjusting the granularity of the task automatically at compile-time
//! to optimize the amount of data prefetched by the access phase").
//!
//! §3.1 sets the target: "we size the task so that its working set just
//! fits the private cache hierarchy of a core (i.e., the L1 and the L2
//! cache)". For affine tasks the polyhedral machinery can evaluate the
//! working set exactly: the distinct cells of every access class, counted
//! at candidate values of the size parameter. [`suggest_granularity`]
//! searches for the largest candidate whose footprint still fits.

use crate::access_info::analyze_task;
use dae_ir::{FuncId, Module};
use dae_poly::try_count_union_distinct;
use std::collections::HashMap;

/// Exact working-set size in bytes of a fully affine task at the given
/// parameter values; `None` when the task has non-affine accesses (use
/// profiling instead) or when the counts need missing hints.
pub fn footprint_bytes(module: &Module, task: FuncId, param_values: &[i64]) -> Option<u64> {
    let inlined = dae_analysis::transform::inline_all(module, task).ok()?;
    let inlined = dae_analysis::transform::optimize(&inlined);
    let info = analyze_task(module, &inlined);
    if !info.fully_affine() {
        return None;
    }
    if module.func(task).params.len() != param_values.len() {
        return None;
    }
    // Group by class (same array + parameter signature) and count distinct
    // cells per class; classes are disjoint by construction of the
    // parameter signature (up to aliasing between classes, which the §3.1
    // sizing rule tolerates: it only needs an upper-bound estimate).
    let mut per_class: HashMap<_, Vec<dae_poly::AffineImage>> = HashMap::new();
    let mut elem_of: HashMap<_, i64> = HashMap::new();
    for acc in &info.affine {
        let key = acc.class_key();
        elem_of.insert(key.clone(), acc.elem_bytes);
        let dspace = acc.domain.space();
        let map: Vec<dae_poly::LinExpr> = acc
            .subscripts
            .iter()
            .map(|s| {
                let mut e = dae_poly::LinExpr::constant(dspace, s.residual.const_term());
                for d in 0..dspace.dims {
                    let c = s.residual.dim_coeff(d);
                    if c != 0 {
                        e = e.add(&dae_poly::LinExpr::dim(dspace, d).scale(c));
                    }
                }
                e
            })
            .collect();
        per_class.entry(key).or_default().push(dae_poly::AffineImage::new(acc.domain.clone(), map));
    }
    let mut total = 0u64;
    for (key, images) in per_class {
        let cells = try_count_union_distinct(&images, param_values).ok()?;
        total += cells * elem_of[&key].unsigned_abs();
    }
    Some(total)
}

/// Finds the largest candidate value of one size knob whose working set
/// still fits `budget_bytes` (e.g. the private L1+L2 capacity).
///
/// `eval` maps a candidate to the full parameter vector — tasks usually
/// have other parameters (base offsets) that stay at representative
/// values. Candidates must be sorted ascending. Returns `None` when the
/// task is not affine or no candidate fits.
pub fn suggest_granularity(
    module: &Module,
    task: FuncId,
    candidates: &[i64],
    budget_bytes: u64,
    mut eval: impl FnMut(i64) -> Vec<i64>,
) -> Option<i64> {
    let mut best = None;
    for &cand in candidates {
        let params = eval(cand);
        let fp = footprint_bytes(module, task, &params)?;
        if fp <= budget_bytes {
            best = Some(cand);
        } else {
            break; // footprints grow with the size knob
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{FunctionBuilder, Type, Value};

    /// chunk-sum task: touches `chunk` elements of one array plus the same
    /// `chunk` of a second (distinct classes).
    fn chunk_task(module: &mut Module, chunk: i64) -> FuncId {
        let a = module.add_global(format!("a{chunk}"), Type::F64, 1 << 20);
        let c = module.add_global(format!("c{chunk}"), Type::F64, 1 << 20);
        let mut b = FunctionBuilder::new(format!("t{chunk}"), vec![Type::I64], Type::Void);
        b.set_task();
        b.counted_loop(Value::i64(0), Value::i64(chunk), Value::i64(1), |b, i| {
            let idx = b.iadd(Value::Arg(0), i);
            let pa = b.elem_addr(Value::Global(a), idx, Type::F64);
            let va = b.load(Type::F64, pa);
            let pc = b.elem_addr(Value::Global(c), idx, Type::F64);
            let vc = b.load(Type::F64, pc);
            let s = b.fadd(va, vc);
            b.store(pa, s);
        });
        b.ret(None);
        module.add_function(b.finish())
    }

    #[test]
    fn footprint_is_exact() {
        let mut m = Module::new();
        let t = chunk_task(&mut m, 512);
        // 512 elements from each of two arrays, 8 bytes each.
        assert_eq!(footprint_bytes(&m, t, &[0]), Some(2 * 512 * 8));
        // … independent of the base offset.
        assert_eq!(footprint_bytes(&m, t, &[4096]), Some(2 * 512 * 8));
    }

    #[test]
    fn suggests_largest_fitting_chunk() {
        // Candidate chunk sizes 256..8192; budget 64 KiB; footprint is
        // 16·chunk bytes, so the largest fitting chunk is 4096.
        let mut m = Module::new();
        let tasks: Vec<(i64, FuncId)> = [256, 512, 1024, 2048, 4096, 8192]
            .iter()
            .map(|&c| (c, chunk_task(&mut m, c)))
            .collect();
        let budget = 64 * 1024;
        // Emulate a size sweep: each candidate has its own task build.
        let mut best = None;
        for (chunk, t) in &tasks {
            if footprint_bytes(&m, *t, &[0]).expect("affine") <= budget {
                best = Some(*chunk);
            }
        }
        assert_eq!(best, Some(4096));
    }

    #[test]
    fn suggest_granularity_walks_candidates() {
        // A single task whose *parameter* is the chunk size cannot be
        // affine (parametric trip count), so the helper reports None —
        // the documented fallback-to-profiling case.
        let mut m = Module::new();
        let a = m.add_global("a", Type::F64, 1 << 16);
        let mut b = FunctionBuilder::new("pn", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            let p = b.elem_addr(Value::Global(a), i, Type::F64);
            let _ = b.load(Type::F64, p);
        });
        b.ret(None);
        b.set_task();
        let t = m.add_function(b.finish());
        let r = suggest_granularity(&m, t, &[64, 128], 4096, |c| vec![c]);
        assert_eq!(r, None);

        // The fixed-size variant works through the same API.
        let t2 = chunk_task(&mut m, 128);
        let r2 = suggest_granularity(&m, t2, &[0], 1 << 20, |c| vec![c]);
        assert_eq!(r2, Some(0), "the (only) candidate offset fits");
    }

    #[test]
    fn block_task_footprint_counts_all_classes() {
        // The LU interior task: three blk×blk classes.
        let w = crate::generate::tests_support_lu_inner();
        let (m, t, blk) = w;
        let fp = footprint_bytes(&m, t, &[0, blk, 2 * blk]).expect("affine");
        assert_eq!(fp, 3 * (blk * blk * 8) as u64);
    }
}
