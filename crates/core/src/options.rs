//! Compiler options and refusal reasons.

use std::fmt;

/// Knobs of the access-phase generator.
///
/// Defaults follow the paper; the ablation benches flip individual knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct CompilerOptions {
    /// Use the polyhedral path (§5.1) for affine tasks; when off, every task
    /// takes the skeleton path.
    pub enable_polyhedral: bool,
    /// Apply the §5.2.2 simplified-CFG optimisation (drop conditionals in
    /// loop bodies that do not maintain loop control flow).
    pub cfg_simplify: bool,
    /// §5.2.3 extension: prefetch only one access per cache line in
    /// generated affine nests (the expert trick of the Manual-DAE LibQ
    /// version). Off by default — the paper's auto-generator does not do it.
    pub line_dedup: bool,
    /// Allowed excess of the convex-hull point count:
    /// generate the hull scan iff `NconvUn - threshold <= NOrig`.
    pub hull_threshold: i64,
    /// Also emit prefetches for store addresses. The paper found this does
    /// not help ("prefetching the memory addresses accessed for writing does
    /// not improve performance"); kept as an ablation knob.
    pub prefetch_writes: bool,
    /// Representative values for the task's scalar parameters, used to
    /// evaluate the profitability counts (`NOrig`, `NconvUn`). One value per
    /// task parameter; tasks whose counts need a missing hint fall back to
    /// the skeleton path.
    pub param_hints: Vec<i64>,
    /// Disable the §5.1 profitability check entirely (ablation:
    /// always scan the hull).
    pub skip_hull_check: bool,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            enable_polyhedral: true,
            cfg_simplify: true,
            line_dedup: false,
            hull_threshold: 0,
            prefetch_writes: false,
            param_hints: Vec::new(),
            skip_hull_check: false,
        }
    }
}

/// Why no access version was generated for a task (§3.1 and §5.2.2 safety
/// conditions).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RefuseReason {
    /// The task (transitively) contains recursive, non-inlinable calls.
    NonInlinableCall(String),
    /// Loop control flow of the access version would depend on memory the
    /// task itself writes.
    ControlDependsOnTaskWrites,
    /// The task has no memory reads to prefetch.
    NothingToPrefetch,
}

impl fmt::Display for RefuseReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefuseReason::NonInlinableCall(name) => {
                write!(f, "task contains non-inlinable call in `{name}`")
            }
            RefuseReason::ControlDependsOnTaskWrites => {
                write!(f, "access-phase control flow would depend on task-written memory")
            }
            RefuseReason::NothingToPrefetch => write!(f, "task performs no memory reads"),
        }
    }
}

impl std::error::Error for RefuseReason {}

impl dae_ir::CodedError for RefuseReason {
    fn code(&self) -> &'static str {
        match self {
            RefuseReason::NonInlinableCall(_) => "compile.refused.non-inlinable-call",
            RefuseReason::ControlDependsOnTaskWrites => {
                "compile.refused.control-depends-on-task-writes"
            }
            RefuseReason::NothingToPrefetch => "compile.refused.nothing-to-prefetch",
        }
    }
}

/// Which §5 path produced an access version.
#[derive(Clone, Debug, PartialEq)]
pub enum Strategy {
    /// §5.1 polyhedral convex-union analysis.
    Polyhedral(AffineStats),
    /// §5.2 optimized task skeleton.
    Skeleton,
}

/// Statistics of the polyhedral decision for one task.
#[derive(Clone, Debug, PartialEq)]
pub struct AffineStats {
    /// Distinct cells touched by the original task (`NOrig`), per the
    /// representative parameters.
    pub n_orig: u64,
    /// Integer points in the convex union scanned by the generated nest
    /// (`NconvUn`).
    pub n_conv_un: u64,
    /// Number of access classes (arrays / parameter-distinct blocks).
    pub classes: usize,
    /// Number of generated scanning loop nests after merging.
    pub nests: usize,
    /// Depth of the original task's deepest analysed loop nest.
    pub orig_depth: usize,
    /// Depth of the deepest generated scanning nest.
    pub gen_depth: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = CompilerOptions::default();
        assert!(o.enable_polyhedral);
        assert!(o.cfg_simplify);
        assert!(!o.line_dedup);
        assert!(!o.prefetch_writes);
        assert_eq!(o.hull_threshold, 0);
    }

    #[test]
    fn refuse_reasons_display() {
        assert!(RefuseReason::NonInlinableCall("f".into()).to_string().contains("non-inlinable"));
        assert!(RefuseReason::ControlDependsOnTaskWrites.to_string().contains("control"));
        assert!(RefuseReason::NothingToPrefetch.to_string().contains("no memory reads"));
    }
}
