//! Line-granularity re-stepping of skeleton prefetch loops — what the
//! profile-guided `line_dedup` knob does on the §5.2 (non-affine) path.
//!
//! The affine generator steps its synthesised prefetch nests a cache
//! line at a time natively ([`crate::affine`]); a skeleton access
//! version instead inherits the task's own loops, which touch every
//! *element* and therefore prefetch each 64-byte line up to eight times.
//! Measured prefetch accuracy exposes that redundancy, and because an
//! access version has no architectural side effects (stores are
//! discarded, results unused), thinning its prefetch stream can never
//! change program semantics — only how much issue bandwidth the access
//! phase burns at `fmin`.
//!
//! [`restep_prefetch_loops`] multiplies the step of eligible innermost
//! counted loops by `64 / max prefetch byte-stride`, so each surviving
//! iteration still touches every line the original touched. A loop is
//! eligible only when the re-step provably cannot hurt coverage or leak:
//!
//! * recognised counted loop, single latch, IV its only header
//!   parameter, and an order-safe continue predicate (`lt`/`le`/`gt`/
//!   `ge` — overshooting an `ne` bound would spin);
//! * body free of loads, stores and calls — an index load (the CG
//!   gather pattern) means skipped iterations would skip *useful*
//!   prefetch addresses, so such loops are left at element granularity;
//! * every prefetch address has a scalar-evolution form whose stride in
//!   this loop is known, with the largest stride dividing the line;
//! * nothing defined in the loop is consumed outside it (the trip count
//!   changes, so live-outs would observe different values).

use dae_analysis::{AffineVar, FunctionAnalysis};
use dae_ir::{BinOp, BlockId, CmpOp, Function, InstKind, Terminator, Value};

/// Cache line size the re-step targets, in bytes.
const LINE_BYTES: i64 = 64;

/// One planned loop rewrite: replace the latch's IV increment.
struct Restep {
    latch: BlockId,
    iv: Value,
    iv_arg_index: usize,
    new_step: i64,
}

/// Returns `func` with every eligible innermost prefetch loop re-stepped
/// to line granularity. Ineligible loops (and functions with none) come
/// back byte-identical.
pub fn restep_prefetch_loops(func: &Function) -> Function {
    let plans = plan_resteps(func);
    if plans.is_empty() {
        return func.clone();
    }
    let mut f = func.clone();
    for p in plans {
        let inc = f.create_inst(
            InstKind::Binary { op: BinOp::IAdd, lhs: p.iv, rhs: Value::i64(p.new_step) },
            dae_ir::Type::I64,
        );
        f.append_inst(p.latch, inc);
        if let Terminator::Jump(dest) = f.terminator(p.latch).clone() {
            let mut dest = dest;
            dest.args[p.iv_arg_index] = Value::Inst(inc);
            f.set_terminator(p.latch, Terminator::Jump(dest));
        }
    }
    f
}

fn plan_resteps(func: &Function) -> Vec<Restep> {
    let analysis = FunctionAnalysis::run(func);
    let mut scev = analysis.scev();
    let mut plans = Vec::new();

    for (lp, l) in analysis.forest.loops() {
        if !l.children.is_empty() || l.latches.len() != 1 {
            continue;
        }
        let counted = match scev.counted(lp) {
            Some(c) => c.clone(),
            None => continue,
        };
        if counted.step == 0
            || !matches!(counted.cmp, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge)
            || func.block(l.header).params.len() != 1
        {
            continue;
        }
        let latch = l.latches[0];

        // Body scan: refuse memory/calls, collect prefetch addresses in
        // deterministic block order.
        let mut prefetches: Vec<Value> = Vec::new();
        let mut eligible = true;
        for bb in func.block_ids().filter(|bb| l.blocks.contains(bb)) {
            for &inst in &func.block(bb).insts {
                match &func.inst(inst).kind {
                    InstKind::Load { .. } | InstKind::Store { .. } | InstKind::Call { .. } => {
                        eligible = false;
                    }
                    InstKind::Prefetch { addr } => prefetches.push(*addr),
                    _ => {}
                }
            }
        }
        if !eligible || prefetches.is_empty() {
            continue;
        }

        // Every prefetch stride in this loop must be known; the largest
        // bounds the re-step factor so no line goes untouched.
        let mut max_stride: i64 = 0;
        for &addr in &prefetches {
            match scev.pointer_of(addr) {
                Some(ptr) => {
                    let d = ptr.offset.coeff(AffineVar::Iv(lp)).abs();
                    max_stride = max_stride.max(d);
                }
                None => {
                    eligible = false;
                    break;
                }
            }
        }
        if !eligible || max_stride == 0 {
            continue;
        }
        let k = LINE_BYTES / max_stride;
        if k < 2 {
            continue;
        }
        let new_step = match counted.step.checked_mul(k) {
            Some(s) => s,
            None => continue,
        };

        if loop_values_escape(func, &analysis, &l.blocks) {
            continue;
        }

        // The latch must pass `iv + step` straight back to the header.
        let arg = match func.terminator(latch) {
            Terminator::Jump(dest) if dest.block == l.header => {
                dest.args.get(counted.iv_index as usize).copied()
            }
            _ => None,
        };
        let add_is_increment = |v: Value| match v {
            Value::Inst(id) => match &func.inst(id).kind {
                InstKind::Binary { op: BinOp::IAdd, lhs, rhs } => {
                    (*lhs == counted.iv && *rhs == Value::i64(counted.step))
                        || (*rhs == counted.iv && *lhs == Value::i64(counted.step))
                }
                _ => false,
            },
            _ => false,
        };
        if !arg.is_some_and(add_is_increment) {
            continue;
        }

        plans.push(Restep {
            latch,
            iv: counted.iv,
            iv_arg_index: counted.iv_index as usize,
            new_step,
        });
    }
    plans
}

/// True when any value defined inside the loop (an instruction placed in
/// a loop block, or a loop block's parameter) is consumed outside it —
/// including by edge arguments leaving the loop.
fn loop_values_escape(
    func: &Function,
    analysis: &FunctionAnalysis<'_>,
    blocks: &std::collections::HashSet<BlockId>,
) -> bool {
    let defined_inside = |v: Value| match v {
        Value::Inst(id) => {
            let mut home = None;
            func.for_each_placed_inst(|bb, i| {
                if i == id {
                    home = Some(bb);
                }
            });
            home.is_some_and(|bb| blocks.contains(&bb))
        }
        Value::BlockParam { block, .. } => blocks.contains(&block),
        _ => false,
    };

    let mut escapes = false;
    for bb in func.block_ids() {
        if !analysis.cfg.is_reachable(bb) || func.block(bb).term.is_none() {
            continue;
        }
        if blocks.contains(&bb) {
            // Edges leaving the loop must not carry loop-defined values.
            for dest in func.terminator(bb).successors() {
                if !blocks.contains(&dest.block) {
                    escapes = escapes || dest.args.iter().any(|&a| defined_inside(a));
                }
            }
        } else {
            for &inst in &func.block(bb).insts {
                func.inst(inst).kind.for_each_operand(|o| {
                    escapes = escapes || defined_inside(o);
                });
            }
            func.terminator(bb).for_each_operand(|o| {
                escapes = escapes || defined_inside(o);
            });
        }
    }
    escapes
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{print_function, verify_function, FunctionBuilder, Type, Value};

    /// `for i in 0..n { prefetch &a[i] }` over f64 (8-byte stride).
    fn prefetch_loop(stride_elems: i64) -> Function {
        let mut b = FunctionBuilder::new("acc", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            let scaled = b.imul(i, stride_elems);
            let off = b.imul(scaled, 8i64);
            let addr = b.ptr_add(Value::Global(dae_ir::GlobalId(0)), off);
            b.prefetch(addr);
        });
        b.ret(None);
        b.finish()
    }

    fn latch_step(f: &Function) -> Option<i64> {
        // The largest IAdd constant anywhere: the (only) loop's step.
        let mut step = None;
        f.for_each_placed_inst(|_, i| {
            if let InstKind::Binary { op: BinOp::IAdd, rhs: Value::ConstI64(c), .. } =
                f.inst(i).kind
            {
                step = Some(step.unwrap_or(i64::MIN).max(c));
            }
        });
        step
    }

    #[test]
    fn unit_stride_prefetch_loop_is_restepped_to_the_line() {
        let f = prefetch_loop(1);
        let out = restep_prefetch_loops(&f);
        verify_function(&out, None).unwrap();
        assert_eq!(latch_step(&out), Some(8), "{}", print_function(&out, None));
        assert_ne!(print_function(&f, None), print_function(&out, None));
    }

    #[test]
    fn line_stride_and_coarser_loops_are_left_alone() {
        for stride in [8i64, 16] {
            let f = prefetch_loop(stride);
            let out = restep_prefetch_loops(&f);
            assert_eq!(print_function(&f, None), print_function(&out, None));
        }
    }

    #[test]
    fn loops_with_loads_are_left_alone() {
        // The gather shape: prefetch x[col[j]] needs col[j] loaded every
        // iteration — restepping would skip useful addresses.
        let mut b = FunctionBuilder::new("acc", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, j| {
            let ca = b.elem_addr(Value::Global(dae_ir::GlobalId(0)), j, Type::I64);
            let c = b.load(Type::I64, ca);
            let xa = b.elem_addr(Value::Global(dae_ir::GlobalId(1)), c, Type::F64);
            b.prefetch(xa);
        });
        b.ret(None);
        let f = b.finish();
        let out = restep_prefetch_loops(&f);
        assert_eq!(print_function(&f, None), print_function(&out, None));
    }

    #[test]
    fn restepped_loop_still_covers_every_line() {
        // Trip 100 at stride 8 bytes touches byte offsets 0..800 — lines
        // 0..=12. After the re-step (step 8, offsets 0,64,...), the same
        // lines are all still prefetched.
        let f = prefetch_loop(1);
        let out = restep_prefetch_loops(&f);
        let lines = |f: &Function, n: i64| -> Vec<i64> {
            // Interpret the loop symbolically: collect i*8 for each
            // surviving iteration, mapped to line indices.
            let step = latch_step(f).unwrap();
            (0..n).step_by(step as usize).map(|i| i * 8 / 64).collect()
        };
        let orig: std::collections::BTreeSet<i64> = lines(&f, 100).into_iter().collect();
        let new: std::collections::BTreeSet<i64> = lines(&out, 100).into_iter().collect();
        assert_eq!(orig, new);
    }
}
