//! Extraction of affine access descriptors from a task.
//!
//! Bridges `dae-analysis` scalar evolution and `dae-poly`: every load whose
//! address is an affine function of counted-loop induction variables and
//! task parameters becomes an [`AffineAccess`] — an iteration-domain
//! polyhedron plus a delinearised subscript map — ready for the §5.1 convex
//! union analysis.

use dae_analysis::scev::{Affine, AffineVar};
use dae_analysis::{CountedLoop, FunctionAnalysis, LoopId, ScalarEvolution};
use dae_ir::{CmpOp, Function, GlobalId, InstKind, Module, Value};
use dae_poly::{LinExpr, Polyhedron, Space};
use std::collections::HashMap;

/// One subscript dimension of a delinearised access.
#[derive(Clone, Debug, PartialEq)]
pub struct SubScript {
    /// Multiplier of this subscript in the linearised element offset.
    pub stride_elems: i64,
    /// Induction-variable-and-constant part, as a polyhedral expression over
    /// the access's iteration-domain dims (no parameters).
    pub residual: LinExpr,
    /// Parameter part in element units (the class signature of §5.1
    /// trade-off 3: accesses with equal parameter coefficients share a
    /// class). Constants stay in `residual` so that constant-offset accesses
    /// (stencils, disjoint regions) participate in the hull computation.
    pub param_coeffs: Vec<i64>,
}

/// A fully-analysed affine memory access.
#[derive(Clone, Debug)]
pub struct AffineAccess {
    /// The array accessed.
    pub global: GlobalId,
    /// Element size in bytes used for delinearisation (8, or 1 when the
    /// offset is not element-aligned).
    pub elem_bytes: i64,
    /// Enclosing counted loops, outermost first.
    pub nest: Vec<LoopId>,
    /// Iteration domain: dims = `nest` IVs (in order), params = task args.
    pub domain: Polyhedron,
    /// Delinearised subscripts, largest stride first.
    pub subscripts: Vec<SubScript>,
}

/// Key of an access class (§5.1): array identity plus per-subscript
/// `(stride, parameter coefficients)`.
pub type ClassKey = (GlobalId, Vec<(i64, Vec<i64>)>);

impl AffineAccess {
    /// The class key of §5.1: array identity, subscript strides and the
    /// parameter parts must all match for two accesses to share a class.
    pub fn class_key(&self) -> ClassKey {
        (
            self.global,
            self.subscripts.iter().map(|s| (s.stride_elems, s.param_coeffs.clone())).collect(),
        )
    }
}

/// Result of scanning one task for affine accesses.
#[derive(Debug, Default)]
pub struct TaskAccessInfo {
    /// Loads with a complete affine description.
    pub affine: Vec<AffineAccess>,
    /// Total loads encountered.
    pub total_loads: usize,
    /// Loads that could not be described (indirect, non-counted loops, …).
    pub non_affine_loads: usize,
    /// Loops in the task, total.
    pub loops_total: usize,
    /// Loops in which every contained load is affine (the paper's
    /// "# affine loops" of Table 1).
    pub loops_affine: usize,
    /// True when the task has a branch that is not the exit test of a
    /// counted loop — data-dependent control flow, which the polyhedral
    /// model cannot represent (non-SCoP).
    pub has_data_dependent_cf: bool,
}

impl TaskAccessInfo {
    /// True when the whole task is analysable by the polyhedral path: every
    /// load affine and every branch a counted-loop exit test (static
    /// control flow).
    pub fn fully_affine(&self) -> bool {
        self.total_loads > 0 && self.non_affine_loads == 0 && !self.has_data_dependent_cf
    }
}

/// Converts a scalar-evolution [`Affine`] into a polyhedral [`LinExpr`] over
/// `space`, mapping IVs through `iv_dim` and `Param(i)` to parameter `i`.
/// Returns `None` when the expression uses an IV outside the mapping or a
/// coefficient overflows the polyhedral range.
fn to_linexpr(space: Space, iv_dim: &HashMap<LoopId, usize>, a: &Affine) -> Option<LinExpr> {
    let mut e = LinExpr::constant(space, a.constant as i128);
    for v in a.vars() {
        let c = a.coeff(v) as i128;
        match v {
            AffineVar::Iv(lp) => {
                let d = *iv_dim.get(&lp)?;
                e = e.add(&LinExpr::dim(space, d).scale(c));
            }
            AffineVar::Param(p) => {
                if (p as usize) >= space.params {
                    return None;
                }
                e = e.add(&LinExpr::param(space, p as usize).scale(c));
            }
        }
    }
    Some(e)
}

/// Applies the simultaneous IV-normalisation substitution to an affine
/// expression: every original IV is replaced by `init + step·k` where `k`
/// is the zero-based normalised counter of its loop.
fn normalize_affine(a: &Affine, subst: &HashMap<LoopId, Affine>) -> Option<Affine> {
    let mut out = Affine::constant(a.constant);
    for v in a.vars() {
        let c = a.coeff(v);
        match v {
            AffineVar::Param(_) => out = out.add(&Affine::var(v).scale(c)),
            AffineVar::Iv(l) => {
                let repl = subst.get(&l)?;
                out = out.add(&repl.scale(c));
            }
        }
    }
    Some(out)
}

/// Builds the iteration-domain polyhedron of a loop nest.
///
/// IVs whose initial value involves **parameters** (the chunked-task
/// pattern `for i in base .. base+B`) are *normalised*: the dim becomes the
/// zero-based counter `k` with `iv = init + step·k`, so the parametric
/// offset migrates into the access subscripts (the class parameter part of
/// §5.1, trade-off 3). IVs with parameter-free inits (constant or
/// triangular bounds) keep their natural coordinates. Parametric *trip
/// counts* remain as parameter terms in the domain and are rejected by the
/// caller — the skeleton path handles them.
///
/// Returns the domain plus the IV substitution map.
fn build_domain(
    space: Space,
    iv_dim: &HashMap<LoopId, usize>,
    nest: &[LoopId],
    scev: &mut ScalarEvolution<'_>,
) -> Option<(Polyhedron, HashMap<LoopId, Affine>)> {
    let mut dom = Polyhedron::universe(space);
    let mut subst: HashMap<LoopId, Affine> = HashMap::new();
    for (k, lp) in nest.iter().enumerate() {
        let counted: CountedLoop = scev.counted(*lp)?.clone();
        if counted.step.abs() != 1 {
            return None;
        }
        let init = normalize_affine(&scev.affine_of(counted.init)?, &subst)?;
        let bound = normalize_affine(&scev.affine_of(counted.bound)?, &subst)?;
        let init_has_params = init.vars().any(|v| matches!(v, AffineVar::Param(_)));

        let init_e = to_linexpr(space, iv_dim, &init)?;
        let bound_e = to_linexpr(space, iv_dim, &bound)?;
        // Bounds may only reference outer dims.
        for d in k..space.dims {
            if init_e.dim_coeff(d) != 0 || bound_e.dim_coeff(d) != 0 {
                return None;
            }
        }
        let dim_v = LinExpr::dim(space, k);
        if init_has_params {
            // Normalise: iv = init + step·k, 0 <= k < trip count.
            subst.insert(*lp, init.add(&Affine::var(AffineVar::Iv(*lp)).scale(counted.step)));
            dom.add_ge0(dim_v.clone()); // k >= 0
            let diff = if counted.step == 1 { bound_e.sub(&init_e) } else { init_e.sub(&bound_e) };
            match (counted.step, counted.cmp) {
                (1, CmpOp::Lt) | (1, CmpOp::Ne) | (-1, CmpOp::Gt) | (-1, CmpOp::Ne) => {
                    dom.add_ge0(diff.sub(&dim_v).add(&LinExpr::constant(space, -1)));
                }
                (1, CmpOp::Le) | (-1, CmpOp::Ge) => {
                    dom.add_ge0(diff.sub(&dim_v));
                }
                _ => return None,
            }
        } else {
            // Natural coordinates: the dim is the IV itself.
            subst.insert(*lp, Affine::var(AffineVar::Iv(*lp)));
            if counted.step == 1 {
                dom.add_ge0(dim_v.sub(&init_e)); // iv >= init
                match counted.cmp {
                    CmpOp::Lt | CmpOp::Ne => {
                        dom.add_ge0(bound_e.sub(&dim_v).add(&LinExpr::constant(space, -1)))
                    }
                    CmpOp::Le => dom.add_ge0(bound_e.sub(&dim_v)),
                    _ => return None,
                }
            } else {
                dom.add_ge0(init_e.sub(&dim_v)); // iv <= init
                match counted.cmp {
                    CmpOp::Gt | CmpOp::Ne => {
                        dom.add_ge0(dim_v.sub(&bound_e).add(&LinExpr::constant(space, -1)))
                    }
                    CmpOp::Ge => dom.add_ge0(dim_v.sub(&bound_e)),
                    _ => return None,
                }
            }
        }
    }
    Some((dom, subst))
}

/// Delinearises an element-space affine offset into stride-ordered
/// subscripts. Falls back to a single 1-D subscript (the §5.1.1
/// memory-range behaviour) when parameter terms don't divide cleanly.
fn delinearize(space: Space, offset_elems: &Affine, n_params: usize) -> Vec<SubScript> {
    // Distinct |coeff| of IV terms, descending.
    let mut strides: Vec<i64> = offset_elems
        .vars()
        .filter(|v| matches!(v, AffineVar::Iv(_)))
        .map(|v| offset_elems.coeff(v).abs())
        .filter(|&c| c != 0)
        .collect();
    strides.sort_unstable_by(|a, b| b.cmp(a));
    strides.dedup();
    if strides.is_empty() {
        strides.push(1);
    }

    // Partition terms by stride.
    let mut subs: Vec<SubScript> = strides
        .iter()
        .map(|&s| SubScript {
            stride_elems: s,
            residual: LinExpr::zero(Space::new(space.dims, 0)),
            param_coeffs: vec![0; n_params],
        })
        .collect();

    let mut fallback = false;
    for v in offset_elems.vars() {
        let c = offset_elems.coeff(v);
        match v {
            AffineVar::Iv(_) => { /* handled by caller, which knows dim mapping */ }
            AffineVar::Param(p) => {
                // Largest stride dividing the coefficient.
                match strides.iter().position(|&s| c % s == 0) {
                    Some(k) => subs[k].param_coeffs[p as usize] += c / strides[k],
                    None => fallback = true,
                }
            }
        }
    }
    // Constant: greedy decomposition into the residuals, largest stride
    // first (constants live in hull space, not in the class signature).
    let mut rem = offset_elems.constant;
    for (k, &s) in strides.iter().enumerate() {
        let q = if k + 1 == strides.len() { rem / s } else { rem.div_euclid(s) };
        let old = subs[k].residual.const_term();
        subs[k].residual = subs[k].residual.clone().with_const(old + q as i128);
        rem -= q * s;
    }
    if rem != 0 {
        fallback = true;
    }

    if fallback {
        // Single 1-D subscript covering the whole expression.
        let mut s = SubScript {
            stride_elems: 1,
            residual: LinExpr::constant(Space::new(space.dims, 0), offset_elems.constant as i128),
            param_coeffs: vec![0; n_params],
        };
        for v in offset_elems.vars() {
            if let AffineVar::Param(p) = v {
                s.param_coeffs[p as usize] = offset_elems.coeff(v);
            }
        }
        return vec![s];
    }
    subs
}

/// Scans `task` and produces its [`TaskAccessInfo`].
pub fn analyze_task(module: &Module, task: &Function) -> TaskAccessInfo {
    let _ = module;
    let analysis = FunctionAnalysis::run(task);
    let mut scev = analysis.scev();
    let mut info = TaskAccessInfo { loops_total: analysis.forest.len(), ..Default::default() };

    // Track per-loop affineness: a loop counts as affine if all loads in it
    // (transitively) are affine.
    let mut loop_has_nonaffine: HashMap<LoopId, bool> = HashMap::new();

    let mut work: Vec<(dae_ir::BlockId, dae_ir::InstId)> = Vec::new();
    task.for_each_placed_inst(|bb, inst| work.push((bb, inst)));

    for (bb, inst) in work {
        let addr = match &task.inst(inst).kind {
            InstKind::Load { addr } => *addr,
            _ => continue,
        };
        info.total_loads += 1;
        let described = describe_load(task, &analysis, &mut scev, bb, addr);
        match described {
            Some(acc) => info.affine.push(acc),
            None => {
                info.non_affine_loads += 1;
                for lp in analysis.forest.nest_of(bb) {
                    loop_has_nonaffine.insert(lp, true);
                }
            }
        }
    }

    // Static-control-flow check: every conditional branch must be the exit
    // test of a recognised counted loop.
    for bb in task.block_ids() {
        if !analysis.cfg.is_reachable(bb) {
            continue;
        }
        if matches!(task.terminator(bb), dae_ir::Terminator::Branch { .. }) {
            let is_counted_header = analysis
                .forest
                .loop_with_header(bb)
                .map(|lp| scev.counted(lp).is_some())
                .unwrap_or(false);
            if !is_counted_header {
                info.has_data_dependent_cf = true;
                // Loops containing the irregular branch are not affine.
                for lp in analysis.forest.nest_of(bb) {
                    loop_has_nonaffine.insert(lp, true);
                }
            }
        }
    }

    info.loops_affine = analysis
        .forest
        .loops()
        .filter(|(id, _)| {
            !loop_has_nonaffine.get(id).copied().unwrap_or(false) && scev.counted(*id).is_some()
        })
        .count();
    info
}

fn describe_load(
    task: &Function,
    analysis: &FunctionAnalysis<'_>,
    scev: &mut ScalarEvolution<'_>,
    bb: dae_ir::BlockId,
    addr: Value,
) -> Option<AffineAccess> {
    let ptr = scev.pointer_of(addr)?;
    let nest = analysis.forest.nest_of(bb);
    let n_params = task.params.len();
    let space = Space::new(nest.len(), n_params);
    let iv_dim: HashMap<LoopId, usize> = nest.iter().enumerate().map(|(i, l)| (*l, i)).collect();

    // Every IV in the offset must belong to the enclosing nest.
    for v in ptr.offset.vars() {
        if let AffineVar::Iv(lp) = v {
            if !iv_dim.contains_key(&lp) {
                return None;
            }
        }
    }

    let (domain, subst) = build_domain(space, &iv_dim, &nest, scev)?;
    // Parametric trip counts cannot be scanned by a concretely-hulled nest:
    // leave those to the skeleton path.
    if domain.constraints().iter().any(|c| (0..n_params).any(|p| c.expr.param_coeff(p) != 0)) {
        return None;
    }
    // Rewrite the byte offset onto the normalised counters.
    let ptr_offset = normalize_affine(&ptr.offset, &subst)?;

    // Bytes → elements.
    let elem: i64 = 8;
    let divisible = ptr_offset.constant % elem == 0
        && ptr_offset.vars().all(|v| ptr_offset.coeff(v) % elem == 0);
    let (elem_bytes, offset_elems) = if divisible {
        let mut o = Affine::constant(ptr_offset.constant / elem);
        for v in ptr_offset.vars() {
            o = o.add(&Affine::var(v).scale(ptr_offset.coeff(v) / elem));
        }
        (elem, o)
    } else {
        (1, ptr_offset.clone())
    };

    let mut subscripts = delinearize(space, &offset_elems, n_params);
    // Fill the residual (IV) parts now that the dim mapping is known.
    let res_space = Space::new(space.dims, 0);
    for v in offset_elems.vars() {
        if let AffineVar::Iv(lp) = v {
            let c = offset_elems.coeff(v);
            let d = iv_dim[&lp];
            // Find the subscript whose stride divides this coefficient
            // exactly (by construction |c| is one of the strides, unless we
            // fell back to 1-D).
            let k = subscripts
                .iter()
                .position(|s| {
                    c % s.stride_elems == 0
                        && (c / s.stride_elems).abs() >= 1
                        && s.stride_elems == c.abs()
                })
                .or_else(|| subscripts.iter().position(|s| c % s.stride_elems == 0))?;
            let stride = subscripts[k].stride_elems;
            subscripts[k].residual =
                subscripts[k].residual.add(&LinExpr::dim(res_space, d).scale((c / stride) as i128));
        }
    }

    Some(AffineAccess { global: ptr.base, elem_bytes, nest, domain, subscripts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{FunctionBuilder, Type};

    /// Builds the paper's Listing 1(b) LU block loop nest over an N×N
    /// matrix (constant trip counts, as in the block-sized task setting).
    fn lu_task(n: i64) -> (Module, Function) {
        let mut m = Module::new();
        let a = m.add_global("A", Type::F64, (n * n) as u64);
        let mut b = FunctionBuilder::new("lu", vec![Type::I64], Type::Void);
        b.set_task();
        let ga = Value::Global(a);
        b.counted_loop(Value::i64(0), Value::i64(n), Value::i64(1), |b, i| {
            let lo = b.iadd(i, 1i64);
            b.counted_loop(lo, Value::i64(n), Value::i64(1), |b, j| {
                // A[j][i] /= A[i][i]
                let ji = {
                    let r = b.imul(j, n);
                    let idx = b.iadd(r, i);
                    b.elem_addr(ga, idx, Type::F64)
                };
                let ii = {
                    let r = b.imul(i, n);
                    let idx = b.iadd(r, i);
                    b.elem_addr(ga, idx, Type::F64)
                };
                let vji = b.load(Type::F64, ji);
                let vii = b.load(Type::F64, ii);
                let q = b.fdiv(vji, vii);
                b.store(ji, q);
                let lo2 = b.iadd(i, 1i64);
                b.counted_loop(lo2, Value::i64(n), Value::i64(1), |b, k| {
                    // A[j][k] -= A[j][i] * A[i][k]
                    let jk = {
                        let r = b.imul(j, n);
                        let idx = b.iadd(r, k);
                        b.elem_addr(ga, idx, Type::F64)
                    };
                    let ik = {
                        let r = b.imul(i, n);
                        let idx = b.iadd(r, k);
                        b.elem_addr(ga, idx, Type::F64)
                    };
                    let vjk = b.load(Type::F64, jk);
                    let vji2 = b.load(Type::F64, ji);
                    let vik = b.load(Type::F64, ik);
                    let p = b.fmul(vji2, vik);
                    let d = b.fsub(vjk, p);
                    b.store(jk, d);
                });
            });
        });
        b.ret(None);
        (m, b.finish())
    }

    #[test]
    fn lu_is_fully_affine() {
        let (m, f) = lu_task(16);
        let info = analyze_task(&m, &f);
        assert_eq!(info.total_loads, 5);
        assert_eq!(info.non_affine_loads, 0);
        assert!(info.fully_affine());
        assert_eq!(info.loops_total, 3);
        assert_eq!(info.loops_affine, 3);
    }

    #[test]
    fn lu_access_shapes() {
        let (m, f) = lu_task(16);
        let info = analyze_task(&m, &f);
        // A[i][i] delinearises to one subscript of stride N+1 = 17 with
        // residual i (offset = 17·i elements).
        let diag = info
            .affine
            .iter()
            .find(|a| a.subscripts.len() == 1 && a.subscripts[0].stride_elems == 17)
            .expect("A[i][i] found");
        assert_eq!(diag.subscripts[0].residual.dim_coeff(0), 1);
        // An off-diagonal access like A[j][i] keeps the (16, 1) shape.
        let off = info
            .affine
            .iter()
            .find(|a| a.subscripts.len() == 2)
            .expect("off-diagonal access found");
        assert_eq!(off.subscripts[0].stride_elems, 16);
        assert_eq!(off.subscripts[1].stride_elems, 1);
        // Domain of the innermost accesses has 3 dims.
        let deepest = info.affine.iter().map(|a| a.nest.len()).max().unwrap();
        assert_eq!(deepest, 3);
    }

    #[test]
    fn domain_counts_triangle() {
        let (m, f) = lu_task(8);
        let info = analyze_task(&m, &f);
        // A 2-level access (A[j][i] in the j-loop): the normalised domain is
        // the triangle {0<=i<8, 0<=k<7-i} — 28 points.
        let two_level = info.affine.iter().find(|a| a.nest.len() == 2).expect("2-level access");
        let dom = two_level.domain.instantiate_params(&[0]);
        assert_eq!(dom.count_integer_points(), 28);
    }

    #[test]
    fn indirect_access_is_rejected() {
        let mut m = Module::new();
        let a = m.add_global("a", Type::F64, 64);
        let idx = m.add_global("idx", Type::I64, 64);
        let mut b = FunctionBuilder::new("gather", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::i64(64), Value::i64(1), |b, i| {
            let ia = b.elem_addr(Value::Global(idx), i, Type::I64);
            let iv = b.load(Type::I64, ia);
            let aa = b.elem_addr(Value::Global(a), iv, Type::F64);
            let _ = b.load(Type::F64, aa);
        });
        b.ret(None);
        let f = b.finish();
        let info = analyze_task(&m, &f);
        assert_eq!(info.total_loads, 2);
        assert_eq!(info.non_affine_loads, 1); // a[idx[i]] rejected
        assert_eq!(info.affine.len(), 1); // idx[i] itself is affine
        assert!(!info.fully_affine());
        assert_eq!(info.loops_affine, 0, "loop contains a non-affine load");
    }

    #[test]
    fn parameter_offsets_form_classes() {
        // A[Ax + i] and A[Dx + i] — Listing 3's two classes.
        let mut m = Module::new();
        let a = m.add_global("A", Type::F64, 4096);
        let mut b =
            FunctionBuilder::new("blocks", vec![Type::I64, Type::I64, Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::i64(32), Value::i64(1), |b, i| {
            let i1 = b.iadd(Value::Arg(1), i);
            let p1 = b.elem_addr(Value::Global(a), i1, Type::F64);
            let _ = b.load(Type::F64, p1);
            let i2 = b.iadd(Value::Arg(2), i);
            let p2 = b.elem_addr(Value::Global(a), i2, Type::F64);
            let _ = b.load(Type::F64, p2);
        });
        b.ret(None);
        let f = b.finish();
        let info = analyze_task(&m, &f);
        assert_eq!(info.affine.len(), 2);
        let k1 = info.affine[0].class_key();
        let k2 = info.affine[1].class_key();
        assert_ne!(k1, k2, "different parameter offsets must split classes");
    }

    #[test]
    fn parametric_init_normalises_into_param_part() {
        // for i in arg0 .. arg0+64 { touch a[i] } — the quickstart pattern:
        // the chunk offset must land in the subscript's parameter part, and
        // the normalised domain must be concrete.
        let mut m = Module::new();
        let a = m.add_global("a", Type::F64, 1 << 16);
        let mut b = FunctionBuilder::new("chunked", vec![Type::I64], Type::Void);
        let hi = b.iadd(Value::Arg(0), 64i64);
        b.counted_loop(Value::Arg(0), hi, Value::i64(1), |b, i| {
            let p = b.elem_addr(Value::Global(a), i, Type::F64);
            let _ = b.load(Type::F64, p);
        });
        b.ret(None);
        let f = b.finish();
        let info = analyze_task(&m, &f);
        assert_eq!(info.affine.len(), 1, "{info:?}");
        let acc = &info.affine[0];
        assert_eq!(acc.subscripts.len(), 1);
        assert_eq!(acc.subscripts[0].param_coeffs, vec![1], "offset in param part");
        let dom = acc.domain.instantiate_params(&[0]);
        assert_eq!(dom.count_integer_points(), 64);
    }

    #[test]
    fn parametric_trip_count_is_rejected() {
        // for i in 0..n { touch a[i] } — a parametric trip count cannot be
        // scanned by a concretely-hulled nest; the skeleton path takes over.
        let mut m = Module::new();
        let a = m.add_global("a", Type::F64, 1 << 16);
        let mut b = FunctionBuilder::new("pn", vec![Type::I64], Type::Void);
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            let p = b.elem_addr(Value::Global(a), i, Type::F64);
            let _ = b.load(Type::F64, p);
        });
        b.ret(None);
        let f = b.finish();
        let info = analyze_task(&m, &f);
        assert_eq!(info.affine.len(), 0);
        assert_eq!(info.non_affine_loads, 1);
    }

    #[test]
    fn descending_loop_domain() {
        let mut m = Module::new();
        let a = m.add_global("a", Type::F64, 64);
        let mut bld = FunctionBuilder::new("down", vec![], Type::Void);
        let header = bld.create_block();
        let body = bld.create_block();
        let exit = bld.create_block();
        let iv = bld.block_param(header, Type::I64);
        bld.jump(header, vec![Value::i64(9)]);
        bld.switch_to(header);
        let c = bld.cmp(CmpOp::Ge, iv, 0i64);
        bld.branch(c, body, vec![], exit, vec![]);
        bld.switch_to(body);
        let addr = bld.elem_addr(Value::Global(a), iv, Type::F64);
        let _ = bld.load(Type::F64, addr);
        let next = bld.isub(iv, 1i64);
        bld.jump(header, vec![next]);
        bld.switch_to(exit);
        bld.ret(None);
        let f = bld.finish();
        let info = analyze_task(&m, &f);
        assert_eq!(info.affine.len(), 1);
        let dom = info.affine[0].domain.instantiate_params(&[]);
        assert_eq!(dom.count_integer_points(), 10);
    }
}
