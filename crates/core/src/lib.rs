//! # dae-core — automatic access-phase generation (the paper's contribution)
//!
//! Implements the compiler transformation of *"Fix the code. Don't tweak
//! the hardware: A new compiler approach to Voltage-Frequency scaling"*
//! (CGO 2014): given a task (an IR function marked `is_task`), generate a
//! lightweight, memory-bound **access phase** that prefetches the task's
//! data so the unmodified **execute phase** runs compute-bound on a warm
//! cache — letting the runtime drop frequency for the access phase and
//! raise it for the execute phase.
//!
//! Two generation strategies, selected automatically:
//!
//! * [`affine::generate_affine_access`] (§5.1) — for tasks whose memory
//!   accesses are affine in counted-loop IVs and task parameters: computes
//!   per-instruction access sets, their union, the convex hull, the
//!   `NconvUn <= NOrig` profitability check, parameter classes, nest
//!   merging, and emits a *minimal-depth* prefetch loop nest.
//! * [`skeleton::generate_skeleton_access`] (§5.2) — for everything else:
//!   inline, clone, simplify the CFG (drop in-loop conditionals), accompany
//!   loads with prefetches, discard stores, and let DCE slice the task down
//!   to address computation and loop control.
//!
//! The paper's safety conditions are enforced: non-inlinable (recursive)
//! calls refuse generation, as does access-phase control flow that would
//! consume memory the task writes.
//!
//! # Examples
//!
//! ```
//! use dae_core::{generate_access, CompilerOptions, Strategy};
//! use dae_ir::{FunctionBuilder, Module, Type, Value};
//!
//! let mut module = Module::new();
//! let a = module.add_global("a", Type::F64, 4096);
//! // The task scales a 512-element chunk starting at its argument.
//! let mut b = FunctionBuilder::new("scale", vec![Type::I64], Type::Void);
//! b.set_task();
//! b.counted_loop(Value::i64(0), Value::i64(512), Value::i64(1), |b, i| {
//!     let idx = b.iadd(Value::Arg(0), i);
//!     let p = b.elem_addr(Value::Global(a), idx, Type::F64);
//!     let v = b.load(Type::F64, p);
//!     let w = b.fmul(v, 3.0f64);
//!     b.store(p, w);
//! });
//! b.ret(None);
//! let task = module.add_function(b.finish());
//!
//! let opts = CompilerOptions { param_hints: vec![0], ..Default::default() };
//! let access = generate_access(&module, task, &opts)?;
//! assert!(matches!(access.strategy, Strategy::Polyhedral(_)));
//! # Ok::<(), dae_core::RefuseReason>(())
//! ```

#![warn(missing_docs)]

pub mod access_info;
pub mod affine;
pub mod dedup;
pub mod generate;
pub mod granularity;
pub mod options;
pub mod profile;
pub mod skeleton;

pub use access_info::{analyze_task, AffineAccess, SubScript, TaskAccessInfo};
pub use affine::{generate_affine_access, AffineResult};
pub use generate::{generate_access, transform_module, DaeMap, GeneratedAccess};
pub use granularity::suggest_granularity;
pub use options::{AffineStats, CompilerOptions, RefuseReason, Strategy};
pub use profile::{inlined_clone, profile_task, HotPathConfig};
pub use skeleton::{generate_skeleton_access, generate_skeleton_access_profiled};
