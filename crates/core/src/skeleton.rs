//! The §5.2 skeleton access generator for non-affine codes.
//!
//! The algorithm of §5.2.2, step by step:
//!
//! 1. **Inline** all calls; refuse the task if any call is non-inlinable.
//! 2. **Clone** the task (all SSA state is thereby privatised).
//! 3. **Simplified CFG** (§5.2.2): conditionals embedded in loop bodies that
//!    do not maintain the loop's control flow are eliminated — the branch is
//!    replaced by its fall-through edge, so only reads guaranteed to execute
//!    remain, "reducing unnecessary prefetching".
//! 4. **Mark**: every remaining load is *accompanied* (not replaced) by a
//!    prefetch of its address; duplicate prefetches of the same SSA address
//!    are emitted once.
//! 5. **Discard stores** — the paper found write prefetching useless, and
//!    removing stores lets DCE erase the computation that fed them.
//! 6. **DCE + `-O3` cleanup** removes everything not needed for prefetch
//!    addresses or loop control flow.
//! 7. **Safety**: refuse if the access version's control flow would consume
//!    memory the original task writes (the write-visibility condition).

use crate::options::{CompilerOptions, RefuseReason};
use dae_analysis::effects;
use dae_analysis::transform::{compact, inline_all, optimize};
use dae_analysis::FunctionAnalysis;
use dae_ir::{BlockId, FuncId, Function, InstId, InstKind, Module, Terminator, Type, Value};
use std::collections::HashSet;

/// Runs the §5.2 pipeline on `task`.
///
/// # Errors
///
/// Refuses per the paper's safety conditions; see [`RefuseReason`].
pub fn generate_skeleton_access(
    module: &Module,
    task: FuncId,
    opts: &CompilerOptions,
) -> Result<Function, RefuseReason> {
    generate_skeleton_access_profiled(module, task, opts, None)
}

/// The §5.2 pipeline with an optional branch profile for hot-path
/// specialisation (§5.2.2's "specifically tailored access version"): an
/// in-loop conditional whose taken-fraction reaches
/// [`crate::profile::HotPathConfig::hot_threshold`] keeps its hot edge —
/// and thereby its reads — instead of being dropped.
///
/// The profile must come from [`crate::profile::profile_task`] on the same
/// module/task (its block ids refer to the canonical inlined clone).
///
/// # Errors
///
/// Refuses per the paper's safety conditions; see [`RefuseReason`].
pub fn generate_skeleton_access_profiled(
    module: &Module,
    task: FuncId,
    opts: &CompilerOptions,
    profile: Option<(&dae_sim::BranchProfile, crate::profile::HotPathConfig)>,
) -> Result<Function, RefuseReason> {
    // 1–2. inline into a private clone
    let inlined = inline_all(module, task)
        .map_err(|_| RefuseReason::NonInlinableCall(module.func(task).name.clone()))?;

    // Side effects of the *original* task, for the step-7 safety check.
    let original_effects = effects::summarize(&inlined);

    let mut f = compact(&inlined);
    f.name = format!("{}__access", module.func(task).name);
    f.is_task = false;

    // 3. simplified CFG (profile-aware when a profile is supplied)
    if opts.cfg_simplify {
        simplify_in_loop_conditionals(&mut f, profile);
        f = compact(&f);
    }

    // 4–5. prefetch insertion + store discarding
    insert_prefetches(&mut f, opts.prefetch_writes);
    if !opts.prefetch_writes {
        remove_stores(&mut f);
    }

    // 6. cleanup (-O3 part one: fold, DCE, merge)
    let f = optimize(&f);

    // 7. safety: control flow must not consume task-written memory. Checked
    // before strength reduction, whose derived pointer IVs would hide the
    // load bases from the base-tracing analysis.
    if control_depends_on_writes(&f, &original_effects) {
        return Err(RefuseReason::ControlDependsOnTaskWrites);
    }

    // Profile-guided line dedup (measured prefetch accuracy said the
    // element-granular streams are redundant): re-step eligible prefetch
    // loops to one touch per cache line before strength reduction.
    let f = if opts.line_dedup { crate::dedup::restep_prefetch_loops(&f) } else { f };

    // -O3 part two: strength-reduce the surviving address streams.
    let f = dae_analysis::transform::strength_reduce_and_clean(&f);

    let mut prefetches = 0;
    f.for_each_placed_inst(|_, i| {
        prefetches += matches!(f.inst(i).kind, InstKind::Prefetch { .. }) as usize;
    });
    if prefetches == 0 {
        return Err(RefuseReason::NothingToPrefetch);
    }
    Ok(f)
}

/// §5.2.2: rewrites conditional branches whose both targets stay inside the
/// same loop into unconditional jumps, eliminating data-dependent control
/// flow while preserving loop control. Without a profile the false edge is
/// taken (for builder-generated `if-then` diamonds that is the skip edge);
/// with a profile, a branch whose taken-fraction reaches the hot threshold
/// follows its hot (then) edge instead, keeping the hot path's reads.
fn simplify_in_loop_conditionals(
    f: &mut Function,
    profile: Option<(&dae_sim::BranchProfile, crate::profile::HotPathConfig)>,
) {
    let analysis = FunctionAnalysis::run(f);
    let mut rewrites: Vec<(BlockId, Terminator)> = Vec::new();
    for bb in f.block_ids() {
        if !analysis.cfg.is_reachable(bb) {
            continue;
        }
        let lp = match analysis.forest.innermost(bb) {
            Some(l) => l,
            None => continue, // conditionals outside loops are kept
        };
        let blocks = &analysis.forest.get(lp).blocks;
        if let Terminator::Branch { then_dest, else_dest, .. } = f.terminator(bb) {
            let both_inside =
                blocks.contains(&then_dest.block) && blocks.contains(&else_dest.block);
            // The loop header's own test and any branch with an exit edge
            // maintain the loop's control flow — keep those.
            let is_header = analysis.forest.get(lp).header == bb;
            if both_inside && !is_header {
                let hot_then = profile
                    .and_then(|(p, cfg)| p.taken_fraction(bb).map(|fr| fr >= cfg.hot_threshold))
                    .unwrap_or(false);
                let dest = if hot_then { then_dest.clone() } else { else_dest.clone() };
                rewrites.push((bb, Terminator::Jump(dest)));
            }
        }
    }
    for (bb, term) in rewrites {
        f.set_terminator(bb, term);
    }
}

/// Accompanies every load (and optionally store) with a prefetch of its
/// address, deduplicated per SSA address value.
fn insert_prefetches(f: &mut Function, prefetch_writes: bool) {
    let mut seen: HashSet<Value> = HashSet::new();
    for bb in f.block_ids().collect::<Vec<_>>() {
        let insts = f.block(bb).insts.clone();
        let mut new_list: Vec<InstId> = Vec::with_capacity(insts.len() * 2);
        for inst in insts {
            new_list.push(inst);
            let addr = match &f.inst(inst).kind {
                InstKind::Load { addr } => Some(*addr),
                InstKind::Store { addr, .. } if prefetch_writes => Some(*addr),
                _ => None,
            };
            if let Some(addr) = addr {
                if seen.insert(addr) {
                    let p = f.create_inst(InstKind::Prefetch { addr }, Type::Void);
                    new_list.push(p);
                }
            }
        }
        f.block_mut(bb).insts = new_list;
    }
}

/// Drops every store instruction.
fn remove_stores(f: &mut Function) {
    for bb in f.block_ids().collect::<Vec<_>>() {
        let keep: Vec<InstId> = f
            .block(bb)
            .insts
            .iter()
            .copied()
            .filter(|&i| !matches!(f.inst(i).kind, InstKind::Store { .. }))
            .collect();
        f.block_mut(bb).insts = keep;
    }
}

/// True when any branch condition of `f` (transitively) consumes a load of
/// memory the original task writes.
fn control_depends_on_writes(f: &Function, orig: &effects::EffectSummary) -> bool {
    // Backward slice from every branch condition.
    let mut work: Vec<Value> = Vec::new();
    for bb in f.block_ids() {
        if let Terminator::Branch { cond, .. } = f.terminator(bb) {
            work.push(*cond);
        }
    }
    let mut visited: HashSet<Value> = HashSet::new();
    while let Some(v) = work.pop() {
        if v.is_const() || !visited.insert(v) {
            continue;
        }
        match v {
            Value::Inst(id) => {
                if let InstKind::Load { addr } = &f.inst(id).kind {
                    match effects::trace_base(f, *addr) {
                        Some(g) => {
                            if orig.writes_globals.contains(&g) {
                                return true;
                            }
                        }
                        None => {
                            // Untraceable base: conservative when the task
                            // writes anything at all.
                            if !orig.is_read_only() {
                                return true;
                            }
                        }
                    }
                }
                f.inst(id).kind.for_each_operand(|o| work.push(o));
            }
            Value::BlockParam { block, index } => {
                // Follow every incoming edge argument.
                for pred in f.block_ids() {
                    if f.block(pred).term.is_none() {
                        continue;
                    }
                    for dest in f.terminator(pred).successors() {
                        if dest.block == block {
                            if let Some(a) = dest.args.get(index as usize) {
                                work.push(*a);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{verify_function, CmpOp, FunctionBuilder};

    fn count_kind(f: &Function, pred: impl Fn(&InstKind) -> bool) -> usize {
        let mut n = 0;
        f.for_each_placed_inst(|_, i| {
            if pred(&f.inst(i).kind) {
                n += 1;
            }
        });
        n
    }

    /// An indirect gather: x[col[j]] — the CG pattern.
    fn gather_module() -> (Module, FuncId) {
        let mut m = Module::new();
        let x = m.add_global("x", Type::F64, 256);
        let col = m.add_global("col", Type::I64, 256);
        let y = m.add_global("y", Type::F64, 256);
        let mut b = FunctionBuilder::new("gather", vec![Type::I64], Type::Void);
        b.set_task();
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, j| {
            let ca = b.elem_addr(Value::Global(col), j, Type::I64);
            let c = b.load(Type::I64, ca);
            let xa = b.elem_addr(Value::Global(x), c, Type::F64);
            let v = b.load(Type::F64, xa);
            let ya = b.elem_addr(Value::Global(y), j, Type::F64);
            let old = b.load(Type::F64, ya);
            let s = b.fadd(old, v);
            b.store(ya, s);
        });
        b.ret(None);
        let id = m.add_function(b.finish());
        (m, id)
    }

    #[test]
    fn gather_skeleton_keeps_index_load_drops_data_math() {
        let (m, task) = gather_module();
        let f = generate_skeleton_access(&m, task, &CompilerOptions::default()).expect("generated");
        verify_function(&f, None).unwrap();
        // The col[j] load survives (feeds the x address); its prefetch and
        // the x/y prefetches exist; the fadd and store are gone.
        assert_eq!(count_kind(&f, |k| matches!(k, InstKind::Prefetch { .. })), 3);
        assert_eq!(count_kind(&f, |k| matches!(k, InstKind::Store { .. })), 0);
        assert!(count_kind(&f, |k| matches!(k, InstKind::Load { .. })) >= 1);
        assert_eq!(
            count_kind(&f, |k| matches!(k, InstKind::Binary { op, .. } if op.is_float())),
            0,
            "float compute must be sliced away:\n{}",
            dae_ir::print_function(&f, None)
        );
    }

    #[test]
    fn conditional_loads_are_discarded() {
        // for i { if (data[i] > 0) { touch extra[i] } } — the conditional
        // body's load must vanish under cfg_simplify.
        let mut m = Module::new();
        let data = m.add_global("data", Type::F64, 128);
        let extra = m.add_global("extra", Type::F64, 128);
        let out = m.add_global("out", Type::F64, 128);
        let mut b = FunctionBuilder::new("cond", vec![Type::I64], Type::Void);
        b.set_task();
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            let da = b.elem_addr(Value::Global(data), i, Type::F64);
            let d = b.load(Type::F64, da);
            let c = b.cmp(CmpOp::Gt, d, 0.0f64);
            b.if_then(c, |b| {
                let ea = b.elem_addr(Value::Global(extra), i, Type::F64);
                let e = b.load(Type::F64, ea);
                let oa = b.elem_addr(Value::Global(out), i, Type::F64);
                b.store(oa, e);
            });
        });
        b.ret(None);
        let task = m.add_function(b.finish());

        let f = generate_skeleton_access(&m, task, &CompilerOptions::default()).unwrap();
        verify_function(&f, None).unwrap();
        let text = dae_ir::print_function(&f, None);
        // Only data[i] is prefetched; the conditional extra[i] is gone.
        assert_eq!(count_kind(&f, |k| matches!(k, InstKind::Prefetch { .. })), 1, "{text}");

        // Without cfg_simplify the conditional structure (and both
        // prefetches) survive.
        let keep = CompilerOptions { cfg_simplify: false, ..Default::default() };
        let f2 = generate_skeleton_access(&m, task, &keep).unwrap();
        assert_eq!(count_kind(&f2, |k| matches!(k, InstKind::Prefetch { .. })), 2);
    }

    #[test]
    fn calls_are_inlined_into_the_skeleton() {
        let mut m = Module::new();
        let a = m.add_global("a", Type::F64, 64);
        let mut helper = FunctionBuilder::new("helper", vec![Type::I64], Type::F64);
        let addr = helper.elem_addr(Value::Global(a), Value::Arg(0), Type::F64);
        let v = helper.load(Type::F64, addr);
        helper.ret(Some(v));
        let h = m.add_function(helper.finish());
        let mut b = FunctionBuilder::new("caller", vec![Type::I64], Type::Void);
        b.set_task();
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            let _ = b.call(h, vec![i], Type::F64);
        });
        b.ret(None);
        let task = m.add_function(b.finish());

        let f = generate_skeleton_access(&m, task, &CompilerOptions::default()).unwrap();
        verify_function(&f, None).unwrap();
        assert_eq!(count_kind(&f, |k| matches!(k, InstKind::Call { .. })), 0);
        assert_eq!(count_kind(&f, |k| matches!(k, InstKind::Prefetch { .. })), 1);
    }

    #[test]
    fn recursion_is_refused() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("r", vec![], Type::Void);
        b.call(FuncId(0), vec![], Type::Void);
        b.ret(None);
        let r = m.add_function(b.finish());
        let e = generate_skeleton_access(&m, r, &CompilerOptions::default()).unwrap_err();
        assert!(matches!(e, RefuseReason::NonInlinableCall(_)));
    }

    #[test]
    fn pure_compute_task_is_refused() {
        let mut m = Module::new();
        let g = m.add_global("out", Type::F64, 1);
        let mut b = FunctionBuilder::new("compute", vec![Type::I64], Type::Void);
        let out = b.counted_loop_carried(
            Value::i64(0),
            Value::Arg(0),
            Value::i64(1),
            vec![Value::f64(1.0)],
            |b, _, c| vec![b.fmul(c[0], 1.0001f64)],
        );
        let p = b.ptr_add(Value::Global(g), 0i64);
        b.store(p, out[0]);
        b.ret(None);
        let task = m.add_function(b.finish());
        let e = generate_skeleton_access(&m, task, &CompilerOptions::default()).unwrap_err();
        assert_eq!(e, RefuseReason::NothingToPrefetch);
    }

    #[test]
    fn control_dependent_on_task_writes_is_refused() {
        // while (flag[0] != 0) { ... ; store flag[0] } — loop control reads
        // memory the task writes.
        let mut m = Module::new();
        let flag = m.add_global("flag", Type::I64, 1);
        let data = m.add_global("data", Type::F64, 64);
        let mut b = FunctionBuilder::new("converge", vec![], Type::Void);
        b.set_task();
        b.while_loop(
            vec![Value::i64(0)],
            |b, c| {
                let fa = b.ptr_add(Value::Global(flag), 0i64);
                let fv = b.load(Type::I64, fa);
                let _ = c;
                b.cmp(CmpOp::Ne, fv, 0i64)
            },
            |b, c| {
                let da = b.elem_addr(Value::Global(data), c[0], Type::F64);
                let _ = b.load(Type::F64, da);
                let fa = b.ptr_add(Value::Global(flag), 0i64);
                b.store(fa, 0i64);
                vec![b.iadd(c[0], 1i64)]
            },
        );
        b.ret(None);
        let task = m.add_function(b.finish());
        let e = generate_skeleton_access(&m, task, &CompilerOptions::default()).unwrap_err();
        assert_eq!(e, RefuseReason::ControlDependsOnTaskWrites);
    }

    #[test]
    fn pointer_chase_skeleton_is_generated() {
        // Read-only pointer chase: control depends on loaded pointers, but
        // the task writes nothing, so generation is allowed.
        let mut m = Module::new();
        let _nodes = m.add_global("nodes", Type::I64, 1024);
        let mut b = FunctionBuilder::new("chase", vec![Type::Ptr, Type::I64], Type::I64);
        b.set_task();
        let out = b.counted_loop_carried(
            Value::i64(0),
            Value::Arg(1),
            Value::i64(1),
            vec![Value::Arg(0), Value::i64(0)],
            |b, _, c| {
                let next = b.load(Type::Ptr, c[0]);
                let va = b.ptr_add(c[0], 8i64);
                let v = b.load(Type::I64, va);
                let acc = b.iadd(c[1], v);
                vec![next, acc]
            },
        );
        b.ret(Some(out[1]));
        let task = m.add_function(b.finish());
        let f = generate_skeleton_access(&m, task, &CompilerOptions::default()).unwrap();
        verify_function(&f, None).unwrap();
        // Both loads prefetched; the `next` load itself must survive (it
        // feeds the address chain).
        assert_eq!(count_kind(&f, |k| matches!(k, InstKind::Prefetch { .. })), 2);
        assert!(count_kind(&f, |k| matches!(k, InstKind::Load { .. })) >= 1);
    }

    #[test]
    fn duplicate_addresses_prefetched_once() {
        let mut m = Module::new();
        let a = m.add_global("a", Type::F64, 64);
        let mut b = FunctionBuilder::new("dup", vec![Type::I64], Type::Void);
        b.set_task();
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            let addr = b.elem_addr(Value::Global(a), i, Type::F64);
            let v1 = b.load(Type::F64, addr);
            let v2 = b.load(Type::F64, addr); // same SSA address
            let s = b.fadd(v1, v2);
            let o = b.elem_addr(Value::Global(a), i, Type::F64);
            b.store(o, s);
        });
        b.ret(None);
        let task = m.add_function(b.finish());
        let f = generate_skeleton_access(&m, task, &CompilerOptions::default()).unwrap();
        assert_eq!(count_kind(&f, |k| matches!(k, InstKind::Prefetch { .. })), 1);
    }
}
