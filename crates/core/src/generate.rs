//! Top-level orchestration: per-task strategy selection and module
//! transformation.

use crate::access_info::{analyze_task, TaskAccessInfo};
use crate::affine::generate_affine_access;
use crate::options::{CompilerOptions, RefuseReason, Strategy};
use crate::skeleton::generate_skeleton_access;
use dae_ir::{FuncId, Function, Module};
use std::collections::HashMap;

/// The generated access phase of one task.
#[derive(Debug)]
pub struct GeneratedAccess {
    /// The access function (same signature as the task).
    pub func: Function,
    /// Which §5 path produced it.
    pub strategy: Strategy,
    /// The task's access-analysis summary (Table 1's loop statistics).
    pub info: TaskAccessInfo,
}

/// Generates the access phase for one task: polyhedral when the task is
/// fully affine and profitable (§5.1), otherwise the optimized skeleton
/// (§5.2).
///
/// # Errors
///
/// Returns the paper's refusal conditions; see [`RefuseReason`].
pub fn generate_access(
    module: &Module,
    task: FuncId,
    opts: &CompilerOptions,
) -> Result<GeneratedAccess, RefuseReason> {
    // Inline first so the affine analysis sees through calls, exactly like
    // the paper generates the access version "after applying traditional
    // compiler optimizations to the original (execute) code".
    let inlined = dae_analysis::transform::inline_all(module, task)
        .map_err(|_| RefuseReason::NonInlinableCall(module.func(task).name.clone()))?;
    let inlined = dae_analysis::transform::optimize(&inlined);
    let info = analyze_task(module, &inlined);

    if let Some(affine) = generate_affine_access(&inlined, &info, opts) {
        return Ok(GeneratedAccess {
            func: affine.func,
            strategy: Strategy::Polyhedral(affine.stats),
            info,
        });
    }
    let func = generate_skeleton_access(module, task, opts)?;
    Ok(GeneratedAccess { func, strategy: Strategy::Skeleton, info })
}

/// The result of transforming a whole module: access functions registered
/// next to their tasks.
#[derive(Debug, Default)]
pub struct DaeMap {
    /// task → generated access function, for tasks where generation
    /// succeeded.
    pub access_of: HashMap<FuncId, FuncId>,
    /// task → strategy used.
    pub strategy_of: HashMap<FuncId, Strategy>,
    /// task → refusal reason, for tasks where generation was refused (those
    /// run coupled, as in the paper).
    pub refused: HashMap<FuncId, RefuseReason>,
    /// task → analysis summary.
    pub info_of: HashMap<FuncId, TaskAccessInfo>,
}

impl DaeMap {
    /// The access function for `task`, if one was generated.
    pub fn access(&self, task: FuncId) -> Option<FuncId> {
        self.access_of.get(&task).copied()
    }
}

/// Generates and registers an access function for every task in `module`.
/// Per-task options come from `opts_for` (parameter hints differ by task).
pub fn transform_module(
    module: &mut Module,
    mut opts_for: impl FnMut(FuncId, &Function) -> CompilerOptions,
) -> DaeMap {
    let mut map = DaeMap::default();
    let tasks = module.task_ids();
    for task in tasks {
        let opts = opts_for(task, module.func(task));
        match generate_access(module, task, &opts) {
            Ok(generated) => {
                let access_id = module.add_function(generated.func);
                map.access_of.insert(task, access_id);
                map.strategy_of.insert(task, generated.strategy);
                map.info_of.insert(task, generated.info);
            }
            Err(reason) => {
                map.refused.insert(task, reason);
            }
        }
    }
    map
}

/// Builds the LU interior-update task used by sibling test modules.
#[cfg(test)]
pub(crate) fn tests_support_lu_inner() -> (Module, FuncId, i64) {
    use dae_ir::{FunctionBuilder, Type, Value};
    let n = 64i64;
    let blk = 8i64;
    let mut m = Module::new();
    let a = m.add_global("A", Type::F64, (n * n) as u64);
    let mut b = FunctionBuilder::new("lu_inner", vec![Type::I64, Type::I64, Type::I64], Type::Void);
    b.set_task();
    let (k0, i0, j0) = (Value::Arg(0), Value::Arg(1), Value::Arg(2));
    b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, i| {
        b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, j| {
            let gi = b.iadd(i0, i);
            let gj = b.iadd(j0, j);
            let r = b.imul(gi, n);
            let x = b.iadd(r, gj);
            let dst = b.elem_addr(Value::Global(a), x, Type::F64);
            let init = b.load(Type::F64, dst);
            let acc = b.counted_loop_carried(
                Value::i64(0),
                Value::i64(blk),
                Value::i64(1),
                vec![init],
                |b, p, c| {
                    let gp = b.iadd(k0, p);
                    let r1 = b.imul(gi, n);
                    let x1 = b.iadd(r1, gp);
                    let lip = b.elem_addr(Value::Global(a), x1, Type::F64);
                    let r2 = b.imul(gp, n);
                    let x2 = b.iadd(r2, gj);
                    let upj = b.elem_addr(Value::Global(a), x2, Type::F64);
                    let vl = b.load(Type::F64, lip);
                    let vu = b.load(Type::F64, upj);
                    let t = b.fmul(vl, vu);
                    vec![b.fsub(c[0], t)]
                },
            );
            b.store(dst, acc[0]);
        });
    });
    b.ret(None);
    let t = m.add_function(b.finish());
    (m, t, blk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{verify_module, FunctionBuilder, Type, Value};

    fn module_with_two_tasks() -> Module {
        let mut m = Module::new();
        let a = m.add_global("a", Type::F64, 256);
        let idx = m.add_global("idx", Type::I64, 256);

        // Affine task: stream over a chunk of `a` starting at arg0.
        let mut b = FunctionBuilder::new("stream", vec![Type::I64], Type::Void);
        b.set_task();
        b.counted_loop(Value::i64(0), Value::i64(64), Value::i64(1), |b, i| {
            let idx = b.iadd(Value::Arg(0), i);
            let p = b.elem_addr(Value::Global(a), idx, Type::F64);
            let v = b.load(Type::F64, p);
            let w = b.fmul(v, 2.0f64);
            b.store(p, w);
        });
        b.ret(None);
        m.add_function(b.finish());

        // Non-affine task: gather through `idx`.
        let mut b = FunctionBuilder::new("gather", vec![Type::I64], Type::Void);
        b.set_task();
        b.counted_loop(Value::i64(0), Value::i64(64), Value::i64(1), |b, i| {
            let ip = b.elem_addr(Value::Global(idx), i, Type::I64);
            let j = b.load(Type::I64, ip);
            let p = b.elem_addr(Value::Global(a), j, Type::F64);
            let v = b.load(Type::F64, p);
            let w = b.fadd(v, 1.0f64);
            b.store(p, w);
        });
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn strategies_split_as_expected() {
        let mut m = module_with_two_tasks();
        let map = transform_module(&mut m, |_, _| CompilerOptions {
            param_hints: vec![64],
            ..Default::default()
        });
        verify_module(&m).unwrap();
        assert_eq!(map.access_of.len(), 2);
        assert!(map.refused.is_empty());
        let stream = m.func_by_name("stream").unwrap();
        let gather = m.func_by_name("gather").unwrap();
        assert!(matches!(map.strategy_of[&stream], Strategy::Polyhedral(_)));
        assert!(matches!(map.strategy_of[&gather], Strategy::Skeleton));
        // access functions exist in the module with the right names
        assert!(m.func_by_name("stream__access").is_some());
        assert!(m.func_by_name("gather__access").is_some());
    }

    #[test]
    fn access_signature_matches_task() {
        let mut m = module_with_two_tasks();
        let map = transform_module(&mut m, |_, _| CompilerOptions {
            param_hints: vec![64],
            ..Default::default()
        });
        for (task, access) in &map.access_of {
            assert_eq!(m.func(*task).params, m.func(*access).params);
            assert_eq!(m.func(*access).ret, Type::Void);
            assert!(!m.func(*access).is_task, "access phases are not tasks themselves");
        }
    }

    #[test]
    fn polyhedral_disabled_forces_skeleton() {
        let mut m = module_with_two_tasks();
        let map = transform_module(&mut m, |_, _| CompilerOptions {
            enable_polyhedral: false,
            param_hints: vec![64],
            ..Default::default()
        });
        for s in map.strategy_of.values() {
            assert!(matches!(s, Strategy::Skeleton));
        }
        assert_eq!(map.access_of.len(), 2);
    }

    #[test]
    fn info_records_affine_loop_counts() {
        let mut m = module_with_two_tasks();
        let map = transform_module(&mut m, |_, _| CompilerOptions {
            param_hints: vec![64],
            ..Default::default()
        });
        let stream = m.func_by_name("stream").unwrap();
        let gather = m.func_by_name("gather").unwrap();
        assert_eq!(map.info_of[&stream].loops_affine, 1);
        assert_eq!(map.info_of[&stream].loops_total, 1);
        assert_eq!(map.info_of[&gather].loops_affine, 0);
        assert_eq!(map.info_of[&gather].loops_total, 1);
    }
}
