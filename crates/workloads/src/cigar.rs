//! Case-Injected Genetic Algorithm (CIGAR).
//!
//! Fitness evaluation of a bit-string population against permuted weights,
//! plus case-injection similarity scans against a case library. Both task
//! types chase indirection (`weights[perm[j]]`, `cases[case_idx[c]·L+j]`),
//! so the compiler takes the skeleton path (Table 1: 0/1 affine loops) and
//! the access phase keeps the index loads alive to compute prefetch
//! addresses. The large population arrays make the workload memory-bound.

use crate::common::{init_f64_global, init_i64_global, Workload};
use dae_ir::{FuncId, FunctionBuilder, GlobalId, Module, Type, Value};
use dae_sim::Val;

/// Default population size (individuals).
pub const POP: i64 = 8192;
/// Default chromosome length (genes).
pub const LEN: i64 = 128;
/// Default case-library size.
pub const CASES: i64 = 64;

struct Arrays {
    pop: GlobalId,
    weights: GlobalId,
    perm: GlobalId,
    fitness: GlobalId,
    cases: GlobalId,
    case_idx: GlobalId,
    sim: GlobalId,
}

/// `eval_chunk(lo, hi)`: fitness of individuals `[lo, hi)` via permuted
/// weight gather.
fn build_eval(m: &mut Module, a: &Arrays, len: i64) -> FuncId {
    let mut b = FunctionBuilder::new("cigar_eval", vec![Type::I64, Type::I64], Type::Void);
    b.set_task();
    let (lo, hi) = (Value::Arg(0), Value::Arg(1));
    b.counted_loop(lo, hi, Value::i64(1), |b, p| {
        let row = b.imul(p, len);
        let acc = b.counted_loop_carried(
            Value::i64(0),
            Value::i64(len),
            Value::i64(1),
            vec![Value::f64(0.0)],
            |b, j, c| {
                let gidx = b.iadd(row, j);
                let ga = b.elem_addr(Value::Global(a.pop), gidx, Type::I64);
                let gene = b.load(Type::I64, ga);
                let pa = b.elem_addr(Value::Global(a.perm), j, Type::I64);
                let pj = b.load(Type::I64, pa);
                let wa = b.elem_addr(Value::Global(a.weights), pj, Type::F64);
                let wv = b.load(Type::F64, wa);
                let gf = b.itof(gene);
                let t = b.fmul(gf, wv);
                vec![b.fadd(c[0], t)]
            },
        );
        let fa = b.elem_addr(Value::Global(a.fitness), p, Type::F64);
        b.store(fa, acc[0]);
    });
    b.ret(None);
    m.add_function(b.finish())
}

/// `inject_chunk(lo, hi, case_id)`: similarity of individuals `[lo, hi)`
/// against the case selected through the index table (case injection — one
/// injected case per generation, as in CIGAR proper).
fn build_inject(m: &mut Module, a: &Arrays, len: i64) -> FuncId {
    let mut b =
        FunctionBuilder::new("cigar_inject", vec![Type::I64, Type::I64, Type::I64], Type::Void);
    b.set_task();
    let (lo, hi, case_id) = (Value::Arg(0), Value::Arg(1), Value::Arg(2));
    // ci = case_idx[case_id] — one level of indirection
    let cia = b.elem_addr(Value::Global(a.case_idx), case_id, Type::I64);
    let ci = b.load(Type::I64, cia);
    let crow = b.imul(ci, len);
    b.counted_loop(lo, hi, Value::i64(1), |b, p| {
        let row = b.imul(p, len);
        let matches = b.counted_loop_carried(
            Value::i64(0),
            Value::i64(len),
            Value::i64(1),
            vec![Value::f64(0.0)],
            |b, j, inner| {
                let gidx = b.iadd(row, j);
                let ga = b.elem_addr(Value::Global(a.pop), gidx, Type::I64);
                let gene = b.load(Type::I64, ga);
                let cidx = b.iadd(crow, j);
                let ca = b.elem_addr(Value::Global(a.cases), cidx, Type::I64);
                let cv = b.load(Type::I64, ca);
                let x = b.xor(gene, cv);
                let same = b.isub(1i64, x);
                let sf = b.itof(same);
                vec![b.fadd(inner[0], sf)]
            },
        );
        let sa = b.elem_addr(Value::Global(a.sim), p, Type::F64);
        b.store(sa, matches[0]);
    });
    b.ret(None);
    m.add_function(b.finish())
}

/// Expert access phases: prefetch the individuals' rows per line, the
/// permutation/weight tables once, and skip the gather targets the expert
/// knows mostly hit after the table warms.
fn build_manual_eval(m: &mut Module, a: &Arrays, len: i64) -> FuncId {
    let mut b = FunctionBuilder::new("cigar_eval__manual", vec![Type::I64, Type::I64], Type::Void);
    let (lo, hi) = (Value::Arg(0), Value::Arg(1));
    let lo_g = b.imul(lo, len);
    let hi_g = b.imul(hi, len);
    b.counted_loop(lo_g, hi_g, Value::i64(1), |b, g| {
        let pa = b.elem_addr(Value::Global(a.pop), g, Type::I64);
        b.prefetch(pa);
    });
    b.counted_loop(Value::i64(0), Value::i64(len), Value::i64(1), |b, j| {
        let pa = b.elem_addr(Value::Global(a.perm), j, Type::I64);
        b.prefetch(pa);
        let wa = b.elem_addr(Value::Global(a.weights), j, Type::F64);
        b.prefetch(wa);
    });
    b.ret(None);
    m.add_function(b.finish())
}

fn build_manual_inject(m: &mut Module, a: &Arrays, len: i64) -> FuncId {
    let mut b = FunctionBuilder::new(
        "cigar_inject__manual",
        vec![Type::I64, Type::I64, Type::I64],
        Type::Void,
    );
    let (lo, hi, case_id) = (Value::Arg(0), Value::Arg(1), Value::Arg(2));
    let lo_g = b.imul(lo, len);
    let hi_g = b.imul(hi, len);
    b.counted_loop(lo_g, hi_g, Value::i64(1), |b, g| {
        let pa = b.elem_addr(Value::Global(a.pop), g, Type::I64);
        b.prefetch(pa);
    });
    // Chase the case index (the expert keeps this indirection).
    let cia = b.elem_addr(Value::Global(a.case_idx), case_id, Type::I64);
    let ci = b.load(Type::I64, cia);
    let crow = b.imul(ci, len);
    b.counted_loop(Value::i64(0), Value::i64(len), Value::i64(1), |b, j| {
        let cidx = b.iadd(crow, j);
        let ca = b.elem_addr(Value::Global(a.cases), cidx, Type::I64);
        b.prefetch(ca);
    });
    b.ret(None);
    m.add_function(b.finish())
}

/// Builds the CIGAR workload.
pub fn build_sized(pop: i64, len: i64, cases: i64, chunk: i64) -> Workload {
    let mut module = Module::new();
    let mut seed = 0xA0761D6478BD642Fu64;
    let mut rand = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let pop_bits: Vec<i64> = (0..pop * len).map(|_| (rand() & 1) as i64).collect();
    let weights: Vec<f64> = (0..len).map(|_| (rand() >> 11) as f64 / (1u64 << 53) as f64).collect();
    // A permutation of 0..len via Fisher-Yates.
    let mut perm: Vec<i64> = (0..len).collect();
    for i in (1..len as usize).rev() {
        let j = (rand() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    let case_bits: Vec<i64> = (0..cases * len).map(|_| (rand() & 1) as i64).collect();
    let case_idx: Vec<i64> = (0..cases).map(|_| (rand() % cases as u64) as i64).collect();

    let arrays = Arrays {
        pop: init_i64_global(&mut module, "pop", &pop_bits),
        weights: init_f64_global(&mut module, "weights", &weights),
        perm: init_i64_global(&mut module, "perm", &perm),
        fitness: module.add_global("fitness", Type::F64, pop as u64),
        cases: init_i64_global(&mut module, "cases", &case_bits),
        case_idx: init_i64_global(&mut module, "case_idx", &case_idx),
        sim: module.add_global("sim", Type::F64, pop as u64),
    };

    let eval = build_eval(&mut module, &arrays, len);
    let inject = build_inject(&mut module, &arrays, len);
    let m_eval = build_manual_eval(&mut module, &arrays, len);
    let m_inject = build_manual_inject(&mut module, &arrays, len);

    let mut w = Workload::new("Cigar", module);
    w.manual_access.insert(eval, m_eval);
    w.manual_access.insert(inject, m_inject);
    w.hints.insert(eval, vec![0, chunk]);
    w.hints.insert(inject, vec![0, chunk, 0]);

    // Two generations: evaluate everyone, then score everyone against the
    // generation's injected case (one barrier epoch per phase).
    for gen in 0..2 {
        let mut lo = 0;
        while lo < pop {
            let hi = (lo + chunk).min(pop);
            w.instances.push((eval, vec![Val::I(lo), Val::I(hi)]));
            w.epochs.push(gen as u32 * 2);
            lo = hi;
        }
        let mut lo = 0;
        while lo < pop {
            let hi = (lo + chunk).min(pop);
            w.instances.push((inject, vec![Val::I(lo), Val::I(hi), Val::I(gen % cases)]));
            w.epochs.push(gen as u32 * 2 + 1);
            lo = hi;
        }
    }
    w
}

/// Builds the default-size CIGAR workload.
pub fn build() -> Workload {
    build_sized(POP, LEN, CASES, 64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Variant;
    use dae_core::Strategy;
    use dae_runtime::{run_workload, FreqPolicy, RuntimeConfig};

    #[test]
    fn fitness_matches_reference() {
        let (pop, len) = (64i64, 32i64);
        let w = build_sized(pop, len, 16, 16);
        dae_ir::verify_module(&w.module).unwrap();
        use dae_mem::{CoreCaches, HierarchyConfig, SharedLlc};
        use dae_sim::{CachePort, Machine, PhaseTrace};
        let hc = HierarchyConfig::default();
        let mut llc = SharedLlc::new(hc.llc);
        let mut core = CoreCaches::new(&hc);
        let mut machine = Machine::new(&w.module);
        // Read inputs before running.
        let rd_i64 = |mem: &dae_sim::Memory, g: &str, k: i64| {
            let gid = w.module.global_by_name(g).unwrap();
            mem.read(Type::I64, mem.global_addr(gid) + k as u64 * 8).as_i()
        };
        let rd_f64 = |mem: &dae_sim::Memory, g: &str, k: i64| {
            let gid = w.module.global_by_name(g).unwrap();
            mem.read(Type::F64, mem.global_addr(gid) + k as u64 * 8).as_f()
        };
        let mut expected = vec![0.0f64; pop as usize];
        for p in 0..pop {
            let mut s = 0.0;
            for j in 0..len {
                let gene = rd_i64(&machine.memory, "pop", p * len + j);
                let pj = rd_i64(&machine.memory, "perm", j);
                s += gene as f64 * rd_f64(&machine.memory, "weights", pj);
            }
            expected[p as usize] = s;
        }
        for (f, args) in &w.instances {
            let mut t = PhaseTrace::default();
            machine
                .run(*f, args, &mut CachePort { core: &mut core, llc: &mut llc }, &mut t)
                .unwrap();
        }
        for p in 0..pop {
            let got = rd_f64(&machine.memory, "fitness", p);
            assert!((got - expected[p as usize]).abs() < 1e-9, "fitness[{p}]");
        }
    }

    #[test]
    fn tasks_take_skeleton_path() {
        let mut w = build_sized(128, 32, 16, 32);
        w.compile_auto();
        let map = w.auto_map().unwrap();
        assert!(map.refused.is_empty(), "{:?}", map.refused);
        for s in map.strategy_of.values() {
            assert!(matches!(s, Strategy::Skeleton));
        }
    }

    #[test]
    fn access_phase_keeps_permutation_loads() {
        // The perm[j] load feeds the weights address — it must survive the
        // slice (inspector-style), while the fp accumulation dies.
        let mut w = build_sized(128, 32, 16, 32);
        w.compile_auto();
        let map = w.auto_map().unwrap();
        let eval = w.module.func_by_name("cigar_eval").unwrap();
        let access = w.module.func(map.access(eval).unwrap());
        let mut loads = 0;
        let mut fp = 0;
        access.for_each_placed_inst(|_, i| {
            loads += matches!(access.inst(i).kind, dae_ir::InstKind::Load { .. }) as usize;
            fp += matches!(access.inst(i).kind, dae_ir::InstKind::Binary { op, .. } if op.is_float()) as usize;
        });
        assert!(loads >= 1, "index load must survive");
        assert_eq!(fp, 0, "fitness math must be sliced away");
    }

    #[test]
    fn memory_bound_and_all_variants_run() {
        let mut w = build_sized(512, 128, 32, 64);
        w.compile_auto();
        let cfg = RuntimeConfig::paper_default();
        let cae = run_workload(&w.module, &w.tasks(Variant::Cae), &cfg).unwrap();
        let frac = cae
            .execute_trace
            .memory_bound_fraction(cfg.table.point(cfg.table.max()).hz(), &cfg.timing);
        assert!(frac > 0.25, "CIGAR should lean memory-bound, got {frac}");
        for v in Variant::ALL {
            let c = cfg.clone().with_policy(FreqPolicy::DaeMinMax);
            let r = run_workload(&w.module, &w.tasks(v), &c).unwrap();
            assert_eq!(r.tasks, w.num_tasks());
        }
    }
}
