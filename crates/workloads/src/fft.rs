//! Iterative radix-2 FFT (SPLASH-2 `fft`).
//!
//! A complex FFT over bit-reverse-permuted input (`re`/`im` arrays plus
//! precomputed twiddle tables). Tasks are per-stage chunks of butterfly
//! groups. The group stride is a task *parameter*, so the loops are not
//! counted with a constant step — the polyhedral path rejects them and the
//! compiler takes the §5.2 skeleton route (Table 1: 0/6 affine loops).
//!
//! The butterfly body lives in a separate `butterfly` function, exercising
//! the paper's observation that FFT tasks "contain calls to other
//! functions" which the compiler inlines before slicing (§6.2.2).
//!
//! The expert access phase is "generated from the unoptimized source …
//! greatly simplified": it prefetches only the data arrays (one touch per
//! line) and skips the twiddle tables, so it completes faster but warms
//! less data than the compiler's skeleton.

use crate::common::{init_f64_global, Workload};
use dae_ir::{CmpOp, FuncId, FunctionBuilder, GlobalId, Module, Type, Value};
use dae_sim::Val;

/// Default transform size (must be a power of two).
pub const DEFAULT_N: i64 = 524288;

struct Arrays {
    re: GlobalId,
    im: GlobalId,
    tw_re: GlobalId,
    tw_im: GlobalId,
}

/// The butterfly helper: combines `x[i] ± w·x[j]` in place.
fn build_butterfly(m: &mut Module, arr: &Arrays) -> FuncId {
    // butterfly(i, j, wi /* twiddle index */)
    let mut b =
        FunctionBuilder::new("butterfly", vec![Type::I64, Type::I64, Type::I64], Type::Void);
    let (i, j, wi) = (Value::Arg(0), Value::Arg(1), Value::Arg(2));
    let re_i = b.elem_addr(Value::Global(arr.re), i, Type::F64);
    let im_i = b.elem_addr(Value::Global(arr.im), i, Type::F64);
    let re_j = b.elem_addr(Value::Global(arr.re), j, Type::F64);
    let im_j = b.elem_addr(Value::Global(arr.im), j, Type::F64);
    let wre_a = b.elem_addr(Value::Global(arr.tw_re), wi, Type::F64);
    let wim_a = b.elem_addr(Value::Global(arr.tw_im), wi, Type::F64);
    let xr = b.load(Type::F64, re_i);
    let xi = b.load(Type::F64, im_i);
    let yr = b.load(Type::F64, re_j);
    let yi = b.load(Type::F64, im_j);
    let wr = b.load(Type::F64, wre_a);
    let wim = b.load(Type::F64, wim_a);
    // t = w * y
    let t1 = b.fmul(wr, yr);
    let t2 = b.fmul(wim, yi);
    let tr = b.fsub(t1, t2);
    let t3 = b.fmul(wr, yi);
    let t4 = b.fmul(wim, yr);
    let ti = b.fadd(t3, t4);
    // x[j] = x[i] - t ; x[i] = x[i] + t
    let nr = b.fsub(xr, tr);
    let ni = b.fsub(xi, ti);
    b.store(re_j, nr);
    b.store(im_j, ni);
    let pr = b.fadd(xr, tr);
    let pi = b.fadd(xi, ti);
    b.store(re_i, pr);
    b.store(im_i, pi);
    b.ret(None);
    m.add_function(b.finish())
}

/// One task: all butterflies of one stage within `[k_lo, k_hi)`.
///
/// `fft_chunk(m_len, half, tw_stride, k_lo, k_hi)` — the group stride
/// `m_len` is a parameter, making the outer loop non-counted.
fn build_task(module: &mut Module, butterfly: FuncId) -> FuncId {
    let mut b = FunctionBuilder::new(
        "fft_chunk",
        vec![Type::I64, Type::I64, Type::I64, Type::I64, Type::I64],
        Type::Void,
    );
    b.set_task();
    let (m_len, half, tw_stride, k_lo, k_hi) =
        (Value::Arg(0), Value::Arg(1), Value::Arg(2), Value::Arg(3), Value::Arg(4));
    // for (k = k_lo; k < k_hi; k += m_len)  — parametric step
    b.while_loop(
        vec![k_lo],
        |b, c| b.cmp(CmpOp::Lt, c[0], k_hi),
        |b, c| {
            let k = c[0];
            b.counted_loop(Value::i64(0), half, Value::i64(1), |b, j| {
                let i = b.iadd(k, j);
                let jj = b.iadd(i, half);
                let wi = b.imul(j, tw_stride);
                b.call(butterfly, vec![i, jj, wi], Type::Void);
            });
            vec![b.iadd(k, m_len)]
        },
    );
    b.ret(None);
    module.add_function(b.finish())
}

/// Expert access phase: prefetch the `[k_lo, k_hi)` slice of `re`/`im`;
/// twiddles are skipped (the expert's simplification of §6.2.2).
fn build_manual(module: &mut Module, arr: &Arrays) -> FuncId {
    let mut b = FunctionBuilder::new(
        "fft_chunk__manual",
        vec![Type::I64, Type::I64, Type::I64, Type::I64, Type::I64],
        Type::Void,
    );
    let (k_lo, k_hi) = (Value::Arg(3), Value::Arg(4));
    b.counted_loop(k_lo, k_hi, Value::i64(1), |b, i| {
        let pr = b.elem_addr(Value::Global(arr.re), i, Type::F64);
        b.prefetch(pr);
        let pi = b.elem_addr(Value::Global(arr.im), i, Type::F64);
        b.prefetch(pi);
    });
    b.ret(None);
    module.add_function(b.finish())
}

/// Builds the FFT workload for a transform of `n` points split into
/// `chunks` tasks per stage.
pub fn build_sized(n: i64, chunks: i64) -> Workload {
    assert!(n > 0 && (n as u64).is_power_of_two());
    let mut module = Module::new();
    // Input: bit-reverse-permuted impulse-train-ish signal.
    let nn = n as usize;
    let mut re = vec![0.0f64; nn];
    let im = vec![0.0f64; nn];
    let bits = n.trailing_zeros();
    for (k, v) in re.iter_mut().enumerate() {
        // signal x[t] = cos-ish deterministic pattern, stored bit-reversed
        let t = (k as u64).reverse_bits() >> (64 - bits);
        *v = ((t as f64) * 0.37).sin();
    }
    let tw_len = (n / 2) as usize;
    let mut tw_re = vec![0.0f64; tw_len];
    let mut tw_im = vec![0.0f64; tw_len];
    for k in 0..tw_len {
        let ang = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
        tw_re[k] = ang.cos();
        tw_im[k] = ang.sin();
    }
    let arr = Arrays {
        re: init_f64_global(&mut module, "re", &re),
        im: init_f64_global(&mut module, "im", &im),
        tw_re: init_f64_global(&mut module, "tw_re", &tw_re),
        tw_im: init_f64_global(&mut module, "tw_im", &tw_im),
    };
    let butterfly = build_butterfly(&mut module, &arr);
    let task = build_task(&mut module, butterfly);
    let manual = build_manual(&mut module, &arr);

    let mut w = Workload::new("FFT", module);
    w.manual_access.insert(task, manual);
    w.hints.insert(task, vec![4, 2, n / 4, 0, n / 2]);

    // Stages: m = 2, 4, …, n. Chunk the k-range; chunk boundaries must be
    // multiples of m.
    // Butterfly stages depend on each other: one barrier epoch per stage.
    let stages = n.trailing_zeros() as i64;
    for s in 1..=stages {
        let m_len = 1i64 << s;
        let half = m_len / 2;
        let tw_stride = n / m_len;
        let groups = n / m_len;
        let chunks_here = chunks.min(groups).max(1);
        let groups_per_chunk = groups / chunks_here;
        for c in 0..chunks_here {
            let k_lo = c * groups_per_chunk * m_len;
            let k_hi = if c + 1 == chunks_here { n } else { (c + 1) * groups_per_chunk * m_len };
            w.instances.push((
                task,
                vec![Val::I(m_len), Val::I(half), Val::I(tw_stride), Val::I(k_lo), Val::I(k_hi)],
            ));
            w.epochs.push((s - 1) as u32);
        }
    }
    w
}

/// Builds the default-size FFT workload: four sampled stages of a
/// 512k-point transform (the full 19-stage run is shape-identical; sampling
/// keeps simulation time reasonable while the 12 MB working set stays
/// DRAM-resident like the SPLASH-2 original).
pub fn build() -> Workload {
    build_stage_sampled(DEFAULT_N, 32, &[4, 8, 12, 16])
}

/// Builds an FFT workload restricted to the given stages (1-based log2 of
/// the group length).
pub fn build_stage_sampled(n: i64, chunks: i64, stages: &[i64]) -> Workload {
    let mut w = build_sized(n, chunks);
    let mut keep_inst = Vec::new();
    let mut keep_epochs = Vec::new();
    for (k, (f, args)) in w.instances.iter().enumerate() {
        let m_len = match args[0] {
            dae_sim::Val::I(v) => v,
            _ => unreachable!(),
        };
        if stages.contains(&(m_len.trailing_zeros() as i64)) {
            keep_inst.push((*f, args.clone()));
            keep_epochs.push(w.epochs[k]);
        }
    }
    w.instances = keep_inst;
    w.epochs = keep_epochs;
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Variant;
    use dae_core::Strategy;
    use dae_mem::{CoreCaches, HierarchyConfig, SharedLlc};
    use dae_runtime::{run_workload, RuntimeConfig};
    use dae_sim::{CachePort, Machine, PhaseTrace};

    /// Runs the whole FFT sequentially and returns (re, im).
    fn run_fft(w: &Workload, n: i64) -> (Vec<f64>, Vec<f64>) {
        let hc = HierarchyConfig::default();
        let mut llc = SharedLlc::new(hc.llc);
        let mut core = CoreCaches::new(&hc);
        let mut machine = Machine::new(&w.module);
        for (f, args) in &w.instances {
            let mut t = PhaseTrace::default();
            machine
                .run(*f, args, &mut CachePort { core: &mut core, llc: &mut llc }, &mut t)
                .unwrap();
        }
        let re_g = w.module.global_by_name("re").unwrap();
        let im_g = w.module.global_by_name("im").unwrap();
        let rb = machine.memory.global_addr(re_g);
        let ib = machine.memory.global_addr(im_g);
        let re: Vec<f64> =
            (0..n).map(|k| machine.memory.read(Type::F64, rb + (k as u64) * 8).as_f()).collect();
        let im: Vec<f64> =
            (0..n).map(|k| machine.memory.read(Type::F64, ib + (k as u64) * 8).as_f()).collect();
        (re, im)
    }

    #[test]
    fn matches_naive_dft() {
        let n = 64i64;
        let w = build_sized(n, 2);
        dae_ir::verify_module(&w.module).unwrap();
        let (re, im) = run_fft(&w, n);
        // Naive DFT of the same (non-bit-reversed) input.
        let bits = n.trailing_zeros();
        let mut x = vec![0.0f64; n as usize];
        for k in 0..n as usize {
            let t = (k as u64).reverse_bits() >> (64 - bits);
            x[t as usize] = ((t as f64) * 0.37).sin();
        }
        for freq in [0usize, 1, 7, 31] {
            let mut sr = 0.0;
            let mut si = 0.0;
            for (t, xv) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * freq as f64 * t as f64 / n as f64;
                sr += xv * ang.cos();
                si += xv * ang.sin();
            }
            assert!(
                (sr - re[freq]).abs() < 1e-6 && (si - im[freq]).abs() < 1e-6,
                "freq {freq}: dft ({sr},{si}) vs fft ({},{})",
                re[freq],
                im[freq]
            );
        }
    }

    #[test]
    fn compiles_as_skeleton_with_inlined_call() {
        let mut w = build_sized(256, 2);
        w.compile_auto();
        let map = w.auto_map().unwrap();
        let task = w.module.func_by_name("fft_chunk").unwrap();
        assert!(matches!(map.strategy_of[&task], Strategy::Skeleton));
        // Table 1: no affine loops.
        assert_eq!(map.info_of[&task].loops_affine, 0);
        let access = map.access(task).unwrap();
        let af = w.module.func(access);
        let mut calls = 0;
        let mut prefetches = 0;
        af.for_each_placed_inst(|_, i| {
            calls += matches!(af.inst(i).kind, dae_ir::InstKind::Call { .. }) as usize;
            prefetches += matches!(af.inst(i).kind, dae_ir::InstKind::Prefetch { .. }) as usize;
        });
        assert_eq!(calls, 0, "butterfly must be inlined");
        assert!(prefetches >= 4, "data and twiddles prefetched, got {prefetches}");
    }

    #[test]
    fn auto_prefetches_more_than_manual() {
        // §6.2.2: the auto version (twiddles included) prefetches more data;
        // the manual one completes faster.
        let mut w = build_sized(1024, 2);
        w.compile_auto();
        let cfg = RuntimeConfig::paper_default().with_policy(dae_runtime::FreqPolicy::DaeMinMax);
        let manual = run_workload(&w.module, &w.tasks(Variant::ManualDae), &cfg).unwrap();
        let auto = run_workload(&w.module, &w.tasks(Variant::AutoDae), &cfg).unwrap();
        assert!(manual.breakdown.access_s < auto.breakdown.access_s);
        assert!(auto.access_trace.prefetches > manual.access_trace.prefetches);
    }

    #[test]
    fn variants_run_to_completion() {
        let mut w = build_sized(512, 2);
        w.compile_auto();
        let cfg = RuntimeConfig::paper_default();
        for v in Variant::ALL {
            let r = run_workload(&w.module, &w.tasks(v), &cfg).unwrap();
            assert_eq!(r.tasks, w.num_tasks());
        }
    }
}
