//! Lattice-Boltzmann method (SPEC CPU2006 `lbm`, simplified D2Q5).
//!
//! A two-grid (src → dst) collide-and-stream sweep over an `H×W` lattice
//! with five distributions per cell (centre, north, south, east, west) and
//! an obstacle map. The obstacle test is **data-dependent control flow**, so
//! the task is non-affine (Table 1: 0/1 affine loops) and the compiler takes
//! the skeleton path, where the §5.2.2 CFG simplification drops the obstacle
//! conditional.
//!
//! LBM is the paper's anomaly (§6.1): its stores ("write accesses are
//! coupled with computations during the execute phase") dominate the DRAM
//! traffic, so decoupling only the reads captures a smaller share of the
//! memory time than in the other benchmarks, and coupled execution at the
//! EDP-optimal frequency can beat DAE.

use crate::common::{init_f64_global, init_i64_global, Workload};
use dae_ir::{CmpOp, FuncId, FunctionBuilder, GlobalId, Module, Type, Value};
use dae_sim::Val;

/// Default lattice width.
pub const W: i64 = 512;
/// Default lattice height.
pub const H: i64 = 256;
/// Number of distributions per cell (D2Q5).
pub const Q: i64 = 5;

/// One task: collide-and-stream rows `[y0, y1)` from plane `src_off` to
/// plane `dst_off` of the distribution array `f[2][Q][H·W]`.
/// Plane pitch: cells per plane plus padding to avoid power-of-two cache
/// aliasing between the distribution streams.
fn pitch(h: i64, w: i64) -> i64 {
    h * w + 72
}

fn build_task(m: &mut Module, f: GlobalId, obst: GlobalId, w: i64, h: i64) -> FuncId {
    let plane = h * w;
    let pitch = pitch(h, w);
    let mut b = FunctionBuilder::new(
        "lbm_sweep",
        vec![Type::I64, Type::I64, Type::I64, Type::I64],
        Type::Void,
    );
    b.set_task();
    let (src_off, dst_off, y0, y1) = (Value::Arg(0), Value::Arg(1), Value::Arg(2), Value::Arg(3));
    let fg = Value::Global(f);

    b.counted_loop(y0, y1, Value::i64(1), |b, y| {
        b.counted_loop(Value::i64(0), Value::i64(w), Value::i64(1), |b, x| {
            let row = b.imul(y, w);
            let cell = b.iadd(row, x);
            // load the 5 distributions of this cell from src
            let mut dist = Vec::new();
            for q in 0..Q {
                let idx0 = b.iadd(src_off, q * pitch);
                let idx = b.iadd(idx0, cell);
                let addr = b.elem_addr(fg, idx, Type::F64);
                dist.push(b.load(Type::F64, addr));
            }
            let oaddr = b.elem_addr(Value::Global(obst), cell, Type::I64);
            let ov = b.load(Type::I64, oaddr);
            let is_obst = b.cmp(CmpOp::Ne, ov, 0i64);

            // collide: rho = Σ f_q ; relax toward rho/Q. On obstacles,
            // bounce back (swap N<->S, E<->W) without relaxation.
            let outs = b.if_then_else(
                is_obst,
                vec![Type::F64; Q as usize],
                |_| vec![dist[0], dist[2], dist[1], dist[4], dist[3]],
                |b| {
                    let s01 = b.fadd(dist[0], dist[1]);
                    let s23 = b.fadd(dist[2], dist[3]);
                    let s = b.fadd(s01, s23);
                    let rho = b.fadd(s, dist[4]);
                    let eq = b.fmul(rho, 1.0 / Q as f64);
                    let omega = 0.6f64;
                    (0..Q as usize)
                        .map(|q| {
                            let d = b.fsub(eq, dist[q]);
                            let r = b.fmul(d, omega);
                            b.fadd(dist[q], r)
                        })
                        .collect()
                },
            );

            // stream: write each distribution to the neighbour in its
            // direction (torus wrap on the flat index, branch-free via
            // selects — division-free, as real LBM codes do with ghost
            // layers).
            let offsets = [0i64, -w, w, 1, -1]; // C, N, S, E, W
            for (q, off) in offsets.iter().enumerate() {
                let t = b.iadd(cell, *off);
                let neg = b.cmp(CmpOp::Lt, t, 0i64);
                let t_up = b.iadd(t, plane);
                let t1 = b.select(neg, t_up, t);
                let ovf = b.cmp(CmpOp::Ge, t1, plane);
                let t_dn = b.isub(t1, plane);
                let wrapped = b.select(ovf, t_dn, t1);
                let idx0 = b.iadd(dst_off, (q as i64) * pitch);
                let idx = b.iadd(idx0, wrapped);
                let addr = b.elem_addr(fg, idx, Type::F64);
                b.store(addr, outs[q]);
            }
        });
    });
    b.ret(None);
    m.add_function(b.finish())
}

/// Expert access phase: prefetch the five src rows and the obstacle row.
/// (Writes are not prefetched, per the paper.)
fn build_manual(m: &mut Module, f: GlobalId, obst: GlobalId, w: i64, h: i64) -> FuncId {
    let pitch = pitch(h, w);
    let mut b = FunctionBuilder::new(
        "lbm_sweep__manual",
        vec![Type::I64, Type::I64, Type::I64, Type::I64],
        Type::Void,
    );
    let (src_off, y0, y1) = (Value::Arg(0), Value::Arg(2), Value::Arg(3));
    let lo = b.imul(y0, w);
    let hi = b.imul(y1, w);
    b.counted_loop(lo, hi, Value::i64(1), |b, i| {
        for q in 0..Q {
            let idx0 = b.iadd(src_off, q * pitch);
            let idx = b.iadd(idx0, i);
            let addr = b.elem_addr(Value::Global(f), idx, Type::F64);
            b.prefetch(addr);
        }
        let oaddr = b.elem_addr(Value::Global(obst), i, Type::I64);
        b.prefetch(oaddr);
    });
    b.ret(None);
    m.add_function(b.finish())
}

/// Builds the LBM workload: `iters` sweeps over an `h×w` lattice in row
/// chunks of `chunk` rows.
pub fn build_sized(w: i64, h: i64, chunk: i64, iters: i64) -> Workload {
    let plane = h * w;
    let pitch = pitch(h, w);
    let mut module = Module::new();
    let mut init = vec![0.2f64; (2 * Q * pitch) as usize];
    let mut seed = 0xD1B54A32D192ED03u64;
    for v in init.iter_mut() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        *v = 0.1 + (seed >> 11) as f64 / (1u64 << 53) as f64 * 0.2;
    }
    let f = init_f64_global(&mut module, "f", &init);
    // ~6% obstacle cells, deterministic.
    let obst: Vec<i64> = (0..plane).map(|k| i64::from((k * 2654435761 + 17) % 16 == 0)).collect();
    let obst = init_i64_global(&mut module, "obst", &obst);

    let task = build_task(&mut module, f, obst, w, h);
    let manual = build_manual(&mut module, f, obst, w, h);

    let mut wl = Workload::new("LBM", module);
    wl.manual_access.insert(task, manual);
    wl.hints.insert(task, vec![0, Q * pitch, 0, chunk]);

    // One barrier epoch per sweep (src/dst planes swap between sweeps).
    for it in 0..iters {
        let (src, dst) = if it % 2 == 0 { (0, Q * pitch) } else { (Q * pitch, 0) };
        let mut y = 0;
        while y < h {
            let y1 = (y + chunk).min(h);
            wl.instances.push((task, vec![Val::I(src), Val::I(dst), Val::I(y), Val::I(y1)]));
            wl.epochs.push(it as u32);
            y = y1;
        }
    }
    wl
}

/// Builds the default-size LBM workload.
pub fn build() -> Workload {
    build_sized(W, H, 4, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Variant;
    use dae_core::Strategy;
    use dae_runtime::{run_workload, FreqPolicy, RuntimeConfig};

    #[test]
    fn mass_is_conserved() {
        // Collide-and-stream on a torus conserves Σ f (away from obstacles
        // it must hold exactly; bounce-back also conserves mass).
        let w = build_sized(32, 16, 8, 2);
        dae_ir::verify_module(&w.module).unwrap();
        use dae_mem::{CoreCaches, HierarchyConfig, SharedLlc};
        use dae_sim::{CachePort, Machine, PhaseTrace};
        let hc = HierarchyConfig::default();
        let mut llc = SharedLlc::new(hc.llc);
        let mut core = CoreCaches::new(&hc);
        let mut machine = Machine::new(&w.module);
        let f = w.module.global_by_name("f").unwrap();
        let base = machine.memory.global_addr(f);
        let plane = (32 * 16) as u64;
        let pit = pitch(16, 32) as u64;
        let sum_plane = |mem: &dae_sim::Memory, off: u64| -> f64 {
            (0..Q as u64)
                .flat_map(|q| (0..plane).map(move |c| q * pit + c))
                .map(|k| mem.read(Type::F64, base + (off + k) * 8).as_f())
                .sum()
        };
        let before = sum_plane(&machine.memory, 0);
        for (func, args) in &w.instances {
            let mut t = PhaseTrace::default();
            machine
                .run(*func, args, &mut CachePort { core: &mut core, llc: &mut llc }, &mut t)
                .unwrap();
        }
        // After 2 iterations the result lives back in plane 0.
        let after = sum_plane(&machine.memory, 0);
        assert!((before - after).abs() < 1e-9 * before.abs(), "mass drift: {before} -> {after}");
    }

    #[test]
    fn task_is_non_affine_due_to_obstacle_branch() {
        let mut w = build_sized(32, 16, 8, 1);
        w.compile_auto();
        let map = w.auto_map().unwrap();
        let task = w.module.func_by_name("lbm_sweep").unwrap();
        assert!(matches!(map.strategy_of[&task], Strategy::Skeleton));
        assert!(map.info_of[&task].has_data_dependent_cf);
        assert_eq!(map.info_of[&task].loops_affine, 0, "Table 1: 0 affine loops");
    }

    #[test]
    fn writes_dominate_dram_traffic() {
        // The LBM anomaly's root cause: stores produce at least as much DRAM
        // traffic as the (prefetchable) loads.
        let w = build_sized(128, 64, 8, 2);
        let cfg = RuntimeConfig::paper_default();
        let r = run_workload(&w.module, &w.tasks(Variant::Cae), &cfg).unwrap();
        assert!(
            r.execute_trace.store_mem_misses * 2 >= r.execute_trace.demand_hits[3],
            "stores {} vs load misses {}",
            r.execute_trace.store_mem_misses,
            r.execute_trace.demand_hits[3]
        );
    }

    #[test]
    fn skeleton_drops_obstacle_conditional() {
        let mut w = build_sized(32, 16, 8, 1);
        w.compile_auto();
        let map = w.auto_map().unwrap();
        let task = w.module.func_by_name("lbm_sweep").unwrap();
        let access = w.module.func(map.access(task).unwrap());
        // The access version must have no float compute (collision sliced
        // away) and prefetch the six read streams.
        let mut fp = 0;
        let mut prefetches = 0;
        access.for_each_placed_inst(|_, i| {
            fp += matches!(access.inst(i).kind, dae_ir::InstKind::Binary { op, .. } if op.is_float())
                as usize;
            prefetches +=
                matches!(access.inst(i).kind, dae_ir::InstKind::Prefetch { .. }) as usize;
        });
        assert_eq!(fp, 0, "{}", dae_ir::print_function(access, None));
        assert_eq!(prefetches, 6, "5 distributions + obstacle map");
    }

    #[test]
    fn dae_runs_all_variants() {
        let mut w = build_sized(64, 32, 8, 1);
        w.compile_auto();
        for v in Variant::ALL {
            let cfg = RuntimeConfig::paper_default().with_policy(FreqPolicy::DaeMinMax);
            let r = run_workload(&w.module, &w.tasks(v), &cfg).unwrap();
            assert_eq!(r.tasks, w.num_tasks());
        }
    }
}
