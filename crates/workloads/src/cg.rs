//! Conjugate-gradient kernels (NAS Parallel Benchmarks `CG`).
//!
//! The two loop nests the paper targets (Table 1: 0/2 affine):
//!
//! * `cg_spmv(r0, r1)` — CSR sparse matrix–vector product: the inner loop's
//!   bounds come from `rowptr` (loaded), and `x[col[k]]` is a gather, so
//!   nothing is affine;
//! * `cg_gather_dot(r0, r1)` — the partition-permuted reduction
//!   `w[i] += x[map[i]] · r[i]` feeding the residual update.
//!
//! The expert access phases chase exactly one level of indirection
//! (`rowptr`/`col` then `x`).

use crate::common::{init_f64_global, init_i64_global, Workload};
use dae_ir::{FuncId, FunctionBuilder, GlobalId, Module, Type, Value};
use dae_sim::Val;

/// Default number of matrix rows.
pub const ROWS: i64 = 16384;
/// Default non-zeros per row.
pub const NNZ_PER_ROW: i64 = 16;

struct Arrays {
    a: GlobalId,
    col: GlobalId,
    rowptr: GlobalId,
    x: GlobalId,
    y: GlobalId,
    map: GlobalId,
    r: GlobalId,
    w: GlobalId,
}

fn build_spmv(m: &mut Module, ar: &Arrays) -> FuncId {
    let mut b = FunctionBuilder::new("cg_spmv", vec![Type::I64, Type::I64], Type::Void);
    b.set_task();
    let (r0, r1) = (Value::Arg(0), Value::Arg(1));
    b.counted_loop(r0, r1, Value::i64(1), |b, row| {
        let rp_a = b.elem_addr(Value::Global(ar.rowptr), row, Type::I64);
        let k_lo = b.load(Type::I64, rp_a);
        let row1 = b.iadd(row, 1i64);
        let rp_b = b.elem_addr(Value::Global(ar.rowptr), row1, Type::I64);
        let k_hi = b.load(Type::I64, rp_b);
        let acc =
            b.counted_loop_carried(k_lo, k_hi, Value::i64(1), vec![Value::f64(0.0)], |b, k, c| {
                let aa = b.elem_addr(Value::Global(ar.a), k, Type::F64);
                let av = b.load(Type::F64, aa);
                let ca = b.elem_addr(Value::Global(ar.col), k, Type::I64);
                let cj = b.load(Type::I64, ca);
                let xa = b.elem_addr(Value::Global(ar.x), cj, Type::F64);
                let xv = b.load(Type::F64, xa);
                let t = b.fmul(av, xv);
                vec![b.fadd(c[0], t)]
            });
        let ya = b.elem_addr(Value::Global(ar.y), row, Type::F64);
        b.store(ya, acc[0]);
    });
    b.ret(None);
    m.add_function(b.finish())
}

fn build_gather_dot(m: &mut Module, ar: &Arrays) -> FuncId {
    let mut b = FunctionBuilder::new("cg_gather_dot", vec![Type::I64, Type::I64], Type::Void);
    b.set_task();
    let (r0, r1) = (Value::Arg(0), Value::Arg(1));
    b.counted_loop(r0, r1, Value::i64(1), |b, i| {
        let ma = b.elem_addr(Value::Global(ar.map), i, Type::I64);
        let mi = b.load(Type::I64, ma);
        let xa = b.elem_addr(Value::Global(ar.x), mi, Type::F64);
        let xv = b.load(Type::F64, xa);
        let ra = b.elem_addr(Value::Global(ar.r), i, Type::F64);
        let rv = b.load(Type::F64, ra);
        let t = b.fmul(xv, rv);
        let wa = b.elem_addr(Value::Global(ar.w), i, Type::F64);
        let wv = b.load(Type::F64, wa);
        let s = b.fadd(wv, t);
        b.store(wa, s);
    });
    b.ret(None);
    m.add_function(b.finish())
}

fn build_manual_spmv(m: &mut Module, ar: &Arrays) -> FuncId {
    // Expert: prefetch a/col per line, chase col to prefetch x.
    let mut b = FunctionBuilder::new("cg_spmv__manual", vec![Type::I64, Type::I64], Type::Void);
    let (r0, r1) = (Value::Arg(0), Value::Arg(1));
    let rp_a = b.elem_addr(Value::Global(ar.rowptr), r0, Type::I64);
    let k_lo = b.load(Type::I64, rp_a);
    let rp_b = b.elem_addr(Value::Global(ar.rowptr), r1, Type::I64);
    let k_hi = b.load(Type::I64, rp_b);
    b.counted_loop(k_lo, k_hi, Value::i64(1), |b, k| {
        let aa = b.elem_addr(Value::Global(ar.a), k, Type::F64);
        b.prefetch(aa);
        let ca = b.elem_addr(Value::Global(ar.col), k, Type::I64);
        b.prefetch(ca);
    });
    // chase the gather
    b.counted_loop(k_lo, k_hi, Value::i64(1), |b, k| {
        let ca = b.elem_addr(Value::Global(ar.col), k, Type::I64);
        let cj = b.load(Type::I64, ca);
        let xa = b.elem_addr(Value::Global(ar.x), cj, Type::F64);
        b.prefetch(xa);
    });
    b.ret(None);
    m.add_function(b.finish())
}

fn build_manual_gather(m: &mut Module, ar: &Arrays) -> FuncId {
    let mut b =
        FunctionBuilder::new("cg_gather_dot__manual", vec![Type::I64, Type::I64], Type::Void);
    let (r0, r1) = (Value::Arg(0), Value::Arg(1));
    b.counted_loop(r0, r1, Value::i64(1), |b, i| {
        let ra = b.elem_addr(Value::Global(ar.r), i, Type::F64);
        b.prefetch(ra);
        let wa = b.elem_addr(Value::Global(ar.w), i, Type::F64);
        b.prefetch(wa);
    });
    b.counted_loop(r0, r1, Value::i64(1), |b, i| {
        let ma = b.elem_addr(Value::Global(ar.map), i, Type::I64);
        let mi = b.load(Type::I64, ma);
        let xa = b.elem_addr(Value::Global(ar.x), mi, Type::F64);
        b.prefetch(xa);
    });
    b.ret(None);
    m.add_function(b.finish())
}

/// Builds the CG workload: `iters` (spmv + gather-dot) sweeps over `rows`
/// rows in chunks of `chunk`.
pub fn build_sized(rows: i64, nnz_per_row: i64, chunk: i64, iters: i64) -> Workload {
    let mut module = Module::new();
    let nnz = rows * nnz_per_row;
    let mut seed = 0xE7037ED1A0B428DBu64;
    let mut rand = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let a_vals: Vec<f64> = (0..nnz).map(|_| (rand() >> 11) as f64 / (1u64 << 53) as f64).collect();
    let col: Vec<i64> = (0..nnz).map(|_| (rand() % rows as u64) as i64).collect();
    let rowptr: Vec<i64> = (0..=rows).map(|r| r * nnz_per_row).collect();
    let x: Vec<f64> = (0..rows).map(|_| (rand() >> 11) as f64 / (1u64 << 53) as f64).collect();
    let map: Vec<i64> = (0..rows).map(|_| (rand() % rows as u64) as i64).collect();
    let r: Vec<f64> = (0..rows).map(|_| (rand() >> 11) as f64 / (1u64 << 53) as f64).collect();

    let arrays = Arrays {
        a: init_f64_global(&mut module, "a", &a_vals),
        col: init_i64_global(&mut module, "col", &col),
        rowptr: init_i64_global(&mut module, "rowptr", &rowptr),
        x: init_f64_global(&mut module, "x", &x),
        y: module.add_global("y", Type::F64, rows as u64),
        map: init_i64_global(&mut module, "map", &map),
        r: init_f64_global(&mut module, "r", &r),
        w: module.add_global("w", Type::F64, rows as u64),
    };
    let spmv = build_spmv(&mut module, &arrays);
    let gather = build_gather_dot(&mut module, &arrays);
    let m_spmv = build_manual_spmv(&mut module, &arrays);
    let m_gather = build_manual_gather(&mut module, &arrays);

    let mut w = Workload::new("CG", module);
    w.manual_access.insert(spmv, m_spmv);
    w.manual_access.insert(gather, m_gather);
    w.hints.insert(spmv, vec![0, chunk]);
    w.hints.insert(gather, vec![0, chunk]);

    // spmv produces y before the gather-dot consumes x/r: one barrier
    // epoch per phase per iteration.
    for it in 0..iters {
        let mut lo = 0;
        while lo < rows {
            let hi = (lo + chunk).min(rows);
            w.instances.push((spmv, vec![Val::I(lo), Val::I(hi)]));
            w.epochs.push(it as u32 * 2);
            lo = hi;
        }
        let mut lo = 0;
        while lo < rows {
            let hi = (lo + chunk).min(rows);
            w.instances.push((gather, vec![Val::I(lo), Val::I(hi)]));
            w.epochs.push(it as u32 * 2 + 1);
            lo = hi;
        }
    }
    w
}

/// Builds the default-size CG workload.
pub fn build() -> Workload {
    build_sized(ROWS, NNZ_PER_ROW, 512, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Variant;
    use dae_core::Strategy;
    use dae_runtime::{run_workload, FreqPolicy, RuntimeConfig};

    #[test]
    fn spmv_matches_reference() {
        let rows = 128i64;
        let w = build_sized(rows, 8, 32, 1);
        dae_ir::verify_module(&w.module).unwrap();
        use dae_mem::{CoreCaches, HierarchyConfig, SharedLlc};
        use dae_sim::{CachePort, Machine, PhaseTrace};
        let hc = HierarchyConfig::default();
        let mut llc = SharedLlc::new(hc.llc);
        let mut core = CoreCaches::new(&hc);
        let mut machine = Machine::new(&w.module);
        let rd_i = |mem: &dae_sim::Memory, g: &str, k: i64| {
            let gid = w.module.global_by_name(g).unwrap();
            mem.read(Type::I64, mem.global_addr(gid) + k as u64 * 8).as_i()
        };
        let rd_f = |mem: &dae_sim::Memory, g: &str, k: i64| {
            let gid = w.module.global_by_name(g).unwrap();
            mem.read(Type::F64, mem.global_addr(gid) + k as u64 * 8).as_f()
        };
        let mut expected = vec![0.0f64; rows as usize];
        for row in 0..rows {
            let (lo, hi) =
                (rd_i(&machine.memory, "rowptr", row), rd_i(&machine.memory, "rowptr", row + 1));
            let mut s = 0.0;
            for k in lo..hi {
                let c = rd_i(&machine.memory, "col", k);
                s += rd_f(&machine.memory, "a", k) * rd_f(&machine.memory, "x", c);
            }
            expected[row as usize] = s;
        }
        for (f, args) in &w.instances {
            let mut t = PhaseTrace::default();
            machine
                .run(*f, args, &mut CachePort { core: &mut core, llc: &mut llc }, &mut t)
                .unwrap();
        }
        for row in 0..rows {
            let got = rd_f(&machine.memory, "y", row);
            assert!((got - expected[row as usize]).abs() < 1e-9, "y[{row}]");
        }
    }

    #[test]
    fn both_loops_non_affine() {
        let mut w = build_sized(256, 8, 64, 1);
        w.compile_auto();
        let map = w.auto_map().unwrap();
        assert!(map.refused.is_empty(), "{:?}", map.refused);
        for (task, s) in &map.strategy_of {
            assert!(matches!(s, Strategy::Skeleton), "{}", w.module.func(*task).name);
        }
        for info in map.info_of.values() {
            assert_eq!(info.loops_affine, 0);
        }
    }

    #[test]
    fn cg_is_intermediate() {
        // CG sits between compute- and memory-bound (Table 1): its `col`
        // feeder loads stream through L1, so the x-gathers issue quickly and
        // overlap — plenty of DRAM misses, but mostly *independent* ones.
        let w = build_sized(16384, 16, 512, 1);
        let cfg = RuntimeConfig::paper_default();
        let r = run_workload(&w.module, &w.tasks(Variant::Cae), &cfg).unwrap();
        assert!(r.execute_trace.dram_lines() > 1000, "CG must touch DRAM a lot");
        let frac = r
            .execute_trace
            .memory_bound_fraction(cfg.table.point(cfg.table.max()).hz(), &cfg.timing);
        assert!(
            frac > 0.15 && frac < 0.95,
            "CG should be intermediate, got memory fraction {frac}"
        );
    }

    #[test]
    fn variants_run() {
        let mut w = build_sized(512, 8, 128, 1);
        w.compile_auto();
        for v in Variant::ALL {
            let cfg = RuntimeConfig::paper_default().with_policy(FreqPolicy::DaeOptimal);
            let r = run_workload(&w.module, &w.tasks(v), &cfg).unwrap();
            assert_eq!(r.tasks, w.num_tasks());
        }
    }
}
