//! # dae-workloads — the seven evaluation benchmarks
//!
//! Re-implementations of the paper's benchmark selection (§6) as IR task
//! programs: **LU**, **Cholesky**, **FFT** (SPLASH-2), **LBM**, **LibQ**
//! (SPEC CPU2006), **CIGAR** and **CG** (NAS), "ranging from compute- to
//! memory-bound". Every benchmark ships:
//!
//! * the task-decomposed kernel (the execute phases),
//! * an **expert-written manual access phase** per task type, with the
//!   paper's documented expert tricks (selective block prefetching for
//!   LU/Cholesky, simplified data-only prefetch for FFT, per-cache-line
//!   dedup for LibQ),
//! * the compiler options (parameter hints) for **automatic** access-phase
//!   generation via `dae-core`,
//! * the dynamic task-instance schedule.
//!
//! [`Variant`] selects between CAE / Manual DAE / Auto DAE when
//! materialising [`dae_runtime::TaskInstance`] lists; [`all_benchmarks`]
//! returns the full suite in the paper's presentation order.
//!
//! # Examples
//!
//! ```no_run
//! use dae_workloads::{lu, Variant};
//! use dae_runtime::{run_workload, FreqPolicy, RuntimeConfig};
//!
//! let mut w = lu::build();
//! w.compile_auto();
//! let cfg = RuntimeConfig::paper_default().with_policy(FreqPolicy::DaeOptimal);
//! let report = run_workload(&w.module, &w.tasks(Variant::AutoDae), &cfg)?;
//! println!("{}: EDP {:.3e}", w.name, report.edp());
//! # Ok::<(), dae_sim::InterpError>(())
//! ```

#![warn(missing_docs)]

pub mod cg;
pub mod cholesky;
pub mod cigar;
pub mod common;
pub mod fft;
pub mod lbm;
pub mod libq;
pub mod lu;

pub use common::{Variant, Workload};

/// Builds every benchmark at its default evaluation size, in the paper's
/// presentation order (Table 1).
pub fn all_benchmarks() -> Vec<Workload> {
    vec![
        lu::build(),
        cholesky::build(),
        fft::build(),
        lbm::build(),
        libq::build(),
        cigar::build(),
        cg::build(),
    ]
}

/// Builds reduced-size versions of every benchmark (for fast tests).
pub fn all_benchmarks_small() -> Vec<Workload> {
    vec![
        lu::build_sized(32, 8),
        cholesky::build_sized(32, 8),
        fft::build_sized(512, 2),
        lbm::build_sized(32, 16, 8, 1),
        libq::build_sized(2048, 512),
        cigar::build_sized(128, 32, 16, 32),
        cg::build_sized(256, 8, 64, 1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_seven_benchmarks() {
        let names: Vec<&str> = all_benchmarks_small().iter().map(|w| w.name).collect();
        assert_eq!(names, vec!["LU", "Cholesky", "FFT", "LBM", "LibQ", "Cigar", "CG"]);
    }

    #[test]
    fn every_benchmark_verifies_and_compiles() {
        for mut w in all_benchmarks_small() {
            dae_ir::verify_module(&w.module).unwrap();
            w.compile_auto();
            let map = w.auto_map().unwrap();
            assert!(map.refused.is_empty(), "{}: {:?}", w.name, map.refused);
            dae_ir::verify_module(&w.module).unwrap();
            // Every task has an access phase in every variant.
            for f in w.task_funcs() {
                assert!(w.manual_access.contains_key(&f), "{} missing manual", w.name);
                assert!(map.access(f).is_some(), "{} missing auto", w.name);
            }
        }
    }

    #[test]
    fn affinity_split_matches_table1() {
        // LU and Cholesky are fully affine; the rest have zero affine loops.
        for mut w in all_benchmarks_small() {
            w.compile_auto();
            let map = w.auto_map().unwrap();
            let affine: usize = map.info_of.values().map(|i| i.loops_affine).sum();
            let total: usize = map.info_of.values().map(|i| i.loops_total).sum();
            match w.name {
                "LU" | "Cholesky" => assert_eq!(affine, total, "{}", w.name),
                _ => assert_eq!(affine, 0, "{} should have no affine loops", w.name),
            }
            assert!(total > 0);
        }
    }
}
