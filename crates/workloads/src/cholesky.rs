//! Blocked Cholesky factorisation (SPLASH-2 `cholesky`).
//!
//! Left-looking blocked Cholesky of a symmetric positive-definite `N×N`
//! matrix (lower triangle). Three task types, all affine (Table 1: 3/3):
//!
//! * `chol_diag(k0)` — in-block Cholesky of the diagonal block (with
//!   `fsqrt`),
//! * `chol_panel(k0, i0)` — triangular solve of a panel block against the
//!   diagonal block,
//! * `chol_update(k0, i0, j0)` — the SYRK/GEMM-like trailing update
//!   `A[i0+i][j0+j] -= Σ_p A[i0+i][k0+p] · A[j0+j][k0+p]`.
//!
//! The expert access phases prefetch selectively (input panels only, one
//! touch per line) — §6.2.1's trade-off: a shorter access phase that warms
//! less data than the compiler's.

use crate::common::{init_f64_global, Workload};
use dae_ir::{FuncId, FunctionBuilder, GlobalId, Module, Type, Value};
use dae_sim::Val;

/// Default matrix dimension.
pub const N: i64 = 128;
/// Default block size.
pub const B: i64 = 32;

fn elem2(b: &mut FunctionBuilder, a: GlobalId, row: Value, col: Value, n: i64) -> Value {
    let r = b.imul(row, n);
    let idx = b.iadd(r, col);
    b.elem_addr(Value::Global(a), idx, Type::F64)
}

fn build_diag(m: &mut Module, a: GlobalId, n: i64, blk: i64) -> FuncId {
    // In-block Cholesky: for j: ajj = sqrt(ajj - Σ ajp²); column scale.
    let mut b = FunctionBuilder::new("chol_diag", vec![Type::I64], Type::Void);
    b.set_task();
    let k0 = Value::Arg(0);
    b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, j| {
        let gj = b.iadd(k0, j);
        let ajj = elem2(b, a, gj, gj, n);
        let vjj = b.load(Type::F64, ajj);
        let acc = b.counted_loop_carried(Value::i64(0), j, Value::i64(1), vec![vjj], |b, p, c| {
            let gp = b.iadd(k0, p);
            let ajp = elem2(b, a, gj, gp, n);
            let v = b.load(Type::F64, ajp);
            let sq = b.fmul(v, v);
            vec![b.fsub(c[0], sq)]
        });
        let d = b.fsqrt(acc[0]);
        b.store(ajj, d);
        let lo = b.iadd(j, 1i64);
        b.counted_loop(lo, Value::i64(blk), Value::i64(1), |b, i| {
            let gi = b.iadd(k0, i);
            let aij = elem2(b, a, gi, gj, n);
            let vij = b.load(Type::F64, aij);
            let acc =
                b.counted_loop_carried(Value::i64(0), j, Value::i64(1), vec![vij], |b, p, c| {
                    let gp = b.iadd(k0, p);
                    let aip = elem2(b, a, gi, gp, n);
                    let ajp = elem2(b, a, gj, gp, n);
                    let v1 = b.load(Type::F64, aip);
                    let v2 = b.load(Type::F64, ajp);
                    let t = b.fmul(v1, v2);
                    vec![b.fsub(c[0], t)]
                });
            let q = b.fdiv(acc[0], d);
            b.store(aij, q);
        });
    });
    b.ret(None);
    m.add_function(b.finish())
}

fn build_panel(m: &mut Module, a: GlobalId, n: i64, blk: i64) -> FuncId {
    // Panel solve: A[i0+i][k0+j] = (A[i0+i][k0+j] - Σ_{p<j} A[i0+i][k0+p]·A[k0+j][k0+p]) / A[k0+j][k0+j]
    let mut b = FunctionBuilder::new("chol_panel", vec![Type::I64, Type::I64], Type::Void);
    b.set_task();
    let (k0, i0) = (Value::Arg(0), Value::Arg(1));
    b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, i| {
        b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, j| {
            let gi = b.iadd(i0, i);
            let gj = b.iadd(k0, j);
            let dst = elem2(b, a, gi, gj, n);
            let init = b.load(Type::F64, dst);
            let acc =
                b.counted_loop_carried(Value::i64(0), j, Value::i64(1), vec![init], |b, p, c| {
                    let gp = b.iadd(k0, p);
                    let aip = elem2(b, a, gi, gp, n);
                    let ajp = elem2(b, a, gj, gp, n);
                    let v1 = b.load(Type::F64, aip);
                    let v2 = b.load(Type::F64, ajp);
                    let t = b.fmul(v1, v2);
                    vec![b.fsub(c[0], t)]
                });
            let diag = elem2(b, a, gj, gj, n);
            let vd = b.load(Type::F64, diag);
            let q = b.fdiv(acc[0], vd);
            b.store(dst, q);
        });
    });
    b.ret(None);
    m.add_function(b.finish())
}

fn build_update(m: &mut Module, a: GlobalId, n: i64, blk: i64) -> FuncId {
    // Trailing update: A[i0+i][j0+j] -= Σ_p A[i0+i][k0+p] · A[j0+j][k0+p]
    let mut b =
        FunctionBuilder::new("chol_update", vec![Type::I64, Type::I64, Type::I64], Type::Void);
    b.set_task();
    let (k0, i0, j0) = (Value::Arg(0), Value::Arg(1), Value::Arg(2));
    b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, i| {
        b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, j| {
            let gi = b.iadd(i0, i);
            let gj = b.iadd(j0, j);
            let dst = elem2(b, a, gi, gj, n);
            let init = b.load(Type::F64, dst);
            let acc = b.counted_loop_carried(
                Value::i64(0),
                Value::i64(blk),
                Value::i64(1),
                vec![init],
                |b, p, c| {
                    let gp = b.iadd(k0, p);
                    let aip = elem2(b, a, gi, gp, n);
                    let ajp = elem2(b, a, gj, gp, n);
                    let v1 = b.load(Type::F64, aip);
                    let v2 = b.load(Type::F64, ajp);
                    let t = b.fmul(v1, v2);
                    vec![b.fsub(c[0], t)]
                },
            );
            b.store(dst, acc[0]);
        });
    });
    b.ret(None);
    m.add_function(b.finish())
}

fn emit_block_prefetch(
    b: &mut FunctionBuilder,
    a: GlobalId,
    n: i64,
    blk: i64,
    r0: Value,
    c0: Value,
) {
    b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, i| {
        b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, j| {
            let gi = b.iadd(r0, i);
            let gj = b.iadd(c0, j);
            let addr = elem2(b, a, gi, gj, n);
            b.prefetch(addr);
        });
    });
}

fn manual_accesses(m: &mut Module, a: GlobalId, n: i64, blk: i64) -> [FuncId; 3] {
    let mut b = FunctionBuilder::new("chol_diag__manual", vec![Type::I64], Type::Void);
    emit_block_prefetch(&mut b, a, n, blk, Value::Arg(0), Value::Arg(0));
    b.ret(None);
    let diag = m.add_function(b.finish());

    // panel: selective — only the diagonal (input) block.
    let mut b = FunctionBuilder::new("chol_panel__manual", vec![Type::I64, Type::I64], Type::Void);
    emit_block_prefetch(&mut b, a, n, blk, Value::Arg(0), Value::Arg(0));
    b.ret(None);
    let panel = m.add_function(b.finish());

    // update: selective — the two input panels, not the written block.
    let mut b = FunctionBuilder::new(
        "chol_update__manual",
        vec![Type::I64, Type::I64, Type::I64],
        Type::Void,
    );
    emit_block_prefetch(&mut b, a, n, blk, Value::Arg(1), Value::Arg(0));
    emit_block_prefetch(&mut b, a, n, blk, Value::Arg(2), Value::Arg(0));
    b.ret(None);
    let update = m.add_function(b.finish());

    [diag, panel, update]
}

/// Builds the Cholesky workload with custom sizes.
pub fn build_sized(n: i64, blk: i64) -> Workload {
    assert_eq!(n % blk, 0);
    // SPD matrix: small random symmetric + N on the diagonal.
    let mut init = vec![0.0f64; (n * n) as usize];
    let mut seed = 0x9E3779B97F4A7C15u64;
    for i in 0..n {
        for j in 0..=i {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let r = (seed >> 11) as f64 / (1u64 << 53) as f64;
            init[(i * n + j) as usize] = r;
            init[(j * n + i) as usize] = r;
        }
        init[(i * n + i) as usize] += n as f64;
    }
    let mut m = Module::new();
    let a = init_f64_global(&mut m, "A", &init);

    let diag = build_diag(&mut m, a, n, blk);
    let panel = build_panel(&mut m, a, n, blk);
    let update = build_update(&mut m, a, n, blk);
    let [md, mp, mu] = manual_accesses(&mut m, a, n, blk);

    let mut w = Workload::new("Cholesky", m);
    w.manual_access.insert(diag, md);
    w.manual_access.insert(panel, mp);
    w.manual_access.insert(update, mu);
    w.hints.insert(diag, vec![0]);
    w.hints.insert(panel, vec![0, blk]);
    w.hints.insert(update, vec![0, blk, blk]);

    // Dependencies as barrier epochs: diag(k) → panel(k) → update(k) → …
    let steps = n / blk;
    let mut epoch = 0u32;
    for ks in 0..steps {
        let k0 = ks * blk;
        w.instances.push((diag, vec![Val::I(k0)]));
        w.epochs.push(epoch);
        epoch += 1;
        for is in ks + 1..steps {
            w.instances.push((panel, vec![Val::I(k0), Val::I(is * blk)]));
            w.epochs.push(epoch);
        }
        epoch += 1;
        for is in ks + 1..steps {
            for js in ks + 1..=is {
                w.instances.push((update, vec![Val::I(k0), Val::I(is * blk), Val::I(js * blk)]));
                w.epochs.push(epoch);
            }
        }
        epoch += 1;
    }
    w
}

/// Builds the default-size Cholesky workload.
pub fn build() -> Workload {
    build_sized(N, B)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Variant;
    use dae_core::Strategy;
    use dae_mem::{CoreCaches, HierarchyConfig, SharedLlc};
    use dae_runtime::{run_workload, RuntimeConfig};
    use dae_sim::{CachePort, Machine, PhaseTrace};

    #[test]
    fn factorisation_is_correct() {
        let n = 16i64;
        let w = build_sized(n, 8);
        dae_ir::verify_module(&w.module).unwrap();
        let hc = HierarchyConfig::default();
        let mut llc = SharedLlc::new(hc.llc);
        let mut core = CoreCaches::new(&hc);
        let mut machine = Machine::new(&w.module);
        let a = w.module.global_by_name("A").unwrap();
        let base = machine.memory.global_addr(a);
        let orig: Vec<f64> = (0..n * n)
            .map(|k| machine.memory.read(Type::F64, base + (k as u64) * 8).as_f())
            .collect();
        for (f, args) in &w.instances {
            let mut t = PhaseTrace::default();
            machine
                .run(*f, args, &mut CachePort { core: &mut core, llc: &mut llc }, &mut t)
                .unwrap();
        }
        let fact: Vec<f64> = (0..n * n)
            .map(|k| machine.memory.read(Type::F64, base + (k as u64) * 8).as_f())
            .collect();
        // Check L·Lᵀ = A on the lower triangle.
        let get = |v: &Vec<f64>, i: i64, j: i64| v[(i * n + j) as usize];
        let mut max_err: f64 = 0.0;
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for p in 0..=j {
                    s += get(&fact, i, p) * get(&fact, j, p);
                }
                max_err = max_err.max((s - get(&orig, i, j)).abs());
            }
        }
        assert!(max_err < 1e-9, "Cholesky reconstruction error {max_err}");
    }

    #[test]
    fn all_tasks_compile_polyhedral() {
        let mut w = build_sized(32, 8);
        w.compile_auto();
        let map = w.auto_map().unwrap();
        assert!(map.refused.is_empty(), "{:?}", map.refused);
        for s in map.strategy_of.values() {
            assert!(matches!(s, Strategy::Polyhedral(_)), "{s:?}");
        }
        for info in map.info_of.values() {
            assert_eq!(info.loops_affine, info.loops_total);
        }
    }

    #[test]
    fn auto_beats_manual_on_cholesky() {
        // §6.2.1's bottom line: "the automatically generated access version
        // outperforms the hand-crafted one" — the polyhedral nest (derived
        // from optimized code) warms at least as much data and wins EDP,
        // while the selective manual version leaves the written block cold.
        let mut w = build_sized(64, 16);
        w.compile_auto();
        let cfg = RuntimeConfig::paper_default().with_policy(dae_runtime::FreqPolicy::DaeMinMax);
        let manual = run_workload(&w.module, &w.tasks(Variant::ManualDae), &cfg).unwrap();
        let auto = run_workload(&w.module, &w.tasks(Variant::AutoDae), &cfg).unwrap();
        // The auto version prefetches at least as much data…
        assert!(auto.access_trace.prefetches >= manual.access_trace.prefetches);
        // …and ends up with at least as good an EDP.
        assert!(
            auto.edp() <= manual.edp() * 1.02,
            "auto {} vs manual {}",
            auto.edp(),
            manual.edp()
        );
    }

    #[test]
    fn runs_under_all_variants() {
        let mut w = build_sized(32, 8);
        w.compile_auto();
        let cfg = RuntimeConfig::paper_default();
        for v in Variant::ALL {
            let r = run_workload(&w.module, &w.tasks(v), &cfg).unwrap();
            assert_eq!(r.tasks, w.num_tasks());
        }
    }
}
