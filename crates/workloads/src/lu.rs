//! Blocked LU factorisation (SPLASH-2 `lu`, the paper's running example).
//!
//! Right-looking blocked LU over an `N×N` row-major matrix with `B×B`
//! blocks. Four task types, all fully affine (Table 1: 3/3 affine loops per
//! target task):
//!
//! * `lu_diag(k0)` — unblocked LU of the diagonal block (Listing 1(b)),
//! * `lu_row(k0, j0)` — triangular solve producing a U block,
//! * `lu_col(k0, i0)` — triangular solve producing an L block,
//! * `lu_inner(k0, i0, j0)` — the GEMM-like interior update (Listing 3's
//!   multi-block access pattern: three parameter classes over one array).
//!
//! The expert (manual) access phases prefetch **selectively** — only the
//! blocks read as inputs, one touch per cache line — so they finish faster
//! than the compiler's versions but warm less data (§6.2.1).

use crate::common::{init_f64_global, Workload};
use dae_ir::{FuncId, FunctionBuilder, GlobalId, Module, Type, Value};
use dae_sim::Val;

/// Default matrix dimension.
pub const N: i64 = 128;
/// Default block size.
pub const B: i64 = 32;

/// Emits `addr = &A[(row)][(col)]` given element index expressions.
fn elem2(b: &mut FunctionBuilder, a: GlobalId, row: Value, col: Value, n: i64) -> Value {
    let r = b.imul(row, n);
    let idx = b.iadd(r, col);
    b.elem_addr(Value::Global(a), idx, Type::F64)
}

fn build_diag(m: &mut Module, a: GlobalId, n: i64, blk: i64) -> FuncId {
    // lu_diag(k0): in-block unblocked LU.
    let mut b = FunctionBuilder::new("lu_diag", vec![Type::I64], Type::Void);
    b.set_task();
    let k0 = Value::Arg(0);
    b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, i| {
        let lo = b.iadd(i, 1i64);
        b.counted_loop(lo, Value::i64(blk), Value::i64(1), |b, j| {
            let gi = b.iadd(k0, i);
            let gj = b.iadd(k0, j);
            let aji = elem2(b, a, gj, gi, n);
            let aii = elem2(b, a, gi, gi, n);
            let vji = b.load(Type::F64, aji);
            let vii = b.load(Type::F64, aii);
            let l = b.fdiv(vji, vii);
            b.store(aji, l);
            let lo2 = b.iadd(i, 1i64);
            b.counted_loop(lo2, Value::i64(blk), Value::i64(1), |b, p| {
                let gp = b.iadd(k0, p);
                let ajp = elem2(b, a, gj, gp, n);
                let aip = elem2(b, a, gi, gp, n);
                let vjp = b.load(Type::F64, ajp);
                let vip = b.load(Type::F64, aip);
                let t = b.fmul(l, vip);
                let s = b.fsub(vjp, t);
                b.store(ajp, s);
            });
        });
    });
    b.ret(None);
    m.add_function(b.finish())
}

fn build_row(m: &mut Module, a: GlobalId, n: i64, blk: i64) -> FuncId {
    // lu_row(k0, j0): U block solve — A[k0+i][j0+j] -= Σ_{p<i} L[k0+i][k0+p]·A[k0+p][j0+j]
    let mut b = FunctionBuilder::new("lu_row", vec![Type::I64, Type::I64], Type::Void);
    b.set_task();
    let (k0, j0) = (Value::Arg(0), Value::Arg(1));
    b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, i| {
        b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, j| {
            let gi = b.iadd(k0, i);
            let gj = b.iadd(j0, j);
            let dst = elem2(b, a, gi, gj, n);
            let init = b.load(Type::F64, dst);
            let acc =
                b.counted_loop_carried(Value::i64(0), i, Value::i64(1), vec![init], |b, p, c| {
                    let gp = b.iadd(k0, p);
                    let lip = elem2(b, a, gi, gp, n);
                    let upj = elem2(b, a, gp, gj, n);
                    let vl = b.load(Type::F64, lip);
                    let vu = b.load(Type::F64, upj);
                    let t = b.fmul(vl, vu);
                    vec![b.fsub(c[0], t)]
                });
            b.store(dst, acc[0]);
        });
    });
    b.ret(None);
    m.add_function(b.finish())
}

fn build_col(m: &mut Module, a: GlobalId, n: i64, blk: i64) -> FuncId {
    // lu_col(k0, i0): L block solve.
    let mut b = FunctionBuilder::new("lu_col", vec![Type::I64, Type::I64], Type::Void);
    b.set_task();
    let (k0, i0) = (Value::Arg(0), Value::Arg(1));
    b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, j| {
        b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, i| {
            let gi = b.iadd(i0, i);
            let gj = b.iadd(k0, j);
            let dst = elem2(b, a, gi, gj, n);
            let init = b.load(Type::F64, dst);
            let acc =
                b.counted_loop_carried(Value::i64(0), j, Value::i64(1), vec![init], |b, p, c| {
                    let gp = b.iadd(k0, p);
                    let lip = elem2(b, a, gi, gp, n);
                    let upj = elem2(b, a, gp, gj, n);
                    let vl = b.load(Type::F64, lip);
                    let vu = b.load(Type::F64, upj);
                    let t = b.fmul(vl, vu);
                    vec![b.fsub(c[0], t)]
                });
            let diag = elem2(b, a, gj, gj, n);
            let vd = b.load(Type::F64, diag);
            let q = b.fdiv(acc[0], vd);
            b.store(dst, q);
        });
    });
    b.ret(None);
    m.add_function(b.finish())
}

fn build_inner(m: &mut Module, a: GlobalId, n: i64, blk: i64) -> FuncId {
    // lu_inner(k0, i0, j0): A[i0+i][j0+j] -= Σ_p A[i0+i][k0+p]·A[k0+p][j0+j]
    let mut b = FunctionBuilder::new("lu_inner", vec![Type::I64, Type::I64, Type::I64], Type::Void);
    b.set_task();
    let (k0, i0, j0) = (Value::Arg(0), Value::Arg(1), Value::Arg(2));
    b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, i| {
        b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, j| {
            let gi = b.iadd(i0, i);
            let gj = b.iadd(j0, j);
            let dst = elem2(b, a, gi, gj, n);
            let init = b.load(Type::F64, dst);
            let acc = b.counted_loop_carried(
                Value::i64(0),
                Value::i64(blk),
                Value::i64(1),
                vec![init],
                |b, p, c| {
                    let gp = b.iadd(k0, p);
                    let lip = elem2(b, a, gi, gp, n);
                    let upj = elem2(b, a, gp, gj, n);
                    let vl = b.load(Type::F64, lip);
                    let vu = b.load(Type::F64, upj);
                    let t = b.fmul(vl, vu);
                    vec![b.fsub(c[0], t)]
                },
            );
            b.store(dst, acc[0]);
        });
    });
    b.ret(None);
    m.add_function(b.finish())
}

/// Expert access phase: prefetch a `blk×blk` block at `(r0, c0)`
/// (selective: callers list only the *input* blocks).
fn emit_block_prefetch(
    b: &mut FunctionBuilder,
    a: GlobalId,
    n: i64,
    blk: i64,
    r0: Value,
    c0: Value,
) {
    b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, i| {
        b.counted_loop(Value::i64(0), Value::i64(blk), Value::i64(1), |b, j| {
            let gi = b.iadd(r0, i);
            let gj = b.iadd(c0, j);
            let addr = elem2(b, a, gi, gj, n);
            b.prefetch(addr);
        });
    });
}

fn manual_accesses(m: &mut Module, a: GlobalId, n: i64, blk: i64) -> [FuncId; 4] {
    // diag: the diagonal block is both input and output; prefetch it.
    let mut b = FunctionBuilder::new("lu_diag__manual", vec![Type::I64], Type::Void);
    emit_block_prefetch(&mut b, a, n, blk, Value::Arg(0), Value::Arg(0));
    b.ret(None);
    let diag = m.add_function(b.finish());

    // row: inputs are the diagonal (L) block only — selective.
    let mut b = FunctionBuilder::new("lu_row__manual", vec![Type::I64, Type::I64], Type::Void);
    emit_block_prefetch(&mut b, a, n, blk, Value::Arg(0), Value::Arg(0));
    b.ret(None);
    let row = m.add_function(b.finish());

    // col: inputs are the diagonal (U) block only — selective.
    let mut b = FunctionBuilder::new("lu_col__manual", vec![Type::I64, Type::I64], Type::Void);
    emit_block_prefetch(&mut b, a, n, blk, Value::Arg(0), Value::Arg(0));
    b.ret(None);
    let col = m.add_function(b.finish());

    // inner: inputs are L(i0, k0) and U(k0, j0) — the written block (i0, j0)
    // is intentionally not prefetched (the expert's trade-off of §6.2.1).
    let mut b =
        FunctionBuilder::new("lu_inner__manual", vec![Type::I64, Type::I64, Type::I64], Type::Void);
    emit_block_prefetch(&mut b, a, n, blk, Value::Arg(1), Value::Arg(0));
    emit_block_prefetch(&mut b, a, n, blk, Value::Arg(0), Value::Arg(2));
    b.ret(None);
    let inner = m.add_function(b.finish());

    [diag, row, col, inner]
}

/// Builds the LU workload with custom sizes.
pub fn build_sized(n: i64, blk: i64) -> Workload {
    assert_eq!(n % blk, 0, "block must divide the matrix");
    let mut m = Module::new();
    // Diagonally dominant matrix keeps the factorisation stable.
    let mut init = Vec::with_capacity((n * n) as usize);
    let mut seed = 0x2545F4914F6CDD1Du64;
    for i in 0..n {
        for j in 0..n {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let r = (seed >> 11) as f64 / (1u64 << 53) as f64;
            init.push(if i == j { n as f64 + r } else { r });
        }
    }
    let a = init_f64_global(&mut m, "A", &init);

    let diag = build_diag(&mut m, a, n, blk);
    let row = build_row(&mut m, a, n, blk);
    let col = build_col(&mut m, a, n, blk);
    let inner = build_inner(&mut m, a, n, blk);
    let [md, mr, mc, mi] = manual_accesses(&mut m, a, n, blk);

    let mut w = Workload::new("LU", m);
    w.manual_access.insert(diag, md);
    w.manual_access.insert(row, mr);
    w.manual_access.insert(col, mc);
    w.manual_access.insert(inner, mi);
    w.hints.insert(diag, vec![0]);
    w.hints.insert(row, vec![0, blk]);
    w.hints.insert(col, vec![0, blk]);
    w.hints.insert(inner, vec![0, blk, 2 * blk]);

    // Right-looking schedule with the factorisation's dependencies encoded
    // as barrier epochs: diag(k) → {row,col}(k) → inner(k) → diag(k+1) …
    let steps = n / blk;
    let mut epoch = 0u32;
    for ks in 0..steps {
        let k0 = ks * blk;
        w.instances.push((diag, vec![Val::I(k0)]));
        w.epochs.push(epoch);
        epoch += 1;
        for js in ks + 1..steps {
            w.instances.push((row, vec![Val::I(k0), Val::I(js * blk)]));
            w.epochs.push(epoch);
        }
        for is in ks + 1..steps {
            w.instances.push((col, vec![Val::I(k0), Val::I(is * blk)]));
            w.epochs.push(epoch);
        }
        epoch += 1;
        for is in ks + 1..steps {
            for js in ks + 1..steps {
                w.instances.push((inner, vec![Val::I(k0), Val::I(is * blk), Val::I(js * blk)]));
                w.epochs.push(epoch);
            }
        }
        epoch += 1;
    }
    w
}

/// Builds the default-size LU workload.
pub fn build() -> Workload {
    build_sized(N, B)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Variant;
    use dae_core::Strategy;
    use dae_runtime::{run_workload, RuntimeConfig};

    #[test]
    fn module_verifies_and_runs() {
        let w = build_sized(32, 8);
        dae_ir::verify_module(&w.module).unwrap();
        let cfg = RuntimeConfig::paper_default();
        let r = run_workload(&w.module, &w.tasks(Variant::Cae), &cfg).unwrap();
        assert_eq!(r.tasks, w.num_tasks());
        assert!(r.execute_trace.fp_ops > 1000);
    }

    #[test]
    fn factorisation_is_correct() {
        // LU of a small matrix, then reconstruct A = L·U and compare.
        let n = 16i64;
        let w = build_sized(n, 8);
        let mut machine_check = {
            let cfg = RuntimeConfig::paper_default();
            let r = run_workload(&w.module, &w.tasks(Variant::Cae), &cfg);
            r.unwrap()
        };
        let _ = &mut machine_check;
        // Re-run manually through a fresh machine to read back memory.
        use dae_mem::{CoreCaches, HierarchyConfig, SharedLlc};
        use dae_sim::{CachePort, Machine, PhaseTrace};
        let hc = HierarchyConfig::default();
        let mut llc = SharedLlc::new(hc.llc);
        let mut core = CoreCaches::new(&hc);
        let mut machine = Machine::new(&w.module);
        // Original matrix snapshot.
        let a = w.module.global_by_name("A").unwrap();
        let base = machine.memory.global_addr(a);
        let orig: Vec<f64> = (0..n * n)
            .map(|k| machine.memory.read(Type::F64, base + (k as u64) * 8).as_f())
            .collect();
        for (f, args) in &w.instances {
            let mut t = PhaseTrace::default();
            machine
                .run(*f, args, &mut CachePort { core: &mut core, llc: &mut llc }, &mut t)
                .unwrap();
        }
        // Reconstruct L·U.
        let lu: Vec<f64> = (0..n * n)
            .map(|k| machine.memory.read(Type::F64, base + (k as u64) * 8).as_f())
            .collect();
        let get = |v: &Vec<f64>, i: i64, j: i64| v[(i * n + j) as usize];
        let mut max_err: f64 = 0.0;
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..=i.min(j) {
                    let l = if p == i { 1.0 } else { get(&lu, i, p) };
                    let u = get(&lu, p, j);
                    s += if p == i { u } else { l * u };
                }
                max_err = max_err.max((s - get(&orig, i, j)).abs());
            }
        }
        assert!(max_err < 1e-9, "LU reconstruction error {max_err}");
    }

    #[test]
    fn all_tasks_compile_polyhedral() {
        let mut w = build_sized(32, 8);
        w.compile_auto();
        let map = w.auto_map().unwrap();
        assert!(map.refused.is_empty(), "{:?}", map.refused);
        for f in [
            w.module.func_by_name("lu_diag").unwrap(),
            w.module.func_by_name("lu_row").unwrap(),
            w.module.func_by_name("lu_col").unwrap(),
            w.module.func_by_name("lu_inner").unwrap(),
        ] {
            assert!(
                matches!(map.strategy_of[&f], Strategy::Polyhedral(_)),
                "{} should be affine: {:?}",
                w.module.func(f).name,
                map.strategy_of[&f]
            );
        }
        // Table 1: every target loop is affine.
        for info in map.info_of.values() {
            assert_eq!(info.loops_affine, info.loops_total);
        }
    }

    #[test]
    fn inner_task_has_three_classes_in_one_nest() {
        let mut w = build_sized(32, 8);
        w.compile_auto();
        let map = w.auto_map().unwrap();
        let inner = w.module.func_by_name("lu_inner").unwrap();
        if let Strategy::Polyhedral(stats) = &map.strategy_of[&inner] {
            assert_eq!(stats.classes, 3, "read+2 inputs = 3 parameter classes");
            assert_eq!(stats.nests, 1, "identical block bounds merge");
            assert_eq!(stats.gen_depth, 2);
            assert_eq!(stats.orig_depth, 3);
        } else {
            panic!("inner must be polyhedral");
        }
    }

    #[test]
    fn auto_dae_preserves_results() {
        let n = 16i64;
        let mut w = build_sized(n, 8);
        w.compile_auto();
        let cfg = RuntimeConfig::paper_default().with_policy(dae_runtime::FreqPolicy::DaeMinMax);
        let cae = run_workload(&w.module, &w.tasks(Variant::Cae), &RuntimeConfig::paper_default())
            .unwrap();
        let auto = run_workload(&w.module, &w.tasks(Variant::AutoDae), &cfg).unwrap();
        // Prefetch phases ran and warmed the cache substantially.
        assert!(auto.access_trace.prefetches > 0);
        assert!(
            auto.execute_trace.demand_hits[3] < cae.execute_trace.demand_hits[3] / 4,
            "warmed execute should have ≪ misses: {} vs {}",
            auto.execute_trace.demand_hits[3],
            cae.execute_trace.demand_hits[3]
        );
    }
}
