//! Quantum register simulation (SPEC CPU2006 `libquantum`).
//!
//! A quantum register as a table of basis states (`basis[i]`, an `i64` bit
//! pattern) with complex amplitudes (`amp_re[i]`, `amp_im[i]`) — the
//! libquantum data layout whose "different fields of a complex data
//! structure" motivated the expert's per-line prefetch dedup (§6.2.3).
//! Gates iterate the whole table, test control bits and conditionally flip
//! target bits or rotate amplitudes: bitwise ops plus data-dependent
//! conditionals make every loop non-affine (Table 1: 0/6 affine loops).
//!
//! The expert access phase prefetches **one access per cache line** of each
//! array ("Manual DAE eliminates redundant prefetch instructions"), so it
//! completes faster than the compiler's version, which touches every
//! element.

use crate::common::{init_f64_global, init_i64_global, Workload};
use dae_ir::{CmpOp, FuncId, FunctionBuilder, GlobalId, Module, Type, Value};
use dae_sim::Val;

/// Default register table size (number of simulated basis states).
pub const DEFAULT_STATES: i64 = 262144;

struct Reg {
    basis: GlobalId,
    amp_re: GlobalId,
    amp_im: GlobalId,
}

/// `toffoli(c1_mask, c2_mask, t_mask, lo, hi)`: flip the target bit of every
/// state whose both control bits are set.
fn build_toffoli(m: &mut Module, reg: &Reg) -> FuncId {
    let mut b = FunctionBuilder::new(
        "libq_toffoli",
        vec![Type::I64, Type::I64, Type::I64, Type::I64, Type::I64],
        Type::Void,
    );
    b.set_task();
    let (c1, c2, t, lo, hi) =
        (Value::Arg(0), Value::Arg(1), Value::Arg(2), Value::Arg(3), Value::Arg(4));
    b.counted_loop(lo, hi, Value::i64(1), |b, i| {
        let addr = b.elem_addr(Value::Global(reg.basis), i, Type::I64);
        let s = b.load(Type::I64, addr);
        let b1 = b.and(s, c1);
        let b2 = b.and(s, c2);
        let t1 = b.cmp(CmpOp::Ne, b1, 0i64);
        let t2 = b.cmp(CmpOp::Ne, b2, 0i64);
        let both = b.and_bools(t1, t2);
        b.if_then(both, |b| {
            let flipped = b.xor(s, t);
            b.store(addr, flipped);
        });
    });
    b.ret(None);
    m.add_function(b.finish())
}

/// `cnot(c_mask, t_mask, lo, hi)`.
fn build_cnot(m: &mut Module, reg: &Reg) -> FuncId {
    let mut b = FunctionBuilder::new(
        "libq_cnot",
        vec![Type::I64, Type::I64, Type::I64, Type::I64],
        Type::Void,
    );
    b.set_task();
    let (c, t, lo, hi) = (Value::Arg(0), Value::Arg(1), Value::Arg(2), Value::Arg(3));
    b.counted_loop(lo, hi, Value::i64(1), |b, i| {
        let addr = b.elem_addr(Value::Global(reg.basis), i, Type::I64);
        let s = b.load(Type::I64, addr);
        let bit = b.and(s, c);
        let cond = b.cmp(CmpOp::Ne, bit, 0i64);
        b.if_then(cond, |b| {
            let flipped = b.xor(s, t);
            b.store(addr, flipped);
        });
    });
    b.ret(None);
    m.add_function(b.finish())
}

/// `phase(c_mask, cos, sin, lo, hi)`: rotate the amplitude of every state
/// whose control bit is set.
fn build_phase(m: &mut Module, reg: &Reg) -> FuncId {
    let mut b = FunctionBuilder::new(
        "libq_phase",
        vec![Type::I64, Type::F64, Type::F64, Type::I64, Type::I64],
        Type::Void,
    );
    b.set_task();
    let (c, co, si, lo, hi) =
        (Value::Arg(0), Value::Arg(1), Value::Arg(2), Value::Arg(3), Value::Arg(4));
    b.counted_loop(lo, hi, Value::i64(1), |b, i| {
        let baddr = b.elem_addr(Value::Global(reg.basis), i, Type::I64);
        let s = b.load(Type::I64, baddr);
        let bit = b.and(s, c);
        let cond = b.cmp(CmpOp::Ne, bit, 0i64);
        b.if_then(cond, |b| {
            let ra = b.elem_addr(Value::Global(reg.amp_re), i, Type::F64);
            let ia = b.elem_addr(Value::Global(reg.amp_im), i, Type::F64);
            let re = b.load(Type::F64, ra);
            let im = b.load(Type::F64, ia);
            let t1 = b.fmul(re, co);
            let t2 = b.fmul(im, si);
            let nr = b.fsub(t1, t2);
            let t3 = b.fmul(re, si);
            let t4 = b.fmul(im, co);
            let ni = b.fadd(t3, t4);
            b.store(ra, nr);
            b.store(ia, ni);
        });
    });
    b.ret(None);
    m.add_function(b.finish())
}

/// Expert access phases: one prefetch per cache line (8 elements).
fn build_manual_bits(m: &mut Module, reg: &Reg, name: &str, n_args: usize, lo_idx: u32) -> FuncId {
    let mut b = FunctionBuilder::new(name, vec![Type::I64; n_args], Type::Void);
    let lo = Value::Arg(lo_idx);
    let hi = Value::Arg(lo_idx + 1);
    b.counted_loop(lo, hi, Value::i64(8), |b, i| {
        let addr = b.elem_addr(Value::Global(reg.basis), i, Type::I64);
        b.prefetch(addr);
    });
    b.ret(None);
    m.add_function(b.finish())
}

fn build_manual_phase(m: &mut Module, reg: &Reg) -> FuncId {
    let mut b = FunctionBuilder::new(
        "libq_phase__manual",
        vec![Type::I64, Type::F64, Type::F64, Type::I64, Type::I64],
        Type::Void,
    );
    let (lo, hi) = (Value::Arg(3), Value::Arg(4));
    b.counted_loop(lo, hi, Value::i64(8), |b, i| {
        let baddr = b.elem_addr(Value::Global(reg.basis), i, Type::I64);
        b.prefetch(baddr);
        let ra = b.elem_addr(Value::Global(reg.amp_re), i, Type::F64);
        b.prefetch(ra);
        let ia = b.elem_addr(Value::Global(reg.amp_im), i, Type::F64);
        b.prefetch(ia);
    });
    b.ret(None);
    m.add_function(b.finish())
}

/// Builds the LibQ workload: a gate sequence over `states` basis states in
/// chunks of `chunk`.
pub fn build_sized(states: i64, chunk: i64) -> Workload {
    let mut module = Module::new();
    let basis: Vec<i64> = (0..states).map(|k| k ^ (k >> 3)).collect();
    let amp: Vec<f64> = (0..states).map(|k| 1.0 / (1.0 + k as f64)).collect();
    let reg = Reg {
        basis: init_i64_global(&mut module, "basis", &basis),
        amp_re: init_f64_global(&mut module, "amp_re", &amp),
        amp_im: init_f64_global(&mut module, "amp_im", &vec![0.0; states as usize]),
    };
    let toffoli = build_toffoli(&mut module, &reg);
    let cnot = build_cnot(&mut module, &reg);
    let phase = build_phase(&mut module, &reg);
    let m_toffoli = build_manual_bits(&mut module, &reg, "libq_toffoli__manual", 5, 3);
    let m_cnot = build_manual_bits(&mut module, &reg, "libq_cnot__manual", 4, 2);
    let m_phase = build_manual_phase(&mut module, &reg);

    let mut w = Workload::new("LibQ", module);
    w.manual_access.insert(toffoli, m_toffoli);
    w.manual_access.insert(cnot, m_cnot);
    w.manual_access.insert(phase, m_phase);
    w.hints.insert(toffoli, vec![1, 2, 4, 0, chunk]);
    w.hints.insert(cnot, vec![1, 2, 0, chunk]);
    w.hints.insert(phase, vec![1, 0.0f64.to_bits() as i64, 0, 0, chunk]);

    // A Grover-ish gate sequence, chunked.
    let (c, s) = (0.92387953251, 0.38268343236); // cos/sin π/8
                                                 // Gates apply sequentially to the register: one barrier epoch per gate.
    let push_chunks = |w: &mut Workload, f: FuncId, head: Vec<Val>, epoch: u32| {
        let mut lo = 0;
        while lo < states {
            let hi = (lo + chunk).min(states);
            let mut args = head.clone();
            args.push(Val::I(lo));
            args.push(Val::I(hi));
            w.instances.push((f, args));
            w.epochs.push(epoch);
            lo = hi;
        }
    };
    let mut epoch = 0;
    for round in 0..2 {
        let shift = round * 2;
        push_chunks(&mut w, cnot, vec![Val::I(1 << shift), Val::I(2 << shift)], epoch);
        push_chunks(
            &mut w,
            toffoli,
            vec![Val::I(1 << shift), Val::I(2 << shift), Val::I(4 << shift)],
            epoch + 1,
        );
        push_chunks(&mut w, phase, vec![Val::I(1 << shift), Val::F(c), Val::F(s)], epoch + 2);
        epoch += 3;
    }
    w
}

/// Builds the default-size LibQ workload.
pub fn build() -> Workload {
    build_sized(DEFAULT_STATES, 16384)
}

trait BoolAnd {
    fn and_bools(&mut self, a: Value, b: Value) -> Value;
}

impl BoolAnd for FunctionBuilder {
    /// Logical AND of two `bool` values via select (no `bool` bitwise op in
    /// the IR).
    fn and_bools(&mut self, a: Value, b: Value) -> Value {
        self.select(a, b, Value::ConstBool(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Variant;
    use dae_core::Strategy;
    use dae_runtime::{run_workload, FreqPolicy, RuntimeConfig};

    #[test]
    fn gates_permute_basis_states() {
        // CNOT twice is the identity on the basis table.
        let states = 256i64;
        let mut module = Module::new();
        let basis: Vec<i64> = (0..states).collect();
        let reg = Reg {
            basis: init_i64_global(&mut module, "basis", &basis),
            amp_re: init_f64_global(&mut module, "amp_re", &vec![1.0; states as usize]),
            amp_im: init_f64_global(&mut module, "amp_im", &vec![0.0; states as usize]),
        };
        let cnot = build_cnot(&mut module, &reg);
        use dae_mem::{CoreCaches, HierarchyConfig, SharedLlc};
        use dae_sim::{CachePort, Machine, PhaseTrace};
        let hc = HierarchyConfig::default();
        let mut llc = SharedLlc::new(hc.llc);
        let mut core = CoreCaches::new(&hc);
        let mut machine = Machine::new(&module);
        let args = vec![Val::I(1), Val::I(2), Val::I(0), Val::I(states)];
        for _ in 0..2 {
            let mut t = PhaseTrace::default();
            machine
                .run(cnot, &args, &mut CachePort { core: &mut core, llc: &mut llc }, &mut t)
                .unwrap();
        }
        let g = module.global_by_name("basis").unwrap();
        let base = machine.memory.global_addr(g);
        for k in 0..states {
            assert_eq!(machine.memory.read(Type::I64, base + (k as u64) * 8).as_i(), k);
        }
    }

    #[test]
    fn all_gates_take_skeleton_path() {
        let mut w = build_sized(2048, 512);
        w.compile_auto();
        let map = w.auto_map().unwrap();
        assert!(map.refused.is_empty(), "{:?}", map.refused);
        for (task, s) in &map.strategy_of {
            assert!(matches!(s, Strategy::Skeleton), "{}: {s:?}", w.module.func(*task).name);
        }
        for info in map.info_of.values() {
            assert_eq!(info.loops_affine, 0, "Table 1: 0 affine loops");
        }
    }

    #[test]
    fn manual_dedup_makes_access_faster() {
        // §6.2.3: per-line manual prefetching → faster access phase; the
        // auto version executes more prefetches.
        let mut w = build_sized(16384, 4096);
        w.compile_auto();
        let cfg = RuntimeConfig::paper_default().with_policy(FreqPolicy::DaeMinMax);
        let manual = run_workload(&w.module, &w.tasks(Variant::ManualDae), &cfg).unwrap();
        let auto = run_workload(&w.module, &w.tasks(Variant::AutoDae), &cfg).unwrap();
        assert!(auto.access_trace.prefetches > manual.access_trace.prefetches * 4);
        assert!(manual.breakdown.access_s <= auto.breakdown.access_s);
    }

    #[test]
    fn workload_is_memory_bound() {
        let w = build_sized(32768, 4096);
        let cfg = RuntimeConfig::paper_default();
        let r = run_workload(&w.module, &w.tasks(Variant::Cae), &cfg).unwrap();
        let frac = r
            .execute_trace
            .memory_bound_fraction(cfg.table.point(cfg.table.max()).hz(), &cfg.timing);
        assert!(frac > 0.4, "LibQ should be memory-bound, got {frac}");
    }

    #[test]
    fn variants_complete() {
        let mut w = build_sized(4096, 1024);
        w.compile_auto();
        for v in Variant::ALL {
            let cfg = RuntimeConfig::paper_default().with_policy(FreqPolicy::DaeOptimal);
            let r = run_workload(&w.module, &w.tasks(v), &cfg).unwrap();
            assert_eq!(r.tasks, w.num_tasks());
        }
    }
}
