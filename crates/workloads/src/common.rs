//! Shared workload infrastructure: variants, auto-compilation, instances.

use dae_core::{transform_module, CompilerOptions, DaeMap};
use dae_ir::{FuncId, Function, Module};
use dae_runtime::TaskInstance;
use dae_sim::Val;
use std::collections::HashMap;

/// Which access-phase source a run uses (the three bars of Figure 3/4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Coupled access-execute: the original tasks, no access phases.
    Cae,
    /// Expert-written access phases.
    ManualDae,
    /// Compiler-generated access phases (this paper's contribution).
    AutoDae,
}

impl Variant {
    /// All three variants, in the paper's presentation order.
    pub const ALL: [Variant; 3] = [Variant::Cae, Variant::ManualDae, Variant::AutoDae];

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Cae => "CAE",
            Variant::ManualDae => "Manual DAE",
            Variant::AutoDae => "Auto DAE",
        }
    }
}

/// One benchmark: a module, its task instances, expert access phases and
/// the per-task compiler options for automatic generation.
pub struct Workload {
    /// Benchmark name as in Table 1.
    pub name: &'static str,
    /// The program.
    pub module: Module,
    /// Dynamic task instances, in creation order: (task function, args).
    pub instances: Vec<(FuncId, Vec<Val>)>,
    /// Barrier epoch per instance (parallel to `instances`; empty = all
    /// zero). Encodes the benchmark's task-graph dependencies, coarsened to
    /// phases.
    pub epochs: Vec<u32>,
    /// Expert-written access phase per task function.
    pub manual_access: HashMap<FuncId, FuncId>,
    /// Representative parameter values per task function (for the §5.1
    /// profitability counts).
    pub hints: HashMap<FuncId, Vec<i64>>,
    /// Extra compiler options applied to every task of this workload.
    pub base_options: CompilerOptions,
    auto: Option<DaeMap>,
}

impl Workload {
    /// Creates a workload shell; benchmarks fill the fields.
    pub fn new(name: &'static str, module: Module) -> Self {
        Workload {
            name,
            module,
            instances: Vec::new(),
            epochs: Vec::new(),
            manual_access: HashMap::new(),
            hints: HashMap::new(),
            base_options: CompilerOptions::default(),
            auto: None,
        }
    }

    /// Runs the access-phase compiler over all tasks (idempotent).
    ///
    /// The expert (manual) access phases are deliberately *not* run through
    /// the `-O3` pipeline: the paper's manual versions were "generated from
    /// the unoptimized source code" (§6.2.2) — the compiler's ability to
    /// derive its access phase *after* traditional optimizations is one of
    /// its two stated advantages over the manual approach.
    pub fn compile_auto(&mut self) -> &DaeMap {
        if self.auto.is_none() {
            let opts_for = self.auto_options_fn();
            let map = transform_module(&mut self.module, opts_for);
            self.auto = Some(map);
        }
        self.auto.as_ref().expect("just set")
    }

    /// The per-task options closure [`Workload::compile_auto`] uses, with
    /// the hint table captured by clone. Hand it to an external compilation
    /// driver (e.g. `dae-driver`) to reproduce `compile_auto` exactly.
    pub fn auto_options_fn(&self) -> impl FnMut(FuncId, &Function) -> CompilerOptions + 'static {
        let hints = self.hints.clone();
        let base = self.base_options.clone();
        move |task, _| CompilerOptions {
            param_hints: hints.get(&task).cloned().unwrap_or_default(),
            ..base.clone()
        }
    }

    /// Installs an externally produced compilation result (the access
    /// functions must already be registered in [`Workload::module`]),
    /// so [`Variant::AutoDae`] resolves through it.
    pub fn install_auto(&mut self, map: DaeMap) {
        self.auto = Some(map);
    }

    /// The compiler's decisions, if [`Workload::compile_auto`] has run.
    pub fn auto_map(&self) -> Option<&DaeMap> {
        self.auto.as_ref()
    }

    /// Materialises the task list for a variant.
    ///
    /// # Panics
    ///
    /// Panics if [`Variant::AutoDae`] is requested before
    /// [`Workload::compile_auto`].
    pub fn tasks(&self, variant: Variant) -> Vec<TaskInstance> {
        assert!(
            self.epochs.is_empty() || self.epochs.len() == self.instances.len(),
            "epochs must be empty or parallel to instances"
        );
        self.instances
            .iter()
            .enumerate()
            .map(|(k, (func, args))| {
                let access = match variant {
                    Variant::Cae => None,
                    Variant::ManualDae => self.manual_access.get(func).copied(),
                    Variant::AutoDae => self
                        .auto
                        .as_ref()
                        .expect("call compile_auto() before AutoDae tasks")
                        .access(*func),
                };
                TaskInstance {
                    func: *func,
                    access,
                    args: args.clone(),
                    epoch: self.epochs.get(k).copied().unwrap_or(0),
                }
            })
            .collect()
    }

    /// Total number of dynamic task instances (Table 1's `# tasks`).
    pub fn num_tasks(&self) -> usize {
        self.instances.len()
    }

    /// The distinct task functions of this workload.
    pub fn task_funcs(&self) -> Vec<FuncId> {
        let mut seen = Vec::new();
        for (f, _) in &self.instances {
            if !seen.contains(f) {
                seen.push(*f);
            }
        }
        seen
    }
}

/// Initialises an `f64` global with values computed in Rust.
pub fn init_f64_global(module: &mut Module, name: &str, values: &[f64]) -> dae_ir::GlobalId {
    module.add_global_init(dae_ir::GlobalData {
        name: name.to_string(),
        elem_ty: dae_ir::Type::F64,
        len: values.len() as u64,
        init: dae_ir::GlobalInit::Words(values.iter().map(|v| v.to_bits()).collect()),
    })
}

/// Initialises an `i64` global with values computed in Rust.
pub fn init_i64_global(module: &mut Module, name: &str, values: &[i64]) -> dae_ir::GlobalId {
    module.add_global_init(dae_ir::GlobalData {
        name: name.to_string(),
        elem_ty: dae_ir::Type::I64,
        len: values.len() as u64,
        init: dae_ir::GlobalInit::Words(values.iter().map(|v| *v as u64).collect()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::{FunctionBuilder, Type, Value};

    fn tiny_workload() -> Workload {
        let mut m = Module::new();
        let a = m.add_global("a", Type::F64, 128);
        let mut b = FunctionBuilder::new("t", vec![Type::I64], Type::Void);
        b.set_task();
        b.counted_loop(Value::i64(0), Value::Arg(0), Value::i64(1), |b, i| {
            let p = b.elem_addr(Value::Global(a), i, Type::F64);
            let v = b.load(Type::F64, p);
            let w = b.fadd(v, 1.0f64);
            b.store(p, w);
        });
        b.ret(None);
        let t = m.add_function(b.finish());
        let mut w = Workload::new("tiny", m);
        w.instances = vec![(t, vec![Val::I(64)]), (t, vec![Val::I(64)])];
        w.hints.insert(t, vec![64]);
        w
    }

    #[test]
    fn variants_have_expected_access() {
        let mut w = tiny_workload();
        w.compile_auto();
        let cae = w.tasks(Variant::Cae);
        assert!(cae.iter().all(|t| t.access.is_none()));
        let auto = w.tasks(Variant::AutoDae);
        assert!(auto.iter().all(|t| t.access.is_some()));
        assert_eq!(w.num_tasks(), 2);
        assert_eq!(w.task_funcs().len(), 1);
    }

    #[test]
    fn compile_auto_is_idempotent() {
        let mut w = tiny_workload();
        let n1 = w.compile_auto().access_of.len();
        let funcs_after_first = w.module.num_funcs();
        let n2 = w.compile_auto().access_of.len();
        assert_eq!(n1, n2);
        assert_eq!(w.module.num_funcs(), funcs_after_first, "no duplicate generation");
    }

    #[test]
    #[should_panic(expected = "compile_auto")]
    fn auto_tasks_require_compilation() {
        let w = tiny_workload();
        let _ = w.tasks(Variant::AutoDae);
    }

    #[test]
    fn global_initialisers() {
        let mut m = Module::new();
        let g = init_f64_global(&mut m, "vals", &[1.5, 2.5]);
        assert_eq!(m.global(g).len, 2);
        let h = init_i64_global(&mut m, "idx", &[3, -4, 5]);
        assert_eq!(m.global(h).len, 3);
    }
}
