//! # dae-pgo — persistent profiles and profile-guided phase refinement
//!
//! The paper's compiler decides access-phase shape purely statically:
//! §5.1 gates the affine scan on a *predicted* instruction count and §5.2
//! prefetches every load the skeleton slice can reach. This crate closes
//! the loop the way production compilers do — with persistent PGO:
//!
//! * [`profile`] — the [`PhaseProfile`] record: per-task access/execute
//!   phase counters (miss ratios, prefetch coverage and accuracy, branch
//!   and trip-count totals, memory-level parallelism, measured
//!   memory-boundedness) assembled from the simulator's existing
//!   [`PhaseTrace`](dae_trace) counters and merged across runs with
//!   deterministic saturating aggregation.
//! * [`store`] — the corruption-tolerant, versioned on-disk store keyed
//!   by the driver's `task_key`: a malformed record is skipped and
//!   counted, never a panic; an in-memory LRU mirror bounds residency.
//! * [`refine`] — the pure decision function behind the driver's
//!   `refine` pass: given a profile it prunes redundant prefetches
//!   (line-granularity dedup when measured accuracy is low), drops
//!   access phases whose measured coverage shows them useless, flips the
//!   §5.1 profitability verdict when measured boundedness contradicts
//!   the static estimate, and synthesises trip-count hints for unhinted
//!   parameters. Deterministic given the same profile.
//!
//! Everything is content-addressed: [`PhaseProfile::content_hash`] folds
//! into the driver's cache key, so a refined artifact can never go stale
//! against the profile that shaped it, and an **empty profile leaves the
//! pipeline byte-identical** to the static one.

#![warn(missing_docs)]

pub mod profile;
pub mod refine;
pub mod store;

pub use profile::{PhaseAgg, PhaseProfile, PhaseSample, ProfileCollector, ProfileSet};
pub use refine::{plan_refinement, RefinePlan, RefineThresholds};
pub use store::{ProfileStore, StoreStats};

/// Stable schema tag of every profile document this crate reads or writes.
pub const PROFILE_SCHEMA: &str = "dae-pgo-profile/1";

/// Stable machine-readable error codes of the profile layer.
pub mod codes {
    /// A profile file is not parseable JSON at all.
    pub const PARSE: &str = "pgo.parse";
    /// A profile file parsed but carries the wrong (or no) schema tag.
    pub const SCHEMA: &str = "pgo.schema";
    /// The filesystem refused a profile read or write.
    pub const IO: &str = "pgo.io";
}

/// An error from the profile layer, with a stable dotted `pgo.*` code.
#[derive(Debug)]
pub struct PgoError {
    code: &'static str,
    message: String,
}

impl PgoError {
    /// An error with the given code and human-readable message.
    pub fn new(code: &'static str, message: impl Into<String>) -> PgoError {
        PgoError { code, message: message.into() }
    }
}

impl std::fmt::Display for PgoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for PgoError {}

impl dae_ir::CodedError for PgoError {
    fn code(&self) -> &'static str {
        self.code
    }
}

/// FNV-1a-64 over raw bytes — the same stable algorithm (same constants)
/// as `dae-driver`'s cache keys, duplicated here because the dependency
/// points the other way (the driver consumes profiles).
pub(crate) fn fnv1a(init: u64, bytes: &[u8]) -> u64 {
    const FNV_PRIME: u64 = 0x100_0000_01b3;
    let mut h = init;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The FNV-1a-64 offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

#[cfg(test)]
mod tests {
    use super::*;
    use dae_ir::CodedError as _;

    #[test]
    fn error_codes_are_dotted_and_pgo_scoped() {
        for c in [codes::PARSE, codes::SCHEMA, codes::IO] {
            assert!(c.starts_with("pgo."), "{c}");
            assert!(!c.contains(' '));
        }
        let e = PgoError::new(codes::PARSE, "bad byte");
        assert_eq!(e.code(), "pgo.parse");
        assert_eq!(e.to_string(), "bad byte");
    }

    #[test]
    fn fnv_matches_the_reference_vector() {
        // FNV-1a-64 of "hello" — the same vector dae-driver pins.
        assert_eq!(fnv1a(FNV_OFFSET, b"hello"), 0xa430_d846_80aa_bd0b);
    }
}
