//! The profile record: per-phase counter aggregates, their derived
//! signals, deterministic merging and the content hash.
//!
//! A [`PhaseProfile`] is the unit the store keys by the driver's
//! `task_key`: one record per (task IR × options × pipeline) identity,
//! accumulated over any number of runs. All aggregation is **saturating**
//! — merging is associative and commutative on the counter lattice, so
//! the merged record is independent of the order profiles arrive in, and
//! a hostile file full of `u64::MAX` cannot overflow into a panic.

use std::collections::BTreeMap;

use dae_ir::FuncId;
use dae_trace::json::JsonValue;

use crate::{fnv1a, FNV_OFFSET, PROFILE_SCHEMA};

/// One phase's counters from a single run, as sampled from the
/// simulator's `PhaseTrace` by the runtime (this crate never sees the
/// trace itself; the runtime converts).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseSample {
    /// Dynamic instructions retired.
    pub instrs: u64,
    /// Demand loads issued.
    pub loads: u64,
    /// Demand loads served from DRAM (LLC misses).
    pub dram_misses: u64,
    /// Software prefetches issued.
    pub prefetches: u64,
    /// Software prefetches that actually fetched a line from DRAM (the
    /// rest hit a cache level — a redundant prefetch).
    pub prefetch_dram_lines: u64,
    /// Conditional branches executed (the trip-count signal).
    pub branches: u64,
    /// Memory-level parallelism ×100: DRAM misses per serialised miss
    /// cluster, as measured by the interval timing model.
    pub mlp_x100: u64,
    /// Measured memory-bound fraction of the phase at fmax, in parts per
    /// million.
    pub mem_bound_ppm: u64,
}

/// Saturating counter sums of one phase over `runs` runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseAgg {
    /// Total dynamic instructions.
    pub instrs: u64,
    /// Total demand loads.
    pub loads: u64,
    /// Total demand loads served from DRAM.
    pub dram_misses: u64,
    /// Total software prefetches issued.
    pub prefetches: u64,
    /// Total prefetches that fetched a line from DRAM.
    pub prefetch_dram_lines: u64,
    /// Total conditional branches.
    pub branches: u64,
    /// Sum over runs of the per-run MLP ×100.
    pub mlp_x100_sum: u64,
    /// Sum over runs of the per-run memory-bound ppm.
    pub mem_bound_ppm_sum: u64,
}

impl PhaseAgg {
    fn absorb(&mut self, s: &PhaseSample) {
        self.instrs = self.instrs.saturating_add(s.instrs);
        self.loads = self.loads.saturating_add(s.loads);
        self.dram_misses = self.dram_misses.saturating_add(s.dram_misses);
        self.prefetches = self.prefetches.saturating_add(s.prefetches);
        self.prefetch_dram_lines = self.prefetch_dram_lines.saturating_add(s.prefetch_dram_lines);
        self.branches = self.branches.saturating_add(s.branches);
        self.mlp_x100_sum = self.mlp_x100_sum.saturating_add(s.mlp_x100);
        self.mem_bound_ppm_sum = self.mem_bound_ppm_sum.saturating_add(s.mem_bound_ppm);
    }

    fn merge(&mut self, o: &PhaseAgg) {
        self.instrs = self.instrs.saturating_add(o.instrs);
        self.loads = self.loads.saturating_add(o.loads);
        self.dram_misses = self.dram_misses.saturating_add(o.dram_misses);
        self.prefetches = self.prefetches.saturating_add(o.prefetches);
        self.prefetch_dram_lines = self.prefetch_dram_lines.saturating_add(o.prefetch_dram_lines);
        self.branches = self.branches.saturating_add(o.branches);
        self.mlp_x100_sum = self.mlp_x100_sum.saturating_add(o.mlp_x100_sum);
        self.mem_bound_ppm_sum = self.mem_bound_ppm_sum.saturating_add(o.mem_bound_ppm_sum);
    }

    fn to_json(self) -> JsonValue {
        JsonValue::obj([
            ("instrs", self.instrs.into()),
            ("loads", self.loads.into()),
            ("dram_misses", self.dram_misses.into()),
            ("prefetches", self.prefetches.into()),
            ("prefetch_dram_lines", self.prefetch_dram_lines.into()),
            ("branches", self.branches.into()),
            ("mlp_x100_sum", self.mlp_x100_sum.into()),
            ("mem_bound_ppm_sum", self.mem_bound_ppm_sum.into()),
        ])
    }

    fn from_json(v: &JsonValue) -> Option<PhaseAgg> {
        let field = |name: &str| -> Option<u64> {
            let n = v.get(name)?.as_f64()?;
            // Counters are non-negative by construction; a hostile file
            // carrying NaN, a negative or an overscaled float is clamped
            // into the representable range, never trusted into a panic.
            if n.is_nan() {
                return None;
            }
            Some(n.clamp(0.0, u64::MAX as f64) as u64)
        };
        Some(PhaseAgg {
            instrs: field("instrs")?,
            loads: field("loads")?,
            dram_misses: field("dram_misses")?,
            prefetches: field("prefetches")?,
            prefetch_dram_lines: field("prefetch_dram_lines")?,
            branches: field("branches")?,
            mlp_x100_sum: field("mlp_x100_sum")?,
            mem_bound_ppm_sum: field("mem_bound_ppm_sum")?,
        })
    }

    fn hash_into(&self, mut h: u64) -> u64 {
        for v in [
            self.instrs,
            self.loads,
            self.dram_misses,
            self.prefetches,
            self.prefetch_dram_lines,
            self.branches,
            self.mlp_x100_sum,
            self.mem_bound_ppm_sum,
        ] {
            h = fnv1a(h, &v.to_le_bytes());
        }
        h
    }
}

/// The profile of one task identity: access- and execute-phase counter
/// aggregates over `runs` decoupled runs. For tasks that ran coupled the
/// access aggregate stays zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Task executions aggregated into this record.
    pub runs: u64,
    /// Access-phase counter sums.
    pub access: PhaseAgg,
    /// Execute-phase counter sums.
    pub execute: PhaseAgg,
}

impl PhaseProfile {
    /// Absorbs one run's samples (saturating).
    pub fn absorb(&mut self, access: Option<&PhaseSample>, execute: &PhaseSample) {
        self.runs = self.runs.saturating_add(1);
        if let Some(a) = access {
            self.access.absorb(a);
        }
        self.execute.absorb(execute);
    }

    /// Merges another record into this one (saturating; commutative and
    /// associative, so aggregation order never changes the result).
    pub fn merge(&mut self, o: &PhaseProfile) {
        self.runs = self.runs.saturating_add(o.runs);
        self.access.merge(&o.access);
        self.execute.merge(&o.execute);
    }

    /// Fraction of issued prefetches that actually fetched a line from
    /// DRAM. Low accuracy means the access phase mostly re-touches lines
    /// it (or the hardware) already brought in — e.g. eight consecutive
    /// `f64` prefetches per 64-byte line score 1/8.
    pub fn prefetch_accuracy(&self) -> f64 {
        ratio(self.access.prefetch_dram_lines, self.access.prefetches)
    }

    /// Fraction of the task's DRAM line traffic fetched by the access
    /// phase ahead of execute: `pf_lines / (pf_lines + execute_misses)`.
    /// Near zero means the access phase fetched (almost) nothing execute
    /// would have missed on — a useless phase.
    pub fn prefetch_coverage(&self) -> f64 {
        let pf = self.access.prefetch_dram_lines;
        ratio(pf, pf.saturating_add(self.execute.dram_misses))
    }

    /// Execute-phase DRAM miss ratio (misses per demand load).
    pub fn execute_miss_ratio(&self) -> f64 {
        ratio(self.execute.dram_misses, self.execute.loads)
    }

    /// Mean measured memory-bound fraction of the execute phase at fmax.
    pub fn execute_mem_bound(&self) -> f64 {
        if self.runs == 0 {
            return 0.0;
        }
        (self.execute.mem_bound_ppm_sum as f64 / self.runs as f64) / 1e6
    }

    /// Mean conditional branches per run — the measured trip-count
    /// signal used to synthesise loop-bound hints for unhinted tasks.
    pub fn trip_estimate(&self) -> u64 {
        self.execute.branches.checked_div(self.runs).unwrap_or(0)
    }

    /// Mean execute-phase memory-level parallelism over runs.
    pub fn execute_mlp(&self) -> f64 {
        if self.runs == 0 {
            return 0.0;
        }
        (self.execute.mlp_x100_sum as f64 / self.runs as f64) / 100.0
    }

    /// Stable content hash of the record (FNV-1a-64 over the schema tag
    /// and every counter). The driver folds this into the cache
    /// `task_key` of a refined compile, so an artifact can never be
    /// served against a profile other than the one that shaped it.
    pub fn content_hash(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, PROFILE_SCHEMA.as_bytes());
        h = fnv1a(h, &self.runs.to_le_bytes());
        h = self.access.hash_into(h);
        h = self.execute.hash_into(h);
        h
    }

    /// The record's JSON form, without its key (the store adds it).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("runs", self.runs.into()),
            ("access", self.access.to_json()),
            ("execute", self.execute.to_json()),
        ])
    }

    /// Parses [`PhaseProfile::to_json`]'s shape; `None` on any missing or
    /// malformed field (the store skips such records).
    pub fn from_json(v: &JsonValue) -> Option<PhaseProfile> {
        let runs = v.get("runs")?.as_f64()?;
        if runs.is_nan() || runs < 0.0 {
            return None;
        }
        Some(PhaseProfile {
            runs: runs.clamp(0.0, u64::MAX as f64) as u64,
            access: PhaseAgg::from_json(v.get("access")?)?,
            execute: PhaseAgg::from_json(v.get("execute")?)?,
        })
    }

    /// Compact derived-signal summary for `stats`/`profiles` endpoints.
    pub fn summary_json(&self, key: u64) -> JsonValue {
        JsonValue::obj([
            ("key", format!("{key:016x}").into()),
            ("runs", self.runs.into()),
            ("prefetch_accuracy", self.prefetch_accuracy().into()),
            ("prefetch_coverage", self.prefetch_coverage().into()),
            ("execute_miss_ratio", self.execute_miss_ratio().into()),
            ("execute_mem_bound", self.execute_mem_bound().into()),
            ("execute_mlp", self.execute_mlp().into()),
            ("trip_estimate", self.trip_estimate().into()),
        ])
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// An immutable, deterministic profile view keyed by the driver's base
/// `task_key` — what the driver's `refine` pass consults during a
/// compile. Cloning is cheap enough for per-compile snapshots.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileSet {
    map: BTreeMap<u64, PhaseProfile>,
}

impl ProfileSet {
    /// An empty set (refinement becomes a strict no-op).
    pub fn new() -> ProfileSet {
        ProfileSet::default()
    }

    /// The profile of `key`, if one was collected.
    pub fn get(&self, key: u64) -> Option<&PhaseProfile> {
        self.map.get(&key)
    }

    /// Inserts (merging with any existing record under `key`).
    pub fn insert(&mut self, key: u64, p: PhaseProfile) {
        self.map.entry(key).or_default().merge(&p);
    }

    /// True when no profile is held — the byte-identity fast path.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Records in deterministic key order.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &PhaseProfile)> {
        self.map.iter()
    }

    /// Content hash of the whole set (order-independent by construction:
    /// the map iterates in key order).
    pub fn content_hash(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, b"dae-pgo-set/1");
        for (k, p) in &self.map {
            h = fnv1a(h, &k.to_le_bytes());
            h = fnv1a(h, &p.content_hash().to_le_bytes());
        }
        h
    }
}

/// Accumulates per-task samples during a run, keyed by the *execute*
/// function. The runtime owns one per profiled run; the caller remaps
/// function ids to driver `task_key`s afterwards (the runtime does not
/// know them).
#[derive(Debug, Default)]
pub struct ProfileCollector {
    map: BTreeMap<FuncId, PhaseProfile>,
}

impl ProfileCollector {
    /// A fresh, empty collector.
    pub fn new() -> ProfileCollector {
        ProfileCollector::default()
    }

    /// Records one completed task execution.
    pub fn record(&mut self, func: FuncId, access: Option<&PhaseSample>, execute: &PhaseSample) {
        self.map.entry(func).or_default().absorb(access, execute);
    }

    /// Collected profiles in deterministic function order.
    pub fn iter(&self) -> impl Iterator<Item = (&FuncId, &PhaseProfile)> {
        self.map.iter()
    }

    /// Number of distinct tasks profiled.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drains the collected profiles.
    pub fn take(&mut self) -> BTreeMap<FuncId, PhaseProfile> {
        std::mem::take(&mut self.map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample(scale: u64) -> PhaseSample {
        PhaseSample {
            instrs: 1000 * scale,
            loads: 100 * scale,
            dram_misses: 10 * scale,
            prefetches: 80 * scale,
            prefetch_dram_lines: 10 * scale,
            branches: 64 * scale,
            mlp_x100: 250,
            mem_bound_ppm: 600_000,
        }
    }

    #[test]
    fn merge_is_saturating_and_order_independent() {
        let mut a = PhaseProfile::default();
        a.absorb(Some(&sample(1)), &sample(2));
        let mut b = PhaseProfile::default();
        b.absorb(None, &sample(3));
        let (mut ab, mut ba) = (a, b);
        ab.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab.runs, 2);
        // Saturation: a hostile near-MAX record cannot overflow.
        let mut big = PhaseProfile { runs: u64::MAX - 1, ..Default::default() };
        big.execute.instrs = u64::MAX - 5;
        let mut other = big;
        big.merge(&other);
        assert_eq!(big.runs, u64::MAX);
        assert_eq!(big.execute.instrs, u64::MAX);
        other.merge(&big);
        assert_eq!(other.execute.instrs, u64::MAX);
    }

    #[test]
    fn derived_signals_match_hand_arithmetic() {
        let mut p = PhaseProfile::default();
        p.absorb(Some(&sample(1)), &sample(1));
        // accuracy = pf_dram / prefetches = 10/80
        assert!((p.prefetch_accuracy() - 0.125).abs() < 1e-12);
        // coverage = 10 / (10 + 10)
        assert!((p.prefetch_coverage() - 0.5).abs() < 1e-12);
        assert!((p.execute_miss_ratio() - 0.1).abs() < 1e-12);
        assert!((p.execute_mem_bound() - 0.6).abs() < 1e-12);
        assert_eq!(p.trip_estimate(), 64);
        assert!((p.execute_mlp() - 2.5).abs() < 1e-12);
        // Degenerate denominators never divide by zero.
        let z = PhaseProfile::default();
        assert_eq!(z.prefetch_accuracy(), 0.0);
        assert_eq!(z.prefetch_coverage(), 0.0);
        assert_eq!(z.execute_mem_bound(), 0.0);
        assert_eq!(z.trip_estimate(), 0);
    }

    #[test]
    fn json_round_trips_and_rejects_malformed_fields() {
        let mut p = PhaseProfile::default();
        p.absorb(Some(&sample(3)), &sample(7));
        let back = PhaseProfile::from_json(&p.to_json()).expect("round trip");
        assert_eq!(back, p);
        assert_eq!(back.content_hash(), p.content_hash());
        // Missing field ⇒ None.
        let v = dae_trace::json::parse(r#"{"runs":1,"access":{}}"#).unwrap();
        assert!(PhaseProfile::from_json(&v).is_none());
        // Negative / NaN-ish counters ⇒ rejected or clamped, never panic.
        let neg = dae_trace::json::parse(r#"{"runs":-3,"access":{},"execute":{}}"#).unwrap();
        assert!(PhaseProfile::from_json(&neg).is_none());
    }

    #[test]
    fn content_hash_is_sensitive_to_every_phase() {
        let mut a = PhaseProfile::default();
        a.absorb(Some(&sample(1)), &sample(1));
        let mut b = a;
        b.execute.loads += 1;
        assert_ne!(a.content_hash(), b.content_hash());
        let mut c = a;
        c.access.prefetches += 1;
        assert_ne!(a.content_hash(), c.content_hash());
        assert_eq!(a.content_hash(), a.content_hash());
    }

    #[test]
    fn collector_groups_by_function_and_set_hash_tracks_content() {
        let mut col = ProfileCollector::new();
        col.record(FuncId(3), Some(&sample(1)), &sample(1));
        col.record(FuncId(3), Some(&sample(1)), &sample(1));
        col.record(FuncId(9), None, &sample(2));
        assert_eq!(col.len(), 2);
        let profiles = col.take();
        assert_eq!(profiles[&FuncId(3)].runs, 2);
        assert_eq!(profiles[&FuncId(9)].runs, 1);
        assert!(col.is_empty());

        let mut s1 = ProfileSet::new();
        let mut s2 = ProfileSet::new();
        assert_eq!(s1.content_hash(), s2.content_hash());
        s1.insert(7, profiles[&FuncId(3)]);
        assert_ne!(s1.content_hash(), s2.content_hash());
        s2.insert(7, profiles[&FuncId(3)]);
        assert_eq!(s1.content_hash(), s2.content_hash());
    }
}
