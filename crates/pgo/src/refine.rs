//! The pure decision function behind the driver's `refine` pass.
//!
//! [`plan_refinement`] maps one task's measured [`PhaseProfile`] to a
//! [`RefinePlan`] — a small set of orthogonal knob changes the driver
//! applies to its `CompilerOptions` before analysis and generation. The
//! function is **pure and deterministic**: the same profile and
//! thresholds always yield the same plan, and no profile (or one with
//! too few runs) yields [`RefinePlan::none`], which the driver treats as
//! "leave the static pipeline byte-identical".
//!
//! The four rules, in the order a reader should trust them:
//!
//! 1. **Prefetch pruning (accuracy)** — if fewer than
//!    [`RefineThresholds::accuracy_floor`] of issued prefetches actually
//!    fetched a DRAM line, the access phase is re-touching lines it
//!    already brought in (the classic unit-stride 8-per-cache-line
//!    pattern scores 1/8). Plan: line-granularity dedup, which the
//!    affine generator implements by stepping the prefetch loop a cache
//!    line at a time.
//! 2. **Phase dropping (coverage)** — if the access phase fetched under
//!    [`RefineThresholds::coverage_floor`] of the task's DRAM line
//!    traffic ahead of execute, it is pure overhead. Plan: refuse
//!    decoupling for the task (it runs coupled, like any other refusal).
//! 3. **Profitability flip (measured boundedness)** — §5.1's static
//!    `NconvUn` gate can reject a scan whose measured execute phase is
//!    in fact memory-bound. When measured boundedness is at least
//!    [`RefineThresholds::membound_force`], plan: skip the hull
//!    instruction-count check and let the scan through.
//! 4. **Hint synthesis (trip counts)** — when the caller provided no
//!    parameter hints, the measured mean branch count stands in for the
//!    trip count, giving the affine granularity logic a real bound
//!    instead of a guess.

use crate::profile::PhaseProfile;

/// Tunable gates for [`plan_refinement`]. [`Default`] is the benchmarked
/// configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RefineThresholds {
    /// Minimum aggregated runs before any rule may fire.
    pub min_runs: u64,
    /// Prefetch accuracy below this enables line-granularity dedup.
    pub accuracy_floor: f64,
    /// Prefetch coverage below this drops the access phase entirely.
    pub coverage_floor: f64,
    /// Measured execute memory-bound fraction at or above this forces
    /// the §5.1 profitability verdict to "decouple".
    pub membound_force: f64,
}

impl Default for RefineThresholds {
    fn default() -> Self {
        RefineThresholds {
            min_runs: 1,
            accuracy_floor: 0.60,
            coverage_floor: 0.02,
            membound_force: 0.50,
        }
    }
}

/// The knob changes a profile justifies for one task. All fields default
/// to "change nothing"; the driver applies them to its options.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefinePlan {
    /// Step affine prefetch loops by cache line instead of by element
    /// (rule 1: measured accuracy says most prefetches were redundant).
    pub line_dedup: bool,
    /// Refuse decoupling outright — the measured access phase fetched
    /// nothing execute would have missed on (rule 2).
    pub drop_access_phase: bool,
    /// Skip the §5.1 hull instruction-count profitability check — the
    /// measured execute phase is memory-bound regardless of what the
    /// static estimate predicted (rule 3).
    pub force_profitable: bool,
    /// Synthesised first-parameter hint from the measured trip count,
    /// for tasks compiled without caller hints (rule 4).
    pub trip_hint: Option<i64>,
}

impl RefinePlan {
    /// The no-op plan (what an absent or unconvincing profile yields).
    pub fn none() -> RefinePlan {
        RefinePlan::default()
    }

    /// True when applying this plan changes nothing.
    pub fn is_noop(&self) -> bool {
        *self == RefinePlan::default()
    }
}

/// Decides what a task's measured profile justifies changing.
///
/// `hints_present` must be true when the caller supplied any non-zero
/// parameter hint — rule 4 never overrides a real hint with a guess.
pub fn plan_refinement(
    profile: &PhaseProfile,
    hints_present: bool,
    t: &RefineThresholds,
) -> RefinePlan {
    let mut plan = RefinePlan::none();
    if profile.runs < t.min_runs.max(1) {
        return plan;
    }

    let ran_decoupled = profile.access.instrs > 0;

    // Rule 2 first: a useless access phase makes the other access-shape
    // rules moot for this task.
    if ran_decoupled && profile.prefetch_coverage() < t.coverage_floor {
        plan.drop_access_phase = true;
        return plan;
    }

    // Rule 1: redundant prefetches ⇒ line-granularity dedup.
    if profile.access.prefetches > 0 && profile.prefetch_accuracy() < t.accuracy_floor {
        plan.line_dedup = true;
    }

    // Rule 3: measured boundedness flips the static profitability gate.
    // Only meaningful for tasks that did NOT decouple (a decoupled task
    // already passed the gate), and only when execute actually misses.
    if !ran_decoupled
        && profile.execute.dram_misses > 0
        && profile.execute_mem_bound() >= t.membound_force
    {
        plan.force_profitable = true;
    }

    // Rule 4: synthesise a trip-count hint when the caller gave none.
    if !hints_present {
        let trips = profile.trip_estimate();
        if trips > 0 {
            plan.trip_hint = Some(trips.min(i64::MAX as u64) as i64);
        }
    }

    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PhaseSample;

    fn decoupled(prefetches: u64, pf_dram: u64, exec_misses: u64) -> PhaseProfile {
        let mut p = PhaseProfile::default();
        p.absorb(
            Some(&PhaseSample {
                instrs: 1_000,
                prefetches,
                prefetch_dram_lines: pf_dram,
                ..Default::default()
            }),
            &PhaseSample {
                instrs: 4_000,
                loads: 1_000,
                dram_misses: exec_misses,
                branches: 128,
                mem_bound_ppm: 400_000,
                ..Default::default()
            },
        );
        p
    }

    #[test]
    fn empty_or_thin_profiles_plan_nothing() {
        let t = RefineThresholds::default();
        assert!(plan_refinement(&PhaseProfile::default(), false, &t).is_noop());
        let p = decoupled(800, 100, 10);
        let strict = RefineThresholds { min_runs: 5, ..t };
        assert!(plan_refinement(&p, false, &strict).is_noop());
    }

    #[test]
    fn low_accuracy_plans_line_dedup() {
        let t = RefineThresholds::default();
        // 100/800 = 0.125 accuracy, coverage 100/110 — healthy phase,
        // redundant prefetches.
        let plan = plan_refinement(&decoupled(800, 100, 10), true, &t);
        assert!(plan.line_dedup);
        assert!(!plan.drop_access_phase);
        assert!(!plan.force_profitable);
        // Accurate prefetches are left alone.
        let plan = plan_refinement(&decoupled(100, 95, 10), true, &t);
        assert!(plan.is_noop());
    }

    #[test]
    fn useless_coverage_drops_the_access_phase_and_preempts_other_rules() {
        let t = RefineThresholds::default();
        // 1 DRAM line fetched vs 1000 execute misses ⇒ coverage ≈ 0.001.
        let plan = plan_refinement(&decoupled(800, 1, 1_000), true, &t);
        assert!(plan.drop_access_phase);
        assert!(!plan.line_dedup, "drop preempts dedup");
    }

    #[test]
    fn measured_boundedness_flips_profitability_only_for_coupled_tasks() {
        let t = RefineThresholds::default();
        let mut coupled = PhaseProfile::default();
        coupled.absorb(
            None,
            &PhaseSample {
                instrs: 4_000,
                loads: 1_000,
                dram_misses: 200,
                mem_bound_ppm: 700_000,
                ..Default::default()
            },
        );
        let plan = plan_refinement(&coupled, true, &t);
        assert!(plan.force_profitable);
        // The same boundedness on an already-decoupled task changes nothing.
        let mut dec = decoupled(100, 95, 10);
        dec.execute.mem_bound_ppm_sum = 700_000;
        assert!(!plan_refinement(&dec, true, &t).force_profitable);
        // A compute-bound coupled task stays coupled.
        let mut cb = PhaseProfile::default();
        cb.absorb(
            None,
            &PhaseSample {
                instrs: 4_000,
                loads: 1_000,
                dram_misses: 2,
                mem_bound_ppm: 50_000,
                ..Default::default()
            },
        );
        assert!(plan_refinement(&cb, true, &t).is_noop());
    }

    #[test]
    fn trip_hints_only_fill_an_absent_hint() {
        let t = RefineThresholds::default();
        let p = decoupled(100, 95, 10); // otherwise healthy
        assert_eq!(plan_refinement(&p, false, &t).trip_hint, Some(128));
        assert_eq!(plan_refinement(&p, true, &t).trip_hint, None);
    }

    #[test]
    fn planning_is_deterministic() {
        let t = RefineThresholds::default();
        let p = decoupled(800, 100, 10);
        let a = plan_refinement(&p, false, &t);
        for _ in 0..8 {
            assert_eq!(plan_refinement(&p, false, &t), a);
        }
    }
}
