//! The persistent profile store: versioned JSON on disk, keyed by the
//! driver's `task_key`, with a bounded in-memory LRU mirror.
//!
//! Two persistence shapes share one record format:
//!
//! * **File mode** ([`ProfileStore::load_file`] / [`ProfileStore::save_file`])
//!   — a single whole-document snapshot (`daec --profile-out` /
//!   `--profile-in`). The document carries [`PROFILE_SCHEMA`]; records
//!   are written sorted by key so equal stores serialise byte-identically.
//! * **Dir mode** ([`ProfileStore::open_dir`]) — one
//!   `<key:016x>.pgo.json` file per record, written through atomically
//!   (unique temp file in the same directory, then rename), so a
//!   SIGKILL'd writer can never leave a torn record for a later reader.
//!
//! Hostile input is a load-bearing case: a file that is not JSON at all
//! is a dotted [`codes::PARSE`] error, a wrong schema tag is
//! [`codes::SCHEMA`], and a *malformed individual record* inside an
//! otherwise valid document is silently skipped and counted in
//! [`StoreStats::skipped_records`] — never a panic, never poisoning the
//! good records around it.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use dae_trace::json::{self, JsonValue};

use crate::{codes, PgoError, PhaseProfile, ProfileSet, PROFILE_SCHEMA};

/// Default cap on in-memory records mirrored by a dir-mode store.
pub const DEFAULT_MAX_RECORDS: usize = 4096;

/// Counters describing what a store has seen (all monotone).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records currently resident in memory.
    pub resident: usize,
    /// Records merged in via [`ProfileStore::merge_record`] or loads.
    pub merged: u64,
    /// Malformed records skipped during loads (corruption tolerance).
    pub skipped_records: u64,
    /// Records evicted from the in-memory mirror by the LRU bound.
    pub evicted: u64,
    /// Records written to disk (dir mode write-through + file saves).
    pub written: u64,
}

#[derive(Debug)]
struct Resident {
    profile: PhaseProfile,
    stamp: u64,
}

/// A keyed profile store with optional directory persistence.
#[derive(Debug)]
pub struct ProfileStore {
    records: BTreeMap<u64, Resident>,
    dir: Option<PathBuf>,
    max_records: usize,
    clock: u64,
    merged: u64,
    skipped: u64,
    evicted: u64,
    written: u64,
}

impl Default for ProfileStore {
    fn default() -> Self {
        ProfileStore::new()
    }
}

impl ProfileStore {
    /// An in-memory-only store with the default residency bound.
    pub fn new() -> ProfileStore {
        ProfileStore {
            records: BTreeMap::new(),
            dir: None,
            max_records: DEFAULT_MAX_RECORDS,
            clock: 0,
            merged: 0,
            skipped: 0,
            evicted: 0,
            written: 0,
        }
    }

    /// An in-memory-only store holding at most `max_records` (least
    /// recently used records are evicted beyond that; 0 means 1).
    pub fn with_capacity(max_records: usize) -> ProfileStore {
        let mut s = ProfileStore::new();
        s.max_records = max_records.max(1);
        s
    }

    /// Opens (creating if needed) a dir-mode store at `dir`: every
    /// record already on disk under `<key:016x>.pgo.json` is loaded
    /// (malformed ones skipped and counted), and future merges write
    /// through atomically.
    pub fn open_dir(dir: impl Into<PathBuf>, max_records: usize) -> Result<ProfileStore, PgoError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| PgoError::new(codes::IO, format!("create {}: {e}", dir.display())))?;
        let mut s = ProfileStore::with_capacity(max_records);
        let entries = std::fs::read_dir(&dir)
            .map_err(|e| PgoError::new(codes::IO, format!("read {}: {e}", dir.display())))?;
        let mut found: Vec<(u64, PathBuf)> = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(n) => n,
                None => continue,
            };
            let Some(stem) = name.strip_suffix(".pgo.json") else { continue };
            match u64::from_str_radix(stem, 16) {
                Ok(key) if stem.len() == 16 => found.push((key, path)),
                _ => s.skipped += 1,
            }
        }
        // Deterministic load order regardless of readdir order.
        found.sort();
        for (key, path) in found {
            match std::fs::read_to_string(&path) {
                Ok(text) => match json::parse(&text).ok().as_ref().and_then(record_from_json) {
                    Some((file_key, profile)) if file_key == key => {
                        s.merge_in_memory(key, &profile);
                    }
                    _ => s.skipped += 1,
                },
                Err(_) => s.skipped += 1,
            }
        }
        s.dir = Some(dir);
        Ok(s)
    }

    /// Loads a whole-document profile file into a fresh in-memory store.
    ///
    /// The document must parse ([`codes::PARSE`]) and carry
    /// [`PROFILE_SCHEMA`] ([`codes::SCHEMA`]); individual malformed
    /// records are skipped and counted, never fatal.
    pub fn load_file(path: impl AsRef<Path>) -> Result<ProfileStore, PgoError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| PgoError::new(codes::IO, format!("read {}: {e}", path.display())))?;
        let mut s = ProfileStore::new();
        s.merge_document(&text)?;
        Ok(s)
    }

    /// Merges a whole profile document (the `save_file` shape) into this
    /// store. Fatal only on unparseable JSON or a wrong schema tag.
    pub fn merge_document(&mut self, text: &str) -> Result<(), PgoError> {
        let doc = json::parse(text)
            .map_err(|e| PgoError::new(codes::PARSE, format!("profile document: {e}")))?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some(s) if s == PROFILE_SCHEMA => {}
            Some(other) => {
                return Err(PgoError::new(
                    codes::SCHEMA,
                    format!("profile schema {other:?}, expected {PROFILE_SCHEMA:?}"),
                ))
            }
            None => {
                return Err(PgoError::new(
                    codes::SCHEMA,
                    format!("profile document has no schema tag (expected {PROFILE_SCHEMA:?})"),
                ))
            }
        }
        let records = doc.get("records").and_then(JsonValue::as_arr).unwrap_or(&[]);
        for rec in records {
            match record_from_json(rec) {
                Some((key, profile)) => self.merge_record(key, &profile),
                None => self.skipped += 1,
            }
        }
        Ok(())
    }

    /// Writes the store as one whole document to `path` (atomically:
    /// temp file in the same directory, then rename). Records are sorted
    /// by key, so two stores with equal content write equal bytes.
    pub fn save_file(&mut self, path: impl AsRef<Path>) -> Result<(), PgoError> {
        let path = path.as_ref();
        let doc = self.document_json();
        write_atomic(path, doc.to_json_string().as_bytes())
            .map_err(|e| PgoError::new(codes::IO, format!("write {}: {e}", path.display())))?;
        self.written += 1;
        Ok(())
    }

    /// The store's whole-document JSON form.
    pub fn document_json(&self) -> JsonValue {
        let records: Vec<JsonValue> =
            self.records.iter().map(|(&k, r)| record_to_json(k, &r.profile)).collect();
        JsonValue::obj([("schema", PROFILE_SCHEMA.into()), ("records", records.into())])
    }

    /// Merges one record under `key`, bumping its recency. In dir mode
    /// the merged record is written through atomically; a write failure
    /// is swallowed (the in-memory copy stays authoritative) because
    /// profile persistence is advisory, never correctness-bearing.
    pub fn merge_record(&mut self, key: u64, profile: &PhaseProfile) {
        self.merge_in_memory(key, profile);
        if let Some(dir) = self.dir.clone() {
            if let Some(r) = self.records.get(&key) {
                let bytes = record_to_json(key, &r.profile).to_json_string();
                if write_atomic(&record_path(&dir, key), bytes.as_bytes()).is_ok() {
                    self.written += 1;
                }
            }
        }
    }

    fn merge_in_memory(&mut self, key: u64, profile: &PhaseProfile) {
        self.clock += 1;
        let stamp = self.clock;
        let entry =
            self.records.entry(key).or_insert(Resident { profile: PhaseProfile::default(), stamp });
        entry.profile.merge(profile);
        entry.stamp = stamp;
        self.merged += 1;
        while self.records.len() > self.max_records {
            // Evict the least recently touched record (memory only — any
            // dir-mode copy on disk stays).
            if let Some((&victim, _)) = self.records.iter().min_by_key(|(_, r)| r.stamp) {
                self.records.remove(&victim);
                self.evicted += 1;
            }
        }
    }

    /// The resident record under `key`, if any (bumps recency).
    pub fn get(&mut self, key: u64) -> Option<PhaseProfile> {
        self.clock += 1;
        let stamp = self.clock;
        let r = self.records.get_mut(&key)?;
        r.stamp = stamp;
        Some(r.profile)
    }

    /// An immutable snapshot of every resident record, keyed by
    /// `task_key` — what the driver's `refine` pass consumes.
    pub fn snapshot(&self) -> ProfileSet {
        let mut set = ProfileSet::new();
        for (&k, r) in &self.records {
            set.insert(k, r.profile);
        }
        set
    }

    /// Number of resident records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are resident.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            resident: self.records.len(),
            merged: self.merged,
            skipped_records: self.skipped,
            evicted: self.evicted,
            written: self.written,
        }
    }
}

fn record_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.pgo.json"))
}

fn record_to_json(key: u64, p: &PhaseProfile) -> JsonValue {
    let mut pairs = vec![("key", JsonValue::from(format!("{key:016x}")))];
    if let JsonValue::Obj(body) = p.to_json() {
        for (k, v) in body {
            // Field names come from PhaseProfile::to_json and are 'static
            // in spirit; re-borrow through the known literal set.
            let name: &'static str = match k.as_str() {
                "runs" => "runs",
                "access" => "access",
                "execute" => "execute",
                _ => continue,
            };
            pairs.push((name, v));
        }
    }
    JsonValue::obj(pairs)
}

fn record_from_json(v: &JsonValue) -> Option<(u64, PhaseProfile)> {
    let key_str = v.get("key")?.as_str()?;
    if key_str.len() != 16 {
        return None;
    }
    let key = u64::from_str_radix(key_str, 16).ok()?;
    let profile = PhaseProfile::from_json(v)?;
    Some((key, profile))
}

/// Writes `bytes` to `path` via a unique temp file in the same directory
/// followed by a rename, so readers only ever observe absent-or-complete
/// files even if the writer is killed mid-write.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let base = path.file_name().and_then(|n| n.to_str()).unwrap_or("record");
    let tmp = dir.join(format!(
        ".{base}.{}.{}.tmp",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all().ok(); // best-effort durability; rename is the atomicity barrier
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PhaseSample;
    use dae_ir::CodedError as _;

    fn profile(scale: u64) -> PhaseProfile {
        let s = PhaseSample {
            instrs: 100 * scale,
            loads: 50 * scale,
            dram_misses: 5 * scale,
            prefetches: 40 * scale,
            prefetch_dram_lines: 5 * scale,
            branches: 32 * scale,
            mlp_x100: 200,
            mem_bound_ppm: 500_000,
        };
        let mut p = PhaseProfile::default();
        p.absorb(Some(&s), &s);
        p
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "dae-pgo-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn file_round_trip_is_byte_stable_and_merges() {
        let dir = tmpdir("file");
        let path = dir.join("profile.json");
        let mut s = ProfileStore::new();
        s.merge_record(7, &profile(1));
        s.merge_record(3, &profile(2));
        s.save_file(&path).unwrap();
        let first = std::fs::read_to_string(&path).unwrap();

        let mut back = ProfileStore::load_file(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(7).unwrap(), profile(1));
        assert_eq!(back.snapshot().content_hash(), s.snapshot().content_hash());
        back.save_file(&path).unwrap();
        let second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(first, second, "equal stores must serialise byte-identically");

        // Loading the same file again doubles the counters (merge).
        back.merge_document(&first).unwrap();
        assert_eq!(back.get(7).unwrap().runs, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_documents_give_dotted_errors_and_bad_records_are_skipped() {
        let dir = tmpdir("hostile");
        let path = dir.join("bad.json");
        std::fs::write(&path, b"{not json").unwrap();
        let e = ProfileStore::load_file(&path).unwrap_err();
        assert_eq!(e.code(), codes::PARSE);

        std::fs::write(&path, br#"{"schema":"wrong/9","records":[]}"#).unwrap();
        let e = ProfileStore::load_file(&path).unwrap_err();
        assert_eq!(e.code(), codes::SCHEMA);

        let e = ProfileStore::load_file(dir.join("missing.json")).unwrap_err();
        assert_eq!(e.code(), codes::IO);

        // One good record among malformed ones: the good one survives,
        // the bad ones are counted, nothing panics.
        let good = record_to_json(5, &profile(1)).to_json_string();
        let doc = format!(
            r#"{{"schema":"{PROFILE_SCHEMA}","records":[{{"key":"zz"}},{good},{{"runs":1}},42]}}"#
        );
        let mut s = ProfileStore::new();
        s.merge_document(&doc).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(5).unwrap(), profile(1));
        assert_eq!(s.stats().skipped_records, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_mode_writes_through_atomically_and_reloads() {
        let dir = tmpdir("dir");
        {
            let mut s = ProfileStore::open_dir(&dir, 64).unwrap();
            s.merge_record(0xabc, &profile(1));
            s.merge_record(0xdef, &profile(3));
            assert!(s.stats().written >= 2);
        }
        // No temp droppings left behind.
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            let name = entry.file_name();
            assert!(name.to_str().unwrap().ends_with(".pgo.json"), "unexpected file {name:?}");
        }
        // Torn/alien files are skipped on reload, good records survive.
        std::fs::write(dir.join("0000000000000abc.pgo.json"), b"{torn").unwrap();
        std::fs::write(dir.join("README.txt"), b"hello").unwrap();
        let mut s = ProfileStore::open_dir(&dir, 64).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0xdef).unwrap(), profile(3));
        assert!(s.stats().skipped_records >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_mirror_evicts_least_recent() {
        let mut s = ProfileStore::with_capacity(2);
        s.merge_record(1, &profile(1));
        s.merge_record(2, &profile(1));
        let _ = s.get(1); // 1 is now most recent
        s.merge_record(3, &profile(1));
        assert_eq!(s.len(), 2);
        assert!(s.get(2).is_none(), "2 was least recent and must be evicted");
        assert!(s.get(1).is_some());
        assert!(s.get(3).is_some());
        assert_eq!(s.stats().evicted, 1);
    }
}
