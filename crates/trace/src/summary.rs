//! Compact summary-JSON export: the aggregate view of a recorded trace.
//!
//! The schema (`dae-trace-summary/1`) is the per-run record used for
//! `BENCH_*.json` trajectory files — small enough to commit, rich enough
//! to plot O.S.I. stacks and energy splits without re-running anything:
//!
//! ```json
//! {
//!   "schema": "dae-trace-summary/1",
//!   "cores": 4, "events": 123, "makespan_s": 0.0012,
//!   "tasks": 32, "access_phases": 32, "dvfs_transitions": 64,
//!   "phase_s": {"access": ..., "execute": ..., "overhead": ..., "idle": ...},
//!   "energy_j": {"dynamic": ..., "static": ..., "total": ...},
//!   "access":  {"time_s": ..., "instrs": ..., ...},
//!   "execute": {"time_s": ..., "instrs": ..., ...},
//!   "per_core": [{"core": 0, "busy_s": ..., "idle_s": ..., "spans": N}, ...]
//! }
//! ```
//!
//! `phase_s` totals reconcile with the runtime's `Breakdown` by
//! construction: `overhead` sums dispatch *and* DVFS-transition spans, the
//! way the scheduler charges `overhead_s`. Chip-level base static power is
//! charged over the makespan by the runtime, not per event, so
//! `energy_j.total` covers the traced (per-core) energy only.

use crate::event::{PhaseCounters, TraceEvent};
use crate::json::JsonValue;
use crate::sink::Recorder;

/// Aggregated totals of one recorded run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of core lanes.
    pub cores: usize,
    /// Number of recorded events.
    pub events: usize,
    /// Latest event end, in virtual seconds.
    pub makespan_s: f64,
    /// Execute phases recorded (= task instances run).
    pub tasks: usize,
    /// Access phases recorded.
    pub access_phases: usize,
    /// DVFS transitions recorded.
    pub dvfs_transitions: usize,
    /// Governor decisions recorded (0 unless the run was governed).
    pub governor_decisions: usize,
    /// Compiler passes recorded (0 unless the trace covers a driver run).
    pub compile_passes: usize,
    /// Wall-clock core-seconds spent in compiler passes.
    pub compile_s: f64,
    /// Functions lowered to simulator bytecode (0 under the tree engine).
    pub bytecode_lowers: usize,
    /// Host wall-clock seconds spent lowering to bytecode.
    pub lower_wall_s: f64,
    /// Gateway-routed requests recorded (0 unless the trace covers a
    /// `daeg` run).
    pub gate_routes: usize,
    /// Wall-clock seconds spent forwarding routed requests.
    pub route_s: f64,
    /// Backend ejections recorded by the gateway.
    pub backend_ejects: usize,
    /// Core-seconds spent in access phases.
    pub access_s: f64,
    /// Core-seconds spent in execute phases.
    pub execute_s: f64,
    /// Core-seconds of overhead (task dispatch + DVFS transitions).
    pub overhead_s: f64,
    /// Core-seconds of idle gaps.
    pub idle_s: f64,
    /// Dynamic energy over all phases, in joules.
    pub dyn_energy_j: f64,
    /// Per-core static energy (phases, dispatch, transitions), in joules.
    pub static_energy_j: f64,
    /// Merged counters of all access phases.
    pub access_counters: PhaseCounters,
    /// Merged counters of all execute phases.
    pub execute_counters: PhaseCounters,
    /// Per-core `(busy_s, idle_s, span count)`.
    pub per_core: Vec<(f64, f64, usize)>,
}

impl Summary {
    /// Aggregates the recorder's events.
    pub fn from_recorder(rec: &Recorder) -> Summary {
        let mut s = Summary {
            cores: rec.cores(),
            events: rec.len(),
            makespan_s: rec.makespan_s(),
            per_core: vec![(0.0, 0.0, 0); rec.cores()],
            ..Default::default()
        };
        for ev in rec.events() {
            let lane = &mut s.per_core[ev.core() as usize];
            lane.2 += 1;
            match ev {
                TraceEvent::Phase {
                    kind, dur_s, dyn_energy_j, static_energy_j, counters, ..
                } => {
                    s.dyn_energy_j += dyn_energy_j;
                    s.static_energy_j += static_energy_j;
                    lane.0 += dur_s;
                    match kind {
                        crate::event::PhaseKind::Access => {
                            s.access_phases += 1;
                            s.access_s += dur_s;
                            s.access_counters.merge(counters);
                        }
                        crate::event::PhaseKind::Execute => {
                            s.tasks += 1;
                            s.execute_s += dur_s;
                            s.execute_counters.merge(counters);
                        }
                    }
                }
                TraceEvent::Overhead { dur_s, energy_j, .. } => {
                    s.overhead_s += dur_s;
                    s.static_energy_j += energy_j;
                    lane.0 += dur_s;
                }
                TraceEvent::DvfsTransition { dur_s, energy_j, .. } => {
                    s.dvfs_transitions += 1;
                    s.overhead_s += dur_s;
                    s.static_energy_j += energy_j;
                    lane.0 += dur_s;
                }
                TraceEvent::Idle { dur_s, .. } => {
                    s.idle_s += dur_s;
                    lane.1 += dur_s;
                }
                TraceEvent::CompilePass { dur_s, .. } => {
                    s.compile_passes += 1;
                    s.compile_s += dur_s;
                    lane.0 += dur_s;
                }
                TraceEvent::BytecodeLower { wall_s, .. } => {
                    s.bytecode_lowers += 1;
                    s.lower_wall_s += wall_s;
                }
                TraceEvent::GateRoute { dur_s, .. } => {
                    s.gate_routes += 1;
                    s.route_s += dur_s;
                    lane.0 += dur_s;
                }
                TraceEvent::BackendEject { .. } => {
                    s.backend_ejects += 1;
                }
                TraceEvent::GovernorDecision { .. } => {
                    s.governor_decisions += 1;
                }
            }
        }
        s
    }

    /// The summary as a JSON tree (schema `dae-trace-summary/1`).
    pub fn to_json(&self) -> JsonValue {
        fn phase(time_s: f64, counters: &PhaseCounters) -> JsonValue {
            let mut pairs = vec![("time_s".to_string(), JsonValue::from(time_s))];
            if let JsonValue::Obj(counter_pairs) = counters.to_json() {
                pairs.extend(counter_pairs);
            }
            JsonValue::Obj(pairs)
        }
        JsonValue::obj([
            ("schema", "dae-trace-summary/1".into()),
            ("cores", self.cores.into()),
            ("events", self.events.into()),
            ("makespan_s", self.makespan_s.into()),
            ("tasks", self.tasks.into()),
            ("access_phases", self.access_phases.into()),
            ("dvfs_transitions", self.dvfs_transitions.into()),
            ("governor_decisions", self.governor_decisions.into()),
            ("compile_passes", self.compile_passes.into()),
            ("bytecode_lowers", self.bytecode_lowers.into()),
            ("lower_wall_s", self.lower_wall_s.into()),
            ("gate_routes", self.gate_routes.into()),
            ("backend_ejects", self.backend_ejects.into()),
            (
                "phase_s",
                JsonValue::obj([
                    ("access", self.access_s.into()),
                    ("execute", self.execute_s.into()),
                    ("overhead", self.overhead_s.into()),
                    ("idle", self.idle_s.into()),
                    ("compile", self.compile_s.into()),
                ]),
            ),
            (
                "energy_j",
                JsonValue::obj([
                    ("dynamic", self.dyn_energy_j.into()),
                    ("static", self.static_energy_j.into()),
                    ("total", (self.dyn_energy_j + self.static_energy_j).into()),
                ]),
            ),
            ("access", phase(self.access_s, &self.access_counters)),
            ("execute", phase(self.execute_s, &self.execute_counters)),
            (
                "per_core",
                JsonValue::Arr(
                    self.per_core
                        .iter()
                        .enumerate()
                        .map(|(i, (busy, idle, spans))| {
                            JsonValue::obj([
                                ("core", i.into()),
                                ("busy_s", (*busy).into()),
                                ("idle_s", (*idle).into()),
                                ("spans", (*spans).into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Renders the recorded events as a summary-JSON string.
pub fn summary_json(rec: &Recorder) -> String {
    summary_json_with(rec, Vec::new())
}

/// Same as [`summary_json`], with extra top-level entries appended (e.g.
/// the run's `RunReport`).
pub fn summary_json_with(rec: &Recorder, extra: Vec<(String, JsonValue)>) -> String {
    let mut v = Summary::from_recorder(rec).to_json();
    if let JsonValue::Obj(pairs) = &mut v {
        pairs.extend(extra);
    }
    v.to_json_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PhaseKind;
    use crate::json::parse;
    use crate::sink::TraceSink;

    fn recorder() -> Recorder {
        let mut rec = Recorder::new(2);
        for (task, core) in [(0u32, 0u32), (1, 1)] {
            rec.record(TraceEvent::Overhead {
                core,
                task,
                start_s: 0.0,
                dur_s: 1e-7,
                energy_j: 1e-9,
            });
            rec.record(TraceEvent::DvfsTransition {
                core,
                start_s: 1e-7,
                dur_s: 5e-7,
                from_ghz: 3.4,
                to_ghz: 1.6,
                energy_j: 1e-9,
            });
            rec.record(TraceEvent::Phase {
                core,
                task,
                name: "a".into(),
                kind: PhaseKind::Access,
                start_s: 6e-7,
                dur_s: 2e-6,
                freq_ghz: 1.6,
                dyn_energy_j: 4e-9,
                static_energy_j: 1e-9,
                counters: PhaseCounters { instrs: 50, prefetches: 8, ..Default::default() },
            });
            rec.record(TraceEvent::Phase {
                core,
                task,
                name: "e".into(),
                kind: PhaseKind::Execute,
                start_s: 2.6e-6,
                dur_s: 3e-6,
                freq_ghz: 3.4,
                dyn_energy_j: 8e-9,
                static_energy_j: 2e-9,
                counters: PhaseCounters { instrs: 400, loads: 64, ..Default::default() },
            });
        }
        rec.record(TraceEvent::Idle { core: 1, start_s: 5.6e-6, dur_s: 1e-6 });
        rec
    }

    #[test]
    fn totals_aggregate_by_category() {
        let s = Summary::from_recorder(&recorder());
        assert_eq!((s.cores, s.tasks, s.access_phases, s.dvfs_transitions), (2, 2, 2, 2));
        assert!((s.access_s - 4e-6).abs() < 1e-18);
        assert!((s.execute_s - 6e-6).abs() < 1e-18);
        assert!((s.overhead_s - 2.0 * 6e-7).abs() < 1e-18);
        assert!((s.idle_s - 1e-6).abs() < 1e-18);
        assert!((s.dyn_energy_j - 2.0 * 12e-9).abs() < 1e-18);
        assert!((s.static_energy_j - 2.0 * 5e-9).abs() < 1e-18);
        assert_eq!(s.execute_counters.instrs, 800);
        assert_eq!(s.access_counters.prefetches, 16);
        // Core 1 carries the idle gap; both cores are equally busy.
        assert!((s.per_core[0].0 - s.per_core[1].0).abs() < 1e-18);
        assert_eq!(s.per_core[0].1, 0.0);
        assert!((s.per_core[1].1 - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn json_round_trips_and_carries_schema() {
        let text = summary_json_with(
            &recorder(),
            vec![("label".to_string(), JsonValue::from("unit-test"))],
        );
        let v = parse(&text).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("dae-trace-summary/1"));
        assert_eq!(v.get("tasks").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("label").unwrap().as_str(), Some("unit-test"));
        let phase_s = v.get("phase_s").unwrap();
        let total: f64 = ["access", "execute", "overhead", "idle"]
            .iter()
            .map(|k| phase_s.get(k).unwrap().as_f64().unwrap())
            .sum();
        // Per-core busy + idle accounts for every phase second.
        let per_core = v.get("per_core").unwrap().as_arr().unwrap();
        let lanes: f64 = per_core
            .iter()
            .map(|c| {
                c.get("busy_s").unwrap().as_f64().unwrap()
                    + c.get("idle_s").unwrap().as_f64().unwrap()
            })
            .sum();
        assert!((total - lanes).abs() < 1e-15);
        assert_eq!(v.get("execute").unwrap().get("instrs").unwrap().as_f64(), Some(800.0));
    }
}
