//! A dependency-free JSON tree: ordered objects, a compact writer and a
//! strict recursive-descent parser.
//!
//! The whole workspace is `serde`-free by design; this module is the one
//! place JSON is spelled out. Objects preserve insertion order (they are
//! association lists, not hash maps) so emitted files are deterministic
//! and diffable. Numbers are `f64` — every counter in the trace model fits
//! losslessly below 2⁵³.

use std::fmt::Write as _;

/// One JSON value. Objects are ordered association lists.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers print without a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::Num(v as f64)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Num(v as f64)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Num(v as f64)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Arr(v)
    }
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The `(key, value)` pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Serialises compactly (no whitespace). Non-finite numbers become
    /// `null`, keeping the output valid JSON.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_number(out, *n),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest round-trip formatting never produces exponents,
        // so the result is always valid JSON.
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// Stable machine-readable error code (the zero-dependency mirror of
    /// `dae_ir::CodedError`, same `<layer>.<class>` namespace).
    pub fn code(&self) -> &'static str {
        "json.parse"
    }
}

/// Maximum container nesting depth [`parse`] accepts. The parser is
/// recursive-descent, so without a bound an adversarial `[[[[…` frame
/// would overflow the stack — an uncatchable abort, not an `Err`.
pub const MAX_DEPTH: usize = 128;

/// Parses `text` as a single JSON value (trailing whitespace allowed,
/// trailing garbage is an error). Containers nested deeper than
/// [`MAX_DEPTH`] are rejected with an error.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { msg: msg.to_string(), at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("containers nested too deeply"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not recombined; they only
                            // appear for non-BMP chars, which the writer
                            // never escapes.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| JsonError { msg: format!("bad number `{text}`"), at: start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_round_trip() {
        let v = JsonValue::obj([
            ("name", "access:lu\"diag\"".into()),
            ("n", 42u64.into()),
            ("t", 1.5e-7.into()),
            ("neg", (-3.0f64).into()),
            ("ok", true.into()),
            ("none", JsonValue::Null),
            ("arr", vec![JsonValue::Num(1.0), JsonValue::Str("x\n".into())].into()),
        ]);
        let text = v.to_json_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(JsonValue::Num(42.0).to_json_string(), "42");
        assert_eq!(JsonValue::Num(-7.0).to_json_string(), "-7");
        assert_eq!(JsonValue::Num(0.5).to_json_string(), "0.5");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_json_string(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_json_string(), "null");
    }

    #[test]
    fn object_lookup_preserves_order() {
        let v = parse(r#"{"b": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v.as_obj().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(v.get("a").unwrap().as_f64(), Some(2.0));
        assert!(v.get("c").is_none());
    }

    #[test]
    fn parses_nested_and_escapes() {
        let v = parse(r#"{"s": "a\"b\\c\u0041\n", "e": [1e-9, -2.5E3, []]}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\cA\n"));
        let e = v.get("e").unwrap().as_arr().unwrap();
        assert_eq!(e[0].as_f64(), Some(1e-9));
        assert_eq!(e[1].as_f64(), Some(-2500.0));
        assert_eq!(e[2].as_arr().unwrap().len(), 0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        let e = parse("nulL").unwrap_err();
        assert!(e.to_string().contains("byte"));
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let deep = "[".repeat(200_000);
        let e = parse(&deep).unwrap_err();
        assert!(e.msg.contains("nested too deeply"), "{e}");
        let mut ok = "[[[[[[[[".to_string();
        ok.push('1');
        ok.push_str(&"]".repeat(8));
        assert!(parse(&ok).is_ok(), "shallow nesting still parses");
        // Exactly at the limit parses; one past fails.
        let at = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&at).is_ok());
        let past = format!("{}1{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        assert!(parse(&past).is_err());
    }

    #[test]
    fn control_characters_are_escaped() {
        let text = JsonValue::Str("\u{1}".into()).to_json_string();
        assert_eq!(text, "\"\\u0001\"");
        assert_eq!(parse(&text).unwrap().as_str(), Some("\u{1}"));
    }
}
