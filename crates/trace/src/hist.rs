//! A log-bucketed duration histogram with percentile readout.
//!
//! The serving layer records one latency sample per request; a histogram
//! with geometrically-spaced buckets keeps that O(1) per sample and O(1)
//! memory while answering p50/p90/p99 with bounded relative error.
//!
//! Buckets are **log-linear** (HdrHistogram-style): one octave per power
//! of two of nanoseconds, each octave split into `SUB_BUCKETS` linear
//! sub-buckets, so any recorded duration lands in a bucket whose upper
//! bound is within `1/SUB_BUCKETS` (12.5 %) of the true value. The exact
//! maximum and the sample sum are tracked on the side, so `max` and
//! `mean` are exact.

use crate::json::JsonValue;

/// Linear sub-buckets per power-of-two octave.
const SUB_BUCKETS: usize = 8;
/// Octaves covered: 1 ns .. ~2⁶³ ns (centuries). Values clamp at the ends.
const OCTAVES: usize = 64;

/// A log-bucketed histogram of durations in seconds.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_s: f64,
    max_s: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram { counts: vec![0; OCTAVES * SUB_BUCKETS], count: 0, sum_s: 0.0, max_s: 0.0 }
    }

    fn bucket_of_ns(ns: u64) -> usize {
        let ns = ns.max(1);
        let octave = 63 - ns.leading_zeros() as usize;
        let sub = if octave >= 3 {
            // Top 3 bits below the leading one select the linear sub-bucket.
            ((ns >> (octave - 3)) & (SUB_BUCKETS as u64 - 1)) as usize
        } else {
            0
        };
        (octave * SUB_BUCKETS + sub).min(OCTAVES * SUB_BUCKETS - 1)
    }

    /// Upper bound of bucket `i`, in nanoseconds.
    fn bucket_upper_ns(i: usize) -> u64 {
        let octave = i / SUB_BUCKETS;
        let sub = (i % SUB_BUCKETS) as u64;
        if octave >= 63 {
            return u64::MAX;
        }
        let base = 1u64 << octave;
        if octave >= 3 {
            base + (sub + 1) * (base >> 3)
        } else {
            base * 2
        }
    }

    /// Records one duration. Negative or non-finite samples count as 0.
    pub fn record(&mut self, dur_s: f64) {
        let dur_s = if dur_s.is_finite() && dur_s > 0.0 { dur_s } else { 0.0 };
        let ns = (dur_s * 1e9).min(u64::MAX as f64) as u64;
        self.counts[Self::bucket_of_ns(ns)] += 1;
        self.count += 1;
        self.sum_s += dur_s;
        if dur_s > self.max_s {
            self.max_s = dur_s;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the recorded samples (0 when empty).
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_s / self.count as f64
        }
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max_s(&self) -> f64 {
        self.max_s
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding that rank — within 12.5 % of the true sample. 0 when empty.
    pub fn quantile_s(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report a quantile above the exact max.
                return (Self::bucket_upper_ns(i) as f64 * 1e-9).min(self.max_s);
            }
        }
        self.max_s
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_s += other.sum_s;
        if other.max_s > self.max_s {
            self.max_s = other.max_s;
        }
    }

    /// Summary JSON: count, mean and the standard percentiles, in seconds.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("count", self.count.into()),
            ("mean_s", self.mean_s().into()),
            ("p50_s", self.quantile_s(0.50).into()),
            ("p90_s", self.quantile_s(0.90).into()),
            ("p99_s", self.quantile_s(0.99).into()),
            ("max_s", self.max_s().into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_s(), 0.0);
        assert_eq!(h.quantile_s(0.99), 0.0);
        assert_eq!(h.max_s(), 0.0);
    }

    #[test]
    fn quantiles_track_samples_within_bucket_error() {
        let mut h = LogHistogram::new();
        for i in 1..=1000u64 {
            h.record(i as f64 * 1e-6); // 1 µs .. 1 ms
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_s(0.50);
        assert!((p50 / 500e-6 - 1.0).abs() < 0.15, "p50 {p50}");
        let p99 = h.quantile_s(0.99);
        assert!((p99 / 990e-6 - 1.0).abs() < 0.15, "p99 {p99}");
        assert!((h.max_s() - 1e-3).abs() < 1e-12, "max is exact");
        assert!((h.mean_s() - 500.5e-6).abs() < 1e-9, "mean is exact");
    }

    #[test]
    fn degenerate_samples_are_clamped() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY); // clamps to u64::MAX ns bucket
        assert_eq!(h.count(), 4);
        assert!(h.quantile_s(0.5) >= 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(1e-3);
        b.record(2e-3);
        b.record(4e-3);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.max_s() - 4e-3).abs() < 1e-15);
        assert!((a.mean_s() - 7e-3 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn json_carries_percentile_keys() {
        let mut h = LogHistogram::new();
        h.record(5e-4);
        let v = h.to_json();
        assert_eq!(v.get("count").unwrap().as_f64(), Some(1.0));
        for k in ["mean_s", "p50_s", "p90_s", "p99_s", "max_s"] {
            assert!(v.get(k).is_some(), "missing {k}");
        }
    }

    #[test]
    fn buckets_are_monotone() {
        let mut last = 0u64;
        for i in 0..(OCTAVES * SUB_BUCKETS) {
            let ub = LogHistogram::bucket_upper_ns(i);
            assert!(ub >= last, "bucket {i} upper bound regressed");
            last = ub;
        }
        // A value lands in a bucket whose upper bound is >= the value.
        for ns in [1u64, 7, 8, 9, 1023, 1024, 1025, 1 << 40, u64::MAX] {
            let b = LogHistogram::bucket_of_ns(ns);
            assert!(LogHistogram::bucket_upper_ns(b) >= ns, "ns={ns} bucket={b}");
        }
    }
}
