//! Trace sinks: where producers send events.
//!
//! Instrumented code is handed a `&mut dyn TraceSink` and must guard any
//! event construction behind [`TraceSink::is_enabled`]:
//!
//! ```ignore
//! if sink.is_enabled() {
//!     sink.record(TraceEvent::Idle { core, start_s, dur_s });
//! }
//! ```
//!
//! With the default [`NullSink`] the guard is a single virtual call
//! returning a constant, so tracing costs nothing when off — and because
//! sinks only *observe* (they never touch the scheduler's accounting),
//! reported results are bit-identical with tracing on or off.

use crate::event::TraceEvent;

/// Receives trace events from instrumented producers.
pub trait TraceSink {
    /// Whether events will be kept. Producers skip building [`TraceEvent`]
    /// values (name clones, counter snapshots) when this is `false`.
    fn is_enabled(&self) -> bool;

    /// Accepts one event. Called only when [`TraceSink::is_enabled`] is
    /// `true`.
    fn record(&mut self, event: TraceEvent);
}

/// The zero-cost default sink: discards everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&mut self, _event: TraceEvent) {}
}

/// An in-memory sink: captures every event for export.
#[derive(Clone, Debug)]
pub struct Recorder {
    cores: usize,
    events: Vec<TraceEvent>,
}

impl Recorder {
    /// A recorder for a machine with `cores` simulated cores (the exporter
    /// emits one lane per core, busy or not).
    pub fn new(cores: usize) -> Recorder {
        Recorder { cores, events: Vec::new() }
    }

    /// Number of core lanes.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The captured events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Latest event end time, in virtual seconds (0 when empty).
    pub fn makespan_s(&self) -> f64 {
        self.events.iter().map(TraceEvent::end_s).fold(0.0, f64::max)
    }
}

impl TraceSink for Recorder {
    #[inline]
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.is_enabled());
        s.record(TraceEvent::Idle { core: 0, start_s: 0.0, dur_s: 1.0 });
    }

    #[test]
    fn recorder_captures_in_order() {
        let mut r = Recorder::new(4);
        assert!(r.is_enabled());
        assert!(r.is_empty());
        r.record(TraceEvent::Idle { core: 0, start_s: 0.0, dur_s: 1.0 });
        r.record(TraceEvent::Idle { core: 1, start_s: 0.5, dur_s: 2.0 });
        assert_eq!(r.len(), 2);
        assert_eq!(r.cores(), 4);
        assert_eq!(r.events()[1].core(), 1);
        assert!((r.makespan_s() - 2.5).abs() < 1e-15);
    }
}
