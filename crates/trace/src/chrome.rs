//! Chrome Trace Event JSON export.
//!
//! Produces the [Trace Event Format] consumed by Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing`:
//!
//! * one named lane (`tid`) per simulated core, carrying complete (`"X"`)
//!   spans for access/execute phases, task dispatch, DVFS transitions and
//!   idle gaps — span `cat` is [`TraceEvent::category`], span `args` carry
//!   frequency, energy split and the per-phase counters;
//! * a `coreN GHz` counter track per core, sampled at every phase start
//!   and DVFS transition;
//! * a cumulative `energy (J)` counter track over all cores.
//!
//! Timestamps are the scheduler's virtual seconds converted to the
//! format's microseconds.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::TraceEvent;
use crate::json::JsonValue;
use crate::sink::Recorder;

const PID: u32 = 1;

/// Seconds → Trace-Event-Format microseconds.
fn us(t_s: f64) -> f64 {
    t_s * 1e6
}

/// Renders the recorded events as a Chrome-trace JSON string.
pub fn chrome_trace_json(rec: &Recorder) -> String {
    chrome_trace_json_with(rec, Vec::new())
}

/// Same as [`chrome_trace_json`], with extra entries merged into the
/// top-level `metadata` object (e.g. the run's `RunReport` for offline
/// reconciliation).
pub fn chrome_trace_json_with(rec: &Recorder, extra: Vec<(String, JsonValue)>) -> String {
    let mut events: Vec<JsonValue> = Vec::with_capacity(rec.len() * 2 + rec.cores() + 4);

    events.push(meta_event("process_name", None, "dae virtual machine"));
    for core in 0..rec.cores() {
        events.push(meta_event("thread_name", Some(core as u32), &format!("core {core}")));
    }

    // (end_s, joules) samples for the cumulative energy track.
    let mut energy_samples: Vec<(f64, f64)> = Vec::new();

    for ev in rec.events() {
        events.push(span_event(ev));
        if let Some(c) = freq_sample(ev) {
            events.push(c);
        }
        let e = ev.energy_j();
        if e > 0.0 {
            energy_samples.push((ev.end_s(), e));
        }
    }

    energy_samples.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite timestamps"));
    let mut cum = 0.0;
    for (t, e) in energy_samples {
        cum += e;
        events.push(JsonValue::obj([
            ("name", "energy (J)".into()),
            ("ph", "C".into()),
            ("ts", us(t).into()),
            ("pid", PID.into()),
            ("args", JsonValue::obj([("J", cum.into())])),
        ]));
    }

    let mut metadata = vec![
        ("tool".to_string(), JsonValue::from("dae-trace")),
        ("cores".to_string(), rec.cores().into()),
        ("events".to_string(), rec.len().into()),
    ];
    metadata.extend(extra);

    JsonValue::obj([
        ("traceEvents", JsonValue::Arr(events)),
        ("displayTimeUnit", "ns".into()),
        ("metadata", JsonValue::Obj(metadata)),
    ])
    .to_json_string()
}

fn meta_event(name: &str, tid: Option<u32>, value: &str) -> JsonValue {
    let mut pairs = vec![
        ("name".to_string(), JsonValue::from(name)),
        ("ph".to_string(), "M".into()),
        ("pid".to_string(), PID.into()),
    ];
    if let Some(tid) = tid {
        pairs.push(("tid".to_string(), tid.into()));
    }
    pairs.push(("args".to_string(), JsonValue::obj([("name", value.into())])));
    JsonValue::Obj(pairs)
}

fn span_event(ev: &TraceEvent) -> JsonValue {
    let (name, args) = match ev {
        TraceEvent::Phase {
            task, name, freq_ghz, dyn_energy_j, static_energy_j, counters, ..
        } => (
            name.clone(),
            JsonValue::obj([
                ("task", (*task).into()),
                ("freq_ghz", (*freq_ghz).into()),
                ("dyn_energy_j", (*dyn_energy_j).into()),
                ("static_energy_j", (*static_energy_j).into()),
                ("counters", counters.to_json()),
            ]),
        ),
        TraceEvent::Overhead { task, energy_j, .. } => (
            "dispatch".to_string(),
            JsonValue::obj([("task", (*task).into()), ("energy_j", (*energy_j).into())]),
        ),
        TraceEvent::DvfsTransition { from_ghz, to_ghz, energy_j, .. } => (
            format!("dvfs {from_ghz:.1}->{to_ghz:.1} GHz"),
            JsonValue::obj([
                ("from_ghz", (*from_ghz).into()),
                ("to_ghz", (*to_ghz).into()),
                ("energy_j", (*energy_j).into()),
            ]),
        ),
        TraceEvent::Idle { .. } => ("idle".to_string(), JsonValue::obj([])),
        TraceEvent::CompilePass { pass, func, cached, .. } => (
            format!("{pass} [{func}]"),
            JsonValue::obj([
                ("pass", pass.as_str().into()),
                ("func", func.as_str().into()),
                ("cached", (*cached).into()),
            ]),
        ),
        TraceEvent::BytecodeLower { func, ops, fused, wall_s, .. } => (
            format!("lower [{func}]"),
            JsonValue::obj([
                ("func", func.as_str().into()),
                ("ops", (*ops).into()),
                ("fused", (*fused).into()),
                ("wall_s", (*wall_s).into()),
            ]),
        ),
        TraceEvent::GateRoute { key, backend, attempts, hedged, spilled, .. } => (
            format!("route [{backend}]"),
            JsonValue::obj([
                ("key", format!("{key:016x}").into()),
                ("backend", backend.as_str().into()),
                ("attempts", (*attempts).into()),
                ("hedged", (*hedged).into()),
                ("spilled", (*spilled).into()),
            ]),
        ),
        TraceEvent::BackendEject { backend, reason, failures, .. } => (
            format!("eject [{backend}]"),
            JsonValue::obj([
                ("backend", backend.as_str().into()),
                ("reason", reason.as_str().into()),
                ("failures", (*failures).into()),
            ]),
        ),
        TraceEvent::GovernorDecision {
            task,
            class,
            access_ghz,
            execute_ghz,
            explore,
            guarded,
            ..
        } => (
            format!("governor {access_ghz:.1}/{execute_ghz:.1} GHz"),
            JsonValue::obj([
                ("task", (*task).into()),
                ("class", class.as_str().into()),
                ("access_ghz", (*access_ghz).into()),
                ("execute_ghz", (*execute_ghz).into()),
                ("explore", (*explore).into()),
                ("guarded", (*guarded).into()),
            ]),
        ),
    };
    JsonValue::obj([
        ("name", name.into()),
        ("cat", ev.category().into()),
        ("ph", "X".into()),
        ("ts", us(ev.start_s()).into()),
        ("dur", us(ev.dur_s()).into()),
        ("pid", PID.into()),
        ("tid", ev.core().into()),
        ("args", args),
    ])
}

/// A per-core frequency counter sample, for events that pin or change the
/// operating point.
fn freq_sample(ev: &TraceEvent) -> Option<JsonValue> {
    let (core, t, ghz) = match ev {
        TraceEvent::Phase { core, start_s, freq_ghz, .. } => (*core, *start_s, *freq_ghz),
        TraceEvent::DvfsTransition { core, to_ghz, .. } => (*core, ev.end_s(), *to_ghz),
        _ => return None,
    };
    Some(JsonValue::obj([
        ("name", format!("core{core} GHz").into()),
        ("ph", "C".into()),
        ("ts", us(t).into()),
        ("pid", PID.into()),
        ("args", JsonValue::obj([("GHz", ghz.into())])),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{PhaseCounters, PhaseKind};
    use crate::json::parse;
    use crate::sink::TraceSink;

    fn sample_recorder() -> Recorder {
        let mut rec = Recorder::new(2);
        rec.record(TraceEvent::Overhead {
            core: 0,
            task: 0,
            start_s: 0.0,
            dur_s: 1e-7,
            energy_j: 1e-9,
        });
        rec.record(TraceEvent::DvfsTransition {
            core: 0,
            start_s: 1e-7,
            dur_s: 5e-7,
            from_ghz: 3.4,
            to_ghz: 1.6,
            energy_j: 2e-9,
        });
        rec.record(TraceEvent::Phase {
            core: 0,
            task: 0,
            name: "stream__access".into(),
            kind: PhaseKind::Access,
            start_s: 6e-7,
            dur_s: 4e-6,
            freq_ghz: 1.6,
            dyn_energy_j: 3e-9,
            static_energy_j: 1e-9,
            counters: PhaseCounters { instrs: 100, prefetches: 12, ..Default::default() },
        });
        rec.record(TraceEvent::Idle { core: 1, start_s: 0.0, dur_s: 4.6e-6 });
        rec
    }

    #[test]
    fn output_is_valid_json_with_expected_structure() {
        let text = chrome_trace_json(&sample_recorder());
        let v = parse(&text).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process_name + 2 thread_name + 4 spans + 2 freq samples + 3
        // energy samples.
        assert_eq!(events.len(), 12);
        assert_eq!(v.get("metadata").unwrap().get("cores").unwrap().as_f64(), Some(2.0));
        // Exactly one lane-name record per core.
        let lanes: Vec<f64> = events
            .iter()
            .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("thread_name"))
            .map(|e| e.get("tid").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(lanes, [0.0, 1.0]);
    }

    #[test]
    fn spans_carry_categories_and_microsecond_times() {
        let text = chrome_trace_json(&sample_recorder());
        let v = parse(&text).unwrap();
        let spans: Vec<&JsonValue> = v
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .collect();
        let cats: Vec<&str> =
            spans.iter().map(|e| e.get("cat").unwrap().as_str().unwrap()).collect();
        assert_eq!(cats, ["overhead", "dvfs", "access", "idle"]);
        let access = spans[2];
        assert_eq!(access.get("ts").unwrap().as_f64(), Some(0.6));
        assert_eq!(access.get("dur").unwrap().as_f64(), Some(4.0));
        let counters = access.get("args").unwrap().get("counters").unwrap();
        assert_eq!(counters.get("prefetches").unwrap().as_f64(), Some(12.0));
    }

    #[test]
    fn energy_counter_is_cumulative_and_sorted() {
        let text = chrome_trace_json(&sample_recorder());
        let v = parse(&text).unwrap();
        let joules: Vec<f64> = v
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("energy (J)"))
            .map(|e| e.get("args").unwrap().get("J").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(joules.len(), 3);
        assert!(joules.windows(2).all(|w| w[0] < w[1]), "{joules:?}");
        assert!((joules[2] - 7e-9).abs() < 1e-18);
    }

    #[test]
    fn metadata_extras_are_merged() {
        let text = chrome_trace_json_with(
            &sample_recorder(),
            vec![("report".to_string(), JsonValue::obj([("time_s", 1.0.into())]))],
        );
        let v = parse(&text).unwrap();
        let report = v.get("metadata").unwrap().get("report").unwrap();
        assert_eq!(report.get("time_s").unwrap().as_f64(), Some(1.0));
    }
}
