//! The structured event model: what the runtime, simulator and power
//! layers emit while a workload runs.
//!
//! All timestamps are in **virtual seconds** (the scheduler's deterministic
//! clock), all events are *complete* spans — producers emit them once the
//! duration is known, so sinks never pair begin/end records.

use crate::json::JsonValue;

/// Which half of a decoupled task a phase span covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseKind {
    /// The compiler-generated prefetch slice (run at low frequency).
    Access,
    /// The original task body (run on a warm cache).
    Execute,
}

impl PhaseKind {
    /// Stable lowercase name, used as the Chrome-trace category.
    pub fn as_str(self) -> &'static str {
        match self {
            PhaseKind::Access => "access",
            PhaseKind::Execute => "execute",
        }
    }
}

/// Snapshot of a phase's execution counters (a plain-data mirror of the
/// simulator's `PhaseTrace`, without the per-miss event list).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseCounters {
    /// Dynamic instructions executed.
    pub instrs: u64,
    /// Address computations folded into addressing modes.
    pub addr_ops: u64,
    /// Floating-point operations.
    pub fp_ops: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Software prefetches executed.
    pub prefetches: u64,
    /// Branch/jump terminators executed.
    pub branches: u64,
    /// Demand loads served per level `[L1, L2, LLC, Memory]`.
    pub demand_hits: [u64; 4],
    /// Prefetches served per level `[L1, L2, LLC, Memory]`.
    pub prefetch_hits: [u64; 4],
    /// Total DRAM line transfers (demand + prefetch + write traffic).
    pub dram_lines: u64,
}

impl PhaseCounters {
    /// JSON object with one key per counter.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("instrs", self.instrs.into()),
            ("addr_ops", self.addr_ops.into()),
            ("fp_ops", self.fp_ops.into()),
            ("loads", self.loads.into()),
            ("stores", self.stores.into()),
            ("prefetches", self.prefetches.into()),
            ("branches", self.branches.into()),
            ("demand_hits", level_array(&self.demand_hits)),
            ("prefetch_hits", level_array(&self.prefetch_hits)),
            ("dram_lines", self.dram_lines.into()),
        ])
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &PhaseCounters) {
        self.instrs += other.instrs;
        self.addr_ops += other.addr_ops;
        self.fp_ops += other.fp_ops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.prefetches += other.prefetches;
        self.branches += other.branches;
        for i in 0..4 {
            self.demand_hits[i] += other.demand_hits[i];
            self.prefetch_hits[i] += other.prefetch_hits[i];
        }
        self.dram_lines += other.dram_lines;
    }
}

fn level_array(levels: &[u64; 4]) -> JsonValue {
    JsonValue::Arr(levels.iter().map(|&v| v.into()).collect())
}

/// One trace event. Every variant carries the core it happened on and a
/// `[start_s, start_s + dur_s]` interval in virtual seconds; intervals on
/// the same core never overlap.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// An access or execute phase of one task instance.
    Phase {
        /// Simulated core index.
        core: u32,
        /// Index of the task instance in the submitted workload.
        task: u32,
        /// Name of the IR function the phase ran.
        name: String,
        /// Access or execute.
        kind: PhaseKind,
        /// Start time in virtual seconds.
        start_s: f64,
        /// Duration in seconds.
        dur_s: f64,
        /// Operating frequency the phase ran at, in GHz.
        freq_ghz: f64,
        /// Dynamic (switching) energy of the phase, in joules.
        dyn_energy_j: f64,
        /// The core's static-energy share over the phase, in joules.
        static_energy_j: f64,
        /// Execution counters of the phase.
        counters: PhaseCounters,
    },
    /// Runtime cost of dequeuing/scheduling one task.
    Overhead {
        /// Simulated core index.
        core: u32,
        /// Index of the task instance being dispatched.
        task: u32,
        /// Start time in virtual seconds.
        start_s: f64,
        /// Duration in seconds.
        dur_s: f64,
        /// Static energy burned while dispatching, in joules.
        energy_j: f64,
    },
    /// A DVFS operating-point change (§6.1: static energy only).
    DvfsTransition {
        /// Simulated core index.
        core: u32,
        /// Start time in virtual seconds.
        start_s: f64,
        /// Transition latency in seconds (0 for ideal DVFS).
        dur_s: f64,
        /// Frequency before the transition, in GHz.
        from_ghz: f64,
        /// Frequency after the transition, in GHz.
        to_ghz: f64,
        /// Static energy burned during the transition, in joules.
        energy_j: f64,
    },
    /// A gap in which a core had no work (barrier wait / end of run).
    Idle {
        /// Simulated core index.
        core: u32,
        /// Start time in virtual seconds.
        start_s: f64,
        /// Duration in seconds.
        dur_s: f64,
    },
    /// One compiler pass executed by the compilation driver over one
    /// function. Unlike the runtime variants the interval is **host
    /// wall-clock** seconds, relative to the driver run's origin — the
    /// same exporters render compile time the way they render run time.
    CompilePass {
        /// Driver worker index (the lane the span renders on).
        core: u32,
        /// Name of the pass.
        pass: String,
        /// Name of the function being compiled.
        func: String,
        /// Start in seconds since the driver run began.
        start_s: f64,
        /// Duration in seconds.
        dur_s: f64,
        /// True when the pass result was replayed from the incremental
        /// cache instead of being recomputed.
        cached: bool,
    },
    /// One function lowered to simulator bytecode by a machine's execution
    /// engine (instantaneous on the virtual timeline: lowering is host-side
    /// work, its wall-clock cost rides along as metadata).
    BytecodeLower {
        /// Simulated core index whose machine lowered the function.
        core: u32,
        /// Name of the lowered function.
        func: String,
        /// Bytecode ops emitted.
        ops: u32,
        /// Fused super-ops among them.
        fused: u32,
        /// Time of the lowering on the virtual timeline, in seconds.
        start_s: f64,
        /// Host wall-clock spent lowering, in seconds.
        wall_s: f64,
    },
    /// One work request routed by the serving gateway to a backend. Like
    /// [`TraceEvent::CompilePass`] the interval is **host wall-clock**
    /// seconds, relative to the gateway's start; the lane is the backend's
    /// index in the gateway's pool.
    GateRoute {
        /// Index of the backend that answered (the lane the span renders on).
        core: u32,
        /// FNV route key of the request, rendered as fixed-width hex.
        key: u64,
        /// Address of the backend that answered.
        backend: String,
        /// Attempts it took (1 = first try; >1 means retries/failover).
        attempts: u32,
        /// True when a hedge request was launched for the tail.
        hedged: bool,
        /// True when bounded-load routing spilled the request off its
        /// home ring node because that backend was at its in-flight cap.
        spilled: bool,
        /// Start in seconds since the gateway started.
        start_s: f64,
        /// End-to-end forwarding duration in seconds.
        dur_s: f64,
    },
    /// The gateway ejected a backend from the routing ring (instantaneous;
    /// host wall-clock timestamp like [`TraceEvent::GateRoute`]).
    BackendEject {
        /// Index of the ejected backend (its lane).
        core: u32,
        /// Address of the ejected backend.
        backend: String,
        /// Why: `probe-failures`, `request-failures` or `draining`.
        reason: String,
        /// Consecutive failures observed at ejection time.
        failures: u32,
        /// Time of the ejection in seconds since the gateway started.
        start_s: f64,
    },
    /// An online governor's per-task frequency decision (instantaneous:
    /// the decision itself costs no virtual time or energy).
    GovernorDecision {
        /// Simulated core index.
        core: u32,
        /// Index of the task instance the decision applies to.
        task: u32,
        /// Label of the task class the decision was cached under.
        class: String,
        /// Time of the decision in virtual seconds.
        start_s: f64,
        /// Chosen access-phase frequency, in GHz.
        access_ghz: f64,
        /// Chosen execute-phase frequency, in GHz.
        execute_ghz: f64,
        /// True when the decision was exploratory rather than greedy.
        explore: bool,
        /// True when the safety guard forced the min/max fallback.
        guarded: bool,
    },
}

impl TraceEvent {
    /// The core the event happened on.
    pub fn core(&self) -> u32 {
        match self {
            TraceEvent::Phase { core, .. }
            | TraceEvent::Overhead { core, .. }
            | TraceEvent::DvfsTransition { core, .. }
            | TraceEvent::Idle { core, .. }
            | TraceEvent::CompilePass { core, .. }
            | TraceEvent::BytecodeLower { core, .. }
            | TraceEvent::GateRoute { core, .. }
            | TraceEvent::BackendEject { core, .. }
            | TraceEvent::GovernorDecision { core, .. } => *core,
        }
    }

    /// Start of the event's interval, in virtual seconds.
    pub fn start_s(&self) -> f64 {
        match self {
            TraceEvent::Phase { start_s, .. }
            | TraceEvent::Overhead { start_s, .. }
            | TraceEvent::DvfsTransition { start_s, .. }
            | TraceEvent::Idle { start_s, .. }
            | TraceEvent::CompilePass { start_s, .. }
            | TraceEvent::BytecodeLower { start_s, .. }
            | TraceEvent::GateRoute { start_s, .. }
            | TraceEvent::BackendEject { start_s, .. }
            | TraceEvent::GovernorDecision { start_s, .. } => *start_s,
        }
    }

    /// Duration of the event's interval, in seconds.
    pub fn dur_s(&self) -> f64 {
        match self {
            TraceEvent::Phase { dur_s, .. }
            | TraceEvent::Overhead { dur_s, .. }
            | TraceEvent::DvfsTransition { dur_s, .. }
            | TraceEvent::Idle { dur_s, .. }
            | TraceEvent::CompilePass { dur_s, .. }
            | TraceEvent::GateRoute { dur_s, .. } => *dur_s,
            TraceEvent::BytecodeLower { .. }
            | TraceEvent::BackendEject { .. }
            | TraceEvent::GovernorDecision { .. } => 0.0,
        }
    }

    /// End of the event's interval, in virtual seconds.
    pub fn end_s(&self) -> f64 {
        self.start_s() + self.dur_s()
    }

    /// Total energy attached to the event, in joules (0 for idle gaps —
    /// idle cores are in sleep states).
    pub fn energy_j(&self) -> f64 {
        match self {
            TraceEvent::Phase { dyn_energy_j, static_energy_j, .. } => {
                dyn_energy_j + static_energy_j
            }
            TraceEvent::Overhead { energy_j, .. } | TraceEvent::DvfsTransition { energy_j, .. } => {
                *energy_j
            }
            TraceEvent::Idle { .. }
            | TraceEvent::CompilePass { .. }
            | TraceEvent::BytecodeLower { .. }
            | TraceEvent::GateRoute { .. }
            | TraceEvent::BackendEject { .. }
            | TraceEvent::GovernorDecision { .. } => 0.0,
        }
    }

    /// Stable category slug: `access`, `execute`, `overhead`, `dvfs`,
    /// `idle`, `compile`, `lower`, `route`, `eject` or `governor`.
    /// Exporters group and reconcile spans by this.
    pub fn category(&self) -> &'static str {
        match self {
            TraceEvent::Phase { kind, .. } => kind.as_str(),
            TraceEvent::Overhead { .. } => "overhead",
            TraceEvent::DvfsTransition { .. } => "dvfs",
            TraceEvent::Idle { .. } => "idle",
            TraceEvent::CompilePass { .. } => "compile",
            TraceEvent::BytecodeLower { .. } => "lower",
            TraceEvent::GateRoute { .. } => "route",
            TraceEvent::BackendEject { .. } => "eject",
            TraceEvent::GovernorDecision { .. } => "governor",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_all_variants() {
        let events = [
            TraceEvent::Phase {
                core: 1,
                task: 7,
                name: "f".into(),
                kind: PhaseKind::Execute,
                start_s: 1.0,
                dur_s: 0.5,
                freq_ghz: 3.4,
                dyn_energy_j: 2.0,
                static_energy_j: 1.0,
                counters: PhaseCounters::default(),
            },
            TraceEvent::Overhead { core: 1, task: 7, start_s: 0.5, dur_s: 0.25, energy_j: 0.1 },
            TraceEvent::DvfsTransition {
                core: 1,
                start_s: 0.75,
                dur_s: 0.25,
                from_ghz: 3.4,
                to_ghz: 1.6,
                energy_j: 0.2,
            },
            TraceEvent::Idle { core: 1, start_s: 1.5, dur_s: 0.5 },
            TraceEvent::CompilePass {
                core: 1,
                pass: "generate-access".into(),
                func: "lu_inner".into(),
                start_s: 0.0,
                dur_s: 0.01,
                cached: false,
            },
            TraceEvent::BytecodeLower {
                core: 1,
                func: "lu_inner".into(),
                ops: 24,
                fused: 3,
                start_s: 0.0,
                wall_s: 2e-6,
            },
            TraceEvent::GateRoute {
                core: 1,
                key: 0xdead_beef,
                backend: "127.0.0.1:7777".into(),
                attempts: 2,
                hedged: true,
                spilled: false,
                start_s: 3.0,
                dur_s: 0.002,
            },
            TraceEvent::BackendEject {
                core: 1,
                backend: "127.0.0.1:7778".into(),
                reason: "probe-failures".into(),
                failures: 3,
                start_s: 3.5,
            },
            TraceEvent::GovernorDecision {
                core: 1,
                task: 7,
                class: "f#00aa".into(),
                start_s: 2.0,
                access_ghz: 1.6,
                execute_ghz: 3.4,
                explore: true,
                guarded: false,
            },
        ];
        let cats: Vec<&str> = events.iter().map(|e| e.category()).collect();
        assert_eq!(
            cats,
            [
                "execute", "overhead", "dvfs", "idle", "compile", "lower", "route", "eject",
                "governor"
            ]
        );
        for e in &events {
            assert_eq!(e.core(), 1);
            assert!((e.end_s() - e.start_s() - e.dur_s()).abs() < 1e-15);
        }
        assert_eq!(events[0].energy_j(), 3.0);
        assert_eq!(events[3].energy_j(), 0.0);
        // Compile passes burn wall-clock, not modelled energy.
        assert_eq!(events[4].energy_j(), 0.0);
        assert!((events[4].dur_s() - 0.01).abs() < 1e-15);
        // Routing spans carry wall-clock duration but no modelled energy.
        assert!((events[6].dur_s() - 0.002).abs() < 1e-15);
        assert_eq!(events[6].energy_j(), 0.0);
        // Lowering, ejections and decisions are instantaneous and free on
        // the virtual timeline.
        for e in [&events[5], &events[7], &events[8]] {
            assert_eq!(e.dur_s(), 0.0);
            assert_eq!(e.energy_j(), 0.0);
        }
    }

    #[test]
    fn counters_merge_and_serialize() {
        let mut a = PhaseCounters { instrs: 10, demand_hits: [1, 2, 3, 4], ..Default::default() };
        let b = PhaseCounters {
            instrs: 5,
            loads: 2,
            demand_hits: [4, 3, 2, 1],
            dram_lines: 9,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.instrs, 15);
        assert_eq!(a.loads, 2);
        assert_eq!(a.demand_hits, [5, 5, 5, 5]);
        let j = a.to_json();
        assert_eq!(j.get("instrs").unwrap().as_f64(), Some(15.0));
        assert_eq!(j.get("demand_hits").unwrap().as_arr().unwrap().len(), 4);
    }
}
