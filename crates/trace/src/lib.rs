//! # dae-trace — event-level tracing & metrics for the DAE stack
//!
//! The paper's evaluation (§6, Figs. 3–4, Table 1) rests on *per-phase*
//! timing: access vs execute duration, DVFS transition overhead and idle
//! time per core. End-of-run aggregates (`RunReport`) cannot answer "which
//! task instance blew the makespan" or "where did the O.S.I. time go" —
//! this crate can. It is the observability backbone of the repository:
//!
//! * [`TraceEvent`] — the structured event model: phase spans (access /
//!   execute) with per-phase counter snapshots, task-dispatch overhead,
//!   DVFS transitions with from/to frequency, and per-core idle gaps, all
//!   stamped in virtual seconds;
//! * [`TraceSink`] — the producer-side trait. [`NullSink`] is the
//!   zero-cost default (producers skip event construction entirely when
//!   [`TraceSink::is_enabled`] is `false`); [`Recorder`] captures events
//!   in memory for export;
//! * [`chrome::chrome_trace_json`] — Chrome Trace Event JSON, loadable in
//!   [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`: one lane
//!   per simulated core plus counter tracks for per-core frequency and
//!   cumulative energy;
//! * [`summary::summary_json`] — a compact aggregate schema suitable for
//!   `BENCH_*.json` trajectory files;
//! * [`json`] — the dependency-free ordered JSON tree, writer and strict
//!   parser the exporters (and the rest of the workspace) build on.
//!
//! # Examples
//!
//! ```
//! use dae_trace::{chrome, NullSink, PhaseCounters, PhaseKind, Recorder, TraceEvent, TraceSink};
//!
//! let mut rec = Recorder::new(2);
//! assert!(rec.is_enabled());
//! rec.record(TraceEvent::Phase {
//!     core: 0,
//!     task: 0,
//!     name: "stream__access".into(),
//!     kind: PhaseKind::Access,
//!     start_s: 0.0,
//!     dur_s: 1e-6,
//!     freq_ghz: 1.6,
//!     dyn_energy_j: 2e-6,
//!     static_energy_j: 1e-6,
//!     counters: PhaseCounters { instrs: 640, prefetches: 64, ..Default::default() },
//! });
//! let json = chrome::chrome_trace_json(&rec);
//! assert!(json.contains("traceEvents"));
//!
//! // The default sink records nothing and costs nothing.
//! assert!(!NullSink.is_enabled());
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod hist;
pub mod json;
pub mod sink;
pub mod summary;

pub use event::{PhaseCounters, PhaseKind, TraceEvent};
pub use hist::LogHistogram;
pub use sink::{NullSink, Recorder, TraceSink};
