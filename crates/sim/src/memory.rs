//! Flat simulated memory and the global address layout.

use dae_ir::{GlobalId, GlobalInit, Module, Type};

/// A runtime value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Val {
    /// 64-bit integer.
    I(i64),
    /// 64-bit float.
    F(f64),
    /// Boolean.
    B(bool),
    /// Pointer (simulated address).
    P(u64),
}

/// A runtime type violation: an operation received a [`Val`] of the wrong
/// kind, or a typed access used [`Type::Void`]. Produced by the fallible
/// `Val` accessors and [`Memory::try_read`] so a malformed module fails a
/// run gracefully instead of aborting the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeError {
    /// Expected one payload kind, got another.
    Mismatch {
        /// The kind the operation required.
        expected: &'static str,
        /// The kind actually present.
        got: &'static str,
    },
    /// A typed load at [`Type::Void`].
    LoadVoid,
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeError::Mismatch { expected, got } => {
                write!(f, "expected {expected}, got {got}")
            }
            TypeError::LoadVoid => write!(f, "cannot load a void value"),
        }
    }
}

impl std::error::Error for TypeError {}

impl dae_ir::CodedError for TypeError {
    fn code(&self) -> &'static str {
        match self {
            TypeError::Mismatch { .. } => "sim.type-mismatch",
            TypeError::LoadVoid => "sim.load-void",
        }
    }
}

impl Val {
    /// The name of this value's payload kind.
    #[inline]
    pub fn kind(self) -> &'static str {
        match self {
            Val::I(_) => "i64",
            Val::F(_) => "f64",
            Val::B(_) => "bool",
            Val::P(_) => "ptr",
        }
    }

    /// The integer payload, or a [`TypeError`] for any other kind.
    #[inline]
    pub fn try_i(self) -> Result<i64, TypeError> {
        match self {
            Val::I(v) => Ok(v),
            other => Err(TypeError::Mismatch { expected: "i64", got: other.kind() }),
        }
    }

    /// The float payload, or a [`TypeError`] for any other kind.
    #[inline]
    pub fn try_f(self) -> Result<f64, TypeError> {
        match self {
            Val::F(v) => Ok(v),
            other => Err(TypeError::Mismatch { expected: "f64", got: other.kind() }),
        }
    }

    /// The boolean payload, or a [`TypeError`] for any other kind.
    #[inline]
    pub fn try_b(self) -> Result<bool, TypeError> {
        match self {
            Val::B(v) => Ok(v),
            other => Err(TypeError::Mismatch { expected: "bool", got: other.kind() }),
        }
    }

    /// The pointer payload, or a [`TypeError`] for any other kind.
    #[inline]
    pub fn try_p(self) -> Result<u64, TypeError> {
        match self {
            Val::P(v) => Ok(v),
            other => Err(TypeError::Mismatch { expected: "ptr", got: other.kind() }),
        }
    }

    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an integer (test helper; execution paths
    /// use [`Val::try_i`]).
    pub fn as_i(self) -> i64 {
        self.try_i().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The float payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a float (test helper; execution paths
    /// use [`Val::try_f`]).
    pub fn as_f(self) -> f64 {
        self.try_f().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The boolean payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a boolean (test helper; execution paths
    /// use [`Val::try_b`]).
    pub fn as_b(self) -> bool {
        self.try_b().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The pointer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a pointer (test helper; execution paths
    /// use [`Val::try_p`]).
    pub fn as_p(self) -> u64 {
        self.try_p().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Base address of the first global; leaves page zero unmapped so that a
/// null/garbage pointer dereference fails loudly.
const GLOBALS_BASE: u64 = 0x1000;

/// Byte-addressed flat memory holding all module globals, 64-byte aligned so
/// distinct arrays never share a cache line.
#[derive(Clone, Debug)]
pub struct Memory {
    bytes: Vec<u8>,
    global_addrs: Vec<u64>,
}

impl Memory {
    /// Lays out and initialises the globals of `module`.
    pub fn for_module(module: &Module) -> Memory {
        let mut addr = GLOBALS_BASE;
        let mut global_addrs = Vec::with_capacity(module.num_globals());
        for (_, g) in module.globals() {
            global_addrs.push(addr);
            let size = g.size_bytes().max(1);
            addr += size.div_ceil(64) * 64;
        }
        let mut mem = Memory { bytes: vec![0u8; addr as usize], global_addrs };
        for (id, g) in module.globals() {
            if let GlobalInit::Words(words) = &g.init {
                let elem = g.elem_ty.size_bytes();
                assert_eq!(elem, 8, "word initialisers require 8-byte elements");
                let base = mem.global_addr(id);
                for (i, w) in words.iter().enumerate() {
                    mem.write_u64(base + (i as u64) * 8, *w);
                }
            }
        }
        mem
    }

    /// The base address of global `g`.
    pub fn global_addr(&self, g: GlobalId) -> u64 {
        self.global_addrs[g.0 as usize]
    }

    /// Total mapped size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    #[inline]
    fn check(&self, addr: u64, len: u64) {
        assert!(
            addr >= GLOBALS_BASE && addr + len <= self.bytes.len() as u64,
            "memory access out of bounds: addr={addr:#x} len={len}"
        );
    }

    /// Reads a raw 64-bit word.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.check(addr, 8);
        let a = addr as usize;
        u64::from_le_bytes(self.bytes[a..a + 8].try_into().expect("8 bytes"))
    }

    /// Writes a raw 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.check(addr, 8);
        let a = addr as usize;
        self.bytes[a..a + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a typed value; [`TypeError::LoadVoid`] for a [`Type::Void`]
    /// load (malformed IR that slipped past verification).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn try_read(&self, ty: Type, addr: u64) -> Result<Val, TypeError> {
        Ok(match ty {
            Type::I64 => Val::I(self.read_u64(addr) as i64),
            Type::F64 => Val::F(f64::from_bits(self.read_u64(addr))),
            Type::Ptr => Val::P(self.read_u64(addr)),
            Type::Bool => {
                self.check(addr, 1);
                Val::B(self.bytes[addr as usize] != 0)
            }
            Type::Void => return Err(TypeError::LoadVoid),
        })
    }

    /// Reads a typed value.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access or a [`Type::Void`] load (test
    /// helper; execution paths use [`Memory::try_read`]).
    pub fn read(&self, ty: Type, addr: u64) -> Val {
        self.try_read(ty, addr).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Writes a typed value.
    #[inline]
    pub fn write(&mut self, addr: u64, v: Val) {
        match v {
            Val::I(x) => self.write_u64(addr, x as u64),
            Val::F(x) => self.write_u64(addr, x.to_bits()),
            Val::P(x) => self.write_u64(addr, x),
            Val::B(x) => {
                self.check(addr, 1);
                self.bytes[addr as usize] = x as u8;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_line_aligned_and_disjoint() {
        let mut m = Module::new();
        let a = m.add_global("a", Type::F64, 3); // 24 B -> padded to 64
        let b = m.add_global("b", Type::I64, 100); // 800 B -> padded to 832
        let c = m.add_global("c", Type::F64, 1);
        let mem = Memory::for_module(&m);
        let (pa, pb, pc) = (mem.global_addr(a), mem.global_addr(b), mem.global_addr(c));
        assert_eq!(pa % 64, 0);
        assert_eq!(pb % 64, 0);
        assert_eq!(pc % 64, 0);
        assert!(pb >= pa + 24);
        assert!(pc >= pb + 800);
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = Module::new();
        let g = m.add_global("g", Type::F64, 4);
        let mut mem = Memory::for_module(&m);
        let base = mem.global_addr(g);
        mem.write(base, Val::F(3.5));
        mem.write(base + 8, Val::I(-7));
        assert_eq!(mem.read(Type::F64, base), Val::F(3.5));
        assert_eq!(mem.read(Type::I64, base + 8), Val::I(-7));
    }

    #[test]
    fn word_initialisers_are_applied() {
        let mut m = Module::new();
        let g = m.add_global_init(dae_ir::GlobalData {
            name: "init".into(),
            elem_ty: Type::I64,
            len: 2,
            init: GlobalInit::Words(vec![42, 43]),
        });
        let mem = Memory::for_module(&m);
        let base = mem.global_addr(g);
        assert_eq!(mem.read(Type::I64, base), Val::I(42));
        assert_eq!(mem.read(Type::I64, base + 8), Val::I(43));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn null_deref_panics() {
        let m = Module::new();
        let mem = Memory::for_module(&m);
        let _ = mem.read(Type::I64, 0);
    }

    #[test]
    fn val_accessors() {
        assert_eq!(Val::I(3).as_i(), 3);
        assert_eq!(Val::F(2.5).as_f(), 2.5);
        assert!(Val::B(true).as_b());
        assert_eq!(Val::P(0x40).as_p(), 0x40);
    }

    #[test]
    fn mismatched_accessors_report_kinds() {
        assert_eq!(Val::F(1.0).try_i(), Err(TypeError::Mismatch { expected: "i64", got: "f64" }));
        assert_eq!(Val::I(1).try_f(), Err(TypeError::Mismatch { expected: "f64", got: "i64" }));
        assert_eq!(Val::P(8).try_b(), Err(TypeError::Mismatch { expected: "bool", got: "ptr" }));
        assert_eq!(Val::B(true).try_p(), Err(TypeError::Mismatch { expected: "ptr", got: "bool" }));
        assert_eq!(Val::I(3).try_i(), Ok(3));
    }

    #[test]
    fn void_load_is_an_error_not_an_abort() {
        let mut m = Module::new();
        let g = m.add_global("g", Type::F64, 1);
        let mem = Memory::for_module(&m);
        let base = mem.global_addr(g);
        assert_eq!(mem.try_read(Type::Void, base), Err(TypeError::LoadVoid));
    }
}
