//! The out-of-order interval timing model.
//!
//! The paper's mechanism rests on one asymmetry: **core work scales with
//! frequency, DRAM time does not**. The model computes, from an execution
//! trace:
//!
//! * `t_core(f)` — issue-limited core cycles (instructions / width, plus
//!   long-latency extra cycles and on-chip L2/LLC hit penalties), divided by
//!   the core frequency;
//! * `t_stall` — DRAM demand-miss stall time in *seconds*, with
//!   memory-level parallelism: misses whose addresses depend on a previous
//!   in-flight miss serialise (pointer chasing); independent misses within a
//!   ROB window overlap up to the MSHR count;
//! * `t_bw` — the bandwidth floor: every DRAM line transfer (demand,
//!   prefetch or write-allocate) occupies the memory channel.
//!
//! `time(f) = max(t_core(f) + t_stall, t_bw)` — software prefetches never
//! stall retirement ("does not stall instruction retirement and can
//! therefore provide us with more memory level parallelism", §3.1), so a
//! pure access phase is bandwidth-bound and nearly frequency-insensitive,
//! while a warmed-up execute phase is core-bound and scales with frequency.

use dae_mem::HitLevel;

/// Calibration constants of the timing model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingConfig {
    /// Sustained issue width (instructions per cycle upper bound).
    pub issue_width: f64,
    /// Reorder-buffer reach in instructions: independent DRAM misses closer
    /// than this overlap.
    pub rob_window: u64,
    /// Miss-status-holding registers: maximum overlapped DRAM misses.
    pub mshrs: u64,
    /// Extra core cycles charged per demand L2 hit.
    pub l2_extra_cyc: f64,
    /// Extra core cycles charged per demand LLC hit.
    pub llc_extra_cyc: f64,
    /// DRAM access latency in nanoseconds (frequency independent).
    pub mem_latency_ns: f64,
    /// Memory-channel occupancy per 64 B line transfer, in nanoseconds.
    pub line_transfer_ns: f64,
    /// Residual (post-overlap) latency of a DRAM line covered by the
    /// hardware stream prefetcher, in nanoseconds. Real prefetchers hide
    /// only part of the DRAM latency — the stream consumer still sees this
    /// much per line, independent of core frequency.
    pub hw_covered_ns: f64,
    /// Extra cycles per integer divide/remainder.
    pub idiv_cyc: f64,
    /// Extra cycles per float divide.
    pub fdiv_cyc: f64,
    /// Extra cycles per float square root.
    pub fsqrt_cyc: f64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            issue_width: 4.0,
            rob_window: 168,
            mshrs: 10,
            l2_extra_cyc: 6.0,
            llc_extra_cyc: 22.0,
            mem_latency_ns: 75.0,
            line_transfer_ns: 8.0,
            hw_covered_ns: 12.0,
            idiv_cyc: 12.0,
            fdiv_cyc: 14.0,
            fsqrt_cyc: 18.0,
        }
    }
}

/// One DRAM demand miss in the trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DemandMiss {
    /// Dynamic instruction index at which the miss occurred.
    pub instr_idx: u64,
    /// True if the missing address was computed from the result of an
    /// earlier DRAM-missing load (pointer chasing / indirection) — such a
    /// miss cannot overlap its producer.
    pub dependent: bool,
}

/// Aggregated execution trace of one phase (or any code region).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseTrace {
    /// Dynamic instructions executed (all classes) excluding folded address
    /// arithmetic.
    pub instrs: u64,
    /// Address computations folded into x86 addressing modes (`ptradd`,
    /// power-of-two scale multiplies): executed, but issue-slot free.
    pub addr_ops: u64,
    /// Floating-point operations.
    pub fp_ops: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Prefetches executed.
    pub prefetches: u64,
    /// Branch/jump terminators executed.
    pub branches: u64,
    /// Extra core cycles from long-latency ops (divides, sqrt).
    pub extra_lat_cycles: f64,
    /// Demand loads served per level `[L1, L2, LLC, Memory]`.
    pub demand_hits: [u64; 4],
    /// Prefetches served per level `[L1, L2, LLC, Memory]`.
    pub prefetch_hits: [u64; 4],
    /// Stores that missed all the way to DRAM (write-allocate traffic).
    pub store_mem_misses: u64,
    /// Demand DRAM misses covered by the hardware stream prefetcher
    /// (charged as on-chip latency plus a bandwidth line).
    pub hw_prefetch_lines: u64,
    /// Dirty lines written back to DRAM on eviction (bandwidth only —
    /// write-backs never stall the pipeline).
    pub writeback_lines: u64,
    /// Every DRAM demand miss, in program order.
    pub demand_misses: Vec<DemandMiss>,
}

/// Index of a [`HitLevel`] into the per-level counters.
pub fn level_index(l: HitLevel) -> usize {
    match l {
        HitLevel::L1 => 0,
        HitLevel::L2 => 1,
        HitLevel::Llc => 2,
        HitLevel::Memory => 3,
    }
}

impl PhaseTrace {
    /// Accumulates `other` after `self` (instruction indices in
    /// `demand_misses` are shifted).
    pub fn merge(&mut self, other: &PhaseTrace) {
        let base = self.instrs;
        self.instrs += other.instrs;
        self.addr_ops += other.addr_ops;
        self.fp_ops += other.fp_ops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.prefetches += other.prefetches;
        self.branches += other.branches;
        self.extra_lat_cycles += other.extra_lat_cycles;
        for i in 0..4 {
            self.demand_hits[i] += other.demand_hits[i];
            self.prefetch_hits[i] += other.prefetch_hits[i];
        }
        self.store_mem_misses += other.store_mem_misses;
        self.hw_prefetch_lines += other.hw_prefetch_lines;
        self.writeback_lines += other.writeback_lines;
        self.demand_misses.extend(
            other
                .demand_misses
                .iter()
                .map(|m| DemandMiss { instr_idx: m.instr_idx + base, dependent: m.dependent }),
        );
    }

    /// Issue-limited core cycles (frequency-independent count; divide by `f`
    /// for seconds).
    pub fn core_cycles(&self, cfg: &TimingConfig) -> f64 {
        self.instrs as f64 / cfg.issue_width
            + self.extra_lat_cycles
            + self.demand_hits[1] as f64 * cfg.l2_extra_cyc
            + self.demand_hits[2] as f64 * cfg.llc_extra_cyc
    }

    /// DRAM demand stall time in nanoseconds (frequency independent).
    ///
    /// Dependent misses serialise; independent misses within
    /// [`TimingConfig::rob_window`] instructions overlap, bounded by
    /// [`TimingConfig::mshrs`].
    pub fn demand_stall_ns(&self, cfg: &TimingConfig) -> f64 {
        let mut serialized: u64 = 0;
        let mut i = 0usize;
        let misses = &self.demand_misses;
        while i < misses.len() {
            if misses[i].dependent {
                serialized += 1;
                i += 1;
                continue;
            }
            // Grow a cluster of independent misses within the ROB reach.
            let start_idx = misses[i].instr_idx;
            let mut j = i + 1;
            while j < misses.len()
                && !misses[j].dependent
                && misses[j].instr_idx - start_idx < cfg.rob_window
            {
                j += 1;
            }
            let cluster = (j - i) as u64;
            serialized += cluster.div_ceil(cfg.mshrs);
            i = j;
        }
        serialized as f64 * cfg.mem_latency_ns
    }

    /// Total DRAM line transfers (demand + prefetch + hardware-prefetch +
    /// write-allocate + write-back).
    pub fn dram_lines(&self) -> u64 {
        self.demand_hits[3]
            + self.prefetch_hits[3]
            + self.store_mem_misses
            + self.hw_prefetch_lines
            + self.writeback_lines
    }

    /// Bandwidth floor in nanoseconds.
    pub fn bandwidth_ns(&self, cfg: &TimingConfig) -> f64 {
        self.dram_lines() as f64 * cfg.line_transfer_ns
    }

    /// Wall-clock time of the phase at core frequency `f_hz`.
    pub fn time_s(&self, f_hz: f64, cfg: &TimingConfig) -> f64 {
        let t_core = self.core_cycles(cfg) / f_hz;
        let t_stall = self.demand_stall_ns(cfg) * 1e-9
            + self.hw_prefetch_lines as f64 * cfg.hw_covered_ns * 1e-9;
        let t_bw = self.bandwidth_ns(cfg) * 1e-9;
        (t_core + t_stall).max(t_bw)
    }

    /// Retired instructions per cycle at `f_hz` (the power model's IPC).
    pub fn ipc(&self, f_hz: f64, cfg: &TimingConfig) -> f64 {
        let t = self.time_s(f_hz, cfg);
        if t <= 0.0 {
            0.0
        } else {
            self.instrs as f64 / (t * f_hz)
        }
    }

    /// Snapshot of the counters for the tracing subsystem (everything but
    /// the per-miss event list, which stays simulator-internal).
    pub fn counters(&self) -> dae_trace::PhaseCounters {
        dae_trace::PhaseCounters {
            instrs: self.instrs,
            addr_ops: self.addr_ops,
            fp_ops: self.fp_ops,
            loads: self.loads,
            stores: self.stores,
            prefetches: self.prefetches,
            branches: self.branches,
            demand_hits: self.demand_hits,
            prefetch_hits: self.prefetch_hits,
            dram_lines: self.dram_lines(),
        }
    }

    /// Machine-readable counters as JSON (the per-miss list is summarised
    /// as `demand_miss_events`).
    pub fn to_json(&self) -> dae_trace::json::JsonValue {
        let mut v = self.counters().to_json();
        if let dae_trace::json::JsonValue::Obj(pairs) = &mut v {
            pairs.push((
                "extra_lat_cycles".to_string(),
                dae_trace::json::JsonValue::Num(self.extra_lat_cycles),
            ));
            pairs.push(("store_mem_misses".to_string(), self.store_mem_misses.into()));
            pairs.push(("hw_prefetch_lines".to_string(), self.hw_prefetch_lines.into()));
            pairs.push(("writeback_lines".to_string(), self.writeback_lines.into()));
            pairs.push(("demand_miss_events".to_string(), self.demand_misses.len().into()));
        }
        v
    }

    /// Fraction of `time_s(fmax)` that is frequency-insensitive — a
    /// memory-boundedness indicator in `[0, 1]`.
    pub fn memory_bound_fraction(&self, f_hz: f64, cfg: &TimingConfig) -> f64 {
        let t = self.time_s(f_hz, cfg);
        if t <= 0.0 {
            return 0.0;
        }
        let t_stall = self.demand_stall_ns(cfg) * 1e-9
            + self.hw_prefetch_lines as f64 * cfg.hw_covered_ns * 1e-9;
        let t_bw = self.bandwidth_ns(cfg) * 1e-9;
        (t_stall.max(t_bw) / t).min(1.0)
    }

    /// DRAM demand misses per executed load, in `[0, 1]` — the classic
    /// miss-ratio boundedness indicator (0 when the phase executed no
    /// loads).
    pub fn miss_ratio(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.demand_hits[3] as f64 / self.loads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TimingConfig {
        TimingConfig::default()
    }

    fn compute_trace() -> PhaseTrace {
        PhaseTrace {
            instrs: 100_000,
            fp_ops: 40_000,
            demand_hits: [30_000, 0, 0, 0],
            ..Default::default()
        }
    }

    #[test]
    fn compute_bound_scales_with_frequency() {
        let t = compute_trace();
        let slow = t.time_s(1.6e9, &cfg());
        let fast = t.time_s(3.4e9, &cfg());
        let ratio = slow / fast;
        assert!((ratio - 3.4 / 1.6).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn miss_ratio_counts_dram_misses_per_load() {
        let mut t = PhaseTrace { loads: 100, ..Default::default() };
        assert_eq!(t.miss_ratio(), 0.0);
        t.demand_hits = [80, 10, 5, 5];
        assert!((t.miss_ratio() - 0.05).abs() < 1e-12);
        assert_eq!(PhaseTrace::default().miss_ratio(), 0.0, "no loads ⇒ ratio 0");
    }

    #[test]
    fn dependent_misses_serialize() {
        let mut t = PhaseTrace { instrs: 1000, ..Default::default() };
        for k in 0..10 {
            t.demand_misses.push(DemandMiss { instr_idx: k * 10, dependent: true });
        }
        t.demand_hits[3] = 10;
        let stall = t.demand_stall_ns(&cfg());
        assert_eq!(stall, 10.0 * cfg().mem_latency_ns);
    }

    #[test]
    fn independent_misses_overlap() {
        let mut t = PhaseTrace { instrs: 1000, ..Default::default() };
        for k in 0..10 {
            t.demand_misses.push(DemandMiss { instr_idx: k, dependent: false });
        }
        t.demand_hits[3] = 10;
        // 10 misses within one ROB window, 10 MSHRs: one serialized latency.
        assert_eq!(t.demand_stall_ns(&cfg()), cfg().mem_latency_ns);
    }

    #[test]
    fn far_apart_misses_do_not_overlap() {
        let mut t = PhaseTrace { instrs: 100_000, ..Default::default() };
        for k in 0..10u64 {
            t.demand_misses.push(DemandMiss { instr_idx: k * 10_000, dependent: false });
        }
        assert_eq!(t.demand_stall_ns(&cfg()), 10.0 * cfg().mem_latency_ns);
    }

    #[test]
    fn prefetch_phase_is_frequency_insensitive() {
        // Pure prefetch phase: plenty of DRAM lines, few instructions.
        let t = PhaseTrace {
            instrs: 6_000,
            prefetches: 1_000,
            prefetch_hits: [0, 0, 0, 1_000],
            ..Default::default()
        };
        let c = cfg();
        let slow = t.time_s(1.6e9, &c);
        let fast = t.time_s(3.4e9, &c);
        // Bandwidth-bound at both ends: identical.
        assert_eq!(slow, fast);
        assert!(t.memory_bound_fraction(3.4e9, &c) > 0.99);
    }

    #[test]
    fn merge_shifts_indices() {
        let mut a = PhaseTrace { instrs: 100, ..Default::default() };
        a.demand_misses.push(DemandMiss { instr_idx: 50, dependent: false });
        let mut b = PhaseTrace { instrs: 200, ..Default::default() };
        b.demand_misses.push(DemandMiss { instr_idx: 10, dependent: true });
        a.merge(&b);
        assert_eq!(a.instrs, 300);
        assert_eq!(a.demand_misses[1].instr_idx, 110);
        assert!(a.demand_misses[1].dependent);
    }

    #[test]
    fn ipc_is_bounded_by_issue_width() {
        let t = compute_trace();
        let c = cfg();
        assert!(t.ipc(3.4e9, &c) <= c.issue_width + 1e-9);
        assert!(t.ipc(3.4e9, &c) > 0.0);
    }

    #[test]
    fn counters_snapshot_and_json_mirror_the_trace() {
        let mut t = compute_trace();
        t.prefetch_hits = [0, 0, 0, 7];
        t.writeback_lines = 3;
        t.demand_misses.push(DemandMiss { instr_idx: 1, dependent: false });
        let c = t.counters();
        assert_eq!(c.instrs, t.instrs);
        assert_eq!(c.demand_hits, t.demand_hits);
        assert_eq!(c.dram_lines, t.dram_lines());
        let j = t.to_json();
        assert_eq!(j.get("instrs").unwrap().as_f64(), Some(t.instrs as f64));
        assert_eq!(j.get("writeback_lines").unwrap().as_f64(), Some(3.0));
        assert_eq!(j.get("demand_miss_events").unwrap().as_f64(), Some(1.0));
        // The serialised form parses back as valid JSON.
        let text = j.to_json_string();
        assert!(dae_trace::json::parse(&text).is_ok());
    }

    #[test]
    fn llc_hits_cost_core_cycles() {
        let mut t = compute_trace();
        let base = t.core_cycles(&cfg());
        t.demand_hits[2] = 1000;
        assert_eq!(t.core_cycles(&cfg()), base + 1000.0 * cfg().llc_extra_cyc);
    }
}
