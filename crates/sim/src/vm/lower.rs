//! Lowering: one [`Function`] → one [`CompiledFunc`], a flat bytecode
//! program over a dense virtual-register frame.
//!
//! # Frame layout
//!
//! One contiguous slot region per activation, carved out of the machine's
//! shared frame stack:
//!
//! ```text
//! [ args | block params (contiguous per block) | one slot per inst | temp | consts ]
//! ```
//!
//! Every [`Value`] resolves to a frame index at lower time; constants
//! (including resolved global addresses — the memory layout of a module is
//! fixed at machine construction) are deduplicated into a pool that is
//! copied into the frame tail on entry. The single `temp` slot breaks
//! parallel-move cycles.
//!
//! # Accounting fidelity
//!
//! Lowering decides *statically* everything the tree-walker decides per
//! dynamic instruction: whether an op folds into an addressing mode
//! (`ptradd`, power-of-two-scale `imul`), which trace counters it bumps,
//! and in which order its operands fail on type errors. Fused super-ops
//! carry both constituents' accounting and perform both step-budget
//! checks, so a run that exhausts its budget *between* the halves stops at
//! exactly the same step as the tree-walker.

use std::collections::HashMap;

use crate::interp::Slot;
use crate::memory::{Memory, Val};
use dae_ir::{
    BinOp, BlockCall, BlockId, CmpOp, FuncId, Function, InstKind, Terminator, Type, UnOp, Value,
};

/// A pooled parallel-move step: `frame[dst] = frame[src]`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Move {
    /// Source frame index.
    pub(crate) src: u32,
    /// Destination frame index.
    pub(crate) dst: u32,
}

/// `(start, len)` range into a [`CompiledFunc`] side pool.
pub(crate) type PoolRange = (u32, u32);

/// One pre-resolved bytecode operation. All operands are frame indices;
/// all targets are instruction offsets (after patching).
#[derive(Clone, Copy, Debug)]
pub(crate) enum Op {
    /// A binary ALU op. `folded` marks power-of-two-scale multiplies that
    /// fold into an addressing mode (counted as `addr_ops`). Only the cold
    /// binops reach this generic form — the hot ones lower to the
    /// specialised single-dispatch variants below.
    Bin { op: BinOp, a: u32, b: u32, dst: u32, folded: bool },
    /// Specialised `BinOp::IAdd`: the opcode dispatch IS the op dispatch,
    /// no second jump table per executed instruction.
    IAdd { a: u32, b: u32, dst: u32 },
    /// Specialised `BinOp::ISub`.
    ISub { a: u32, b: u32, dst: u32 },
    /// Specialised `BinOp::IMul` (keeps the addressing-mode `folded` bit).
    IMul { a: u32, b: u32, dst: u32, folded: bool },
    /// Specialised `BinOp::And`.
    IAnd { a: u32, b: u32, dst: u32 },
    /// Specialised `BinOp::Or`.
    IOr { a: u32, b: u32, dst: u32 },
    /// Specialised `BinOp::Xor`.
    IXor { a: u32, b: u32, dst: u32 },
    /// Specialised `BinOp::Shl`.
    IShl { a: u32, b: u32, dst: u32 },
    /// Specialised `BinOp::AShr`.
    IAShr { a: u32, b: u32, dst: u32 },
    /// Specialised `BinOp::FAdd`.
    FAdd { a: u32, b: u32, dst: u32 },
    /// Specialised `BinOp::FSub`.
    FSub { a: u32, b: u32, dst: u32 },
    /// Specialised `BinOp::FMul`.
    FMul { a: u32, b: u32, dst: u32 },
    /// A unary op.
    Un { op: UnOp, a: u32, dst: u32 },
    /// A comparison producing a bool.
    Cmp { op: CmpOp, a: u32, b: u32, dst: u32 },
    /// A select between two already-computed slots.
    Select { cond: u32, then_s: u32, else_s: u32, dst: u32 },
    /// Pointer arithmetic (always folded: `addr_ops`).
    PtrAdd { base: u32, offset: u32, dst: u32 },
    /// A demand load (generic over the loaded type; the common F64/I64
    /// loads lower to the specialised variants below).
    Load { ty: Type, addr: u32, dst: u32 },
    /// Specialised `Load` of an `F64`.
    LoadF { addr: u32, dst: u32 },
    /// Specialised `Load` of an `I64`.
    LoadI { addr: u32, dst: u32 },
    /// A store.
    Store { addr: u32, value: u32 },
    /// A software prefetch hint.
    Prefetch { addr: u32 },
    /// A call; `args` ranges into the call-args pool (caller frame
    /// indices), `dst` receives the callee's result if it returns one.
    Call { callee: FuncId, args: PoolRange, dst: u32 },
    /// An unconditional jump: apply `moves`, continue at `target`.
    Jump { target: u32, moves: PoolRange },
    /// A conditional branch. `block` is the source block id (for branch
    /// profiling).
    Branch {
        cond: u32,
        block: u32,
        then_target: u32,
        then_moves: PoolRange,
        else_target: u32,
        else_moves: PoolRange,
    },
    /// Return, optionally with a value slot.
    Ret { val: Option<u32> },
    /// Fused compare+branch: the block's final compare feeding its own
    /// terminator. Still writes the compare result to `dst` (dominated
    /// blocks may use it) and performs both constituents' step checks.
    CmpBr {
        op: CmpOp,
        a: u32,
        b: u32,
        dst: u32,
        block: u32,
        then_target: u32,
        then_moves: PoolRange,
        else_target: u32,
        else_moves: PoolRange,
    },
    /// Fused address-compute+load: a `ptradd` immediately consumed by the
    /// next instruction's load. Still writes the address to `ptr_dst`.
    PtrAddLoad { base: u32, offset: u32, ptr_dst: u32, ty: Type, dst: u32 },
    /// Specialised `PtrAddLoad` of an `F64`.
    PtrAddLoadF { base: u32, offset: u32, ptr_dst: u32, dst: u32 },
    /// Specialised `PtrAddLoad` of an `I64`.
    PtrAddLoadI { base: u32, offset: u32, ptr_dst: u32, dst: u32 },
    /// Fused counter-increment+back-edge: an integer add as the block's
    /// final instruction, followed by an unconditional jump.
    AddJump { a: u32, b: u32, dst: u32, target: u32, moves: PoolRange },
}

/// One function lowered to bytecode. Immutable once built; shared by
/// every activation through an `Rc`.
pub(crate) struct CompiledFunc {
    /// Function name (for trap messages).
    pub(crate) name: String,
    /// Declared parameter count (arity check).
    pub(crate) params: usize,
    /// Total frame slots one activation needs.
    pub(crate) frame_len: usize,
    /// Frame index where the constant pool is copied on entry.
    pub(crate) const_base: usize,
    /// The pooled constants (untainted), global addresses resolved.
    pub(crate) consts: Vec<Slot>,
    /// Instruction offset of the entry block.
    pub(crate) entry_pc: u32,
    /// The flat program.
    pub(crate) ops: Vec<Op>,
    /// Pooled parallel-move sequences, referenced by [`PoolRange`]s.
    pub(crate) moves: Vec<Move>,
    /// Pooled call-argument frame indices, referenced by [`PoolRange`]s.
    pub(crate) call_args: Vec<u32>,
    /// Fused super-ops emitted (telemetry).
    pub(crate) fused: u32,
}

/// Mirrors the tree-walker's x86 addressing-mode folding test: `ptradd`
/// always; `imul` when either operand is a constant 1, 2, 4 or 8.
fn is_folded(kind: &InstKind) -> bool {
    match kind {
        InstKind::PtrAdd { .. } => true,
        InstKind::Binary { op: BinOp::IMul, lhs, rhs } => {
            let scale = |v: &Value| matches!(v.as_i64(), Some(1) | Some(2) | Some(4) | Some(8));
            scale(lhs) || scale(rhs)
        }
        _ => false,
    }
}

struct Lowerer<'f> {
    func: &'f Function,
    memory: &'f Memory,
    /// Frame index of each block's first parameter slot.
    param_base: Vec<u32>,
    inst_base: u32,
    temp: u32,
    const_base: u32,
    consts: Vec<Slot>,
    const_ix: HashMap<Value, u32>,
    ops: Vec<Op>,
    moves: Vec<Move>,
    call_args: Vec<u32>,
    /// Instruction offset of each block (targets are patched from this).
    block_pc: Vec<u32>,
    fused: u32,
}

/// Lowers `func` against the machine's memory (whose global layout is
/// fixed for the machine's lifetime, so global addresses pool as
/// constants).
pub(crate) fn lower(func: &Function, memory: &Memory) -> CompiledFunc {
    let nargs = func.params.len() as u32;
    let mut param_base = Vec::with_capacity(func.num_blocks());
    let mut next = nargs;
    for b in 0..func.num_blocks() {
        param_base.push(next);
        next += func.block(BlockId(b as u32)).params.len() as u32;
    }
    let inst_base = next;
    let temp = inst_base + func.num_insts() as u32;
    let const_base = temp + 1;
    let mut l = Lowerer {
        func,
        memory,
        param_base,
        inst_base,
        temp,
        const_base,
        consts: Vec::new(),
        const_ix: HashMap::new(),
        ops: Vec::new(),
        moves: Vec::new(),
        call_args: Vec::new(),
        block_pc: vec![0; func.num_blocks()],
        fused: 0,
    };
    for b in 0..func.num_blocks() {
        l.lower_block(BlockId(b as u32));
    }
    l.patch_targets();
    let cf = CompiledFunc {
        name: func.name.clone(),
        params: func.params.len(),
        frame_len: const_base as usize + l.consts.len(),
        const_base: const_base as usize,
        consts: l.consts,
        entry_pc: l.block_pc[func.entry.0 as usize],
        ops: l.ops,
        moves: l.moves,
        call_args: l.call_args,
        fused: l.fused,
    };
    validate(&cf);
    cf
}

/// Checks the in-bounds invariant the execution loop's unchecked indexing
/// relies on: every operand is a frame index below `frame_len`, every
/// branch target (and the entry) is an instruction offset below
/// `ops.len()`, every pool range lies inside its pool, and control can
/// never fall off the end of the program (every fall-through op has a
/// successor because the final op is a terminator).
///
/// Runs once per function per machine — not on the hot path.
///
/// # Panics
///
/// Panics if lowering produced an out-of-bounds reference; that is a bug
/// in this module, never a property of the input program.
fn validate(cf: &CompiledFunc) {
    let flen = cf.frame_len as u32;
    let plen = cf.ops.len() as u32;
    let slot = |s: u32| assert!(s < flen, "{}: frame index {s} out of bounds", cf.name);
    let target = |t: u32| assert!(t < plen, "{}: branch target {t} out of bounds", cf.name);
    let pool = |(s, l): PoolRange, len: usize| {
        assert!((s + l) as usize <= len, "{}: pool range out of bounds", cf.name)
    };
    target(cf.entry_pc);
    assert!(
        matches!(
            cf.ops.last(),
            Some(
                Op::Jump { .. }
                    | Op::Branch { .. }
                    | Op::Ret { .. }
                    | Op::CmpBr { .. }
                    | Op::AddJump { .. }
            )
        ),
        "{}: program must end with a terminator",
        cf.name
    );
    for m in &cf.moves {
        slot(m.src);
        slot(m.dst);
    }
    for &a in &cf.call_args {
        slot(a);
    }
    for op in &cf.ops {
        match *op {
            Op::Bin { a, b, dst, .. }
            | Op::IAdd { a, b, dst }
            | Op::ISub { a, b, dst }
            | Op::IMul { a, b, dst, .. }
            | Op::IAnd { a, b, dst }
            | Op::IOr { a, b, dst }
            | Op::IXor { a, b, dst }
            | Op::IShl { a, b, dst }
            | Op::IAShr { a, b, dst }
            | Op::FAdd { a, b, dst }
            | Op::FSub { a, b, dst }
            | Op::FMul { a, b, dst }
            | Op::Cmp { a, b, dst, .. } => {
                slot(a);
                slot(b);
                slot(dst);
            }
            Op::Un { a, dst, .. } => {
                slot(a);
                slot(dst);
            }
            Op::Select { cond, then_s, else_s, dst } => {
                slot(cond);
                slot(then_s);
                slot(else_s);
                slot(dst);
            }
            Op::PtrAdd { base, offset, dst } => {
                slot(base);
                slot(offset);
                slot(dst);
            }
            Op::Load { addr, dst, .. } | Op::LoadF { addr, dst } | Op::LoadI { addr, dst } => {
                slot(addr);
                slot(dst);
            }
            Op::Store { addr, value } => {
                slot(addr);
                slot(value);
            }
            Op::Prefetch { addr } => slot(addr),
            Op::Call { args, dst, .. } => {
                pool(args, cf.call_args.len());
                slot(dst);
            }
            Op::Jump { target: t, moves } => {
                target(t);
                pool(moves, cf.moves.len());
            }
            Op::Branch { cond, then_target, then_moves, else_target, else_moves, .. } => {
                slot(cond);
                target(then_target);
                target(else_target);
                pool(then_moves, cf.moves.len());
                pool(else_moves, cf.moves.len());
            }
            Op::Ret { val } => {
                if let Some(v) = val {
                    slot(v);
                }
            }
            Op::CmpBr { a, b, dst, then_target, then_moves, else_target, else_moves, .. } => {
                slot(a);
                slot(b);
                slot(dst);
                target(then_target);
                target(else_target);
                pool(then_moves, cf.moves.len());
                pool(else_moves, cf.moves.len());
            }
            Op::PtrAddLoad { base, offset, ptr_dst, dst, .. }
            | Op::PtrAddLoadF { base, offset, ptr_dst, dst }
            | Op::PtrAddLoadI { base, offset, ptr_dst, dst } => {
                slot(base);
                slot(offset);
                slot(ptr_dst);
                slot(dst);
            }
            Op::AddJump { a, b, dst, target: t, moves } => {
                slot(a);
                slot(b);
                slot(dst);
                target(t);
                pool(moves, cf.moves.len());
            }
        }
    }
}

impl Lowerer<'_> {
    /// Resolves a value to its frame index, interning constants.
    fn slot_of(&mut self, v: Value) -> u32 {
        match v {
            Value::Arg(i) => i,
            Value::BlockParam { block, index } => self.param_base[block.0 as usize] + index,
            Value::Inst(id) => self.inst_base + id.0,
            c => {
                if let Some(&ix) = self.const_ix.get(&c) {
                    return ix;
                }
                let slot = match c {
                    Value::ConstI64(x) => (Val::I(x), false),
                    Value::ConstF64(bits) => (Val::F(f64::from_bits(bits)), false),
                    Value::ConstBool(b) => (Val::B(b), false),
                    Value::Global(g) => (Val::P(self.memory.global_addr(g)), false),
                    _ => unreachable!("non-constant handled above"),
                };
                let ix = self.const_base + self.consts.len() as u32;
                self.consts.push(slot);
                self.const_ix.insert(c, ix);
                ix
            }
        }
    }

    fn lower_block(&mut self, b: BlockId) {
        self.block_pc[b.0 as usize] = self.ops.len() as u32;
        let insts = &self.func.block(b).insts;
        let term = self.func.terminator(b);
        let mut term_fused = false;
        let mut i = 0;
        while i < insts.len() {
            let id = insts[i];
            let data = self.func.inst(id);
            let dst = self.inst_base + id.0;
            let last = i + 1 == insts.len();
            // Super-op: compare feeding the block's own branch.
            if last {
                if let (
                    InstKind::Cmp { op, lhs, rhs },
                    Terminator::Branch { cond, then_dest, else_dest },
                ) = (&data.kind, term)
                {
                    if *cond == Value::Inst(id) {
                        let (op, lhs, rhs) = (*op, *lhs, *rhs);
                        let a = self.slot_of(lhs);
                        let bb = self.slot_of(rhs);
                        let (then_target, then_moves) = self.lower_edge(then_dest);
                        let (else_target, else_moves) = self.lower_edge(else_dest);
                        self.ops.push(Op::CmpBr {
                            op,
                            a,
                            b: bb,
                            dst,
                            block: b.0,
                            then_target,
                            then_moves,
                            else_target,
                            else_moves,
                        });
                        self.fused += 1;
                        term_fused = true;
                        break;
                    }
                }
                // Super-op: counter increment feeding the back-edge.
                if let (InstKind::Binary { op: BinOp::IAdd, lhs, rhs }, Terminator::Jump(dest)) =
                    (&data.kind, term)
                {
                    let (lhs, rhs) = (*lhs, *rhs);
                    let a = self.slot_of(lhs);
                    let bb = self.slot_of(rhs);
                    let (target, moves) = self.lower_edge(dest);
                    self.ops.push(Op::AddJump { a, b: bb, dst, target, moves });
                    self.fused += 1;
                    term_fused = true;
                    break;
                }
            }
            // Super-op: address compute consumed by the adjacent load.
            if !last {
                if let InstKind::PtrAdd { base, offset } = &data.kind {
                    let next = insts[i + 1];
                    if let InstKind::Load { addr } = &self.func.inst(next).kind {
                        if *addr == Value::Inst(id) {
                            let (base, offset) = (*base, *offset);
                            let ty = self.func.inst(next).ty;
                            let b_s = self.slot_of(base);
                            let o_s = self.slot_of(offset);
                            let (ptr_dst, ld) = (dst, self.inst_base + next.0);
                            self.ops.push(match ty {
                                Type::F64 => {
                                    Op::PtrAddLoadF { base: b_s, offset: o_s, ptr_dst, dst: ld }
                                }
                                Type::I64 => {
                                    Op::PtrAddLoadI { base: b_s, offset: o_s, ptr_dst, dst: ld }
                                }
                                ty => {
                                    Op::PtrAddLoad { base: b_s, offset: o_s, ptr_dst, ty, dst: ld }
                                }
                            });
                            self.fused += 1;
                            i += 2;
                            continue;
                        }
                    }
                }
            }
            let op = self.lower_inst(&data.kind, data.ty, dst);
            self.ops.push(op);
            i += 1;
        }
        if !term_fused {
            let op = match term {
                Terminator::Jump(d) => {
                    let (target, moves) = self.lower_edge(d);
                    Op::Jump { target, moves }
                }
                Terminator::Branch { cond, then_dest, else_dest } => {
                    let cond = self.slot_of(*cond);
                    let (then_target, then_moves) = self.lower_edge(then_dest);
                    let (else_target, else_moves) = self.lower_edge(else_dest);
                    Op::Branch {
                        cond,
                        block: b.0,
                        then_target,
                        then_moves,
                        else_target,
                        else_moves,
                    }
                }
                Terminator::Ret(v) => Op::Ret { val: v.map(|v| self.slot_of(v)) },
            };
            self.ops.push(op);
        }
    }

    fn lower_inst(&mut self, kind: &InstKind, ty: Type, dst: u32) -> Op {
        match kind {
            InstKind::Binary { op, lhs, rhs } => {
                let a = self.slot_of(*lhs);
                let b = self.slot_of(*rhs);
                match op {
                    BinOp::IAdd => Op::IAdd { a, b, dst },
                    BinOp::ISub => Op::ISub { a, b, dst },
                    BinOp::IMul => Op::IMul { a, b, dst, folded: is_folded(kind) },
                    BinOp::And => Op::IAnd { a, b, dst },
                    BinOp::Or => Op::IOr { a, b, dst },
                    BinOp::Xor => Op::IXor { a, b, dst },
                    BinOp::Shl => Op::IShl { a, b, dst },
                    BinOp::AShr => Op::IAShr { a, b, dst },
                    BinOp::FAdd => Op::FAdd { a, b, dst },
                    BinOp::FSub => Op::FSub { a, b, dst },
                    BinOp::FMul => Op::FMul { a, b, dst },
                    op => Op::Bin { op: *op, a, b, dst, folded: is_folded(kind) },
                }
            }
            InstKind::Unary { op, operand } => Op::Un { op: *op, a: self.slot_of(*operand), dst },
            InstKind::Cmp { op, lhs, rhs } => {
                Op::Cmp { op: *op, a: self.slot_of(*lhs), b: self.slot_of(*rhs), dst }
            }
            InstKind::Select { cond, then_value, else_value } => Op::Select {
                cond: self.slot_of(*cond),
                then_s: self.slot_of(*then_value),
                else_s: self.slot_of(*else_value),
                dst,
            },
            InstKind::PtrAdd { base, offset } => {
                Op::PtrAdd { base: self.slot_of(*base), offset: self.slot_of(*offset), dst }
            }
            InstKind::Load { addr } => {
                let addr = self.slot_of(*addr);
                match ty {
                    Type::F64 => Op::LoadF { addr, dst },
                    Type::I64 => Op::LoadI { addr, dst },
                    ty => Op::Load { ty, addr, dst },
                }
            }
            InstKind::Store { addr, value } => {
                Op::Store { addr: self.slot_of(*addr), value: self.slot_of(*value) }
            }
            InstKind::Prefetch { addr } => Op::Prefetch { addr: self.slot_of(*addr) },
            InstKind::Call { callee, args } => {
                let start = self.call_args.len() as u32;
                for a in args {
                    let s = self.slot_of(*a);
                    self.call_args.push(s);
                }
                Op::Call { callee: *callee, args: (start, args.len() as u32), dst }
            }
        }
    }

    /// Lowers one CFG edge: its block-argument binding becomes a
    /// sequentialised move list, its destination a (pre-patch) block id.
    fn lower_edge(&mut self, dest: &BlockCall) -> (u32, PoolRange) {
        let pbase = self.param_base[dest.block.0 as usize];
        let pending: Vec<Move> = dest
            .args
            .iter()
            .enumerate()
            .map(|(i, a)| Move { src: self.slot_of(*a), dst: pbase + i as u32 })
            .filter(|m| m.src != m.dst)
            .collect();
        let start = self.moves.len() as u32;
        sequentialize(pending, self.temp, &mut self.moves);
        (dest.block.0, (start, self.moves.len() as u32 - start))
    }

    /// Rewrites block-id targets to instruction offsets.
    fn patch_targets(&mut self) {
        let block_pc = &self.block_pc;
        for op in &mut self.ops {
            match op {
                Op::Jump { target, .. } | Op::AddJump { target, .. } => {
                    *target = block_pc[*target as usize];
                }
                Op::Branch { then_target, else_target, .. }
                | Op::CmpBr { then_target, else_target, .. } => {
                    *then_target = block_pc[*then_target as usize];
                    *else_target = block_pc[*else_target as usize];
                }
                _ => {}
            }
        }
    }
}

/// Orders a set of parallel moves (distinct destinations) so sequential
/// execution preserves the all-reads-before-all-writes semantics, using
/// `temp` to break cycles. Appends the ordered steps to `out`.
fn sequentialize(mut pending: Vec<Move>, temp: u32, out: &mut Vec<Move>) {
    while !pending.is_empty() {
        // Emit every move whose destination no other pending move reads.
        let mut progressed = false;
        let mut i = 0;
        while i < pending.len() {
            let dst = pending[i].dst;
            if pending.iter().enumerate().all(|(j, m)| j == i || m.src != dst) {
                out.push(pending.swap_remove(i));
                progressed = true;
            } else {
                i += 1;
            }
        }
        if !progressed {
            // Only cycles remain: save one live source to the temp slot
            // and redirect its readers there, freeing its destination.
            let s = pending[0].src;
            out.push(Move { src: s, dst: temp });
            for m in &mut pending {
                if m.src == s {
                    m.src = temp;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Applies `moves` to a register file, for checking sequentialisation.
    fn apply(moves: &[Move], regs: &mut [i64]) {
        for m in moves {
            regs[m.dst as usize] = regs[m.src as usize];
        }
    }

    #[test]
    fn parallel_moves_handle_chains_cycles_and_swaps() {
        let cases: Vec<Vec<(u32, u32)>> = vec![
            vec![(0, 1)],                         // plain copy
            vec![(0, 1), (1, 2)],                 // overlapping chain
            vec![(0, 1), (1, 0)],                 // swap
            vec![(0, 1), (1, 2), (2, 0)],         // 3-cycle
            vec![(0, 1), (1, 0), (2, 3), (3, 2)], // two disjoint swaps
            vec![(5, 0), (5, 1), (0, 5)],         // shared source inside a cycle
        ];
        for pairs in cases {
            let pending: Vec<Move> = pairs.iter().map(|&(src, dst)| Move { src, dst }).collect();
            let mut out = Vec::new();
            sequentialize(pending, 9, &mut out);
            let mut regs: Vec<i64> = (0..10).collect();
            let expected: Vec<i64> = {
                let snapshot = regs.clone();
                let mut e = regs.clone();
                for &(src, dst) in &pairs {
                    e[dst as usize] = snapshot[src as usize];
                }
                e[9] = regs[9]; // temp is scratch; exclude from the check
                e
            };
            apply(&out, &mut regs);
            assert_eq!(regs[..9], expected[..9], "pairs {pairs:?} -> {out:?}");
        }
    }
}
