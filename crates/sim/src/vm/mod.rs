//! The bytecode execution engine: each [`Function`](dae_ir::Function) is
//! lowered **once** into a flat, pre-resolved program and then executed by
//! a tight dispatch loop — the hot path behind every simulated phase.
//!
//! # Why
//!
//! The tree-walking interpreter in [`crate::interp`] re-resolves operands
//! through an enum match, unwraps an `Option<Slot>` per instruction and
//! heap-allocates a block-argument vector per executed terminator. For
//! workloads running millions to billions of dynamic instructions that
//! constant factor *is* the simulator's cost. Lowering moves all of it to
//! compile time:
//!
//! * operands become dense frame indices (`u32`) resolved at lower time;
//! * constants (including global addresses) are pooled and copied into the
//!   frame once per call;
//! * branch targets are instruction offsets, block arguments are explicit
//!   pre-sequentialised parallel-move lists;
//! * the dominant instruction pairs are fused into super-ops
//!   (compare+branch, address-compute+load, counter-increment+back-edge)
//!   that keep per-constituent step accounting intact.
//!
//! # Identity contract
//!
//! The engine is **observationally identical** to the tree-walker on every
//! verified module and on the graceful-failure cases (type mismatches,
//! division by zero, void loads, step-limit exhaustion, call-depth traps):
//! same [`PhaseTrace`](crate::PhaseTrace) — including per-level hit/miss
//! counters and the [`DemandMiss`](crate::DemandMiss) dependence chain —
//! same [`InterpError`](crate::InterpError) values at the same remaining
//! step counts, and therefore byte-identical `RunReport` JSON. The
//! differential suite in `tests/engine_equivalence.rs` enforces this.
//! The only divergence is deliberately out of contract: reading an
//! instruction result before it was defined (IR the verifier rejects)
//! panics in the tree-walker and yields a zero-initialised slot here.
//!
//! # Caching
//!
//! [`Machine`](crate::Machine) lowers lazily and caches the bytecode per
//! `FuncId`. A machine borrows its module immutably for its whole
//! lifetime, so the cache can never go stale: recompiling a module (e.g.
//! through the driver, which keys artifacts by content-addressed task
//! keys) produces a new module and therefore a new machine with an empty
//! bytecode cache.

mod exec;
mod lower;

pub(crate) use exec::VmState;

/// Which interpreter executes simulated phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The reference tree-walking interpreter ([`crate::interp`]).
    Tree,
    /// The pre-lowered bytecode engine (this module). Observationally
    /// identical to [`EngineKind::Tree`], several times faster.
    Bytecode,
}

impl Default for EngineKind {
    /// [`EngineKind::Bytecode`] unless the `DAE_SIM_ENGINE` environment
    /// variable is set to `tree` (read once per process).
    fn default() -> Self {
        EngineKind::from_env()
    }
}

impl EngineKind {
    /// The process-wide default engine: `tree` if `DAE_SIM_ENGINE=tree`,
    /// bytecode otherwise. The variable is read once and latched, so one
    /// process never mixes defaults.
    pub fn from_env() -> EngineKind {
        static KIND: std::sync::OnceLock<EngineKind> = std::sync::OnceLock::new();
        *KIND.get_or_init(|| match std::env::var("DAE_SIM_ENGINE").as_deref() {
            Ok("tree") => EngineKind::Tree,
            _ => EngineKind::Bytecode,
        })
    }

    /// Parses `tree` or `bytecode` (the `--engine` CLI values).
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values for anything else.
    pub fn parse(s: &str) -> Result<EngineKind, String> {
        match s {
            "tree" => Ok(EngineKind::Tree),
            "bytecode" => Ok(EngineKind::Bytecode),
            other => Err(format!("unknown engine `{other}` (tree or bytecode)")),
        }
    }

    /// Stable lowercase name; `EngineKind::parse(k.label())` round-trips.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Tree => "tree",
            EngineKind::Bytecode => "bytecode",
        }
    }
}

/// One function lowered to bytecode: what it cost and what came out.
/// Drained from the machine by [`Machine::take_lower_spans`]
/// (e.g. by `dae-runtime`, which forwards them to `dae-trace`).
///
/// [`Machine::take_lower_spans`]: crate::Machine::take_lower_spans
#[derive(Clone, Debug)]
pub struct LowerSpan {
    /// Name of the lowered function.
    pub func: String,
    /// Bytecode ops emitted.
    pub ops: u32,
    /// Fused super-ops among them.
    pub fused: u32,
    /// Host wall-clock spent lowering, in seconds.
    pub wall_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_kind_parses_and_round_trips() {
        for k in [EngineKind::Tree, EngineKind::Bytecode] {
            assert_eq!(EngineKind::parse(k.label()), Ok(k));
        }
        assert!(EngineKind::parse("walker").is_err());
    }
}
